//! # evanesco
//!
//! A full reproduction of **“Evanesco: Architectural Support for Efficient
//! Data Sanitization in Modern Flash-Based Storage Systems”** (ASPLOS 2020)
//! as a Rust workspace. This meta-crate re-exports the component crates:
//!
//! * [`nand`] — the 3D NAND substrate (cell model, noise, RBER/ECC,
//!   behavioral chip, timing);
//! * [`core`] — the paper's contribution: `pLock`/`bLock`, pAP/bAP flags,
//!   the lock-aware chip, design-space exploration, the threat model;
//! * [`ftl`] — flash translation layers (baseline, SecureSSD lock manager,
//!   erase-based and scrubbing baselines);
//! * [`ssd`] — the event-timed SSD emulator (channels × chips, metrics)
//!   and a host file-system façade with `O_INSEC` semantics;
//! * [`workloads`] — Table-2 trace generators and the VerTrace
//!   data-versioning study.
//!
//! ## Quickstart
//!
//! ```rust
//! use evanesco::ssd::emulator::Emulator;
//! use evanesco::ssd::config::SsdConfig;
//! use evanesco::ftl::policy::SanitizePolicy;
//!
//! # fn main() {
//! let cfg = SsdConfig::tiny_for_tests();
//! let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
//! let lpa = 0;
//! ssd.write(lpa, 4, true);          // write 4 secure pages
//! ssd.trim(lpa, 4);                 // delete them -> locked immediately
//! assert!(ssd.verify_sanitized(lpa, 4));
//! # }
//! ```

pub use evanesco_core as core;
pub use evanesco_ftl as ftl;
pub use evanesco_nand as nand;
pub use evanesco_ssd as ssd;
pub use evanesco_workloads as workloads;

//! Property tests for the scheduler's address-space edge: requests near
//! `u64::MAX`, zero-page requests, and out-of-bounds submissions must
//! produce typed errors or clean acceptance — never a panic, never an
//! overflow wrap, and never scheduler side effects on rejection.

use evanesco::ssd::{check_lpa_range, HostOp, Scheduler, SubmitError};
use proptest::prelude::*;

fn op_of_kind(kind: u8, lpa: u64, npages: u64) -> HostOp {
    match kind % 4 {
        0 => HostOp::Write { lpa, npages, secure: true },
        1 => HostOp::Write { lpa, npages, secure: false },
        2 => HostOp::Read { lpa, npages },
        _ => HostOp::Trim { lpa, npages },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Any request whose range straddles `u64::MAX` is a typed
    /// `RangeOverflow`, not a debug panic or a release wrap.
    #[test]
    fn ranges_straddling_u64_max_are_typed_errors(
        lpa in (u64::MAX - 64)..=u64::MAX,
        npages in 1u64..=128,
        kind in 0u8..4,
    ) {
        let op = op_of_kind(kind, lpa, npages);
        let mut sched = Scheduler::new(4, u64::MAX);
        match sched.try_submit(0, op) {
            Ok(accepted) => {
                // Accepted ⇒ the checked range agrees it fits.
                prop_assert!(accepted);
                prop_assert!(lpa.checked_add(npages).is_some());
                prop_assert!(check_lpa_range(lpa, npages, u64::MAX).is_ok());
            }
            Err(SubmitError::RangeOverflow { lpa: l, npages: n }) => {
                prop_assert_eq!((l, n), (lpa, npages));
                prop_assert!(lpa.checked_add(npages).is_none());
                // A rejected submission leaves no scheduler side effects.
                prop_assert_eq!(sched.outstanding(), 0);
            }
            Err(SubmitError::OutOfBounds { .. }) => {
                // With the device bound at u64::MAX, every range that
                // survives the overflow check fits by definition.
                prop_assert!(false, "OutOfBounds is unreachable at a u64::MAX device bound");
            }
        }
    }

    /// Below the device bound every request is accepted; at or past it,
    /// the error names the offending range and the scheduler state is
    /// untouched (a subsequent valid submission still works).
    #[test]
    fn out_of_bounds_rejection_is_typed_and_side_effect_free(
        logical in 1u64..1_000_000,
        lpa in 0u64..2_000_000,
        npages in 0u64..=64,
    ) {
        let mut sched = Scheduler::new(2, logical);
        let in_bounds = lpa.checked_add(npages).is_some_and(|hi| hi <= logical);
        let res = sched.try_submit(0, HostOp::Read { lpa, npages });
        prop_assert_eq!(res.is_ok(), in_bounds, "lpa {} + {} vs {}", lpa, npages, logical);
        if res.is_err() {
            prop_assert_eq!(sched.outstanding(), 0);
            // The scheduler still accepts a valid request afterwards.
            prop_assert!(sched.try_submit(1, HostOp::Read { lpa: 0, npages: 0 }).unwrap());
        }
    }

    /// Zero-page requests are legal no-ops anywhere in bounds — including
    /// exactly at the end of the address space.
    #[test]
    fn zero_page_requests_never_error_in_bounds(logical in 1u64..1_000_000) {
        let mut sched = Scheduler::new(2, logical);
        prop_assert!(sched.try_submit(0, HostOp::Write { lpa: logical, npages: 0, secure: true }).is_ok());
        prop_assert!(sched.try_submit(1, HostOp::Trim { lpa: 0, npages: 0 }).is_ok());
        prop_assert!(matches!(
            sched.try_submit(2, HostOp::Read { lpa: logical + 1, npages: 0 }),
            Err(SubmitError::OutOfBounds { .. })
        ));
    }
}

/// The emulator-facing check agrees with the scheduler's at every edge.
#[test]
fn config_and_scheduler_range_checks_agree() {
    use evanesco::ssd::SsdConfig;
    let cfg = SsdConfig::tiny_for_tests();
    let lp = cfg.ftl.logical_pages();
    for (lpa, npages) in
        [(0, 0), (0, lp), (lp - 1, 1), (lp - 1, 2), (lp, 0), (lp, 1), (u64::MAX, 1), (u64::MAX, 0)]
    {
        assert_eq!(
            cfg.check_lpa_range(lpa, npages).is_ok(),
            check_lpa_range(lpa, npages, lp).is_ok(),
            "divergence at lpa={lpa} npages={npages}"
        );
    }
}

//! Differential oracles for the dense hot-path rework: the pooled page
//! store, dense flag/ledger tables, and batched observer dispatch must be
//! invisible to everything the host can observe.
//!
//! Two contracts, each checked over random workload × policy × queue
//! depth × fault-seed draws (the harness shape of
//! `tests/checkpoint_resume.rs`):
//!
//! * **Attachment neutrality** — running with a live exposure ledger and
//!   an event recorder tee'd onto the FTL produces byte-identical per-op
//!   results, `RunResult`, Prometheus scrape, and checkpoint bytes as the
//!   same run with no observer. Batched dispatch buffers events; it must
//!   never feed back into the simulation.
//! * **Replay closure** — the exposure ledger's attribution is a pure
//!   function of the (ordered) event stream: replaying the recorded
//!   events into a second ledger reproduces the directly-attached
//!   ledger's report *and* its serialized bytes. This pins the batched
//!   drain to deliver a complete stream in recording order, and the
//!   dense ledger tables to carry no hidden state outside the events.

use evanesco::core::fault::FaultConfig;
use evanesco::ftl::observer::{FtlObserver, ObserverEvent, Tee};
use evanesco::ftl::SanitizePolicy;
use evanesco::nand::snapshot::Enc;
use evanesco::ssd::{Emulator, HostOp, SsdConfig};
use evanesco::workloads::generate::generate;
use evanesco::workloads::ledger::ExposureLedger;
use evanesco::workloads::trace::TraceOp;
use evanesco::workloads::WorkloadSpec;
use proptest::prelude::*;

fn policies() -> [SanitizePolicy; 5] {
    [
        SanitizePolicy::none(),
        SanitizePolicy::evanesco(),
        SanitizePolicy::evanesco_no_block(),
        SanitizePolicy::erase_based(),
        SanitizePolicy::scrub(),
    ]
}

fn sched_op(logical: u64) -> impl Strategy<Value = HostOp> {
    let max_run = 6u64;
    prop_oneof![
        4 => (0..logical - max_run, 1..=max_run, any::<bool>())
            .prop_map(|(lpa, npages, secure)| HostOp::Write { lpa, npages, secure }),
        2 => (0..logical - max_run, 1..=max_run)
            .prop_map(|(lpa, npages)| HostOp::Read { lpa, npages }),
        1 => (0..logical - max_run, 1..=max_run)
            .prop_map(|(lpa, npages)| HostOp::Trim { lpa, npages }),
    ]
}

fn observables(ssd: &Emulator) -> (String, String, Vec<u8>) {
    (format!("{:?}", ssd.result()), ssd.prometheus_scrape(), ssd.save_checkpoint())
}

/// Captures the full event stream the FTL dispatches, verbatim.
#[derive(Default)]
struct Recorder(Vec<ObserverEvent>);

impl FtlObserver for Recorder {
    fn on_program(
        &mut self,
        lpa: u64,
        at: evanesco::ftl::GlobalPpa,
        relocation: bool,
        secure: bool,
    ) {
        self.0.push(ObserverEvent::Program { lpa, at, relocation, secure });
    }
    fn on_invalidate(
        &mut self,
        at: evanesco::ftl::GlobalPpa,
        secure: bool,
        sanitized: bool,
        cause: evanesco::ftl::InvalidateCause,
    ) {
        self.0.push(ObserverEvent::Invalidate { at, secure, sanitized, cause });
    }
    fn on_erase(&mut self, chip: usize, block: evanesco::nand::geometry::BlockId) {
        self.0.push(ObserverEvent::Erase { chip, block });
    }
    fn on_host_tick(&mut self) {
        self.0.push(ObserverEvent::HostTick);
    }
}

fn replay_into(lg: &mut ExposureLedger, events: &[ObserverEvent]) {
    for &ev in events {
        match ev {
            ObserverEvent::Program { lpa, at, relocation, secure } => {
                lg.on_program(lpa, at, relocation, secure);
            }
            ObserverEvent::Invalidate { at, secure, sanitized, cause } => {
                lg.on_invalidate(at, secure, sanitized, cause);
            }
            ObserverEvent::Erase { chip, block } => lg.on_erase(chip, block),
            ObserverEvent::HostTick => lg.on_host_tick(),
        }
    }
}

fn ledger_bytes(lg: &ExposureLedger) -> Vec<u8> {
    let mut enc = Enc::new();
    lg.encode_state(&mut enc);
    enc.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Attachment neutrality: tee'ing a ledger + recorder onto the
    /// scheduled-run path changes nothing the host or an operator sees.
    #[test]
    fn observer_attachment_never_perturbs_the_simulation(
        ops in proptest::collection::vec(sched_op(600), 4..40),
        policy_i in 0usize..5,
        qd in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
        severity in 0.0f64..0.5,
        fault_seed in any::<u64>(),
    ) {
        let mut cfg = SsdConfig::tiny_for_tests();
        if severity >= 0.05 {
            cfg.ftl.faults = FaultConfig::storm(severity, fault_seed);
        }
        let policy = policies()[policy_i];

        let mut bare = Emulator::new(cfg, policy);
        let bare_run = bare.run_scheduled(&ops, qd);
        bare.flush_coalesced_locks();

        let mut observed = Emulator::new(cfg, policy);
        let mut lg = ExposureLedger::new();
        let mut rec = Recorder::default();
        let obs_run = {
            let mut tee = Tee(&mut lg, &mut rec);
            observed.run_scheduled_with(&mut tee, &ops, qd)
        };
        observed.flush_coalesced_locks();

        prop_assert_eq!(bare_run.results, obs_run.results, "per-op results diverged");
        prop_assert_eq!(bare_run.host_pages, obs_run.host_pages);
        prop_assert_eq!(observables(&bare), observables(&observed));
        // The stream is non-trivial whenever any write landed.
        if obs_run.host_pages > 0 {
            prop_assert!(!rec.0.is_empty(), "writes completed but no events dispatched");
        }
    }

    /// Replay closure: the ledger built from the recorded event stream is
    /// indistinguishable — report and serialized bytes — from the ledger
    /// that rode the FTL directly.
    #[test]
    fn ledger_attribution_is_a_pure_function_of_the_event_stream(
        spec_i in 0usize..4,
        policy_i in 0usize..5,
        seed in any::<u64>(),
        severity in 0.0f64..0.5,
        fault_seed in any::<u64>(),
    ) {
        let specs = [
            WorkloadSpec::mobile(),
            WorkloadSpec::mail_server(),
            WorkloadSpec::db_server(),
            WorkloadSpec::file_server(),
        ];
        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.track_tags = false;
        cfg.stale_audit = false;
        if severity >= 0.05 {
            cfg.ftl.faults = FaultConfig::storm(severity, fault_seed);
        }
        let policy = policies()[policy_i];
        let logical = Emulator::new(cfg, policy).logical_pages();
        let trace = generate(&specs[spec_i], logical, 250, seed);
        let stream: Vec<&TraceOp> = trace.prefill.iter().chain(&trace.ops).collect();

        // Direct arm: ledger attached to the device, recorder tee'd in;
        // events are segmented per host op as they happen.
        let mut ssd = Emulator::new(cfg, policy);
        let mut direct = ExposureLedger::new();
        let mut per_op: Vec<Vec<ObserverEvent>> = Vec::new();
        for op in &stream {
            let mut rec = Recorder::default();
            match **op {
                TraceOp::Write { file, lpa, npages, secure, overwrite } => {
                    direct.before_write(file, lpa, npages, overwrite);
                    let mut tee = Tee(&mut direct, &mut rec);
                    ssd.write_with(&mut tee, lpa, npages, secure);
                }
                TraceOp::Read { lpa, npages } => {
                    ssd.read(lpa, npages);
                }
                TraceOp::Trim { file, lpa, npages } => {
                    direct.before_trim(file, lpa, npages);
                    let mut tee = Tee(&mut direct, &mut rec);
                    ssd.trim_with(&mut tee, lpa, npages);
                }
            }
            per_op.push(rec.0);
        }

        // Replay arm: a fresh ledger fed only the host markers and the
        // recorded stream, never the device.
        let mut replayed = ExposureLedger::new();
        for (op, events) in stream.iter().zip(&per_op) {
            match **op {
                TraceOp::Write { file, lpa, npages, overwrite, .. } => {
                    replayed.before_write(file, lpa, npages, overwrite);
                }
                TraceOp::Trim { file, lpa, npages } => {
                    replayed.before_trim(file, lpa, npages);
                }
                TraceOp::Read { .. } => {}
            }
            replay_into(&mut replayed, events);
        }

        prop_assert_eq!(
            ledger_bytes(&direct),
            ledger_bytes(&replayed),
            "serialized ledger state diverged between direct and replayed arms"
        );
        let cap = logical;
        prop_assert_eq!(
            direct.report(cap),
            replayed.report(cap),
            "attribution reports diverged between direct and replayed arms"
        );
    }
}

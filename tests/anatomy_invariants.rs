//! Latency-anatomy invariants, end to end through the public API.
//!
//! * **stage tiling** — for every anatomy row, the eight per-stage
//!   durations sum *exactly* (integer nanoseconds) to the request's
//!   end-to-end latency, at queue depths 1, 8 and 32, over arbitrary
//!   mixed workloads;
//! * **accounting** — `recorded == retained + dropped` on the anatomy
//!   ring, and the per-kind×stage aggregate totals equal the sums over
//!   the retained rows when nothing was evicted;
//! * **timing neutrality** — enabling the anatomy layer changes no
//!   simulated result: host results, completion times, submission
//!   times, and simulated end time are identical with the layer on and
//!   off (it only *observes* the trace stream);
//! * **blame** — interference stages only ever carry time that some
//!   segment of the request's window actually covered (they are a
//!   reclassification of wait/service time, never invented time).

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::anatomy::REQ_KINDS;
use evanesco::ssd::{Emulator, HostOp, SsdConfig, Stage};
use proptest::prelude::*;

/// A deterministic mixed workload from one seed: secure and insecure
/// writes, reads, and trims over a small clustered address range.
fn mixed_ops(logical: u64, n: usize, seed: u64) -> Vec<HostOp> {
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x >> 33
    };
    (0..n)
        .map(|_| {
            let npages = 1 + step() % 6;
            let lpa = step() % (logical - npages);
            match step() % 10 {
                0..=4 => HostOp::Write { lpa, npages, secure: step() % 3 != 0 },
                5..=7 => HostOp::Read { lpa, npages },
                _ => HostOp::Trim { lpa, npages },
            }
        })
        .collect()
}

fn anatomy_run(ops: &[HostOp], qd: usize) -> (Emulator, evanesco::ssd::AnatomyRecorder) {
    let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
    ssd.enable_anatomy(ops.len(), 8);
    ssd.run_scheduled(ops, qd);
    let an = ssd.take_anatomy().expect("anatomy enabled");
    (ssd, an)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The tiling identity: stage sums equal end-to-end latency exactly,
    /// for every request, at serialized, moderate, and deep queue depths.
    #[test]
    fn stage_sums_tile_e2e_exactly_at_every_queue_depth(
        seed in 1u64..u64::MAX,
        n in 60usize..160,
    ) {
        let logical = SsdConfig::tiny_for_tests().ftl.logical_pages();
        let ops = mixed_ops(logical, n, seed);
        for qd in [1usize, 8, 32] {
            let (_ssd, an) = anatomy_run(&ops, qd);
            let retained = an.rows().count() as u64;
            prop_assert!(retained > 0, "qd {}: no anatomy rows", qd);
            prop_assert_eq!(an.recorded(), retained + an.dropped());
            for row in an.rows() {
                prop_assert_eq!(
                    row.stage_sum().0,
                    row.e2e().0,
                    "qd {}: request {} ({:?}) stages do not tile its window",
                    qd, row.trace_id, row.kind
                );
                // Interference is a reclassification, never new time.
                prop_assert!(row.interference() <= row.e2e());
            }
            // With a ring sized to the op count nothing was evicted, so
            // the aggregate totals must equal the per-row sums.
            for kind in REQ_KINDS {
                for stage in Stage::ALL {
                    let total: u64 = an
                        .rows()
                        .filter(|r| r.kind == kind)
                        .map(|r| r.stage(stage).0)
                        .sum();
                    prop_assert_eq!(an.stage_total(kind, stage).0, total);
                }
            }
        }
    }

    /// Timing neutrality: the anatomy layer observes the run without
    /// perturbing it — every simulated output is byte-identical.
    #[test]
    fn anatomy_is_timing_neutral(
        seed in 1u64..u64::MAX,
        n in 60usize..160,
        qd in prop_oneof![Just(1usize), Just(8usize), Just(32usize)],
    ) {
        let logical = SsdConfig::tiny_for_tests().ftl.logical_pages();
        let ops = mixed_ops(logical, n, seed);

        let mut plain = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
        let off = plain.run_scheduled(&ops, qd);

        let mut observed = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
        observed.enable_anatomy(ops.len(), 8);
        let on = observed.run_scheduled(&ops, qd);

        prop_assert_eq!(&off.results, &on.results, "host results moved");
        prop_assert_eq!(&off.completions, &on.completions, "completion times moved");
        prop_assert_eq!(&off.submits, &on.submits, "submission times moved");
        prop_assert_eq!(off.sim_time, on.sim_time, "simulated end time moved");
        let (a, b) = (plain.result(), observed.result());
        prop_assert_eq!(a.host_ops, b.host_ops);
        prop_assert_eq!(a.ftl, b.ftl, "anatomy changed FTL behaviour");
    }
}

/// The top-K digest is deterministic and ordered slowest-first, and its
/// causal chains stay within each request's window.
#[test]
fn top_k_is_ordered_and_chains_stay_in_window() {
    let logical = SsdConfig::tiny_for_tests().ftl.logical_pages();
    let ops = mixed_ops(logical, 300, 0x5EED);
    let (_ssd, an) = anatomy_run(&ops, 8);
    let top = an.top();
    assert!(!top.is_empty());
    for pair in top.windows(2) {
        assert!(
            pair[0].e2e() > pair[1].e2e()
                || (pair[0].e2e() == pair[1].e2e() && pair[0].trace_id < pair[1].trace_id),
            "top-K not ordered slowest-first with id tiebreak"
        );
    }
    for row in top {
        for link in &row.chain {
            assert!(link.end > link.start, "empty chain link");
            assert!(link.start >= row.submit && link.end <= row.end, "chain link escapes window");
        }
    }
    let (_ssd2, an2) = anatomy_run(&ops, 8);
    assert_eq!(an2.top().len(), top.len(), "top-K is deterministic");
    for (a, b) in an2.top().iter().zip(top) {
        assert_eq!(a, b, "top-K rows differ between identical runs");
    }
}

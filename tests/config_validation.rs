//! Edge-case tests for configuration validation: every structural
//! invariant of [`FtlConfig::validate`] and [`SsdConfig::validate`] must
//! reject its violation with a descriptive panic, and the shipped presets
//! must all pass.

use evanesco::ftl::FtlConfig;
use evanesco::ssd::SsdConfig;

fn tiny_ftl() -> FtlConfig {
    FtlConfig::tiny_for_tests()
}

#[test]
fn shipped_presets_validate() {
    FtlConfig::paper().validate();
    FtlConfig::paper_scaled(32).validate();
    FtlConfig::tiny_for_tests().validate();
    SsdConfig::paper().validate();
    SsdConfig::scaled(32).validate();
    SsdConfig::tiny_for_tests().validate();
}

// ---- FtlConfig -------------------------------------------------------------

#[test]
#[should_panic(expected = "n_chips must be positive")]
fn ftl_rejects_zero_chips() {
    let mut cfg = tiny_ftl();
    cfg.n_chips = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "at least one block")]
fn ftl_rejects_zero_blocks() {
    let mut cfg = tiny_ftl();
    cfg.geometry.blocks = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "at least one wordline")]
fn ftl_rejects_zero_wordlines() {
    let mut cfg = tiny_ftl();
    cfg.geometry.wordlines_per_block = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "op_ratio must be in (0, 1)")]
fn ftl_rejects_zero_op_ratio() {
    let mut cfg = tiny_ftl();
    cfg.op_ratio = 0.0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "op_ratio must be in (0, 1)")]
fn ftl_rejects_full_op_ratio() {
    let mut cfg = tiny_ftl();
    cfg.op_ratio = 1.0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "op_ratio must be in (0, 1)")]
fn ftl_rejects_negative_op_ratio() {
    let mut cfg = tiny_ftl();
    cfg.op_ratio = -0.2;
    cfg.validate();
}

#[test]
#[should_panic(expected = "logical address space is empty")]
fn ftl_rejects_op_ratio_that_swallows_the_address_space() {
    let mut cfg = tiny_ftl();
    // 768 physical pages × (1 − 0.999) rounds down to zero logical pages.
    cfg.op_ratio = 0.999;
    cfg.validate();
}

#[test]
#[should_panic(expected = "gc_free_threshold must be >= 1")]
fn ftl_rejects_zero_gc_threshold() {
    let mut cfg = tiny_ftl();
    cfg.gc_free_threshold = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "needs more than")]
fn ftl_rejects_gc_threshold_beyond_block_count() {
    let mut cfg = tiny_ftl();
    cfg.gc_free_threshold = cfg.geometry.blocks as usize;
    cfg.validate();
}

#[test]
#[should_panic(expected = "block_min_plocks must be >= 1")]
fn ftl_rejects_zero_block_min_plocks() {
    let mut cfg = tiny_ftl();
    cfg.block_min_plocks = 0;
    cfg.validate();
}

// ---- SsdConfig -------------------------------------------------------------

#[test]
#[should_panic(expected = "channels must be positive")]
fn ssd_rejects_zero_channels() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.channels = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "chips_per_channel must be positive")]
fn ssd_rejects_zero_chips_per_channel() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.chips_per_channel = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "channel topology and FTL chip count disagree")]
fn ssd_rejects_topology_chip_count_mismatch() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.chips_per_channel = 2; // 4 chips vs the FTL's 2
    cfg.validate();
}

#[test]
#[should_panic(expected = "gc_free_threshold must be >= 1")]
fn ssd_validate_reaches_the_embedded_ftl_config() {
    // Topology is consistent; the only violation sits inside the nested
    // FtlConfig, so the panic must come from its validate().
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.ftl.gc_free_threshold = 0;
    cfg.validate();
}

#[test]
fn emulator_construction_validates_config() {
    // Emulator::new calls validate(): a bad config cannot slip through.
    let result = std::panic::catch_unwind(|| {
        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.channels = 5;
        evanesco::ssd::Emulator::new(cfg, evanesco::ftl::SanitizePolicy::evanesco())
    });
    assert!(result.is_err(), "Emulator must reject an inconsistent topology");
}

//! Edge-case tests for configuration validation: every structural
//! invariant of [`FtlConfig::validate`] and [`SsdConfig::validate`] must
//! reject its violation with a descriptive panic, and the shipped presets
//! must all pass.

use evanesco::ftl::FtlConfig;
use evanesco::ssd::SsdConfig;

fn tiny_ftl() -> FtlConfig {
    FtlConfig::tiny_for_tests()
}

#[test]
fn shipped_presets_validate() {
    FtlConfig::paper().validate();
    FtlConfig::paper_scaled(32).validate();
    FtlConfig::tiny_for_tests().validate();
    SsdConfig::paper().validate();
    SsdConfig::scaled(32).validate();
    SsdConfig::tiny_for_tests().validate();
}

// ---- FtlConfig -------------------------------------------------------------

#[test]
#[should_panic(expected = "n_chips must be positive")]
fn ftl_rejects_zero_chips() {
    let mut cfg = tiny_ftl();
    cfg.n_chips = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "at least one block")]
fn ftl_rejects_zero_blocks() {
    let mut cfg = tiny_ftl();
    cfg.geometry.blocks = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "at least one wordline")]
fn ftl_rejects_zero_wordlines() {
    let mut cfg = tiny_ftl();
    cfg.geometry.wordlines_per_block = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "op_ratio must be in (0, 1)")]
fn ftl_rejects_zero_op_ratio() {
    let mut cfg = tiny_ftl();
    cfg.op_ratio = 0.0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "op_ratio must be in (0, 1)")]
fn ftl_rejects_full_op_ratio() {
    let mut cfg = tiny_ftl();
    cfg.op_ratio = 1.0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "op_ratio must be in (0, 1)")]
fn ftl_rejects_negative_op_ratio() {
    let mut cfg = tiny_ftl();
    cfg.op_ratio = -0.2;
    cfg.validate();
}

#[test]
#[should_panic(expected = "logical address space is empty")]
fn ftl_rejects_op_ratio_that_swallows_the_address_space() {
    let mut cfg = tiny_ftl();
    // 768 physical pages × (1 − 0.999) rounds down to zero logical pages.
    cfg.op_ratio = 0.999;
    cfg.validate();
}

#[test]
#[should_panic(expected = "gc_free_threshold must be >= 1")]
fn ftl_rejects_zero_gc_threshold() {
    let mut cfg = tiny_ftl();
    cfg.gc_free_threshold = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "needs more than")]
fn ftl_rejects_gc_threshold_beyond_block_count() {
    let mut cfg = tiny_ftl();
    cfg.gc_free_threshold = cfg.geometry.blocks as usize;
    cfg.validate();
}

#[test]
#[should_panic(expected = "block_min_plocks must be >= 1")]
fn ftl_rejects_zero_block_min_plocks() {
    let mut cfg = tiny_ftl();
    cfg.block_min_plocks = 0;
    cfg.validate();
}

// ---- Fault model & reliability knobs ---------------------------------------

#[test]
#[should_panic(expected = "fault probability plock_fail must be in [0, 1]")]
fn ftl_rejects_out_of_range_fault_probability() {
    let mut cfg = tiny_ftl();
    cfg.faults.plock_fail = 1.5;
    cfg.validate();
}

#[test]
#[should_panic(expected = "fault probability erase_fail must be in [0, 1]")]
fn ftl_rejects_negative_fault_probability() {
    let mut cfg = tiny_ftl();
    cfg.faults.erase_fail = -0.1;
    cfg.validate();
}

#[test]
#[should_panic(expected = "fault probability read_retry_decay must be in [0, 1]")]
fn ftl_rejects_out_of_range_retry_decay() {
    let mut cfg = tiny_ftl();
    cfg.faults.read_retry_decay = 2.0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "program_fail must be below 1")]
fn ftl_rejects_certain_program_failure() {
    // p = 1.0 would make the write-remap loop diverge.
    let mut cfg = tiny_ftl();
    cfg.faults.program_fail = 1.0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "backoff_base must be positive")]
fn ftl_rejects_zero_backoff() {
    let mut cfg = tiny_ftl();
    cfg.reliability.backoff_base = evanesco::nand::timing::Nanos(0);
    cfg.validate();
}

#[test]
#[should_panic(expected = "spare_blocks must be >= 1")]
fn ftl_rejects_zero_spare_blocks() {
    let mut cfg = tiny_ftl();
    cfg.reliability.spare_blocks = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "must be below spare_blocks")]
fn ftl_rejects_watermark_at_or_above_spares() {
    let mut cfg = tiny_ftl();
    cfg.reliability.spare_low_watermark = cfg.reliability.spare_blocks;
    cfg.validate();
}

#[test]
#[should_panic(expected = "must be below the")]
fn ftl_rejects_spares_exceeding_block_count() {
    let mut cfg = tiny_ftl();
    cfg.reliability.spare_blocks = cfg.geometry.blocks as usize;
    cfg.validate();
}

#[test]
fn storm_and_calibrated_fault_configs_validate() {
    for severity in [0.0, 0.5, 1.0] {
        let mut cfg = tiny_ftl();
        cfg.faults = evanesco::core::fault::FaultConfig::storm(severity, 7);
        // A full-severity storm saturates program_fail below the divergence
        // limit by construction.
        cfg.validate();
    }
    let mut cfg = tiny_ftl();
    cfg.faults = evanesco::core::fault::FaultConfig::calibrated(
        evanesco::core::calibration::DesignPoint::new(1, 100),
        1e-3,
        7,
    );
    cfg.validate();
}

// ---- SsdConfig -------------------------------------------------------------

#[test]
#[should_panic(expected = "channels must be positive")]
fn ssd_rejects_zero_channels() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.channels = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "chips_per_channel must be positive")]
fn ssd_rejects_zero_chips_per_channel() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.chips_per_channel = 0;
    cfg.validate();
}

#[test]
#[should_panic(expected = "channel topology and FTL chip count disagree")]
fn ssd_rejects_topology_chip_count_mismatch() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.chips_per_channel = 2; // 4 chips vs the FTL's 2
    cfg.validate();
}

#[test]
#[should_panic(expected = "gc_free_threshold must be >= 1")]
fn ssd_validate_reaches_the_embedded_ftl_config() {
    // Topology is consistent; the only violation sits inside the nested
    // FtlConfig, so the panic must come from its validate().
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.ftl.gc_free_threshold = 0;
    cfg.validate();
}

#[test]
fn emulator_construction_validates_config() {
    // Emulator::new calls validate(): a bad config cannot slip through.
    let result = std::panic::catch_unwind(|| {
        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.channels = 5;
        evanesco::ssd::Emulator::new(cfg, evanesco::ftl::SanitizePolicy::evanesco())
    });
    assert!(result.is_err(), "Emulator must reject an inconsistent topology");
}

// ---------------------------------------------------------------------------
// CLI contract: experiment names are validated up front, before any run.
// ---------------------------------------------------------------------------

#[test]
fn experiment_registry_accepts_every_gate_subcommand() {
    // The binary rejects unknown names (exit 1) by consulting this
    // registry before running anything; every gate-bearing subcommand
    // must therefore be listed, hostperf included.
    for name in
        ["scheduler", "trace", "report", "campaign", "hostperf", "chaos", "fleet", "anatomy"]
    {
        assert!(
            evanesco_bench::is_experiment_name(name),
            "gate subcommand '{name}' missing from EXPERIMENT_NAMES"
        );
    }
    assert!(!evanesco_bench::is_experiment_name("hostpref"), "typos must be rejected up front");
    assert!(!evanesco_bench::is_experiment_name("--reps"), "flags are not experiment names");
}

#[test]
#[should_panic(expected = "unknown experiment")]
fn run_experiment_panics_on_unknown_name_with_the_known_list() {
    let _ = evanesco_bench::run_experiment("hostpref", &evanesco_bench::Scale::smoke());
}

//! End-to-end verification of the paper's sanitization conditions (§1):
//!
//! * **C1** — after a file is deleted, the storage system stores none of
//!   its content;
//! * **C2** — after a file is updated, no old content remains;
//!
//! checked against the full threat model (§5.1): the attacker de-solders
//! chips and reads them through every interface path, bypassing FTL and
//! file system.

use evanesco::core::threat::Attacker;
use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{Emulator, SsdConfig};

fn ssd(policy: SanitizePolicy) -> Emulator {
    Emulator::new(SsdConfig::tiny_for_tests(), policy)
}

fn secure_policies() -> [SanitizePolicy; 4] {
    [
        SanitizePolicy::evanesco(),
        SanitizePolicy::evanesco_no_block(),
        SanitizePolicy::erase_based(),
        SanitizePolicy::scrub(),
    ]
}

#[test]
fn c1_delete_is_irrecoverable_under_every_secure_policy() {
    for policy in secure_policies() {
        let mut s = ssd(policy);
        let tags = s.write(0, 6, true);
        s.trim(0, 6);
        let recoverable = s.attacker_recoverable_tags();
        for t in tags {
            assert!(!recoverable.contains(&t), "{policy}: deleted tag {t} recoverable");
        }
        assert!(s.verify_sanitized(0, 6), "{policy}: C1 violated");
    }
}

#[test]
fn c2_update_leaves_no_old_version_under_every_secure_policy() {
    for policy in secure_policies() {
        let mut s = ssd(policy);
        let old_tags = s.write(0, 4, true);
        let new_tags = s.write(0, 4, true); // in-place update
        let recoverable = s.attacker_recoverable_tags();
        for t in &old_tags {
            assert!(!recoverable.contains(t), "{policy}: old version recoverable");
        }
        for t in &new_tags {
            assert!(recoverable.contains(t), "{policy}: current version lost");
        }
        assert!(s.verify_sanitized(0, 4), "{policy}: C2 violated");
    }
}

#[test]
fn baseline_violates_both_conditions() {
    let mut s = ssd(SanitizePolicy::none());
    let deleted = s.write(0, 4, true);
    s.trim(0, 4);
    let overwritten = s.write(10, 2, true);
    s.write(10, 2, true);
    let recoverable = s.attacker_recoverable_tags();
    assert!(deleted.iter().any(|t| recoverable.contains(t)), "C1 should fail");
    assert!(overwritten.iter().any(|t| recoverable.contains(t)), "C2 should fail");
}

#[test]
fn sanitization_survives_gc_churn() {
    // Force GC by writing several times the logical capacity, then verify
    // that no superseded version of anything is recoverable.
    for policy in [SanitizePolicy::evanesco(), SanitizePolicy::evanesco_no_block()] {
        let mut s = ssd(policy);
        let logical = s.logical_pages();
        for _round in 0..3 {
            for l in 0..logical {
                s.write(l, 1, true);
            }
        }
        assert!(s.ftl().stats().gc_invocations > 0, "GC must have run");
        assert!(s.verify_sanitized(0, logical), "{policy}: stale version leaked via GC");
        s.ftl().check_invariants();
    }
}

#[test]
fn desoldered_image_is_equally_sealed() {
    let mut s = ssd(SanitizePolicy::evanesco());
    let tags = s.write(0, 4, true);
    s.trim(0, 4);
    let attacker = Attacker::new();
    // Steal every chip and scan each image exhaustively.
    let images: Vec<_> = s.device_mut().chips().to_vec();
    for chip in images {
        let mut image = attacker.desolder(&chip);
        for &t in &tags {
            assert!(!attacker.exhaustive_page_scan(&mut image, t));
        }
    }
}

#[test]
fn insec_files_opt_out_and_pay_nothing() {
    let mut s = ssd(SanitizePolicy::evanesco());
    s.write(0, 4, false); // O_INSEC
    s.trim(0, 4);
    let r = s.result();
    assert_eq!(r.plocks + r.blocks_locked, 0, "insecure data must not be locked");
}

#[test]
fn mixed_security_only_locks_secured_pages() {
    let mut s = ssd(SanitizePolicy::evanesco());
    s.write(0, 2, true);
    s.write(2, 2, false);
    s.trim(0, 4);
    let r = s.result();
    assert_eq!(r.plocks, 2, "exactly the two secured pages are pLocked");
    assert!(s.verify_sanitized(0, 2));
}

#[test]
fn whole_block_delete_uses_single_block() {
    let mut s = ssd(SanitizePolicy::evanesco());
    let ppb = s.config().ftl.geometry.pages_per_block() as u64;
    let n = 2 * ppb; // one full block per chip
    s.write(0, n, true);
    s.trim(0, n);
    let r = s.result();
    assert_eq!(r.blocks_locked, 2, "one bLock per fully-dead block");
    assert_eq!(r.plocks, 0);
    assert!(s.verify_sanitized(0, n));
}

#[test]
fn locked_data_returns_none_through_host_reads_too() {
    // Not only the attacker: a host read of a trimmed LPA returns nothing.
    let mut s = ssd(SanitizePolicy::evanesco());
    s.write(0, 1, true);
    s.trim(0, 1);
    assert_eq!(s.read(0, 1), vec![None]);
}

#[test]
fn erase_recycles_locked_blocks_for_new_data() {
    // Locks must not leak capacity: after deleting everything, the SSD can
    // be refilled completely.
    let mut s = ssd(SanitizePolicy::evanesco());
    let logical = s.logical_pages();
    for l in 0..logical {
        s.write(l, 1, true);
    }
    s.trim(0, logical);
    for l in 0..logical {
        s.write(l, 1, true);
    }
    assert!(s.verify_sanitized(0, logical));
    s.ftl().check_invariants();
}

//! Bit-identical checkpoint/resume: the differential resume-equivalence
//! suite.
//!
//! [`Emulator::save_checkpoint`] serializes the *complete* device state —
//! NAND cells, flag intent, physical flag voltages, wear counters, FTL
//! tables, coalesce queue, grown-bad blocks, busy timelines, the
//! simulated clock, fault-model draw ordinals, RNG stream positions,
//! latency histograms, gauges and the telemetry ring — into one
//! versioned, self-describing blob. The contract pinned down here: a run
//! that stops at an arbitrary host-op boundary, serializes, rebuilds the
//! emulator from the bytes ([`Emulator::restore_checkpoint`]) and
//! continues is **indistinguishable, byte for byte**, from the run that
//! never stopped:
//!
//! * every post-resume scheduled op result is identical at every queue
//!   depth, across all five sanitization policies, with fault storms on;
//! * the final [`RunResult`], Prometheus scrape, exposure-ledger report
//!   and re-serialized checkpoint are identical;
//! * the golden fixture under `tests/data/` keeps the on-disk format
//!   honest, and damaged checkpoints (unknown version, truncation) fail
//!   with typed errors — never a panic.

use evanesco::core::fault::FaultConfig;
use evanesco::ftl::SanitizePolicy;
use evanesco::nand::snapshot::{Dec, Enc, SnapshotError};
use evanesco::nand::timing::Nanos;
use evanesco::ssd::{Emulator, HostOp, OpResult, SsdConfig};
use evanesco::workloads::generate::generate;
use evanesco::workloads::ledger::ExposureLedger;
use evanesco::workloads::trace::TraceOp;
use evanesco::workloads::WorkloadSpec;
use proptest::prelude::*;

fn policies() -> [SanitizePolicy; 5] {
    [
        SanitizePolicy::none(),
        SanitizePolicy::evanesco(),
        SanitizePolicy::evanesco_no_block(),
        SanitizePolicy::erase_based(),
        SanitizePolicy::scrub(),
    ]
}

/// A telemetry-enabled device under test (the checkpoint must carry the
/// gauges and the windowed ring too, not just the simulation core).
fn device(cfg: SsdConfig, policy: SanitizePolicy) -> Emulator {
    let mut ssd = Emulator::new(cfg, policy);
    ssd.enable_gauges();
    ssd.enable_timeseries(Nanos::from_micros(200), 64);
    ssd
}

fn sched_op(logical: u64) -> impl Strategy<Value = HostOp> {
    let max_run = 6u64;
    prop_oneof![
        4 => (0..logical - max_run, 1..=max_run, any::<bool>())
            .prop_map(|(lpa, npages, secure)| HostOp::Write { lpa, npages, secure }),
        2 => (0..logical - max_run, 1..=max_run)
            .prop_map(|(lpa, npages)| HostOp::Read { lpa, npages }),
        1 => (0..logical - max_run, 1..=max_run)
            .prop_map(|(lpa, npages)| HostOp::Trim { lpa, npages }),
    ]
}

/// Everything the host (and an operator scraping metrics) can observe
/// at the end of a run.
fn observables(ssd: &Emulator) -> (String, String, Vec<u8>) {
    (format!("{:?}", ssd.result()), ssd.prometheus_scrape(), ssd.save_checkpoint())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The headline differential oracle: over random (workload, policy,
    /// queue depth, fault seed, cut point), checkpointing after batch k
    /// and resuming from the bytes replays the remaining batches with
    /// identical per-op results and ends in an identical device.
    #[test]
    fn checkpoint_at_k_then_resume_equals_uninterrupted(
        ops in proptest::collection::vec(sched_op(600), 4..60),
        policy_i in 0usize..5,
        qd in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
        severity in 0.0f64..0.5,
        fault_seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut cfg = SsdConfig::tiny_for_tests();
        if severity >= 0.05 {
            cfg.ftl.faults = FaultConfig::storm(severity, fault_seed);
        }
        let policy = policies()[policy_i];
        let batches: Vec<&[HostOp]> = ops.chunks(8).collect();
        let cut = ((batches.len() as f64) * cut_frac) as usize;

        // Control arm: never stops.
        let mut a = device(cfg, policy);
        let mut a_results: Vec<Vec<OpResult>> = Vec::new();
        for b in &batches {
            a_results.push(a.run_scheduled(b, qd).results);
        }

        // Resumed arm: same batches, but the process "dies" after batch
        // `cut` — only the checkpoint bytes survive.
        let mut em = device(cfg, policy);
        let mut b_results: Vec<Vec<OpResult>> = Vec::new();
        for b in &batches[..cut] {
            b_results.push(em.run_scheduled(b, qd).results);
        }
        let bytes = em.save_checkpoint();
        drop(em);
        let mut em = Emulator::restore_checkpoint(&bytes)
            .expect("a checkpoint this test just wrote must restore");
        for b in &batches[cut..] {
            b_results.push(em.run_scheduled(b, qd).results);
        }

        prop_assert_eq!(&a_results, &b_results, "per-op results diverged after resume");
        prop_assert_eq!(observables(&a), observables(&em));
    }

    /// The same oracle at file level: a workload trace with the live
    /// exposure ledger attached, cut anywhere (including inside the
    /// prefill). Both the device checkpoint *and* the serialized ledger
    /// cross the boundary; the final Table-1 report must not notice.
    #[test]
    fn ledger_attribution_survives_a_mid_trace_resume(
        spec_i in 0usize..4,
        policy_i in 0usize..5,
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let specs = [
            WorkloadSpec::mobile(),
            WorkloadSpec::mail_server(),
            WorkloadSpec::db_server(),
            WorkloadSpec::file_server(),
        ];
        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.track_tags = false;
        cfg.stale_audit = false;
        let policy = policies()[policy_i];
        let logical = Emulator::new(cfg, policy).logical_pages();
        let trace = generate(&specs[spec_i], logical, 250, seed);
        let stream: Vec<&TraceOp> = trace.prefill.iter().chain(&trace.ops).collect();
        let cut = ((stream.len() as f64) * cut_frac) as usize;

        // Control arm.
        let mut a = device(cfg, policy);
        let mut a_lg = ExposureLedger::new();
        for op in &stream {
            apply_with_ledger(&mut a, &mut a_lg, op);
        }

        // Resumed arm: both the device and the ledger travel as bytes.
        let mut em = device(cfg, policy);
        let mut lg = ExposureLedger::new();
        for op in &stream[..cut] {
            apply_with_ledger(&mut em, &mut lg, op);
        }
        let dev_bytes = em.save_checkpoint();
        let mut enc = Enc::new();
        lg.encode_state(&mut enc);
        let lg_bytes = enc.into_bytes();
        drop((em, lg));
        let mut em = Emulator::restore_checkpoint(&dev_bytes).expect("device restore");
        let mut dec = Dec::new(&lg_bytes);
        let mut lg = ExposureLedger::decode_state(&mut dec).expect("ledger restore");
        dec.finish().expect("no trailing ledger bytes");
        for op in &stream[cut..] {
            apply_with_ledger(&mut em, &mut lg, op);
        }

        prop_assert_eq!(
            format!("{:?}", a_lg.report(logical)),
            format!("{:?}", lg.report(logical)),
            "exposure attribution diverged after resume"
        );
        prop_assert_eq!(observables(&a), observables(&em));
    }
}

fn apply_with_ledger(ssd: &mut Emulator, lg: &mut ExposureLedger, op: &TraceOp) {
    match *op {
        TraceOp::Write { file, lpa, npages, secure, overwrite } => {
            lg.before_write(file, lpa, npages, overwrite);
            ssd.write_with(lg, lpa, npages, secure);
        }
        TraceOp::Read { lpa, npages } => {
            ssd.read(lpa, npages);
        }
        TraceOp::Trim { file, lpa, npages } => {
            lg.before_trim(file, lpa, npages);
            ssd.trim_with(lg, lpa, npages);
        }
    }
}

// ---------------------------------------------------------------------------
// Golden format: the checked-in fixtures pin the on-disk byte layouts.
// `checkpoint_v2.ckpt` is the current CRC-framed format and must
// round-trip byte-identically; `checkpoint_v1.ckpt` is the frozen
// format-1 blob (no section frames) and must keep *decoding* via the
// legacy path forever, but re-encodes as format 2.
// ---------------------------------------------------------------------------

const GOLDEN_V1: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/checkpoint_v1.ckpt");
const GOLDEN_V2: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/checkpoint_v2.ckpt");

/// The fixed script behind the golden fixture. Deterministic: the same
/// library version always produces the same bytes.
fn golden_device() -> Emulator {
    let mut ssd = device(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
    let mut x = 0xE5CAu64;
    for _ in 0..60 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let lpa = x % 300;
        match x % 7 {
            0..=3 => {
                let _ = ssd.write(lpa, 1 + x % 3, !x.is_multiple_of(4));
            }
            4 => ssd.trim(lpa, 1 + x % 3),
            _ => {
                let _ = ssd.read(lpa, 1 + x % 3);
            }
        }
    }
    ssd.sample_timeseries_now();
    ssd
}

/// Regenerates the format-2 fixture. Run after an *intentional, reviewed*
/// format change (bump the checkpoint version first):
/// `cargo test --release --test checkpoint_resume regen -- --ignored`
#[test]
#[ignore = "writes the golden fixture; run only on a reviewed format change"]
fn regen_golden_fixture() {
    std::fs::write(GOLDEN_V2, golden_device().save_checkpoint()).expect("write fixture");
}

/// The current encoder still produces the checked-in format-2 bytes, and
/// the decoder round-trips them into a device that re-encodes identically.
#[test]
fn golden_fixture_round_trips_byte_identically() {
    let fixture = std::fs::read(GOLDEN_V2).expect("checked-in fixture exists");
    assert_eq!(
        golden_device().save_checkpoint(),
        fixture,
        "the checkpoint byte format changed; if intentional, bump the checkpoint \
         version and regenerate the fixture (see regen_golden_fixture)"
    );
    let restored = Emulator::restore_checkpoint(&fixture).expect("fixture restores");
    assert_eq!(restored.save_checkpoint(), fixture, "restore/re-encode must be the identity");
    assert!(restored.result().host_ops > 0, "the fixture device did real work");
}

/// Format-1 blobs written before the CRC-framed layout keep decoding via
/// the legacy path, land in exactly the state the uninterrupted device
/// would be in, and re-encode as (stable) format 2.
#[test]
fn legacy_v1_fixture_still_decodes_into_the_same_device() {
    let fixture = std::fs::read(GOLDEN_V1).expect("checked-in v1 fixture exists");
    let restored = Emulator::restore_checkpoint(&fixture).expect("v1 fixture restores");
    assert_eq!(
        restored.save_checkpoint(),
        golden_device().save_checkpoint(),
        "a restored v1 device must re-encode exactly like the uninterrupted one"
    );
    assert!(restored.result().host_ops > 0, "the fixture device did real work");
}

/// A device restored from the golden fixture serves reads out of its
/// rebuilt payload pool and keeps operating: write/read/trim after
/// restore behave exactly as on the never-checkpointed device. This is
/// the behavioural (not just byte-equality) check that the pooled page
/// store and dense ledger decode into *working* state.
#[test]
fn restored_golden_device_serves_reads_and_keeps_working() {
    let fixture = std::fs::read(GOLDEN_V2).expect("checked-in fixture exists");
    let mut restored = Emulator::restore_checkpoint(&fixture).expect("fixture restores");
    let mut fresh = golden_device();
    // Same follow-on script on both; every op result must match.
    for lpa in 0..40u64 {
        assert_eq!(restored.read(lpa, 2), fresh.read(lpa, 2), "read {lpa} diverged");
        if lpa % 3 == 0 {
            assert_eq!(
                restored.write(lpa, 1, true),
                fresh.write(lpa, 1, true),
                "write {lpa} diverged"
            );
        }
        if lpa % 7 == 0 {
            restored.trim(lpa, 1);
            fresh.trim(lpa, 1);
        }
    }
    assert_eq!(
        restored.save_checkpoint(),
        fresh.save_checkpoint(),
        "post-resume state diverged from the uninterrupted device"
    );
}

/// A checkpoint from a future (unknown) format version is rejected with
/// a typed, descriptive error — not a panic, not garbage state.
#[test]
fn unknown_version_fails_with_a_clear_error() {
    let mut bytes = std::fs::read(GOLDEN_V2).expect("checked-in fixture exists");
    // Layout: 8-byte magic, then the little-endian u32 format version.
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    match Emulator::restore_checkpoint(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, u32::MAX);
            assert!(supported >= 1);
        }
        other => panic!("want UnsupportedVersion, got {other:?}"),
    }
    let msg = Emulator::restore_checkpoint(&bytes).unwrap_err().to_string();
    assert!(msg.contains("version"), "error must name the problem: {msg}");
}

/// Truncation at *any* byte boundary fails gracefully with a typed
/// error; a wrong magic is its own error.
#[test]
fn truncated_or_mislabeled_checkpoints_fail_without_panicking() {
    let bytes = std::fs::read(GOLDEN_V2).expect("checked-in fixture exists");
    for len in [0, 4, 11, 12, 100, bytes.len() / 2, bytes.len() - 1] {
        let err = Emulator::restore_checkpoint(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes must fail"));
        assert!(!err.to_string().is_empty());
    }
    let mut wrong = bytes;
    wrong[0] ^= 0xFF;
    assert!(matches!(Emulator::restore_checkpoint(&wrong), Err(SnapshotError::BadMagic)));
}

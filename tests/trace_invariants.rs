//! Observability-layer invariants, end to end through the public API.
//!
//! * **span accounting** — for every traced request, the derived segments
//!   tile `[submit, end)` exactly, so their durations sum to the recorded
//!   end-to-end latency, at queue depths 1, 8 and 32;
//! * **serial resources** — device-level trace events never overlap on
//!   one chip or one channel (they mirror real `Resource` reservations);
//! * **export** — the chrome trace-event JSON parses and validates
//!   against the checked-in schema, and tracing never changes simulated
//!   results;
//! * **read latency** — the histogram is populated on read-bearing
//!   workloads at qd 1 and qd 8 (the bug this PR fixes discarded it);
//! * **gauges** — a sanitizing policy holds live T_insecure at zero
//!   while the no-sanitization baseline accrues it;
//! * **stale audit log** — gated by config, compactable, and still
//!   sufficient for `verify_sanitized`.

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::trace::ResourceId;
use evanesco::ssd::{validate_chrome_trace, Emulator, HostOp, SsdConfig};
use std::collections::HashMap;

const SCHEMA: &str = include_str!("data/trace_schema.json");

/// A deterministic mixed workload with plenty of reads and overwrites.
fn mixed_ops(logical: u64, n: usize) -> Vec<HostOp> {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x >> 33
    };
    (0..n)
        .map(|_| {
            let lpa = step() % (logical - 4);
            let npages = 1 + step() % 4;
            match step() % 8 {
                0..=3 => HostOp::Write { lpa, npages, secure: step() % 2 == 0 },
                4..=6 => HostOp::Read { lpa, npages },
                _ => HostOp::Trim { lpa, npages },
            }
        })
        .collect()
}

fn traced_run(qd: usize) -> Emulator {
    let cfg = SsdConfig::tiny_for_tests();
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    ssd.enable_gauges();
    ssd.enable_tracing(1 << 14);
    let ops = mixed_ops(ssd.logical_pages(), 400);
    ssd.run_scheduled(&ops, qd);
    ssd.flush_coalesced_locks();
    ssd
}

#[test]
fn spans_sum_to_e2e_at_every_queue_depth() {
    for qd in [1usize, 8, 32] {
        let ssd = traced_run(qd);
        let rec = ssd.trace().expect("tracing enabled");
        assert!(rec.recorded() > 0, "qd {qd}: nothing traced");
        for t in rec.traces() {
            let sum: u64 = t.segments.iter().map(|s| s.dur().0).sum();
            assert_eq!(
                sum,
                t.e2e().0,
                "qd {qd}: request {} ({:?}) segments do not tile its window",
                t.id,
                t.kind
            );
            // Segments are contiguous and ordered, starting at submit.
            let mut cursor = t.submit;
            for s in &t.segments {
                assert_eq!(s.start, cursor, "qd {qd}: gap or overlap in request {}", t.id);
                assert!(s.end > s.start, "qd {qd}: empty segment in request {}", t.id);
                cursor = s.end;
            }
            assert_eq!(cursor, t.end, "qd {qd}: segments stop short in request {}", t.id);
        }
    }
}

#[test]
fn device_events_never_overlap_on_a_serial_resource() {
    let ssd = traced_run(8);
    let rec = ssd.trace().expect("tracing enabled");
    let mut by_resource: HashMap<ResourceId, Vec<(u64, u64)>> = HashMap::new();
    for t in rec.traces() {
        for e in &t.events {
            by_resource.entry(e.resource).or_default().push((e.start.0, e.end.0));
        }
    }
    assert!(!by_resource.is_empty(), "no device events recorded");
    for (res, mut windows) in by_resource {
        windows.sort_unstable();
        for w in windows.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "{}: [{}, {}) overlaps [{}, {})",
                res.name(),
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }
}

#[test]
fn chrome_export_validates_and_tracing_is_timing_neutral() {
    let cfg = SsdConfig::tiny_for_tests();
    let ops = mixed_ops(64, 300);

    let mut plain = Emulator::new(cfg, SanitizePolicy::evanesco());
    plain.run_scheduled(&ops, 8);

    let mut traced = Emulator::new(cfg, SanitizePolicy::evanesco());
    traced.enable_gauges();
    traced.enable_tracing(1 << 14);
    traced.run_scheduled(&ops, 8);

    let (a, b) = (plain.result(), traced.result());
    assert_eq!(a.sim_time, b.sim_time, "tracing changed simulated time");
    assert_eq!(a.host_ops, b.host_ops);
    assert_eq!(a.ftl, b.ftl, "tracing changed FTL behaviour");

    let json = traced.take_trace().unwrap().to_chrome_json();
    validate_chrome_trace(&json, SCHEMA).expect("export matches the checked-in schema");
}

#[test]
fn read_latency_is_recorded_at_qd1_and_qd8() {
    for qd in [1usize, 8] {
        let cfg = SsdConfig::tiny_for_tests();
        let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
        let logical = ssd.logical_pages();
        let mut ops = Vec::new();
        for l in (0..32).step_by(4) {
            ops.push(HostOp::Write { lpa: l % logical, npages: 4, secure: false });
        }
        for l in (0..32).step_by(2) {
            ops.push(HostOp::Read { lpa: l % logical, npages: 2 });
        }
        ssd.run_scheduled(&ops, qd);
        let reads = ssd.result().latency.read;
        assert!(reads.count() > 0, "qd {qd}: no read latency samples");
        assert!(reads.max().0 > 0, "qd {qd}: read latency all zero");
        assert!(
            reads.percentile(50.0) <= reads.percentile(99.0),
            "qd {qd}: percentiles not monotone"
        );
        // The scrape renders the same histogram.
        let scrape = ssd.prometheus_scrape();
        assert!(
            scrape.contains(&format!(
                "evanesco_latency_seconds_count{{op=\"read\"}} {}",
                reads.count()
            )),
            "scrape disagrees with the histogram:\n{scrape}"
        );
    }
}

#[test]
fn gauges_separate_sanitizing_from_baseline_policies() {
    let run = |policy: SanitizePolicy| {
        let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), policy);
        ssd.enable_gauges();
        // Secure writes, then overwrite them all: every old version is a
        // deleted secured page until something sanitizes it.
        ssd.write(0, 16, true);
        ssd.write(0, 16, true);
        for l in 16..48 {
            ssd.write(l, 1, false);
        }
        ssd.gauges().unwrap().snapshot()
    };

    let secured = run(SanitizePolicy::evanesco());
    assert_eq!(secured.invalid_secured, 0, "evanesco leaves no recoverable versions");
    assert_eq!(secured.insecure_ticks, 0, "evanesco holds T_insecure at zero");
    assert!(secured.sanitized_immediately >= 16);

    let exposed = run(SanitizePolicy::none());
    assert!(exposed.invalid_secured > 0, "baseline leaves recoverable versions");
    assert!(exposed.insecure_ticks > 0, "baseline accrues insecure time");
    assert!(exposed.vaf > 0.0);
    assert!(exposed.t_insecure(1024) > secured.t_insecure(1024));
}

#[test]
fn stale_audit_log_is_gated_and_compactable() {
    // Auditing on (the test default): the log grows, compaction drops
    // sanitized entries, and verification still works afterwards.
    let mut audited = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
    audited.write(0, 8, true);
    audited.write(0, 8, true); // overwrite: 8 stale secured versions
    assert!(audited.stale_len() >= 8, "audit log should grow on overwrite");
    assert!(audited.verify_sanitized(0, 8));
    let dropped = audited.compact_stale();
    assert!(dropped >= 8, "sanitized entries should compact away");
    assert_eq!(audited.stale_len(), 0);
    assert!(audited.verify_sanitized(0, 8), "verification survives compaction");

    // Auditing off: the log must not grow at all.
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.stale_audit = false;
    let mut bare = Emulator::new(cfg, SanitizePolicy::evanesco());
    bare.write(0, 8, true);
    bare.write(0, 8, true);
    bare.trim(0, 8);
    assert_eq!(bare.stale_len(), 0, "stale log must stay empty without stale_audit");
}

#[test]
#[should_panic(expected = "stale_audit")]
fn verify_without_audit_log_panics() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.stale_audit = false;
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    ssd.write(0, 4, true);
    ssd.verify_sanitized(0, 4);
}

mod eviction {
    //! Ring-eviction invariants of the [`TraceRecorder`] itself, driven
    //! through its public `record` entry point: every recorded trace is
    //! either retained or counted as dropped, and the per-kind span-time
    //! aggregates accumulate at record time — so they are preserved
    //! exactly across ring wrap, no matter how small the ring.

    use evanesco::ftl::OpCause;
    use evanesco::nand::timing::Nanos;
    use evanesco::ssd::trace::{ReqKind, ResourceId, SpanKind, TraceEvent, TraceRecorder};
    use proptest::prelude::*;

    const KINDS: [ReqKind; 5] =
        [ReqKind::Write, ReqKind::Read, ReqKind::Trim, ReqKind::Recovery, ReqKind::Maintenance];
    const EVENT_KINDS: [SpanKind; 6] = [
        SpanKind::Xfer,
        SpanKind::Read,
        SpanKind::Program,
        SpanKind::PLock,
        SpanKind::BLock,
        SpanKind::Erase,
    ];
    const CAUSES: [OpCause; 4] = [OpCause::Host, OpCause::Gc, OpCause::Sanitize, OpCause::Retry];

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn recorded_splits_into_retained_plus_dropped_and_span_totals_survive_wrap(
            capacity in 1usize..12,
            n in 1usize..100,
            seed in 0u64..u64::MAX,
        ) {
            let mut rec = TraceRecorder::new(capacity);
            let mut x = seed | 1;
            let mut step = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x >> 32
            };
            // Expected aggregates, accumulated independently from each
            // trace's derived segments the moment it is recorded (i.e.
            // before any later eviction can touch it).
            let mut expect = std::collections::HashMap::new();
            for i in 0..n {
                let submit = Nanos(i as u64 * 10_000);
                let nev = (step() % 4) as usize;
                let mut t = submit.0 + 1 + step() % 500;
                let events: Vec<TraceEvent> = (0..nev)
                    .map(|_| {
                        let start = t;
                        t += 1 + step() % 400;
                        let ev = TraceEvent {
                            kind: EVENT_KINDS[(step() % 6) as usize],
                            cause: CAUSES[(step() % 4) as usize],
                            resource: if step() % 2 == 0 {
                                ResourceId::Chip((step() % 4) as usize)
                            } else {
                                ResourceId::Channel((step() % 2) as usize)
                            },
                            start: Nanos(start),
                            end: Nanos(t),
                        };
                        t += step() % 100; // maybe leave a wait gap
                        ev
                    })
                    .collect();
                let end = Nanos(t.max(submit.0 + 1 + step() % 200));
                let trace = rec.record(
                    KINDS[i % KINDS.len()],
                    (step() % 1024) as evanesco::ftl::Lpa,
                    1 + step() % 8,
                    step() % 2 == 0,
                    submit,
                    Nanos(submit.0 + step() % 50),
                    end,
                    events,
                );
                for s in &trace.segments {
                    *expect.entry(s.kind).or_insert(Nanos::ZERO) += s.dur();
                }
            }

            let retained = rec.traces().count() as u64;
            prop_assert_eq!(rec.recorded(), n as u64);
            prop_assert_eq!(rec.recorded(), retained + rec.dropped());
            prop_assert_eq!(retained as usize, n.min(capacity));
            prop_assert_eq!(rec.dropped(), n.saturating_sub(capacity) as u64);
            // The ring keeps the most recent traces, in order.
            let ids: Vec<u64> = rec.traces().map(|t| t.id).collect();
            let first = (n - n.min(capacity)) as u64;
            prop_assert_eq!(ids, (first..n as u64).collect::<Vec<_>>());
            // Aggregates match the independent accumulation exactly,
            // even though most traces were evicted from the ring.
            for kind in SpanKind::ALL {
                prop_assert_eq!(
                    rec.span_total(kind),
                    expect.get(&kind).copied().unwrap_or(Nanos::ZERO),
                    "span_total({}) diverged across ring wrap",
                    kind.label()
                );
            }
        }
    }
}

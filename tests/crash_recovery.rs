//! Crash-consistency properties: power-loss fault injection against every
//! sanitization policy.
//!
//! Each property case replays a random host trace twice: once undisturbed
//! to measure its simulated horizon, then again on a fresh device with a
//! power cut armed at a random fraction of that horizon. After
//! [`Emulator::recover`] the harness checks the crash contract:
//!
//! * **C1/C2 under crash** — no acknowledged-deleted or superseded secured
//!   tag is recoverable, even by de-soldering every chip;
//! * **durability** — every acknowledged write or trim survives intact;
//! * **atomicity** — pages under the one interrupted request read either
//!   their old content or nothing, never a half-written mix, and a
//!   vanished old secured version must have been sanitized, not merely
//!   unmapped;
//! * **orphan sealing** — secure payloads the host was never owed (torn
//!   mid-program) are sanitized during recovery;
//! * the device serves and acknowledges new work after recovery, and the
//!   recovery metrics reach the run summary.
//!
//! Alongside the properties sit the three hand-written worst cases from
//! the paper's recovery discussion: a cut mid-`pLock`, a cut mid-GC-copy,
//! and a cut mid-erase of a `bLock`ed block — plus a byte-for-byte
//! determinism check over a seeded `FaultPlan`.

use evanesco::core::chip::EvanescoChip;
use evanesco::ftl::observer::NullObserver;
use evanesco::ftl::SanitizePolicy;
use evanesco::nand::geometry::{BlockId, Ppa};
use evanesco::nand::timing::Nanos;
use evanesco::ssd::{Emulator, FaultPlan, SsdConfig};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// A host operation for crash testing.
#[derive(Debug, Clone)]
enum HostOp {
    Write { lpa: u64, n: u64, secure: bool },
    Trim { lpa: u64, n: u64 },
    Read { lpa: u64, n: u64 },
}

fn host_op(logical: u64) -> impl Strategy<Value = HostOp> {
    let max_run = 8u64;
    prop_oneof![
        4 => (0..logical - max_run, 1..=max_run, any::<bool>())
            .prop_map(|(lpa, n, secure)| HostOp::Write { lpa, n, secure }),
        2 => (0..logical - max_run, 1..=max_run).prop_map(|(lpa, n)| HostOp::Trim { lpa, n }),
        1 => (0..logical - max_run, 1..=max_run).prop_map(|(lpa, n)| HostOp::Read { lpa, n }),
    ]
}

fn policies() -> [SanitizePolicy; 5] {
    [
        SanitizePolicy::none(),
        SanitizePolicy::evanesco(),
        SanitizePolicy::evanesco_no_block(),
        SanitizePolicy::erase_based(),
        SanitizePolicy::scrub(),
    ]
}

fn issue(ssd: &mut Emulator, logical: u64, op: &HostOp) {
    match *op {
        HostOp::Write { lpa, n, secure } => {
            let _ = ssd.write_tracked(lpa % (logical - n), n, secure);
        }
        HostOp::Trim { lpa, n } => {
            let _ = ssd.trim_with(&mut NullObserver, lpa % (logical - n), n);
        }
        HostOp::Read { lpa, n } => {
            let _ = ssd.read(lpa % (logical - n), n);
        }
    }
}

/// Replays `ops` with a power cut at `cut_frac` of the trace's measured
/// horizon and checks the full crash contract for `policy`.
fn run_crash_check(policy: SanitizePolicy, ops: &[HostOp], cut_frac: f64) {
    run_crash_check_at(policy, ops, cut_frac, None);
}

/// [`run_crash_check`] with an optional campaign-style resume boundary:
/// at op index `resume_at` the device is serialized, torn down, and
/// rebuilt from the checkpoint bytes before the trace continues — and
/// the power cut is armed only then, so it lands in "segment 2" of the
/// chained run. The crash contract must not notice the boundary.
fn run_crash_check_at(
    policy: SanitizePolicy,
    ops: &[HostOp],
    cut_frac: f64,
    resume_at: Option<usize>,
) {
    let cfg = SsdConfig::tiny_for_tests();

    // Horizon run: same trace, no cut. Replays are deterministic, so the
    // crash run below is byte-identical up to the cut instant.
    let mut probe = Emulator::new(cfg, policy);
    let logical = probe.logical_pages();
    let mut t_resume = Nanos(0);
    for (i, op) in ops.iter().enumerate() {
        if resume_at == Some(i) {
            t_resume = probe.result().sim_time;
        }
        issue(&mut probe, logical, op);
    }
    let horizon = probe.result().sim_time;
    if horizon < Nanos(2) || horizon.0 <= t_resume.0 + 1 {
        return; // Nothing (left) to interrupt.
    }
    let cut = Nanos(
        (t_resume.0 + ((horizon.0 - t_resume.0) as f64 * cut_frac) as u64).max(t_resume.0 + 1),
    );

    let mut ssd = Emulator::new(cfg, policy);
    if resume_at.is_none() {
        ssd.power_cut_at(cut);
    }

    // Shadow of what the device owes the host.
    let mut current: HashMap<u64, (u64, bool)> = HashMap::new(); // acked tag + secure flag
    let mut dead_secure: HashSet<u64> = HashSet::new(); // acked-superseded/deleted secured tags
    let mut uncertain: HashSet<u64> = HashSet::new(); // lpas under the interrupted request
    let mut unacked_secure: HashSet<u64> = HashSet::new(); // secure payloads never owed

    // Advisory deletes: a trim of insecure data (or any trim under the
    // baseline policy) leaves no on-flash record, so the old version may
    // legitimately resurrect across a crash.
    let mut ghost: HashMap<u64, u64> = HashMap::new();

    for (i, op) in ops.iter().enumerate() {
        if resume_at == Some(i) {
            // The campaign boundary: only the checkpoint bytes survive
            // the process restart; the cut threatens the second segment.
            let bytes = ssd.save_checkpoint();
            ssd = Emulator::restore_checkpoint(&bytes).expect("mid-campaign checkpoint restores");
            ssd.power_cut_at(cut);
        }
        match *op {
            HostOp::Write { lpa, n, secure } => {
                let lpa = lpa % (logical - n);
                let live_before = !ssd.powered_off();
                let tracked = ssd.write_tracked(lpa, n, secure);
                let first_unacked = tracked.iter().position(|&(_, a)| !a);
                for (i, (tag, acked)) in tracked.into_iter().enumerate() {
                    let l = lpa + i as u64;
                    if acked {
                        // The new version's higher on-flash sequence number
                        // supersedes any resurrectable older one.
                        ghost.remove(&l);
                        if let Some((old, was_secure)) = current.insert(l, (tag, secure)) {
                            if was_secure {
                                dead_secure.insert(old);
                            }
                        }
                    } else if live_before && first_unacked == Some(i) {
                        // The one page whose submission the cut caught
                        // mid-flight; later pages were rejected outright
                        // and leave the shadow expectation unchanged.
                        uncertain.insert(l);
                        if secure {
                            unacked_secure.insert(tag);
                        }
                    }
                }
            }
            HostOp::Trim { lpa, n } => {
                let lpa = lpa % (logical - n);
                let live_before = !ssd.powered_off();
                let acked = ssd.trim_with(&mut NullObserver, lpa, n);
                if acked {
                    for i in 0..n {
                        let l = lpa + i;
                        if let Some((old, was_secure)) = current.remove(&l) {
                            if was_secure && policy.is_immediate() {
                                // Sanitized on flash: durably gone.
                                dead_secure.insert(old);
                            } else {
                                ghost.insert(l, old);
                            }
                        }
                    }
                } else if live_before {
                    // Interrupted trim: each page may or may not have been
                    // invalidated before the cut; the host must re-issue.
                    for i in 0..n {
                        uncertain.insert(lpa + i);
                    }
                }
            }
            HostOp::Read { lpa, n } => {
                let lpa = lpa % (logical - n);
                let live_before = !ssd.powered_off();
                let got = ssd.read(lpa, n);
                if live_before && !ssd.powered_off() {
                    // The whole read completed pre-cut: it must match the
                    // acked shadow exactly.
                    for (i, g) in got.into_iter().enumerate() {
                        let l = lpa + i as u64;
                        assert_eq!(
                            g,
                            current.get(&l).map(|&(t, _)| t),
                            "{policy}: pre-cut read mismatch at lpa {l}"
                        );
                    }
                }
            }
        }
    }

    let fired = ssd.powered_off();
    let report = ssd.recover();
    ssd.ftl().check_invariants();
    if !fired {
        // The cut landed in dead air after the last device command; the
        // scan must find a perfectly consistent device.
        assert_eq!(report.torn_writes, 0, "{policy}: torn write without a fired cut");
        assert!(uncertain.is_empty());
    }

    let recoverable = ssd.attacker_recoverable_tags();
    if policy.is_immediate() {
        // C1/C2 survive the crash: nothing the host deleted (and was
        // acked for) is recoverable, and neither is any secure payload
        // the host was never owed (a torn orphan).
        for t in &dead_secure {
            assert!(!recoverable.contains(t), "{policy}: stale secured tag {t} survived the crash");
        }
        for t in &unacked_secure {
            assert!(!recoverable.contains(t), "{policy}: unacked secure orphan {t} recoverable");
        }
    }

    // Durability + atomicity of the recovered mapping.
    let mut lpas: Vec<u64> = current
        .keys()
        .copied()
        .chain(uncertain.iter().copied())
        .chain(ghost.keys().copied())
        .collect();
    lpas.sort_unstable();
    lpas.dedup();
    for l in lpas {
        let got = ssd.read(l, 1)[0];
        let expect = current.get(&l).map(|&(t, _)| t);
        let resurrected = ghost.get(&l).copied(); // advisory delete may undo
        if uncertain.contains(&l) {
            assert!(
                got == expect || got.is_none() || (got.is_some() && got == resurrected),
                "{policy}: interrupted lpa {l} reads {got:?}, want {expect:?} or nothing"
            );
            if got.is_none() && policy.is_immediate() {
                if let Some(&(old, true)) = current.get(&l) {
                    // The interrupted request invalidated the old secured
                    // version before the cut: it must have been sanitized,
                    // not merely unmapped.
                    assert!(
                        !recoverable.contains(&old),
                        "{policy}: lpa {l} old secured tag {old} unmapped but recoverable"
                    );
                }
            }
        } else {
            assert!(
                got == expect || (expect.is_none() && got.is_some() && got == resurrected),
                "{policy}: acked state lost at lpa {l}: {got:?}, want {expect:?}"
            );
        }
    }

    // The device is serviceable again and the metrics made it out.
    assert!(ssd.write_tracked(0, 1, true)[0].1, "{policy}: device dead after recovery");
    ssd.ftl().check_invariants();
    let totals = ssd.result().recovery;
    assert_eq!(totals.recoveries, 1);
    assert_eq!(totals.scanned_pages, report.scanned_pages);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The core crash property, run per policy on every case (≥256 cases
    /// per policy): random traces, a cut at a random point, full contract.
    #[test]
    fn power_cut_anywhere_preserves_the_crash_contract(
        ops in proptest::collection::vec(host_op(2 * 16 * 24), 1..40),
        cut_frac in 0.02f64..0.98
    ) {
        for policy in policies() {
            run_crash_check(policy, &ops, cut_frac);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// A campaign that checkpoints mid-trace, restarts the process from
    /// the bytes, and *then* loses power must satisfy the same crash
    /// contract as the never-checkpointed runs above: acked secure
    /// deletes stay unrecoverable, acked state is durable, interrupted
    /// requests are atomic — across the resume boundary, per policy.
    #[test]
    fn power_cut_after_resume_preserves_the_crash_contract(
        ops in proptest::collection::vec(host_op(2 * 16 * 24), 2..40),
        cut_frac in 0.02f64..0.98,
        resume_frac in 0.0f64..1.0,
    ) {
        let k = (((ops.len() as f64) * resume_frac) as usize).min(ops.len() - 1);
        for policy in policies() {
            run_crash_check_at(policy, &ops, cut_frac, Some(k));
        }
    }
}

// ---------------------------------------------------------------------------
// Hand-written worst cases.
// ---------------------------------------------------------------------------

fn any_torn_page_flag(chip: &EvanescoChip) -> bool {
    let g = *chip.geometry();
    (0..g.blocks)
        .any(|b| (0..g.pages_per_block()).any(|p| chip.page_flag_state(Ppa::new(b, p)).is_torn()))
}

/// Worst case 1: the cut lands inside a `pLock` pulse. The half-charged
/// pAP cells decode with a degraded margin; recovery must detect the torn
/// flag and re-issue the lock before serving reads.
#[test]
fn worst_case_cut_mid_plock_is_relocked() {
    let policy = SanitizePolicy::evanesco();
    let cfg = SsdConfig::tiny_for_tests();

    // Probe: the trim of 2 pages (< block_min_plocks, so the pLock path)
    // opens its lock window at t0.
    let mut probe = Emulator::new(cfg, policy);
    probe.write(0, 8, true);
    let t0 = probe.result().sim_time;
    probe.trim(0, 2);
    let t1 = probe.result().sim_time;
    assert!(t1 > t0);

    // Scan cut instants across the window until one tears a lock pulse.
    let mut hit = None;
    let mut cut = t0 + Nanos::from_micros(10);
    while cut < t1 {
        let mut ssd = Emulator::new(cfg, policy);
        let tags = ssd.write(0, 8, true);
        ssd.power_cut_at(cut);
        let acked = ssd.trim_with(&mut NullObserver, 0, 2);
        if ssd.powered_off()
            && !acked
            && ssd.device_mut().chips_mut().iter().any(any_torn_page_flag)
        {
            hit = Some((ssd, tags));
            break;
        }
        cut += Nanos::from_micros(10);
    }
    let (mut ssd, tags) =
        hit.expect("a 10 µs scan across the trim window must land inside a 100 µs pLock pulse");

    let report = ssd.recover();
    ssd.ftl().check_invariants();
    assert!(report.relocked_pages >= 1, "torn pLock must be re-issued: {report:?}");

    // Each trimmed page is atomically gone-and-sealed or still current.
    let recoverable = ssd.attacker_recoverable_tags();
    let mut sealed = 0;
    for (i, &tag) in tags.iter().take(2).enumerate() {
        match ssd.read(i as u64, 1)[0] {
            None => {
                assert!(
                    !recoverable.contains(&tag),
                    "invalidated page {i} must be sanitized, not just unmapped"
                );
                sealed += 1;
            }
            Some(t) => assert_eq!(t, tag, "un-invalidated page {i} keeps its old content"),
        }
    }
    assert!(sealed >= 1, "the torn lock's page must be sealed after recovery");
    // Untouched neighbours and fresh work are unaffected.
    assert_eq!(ssd.read(2, 1)[0], Some(tags[2]));
    assert!(ssd.write_tracked(0, 1, true)[0].1);
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Worst case 2: the cut lands inside a GC relocation copy. The torn copy
/// must lose the mapping contest to the still-valid original, so every
/// acknowledged page survives with its old content.
#[test]
fn worst_case_cut_mid_gc_copy_keeps_mapping_atomic() {
    let policy = SanitizePolicy::evanesco();
    let cfg = SsdConfig::tiny_for_tests();

    // Churn script: fill the logical space, then hammer a hot set until
    // garbage collection must relocate live pages.
    let logical = Emulator::new(cfg, policy).logical_pages();
    let mut script: Vec<u64> = (0..logical).collect();
    let mut x = 7u64;
    for _ in 0..600 {
        x = lcg(x);
        script.push(x % 64);
    }

    // Probe: find the first host write that triggers GC and its window.
    let mut probe = Emulator::new(cfg, policy);
    let mut window = None;
    for (i, &lpa) in script.iter().enumerate() {
        let g0 = probe.ftl().stats().gc_invocations;
        let t0 = probe.result().sim_time;
        probe.write(lpa, 1, true);
        if probe.ftl().stats().gc_invocations > g0 {
            window = Some((i, g0, t0, probe.result().sim_time));
            break;
        }
    }
    let (idx, gc_before, t0, t1) = window.expect("churn past capacity must trigger GC");
    assert!(t1 > t0);

    // Scan the early 60 % of the window (relocation copies run before the
    // victim erase and the host program) for a cut that tears a copy.
    let mut found = false;
    for k in 1..40u64 {
        let cut = Nanos(t0.0 + (t1.0 - t0.0) * 6 / 10 * k / 40);
        if cut <= t0 {
            continue;
        }
        let mut ssd = Emulator::new(cfg, policy);
        ssd.power_cut_at(cut);
        let mut current: HashMap<u64, u64> = HashMap::new();
        let mut uncertain = None;
        for &lpa in &script[..=idx] {
            let (tag, acked) = ssd.write_tracked(lpa, 1, true)[0];
            if acked {
                current.insert(lpa, tag);
            } else if uncertain.is_none() {
                uncertain = Some(lpa);
            }
        }
        if !ssd.powered_off() {
            continue;
        }
        let gc_started = ssd.ftl().stats().gc_invocations > gc_before;
        let report = ssd.recover();
        if !(gc_started && report.torn_writes >= 1) {
            continue;
        }
        // Confirmed: the cut interrupted a write while GC was copying.
        found = true;
        ssd.ftl().check_invariants();
        for (&lpa, &tag) in &current {
            let got = ssd.read(lpa, 1)[0];
            if uncertain == Some(lpa) {
                assert!(got == Some(tag) || got.is_none(), "interrupted lpa {lpa}: {got:?}");
            } else {
                assert_eq!(got, Some(tag), "acked lpa {lpa} lost across a torn GC copy");
            }
        }
        assert!(ssd.write_tracked(0, 1, true)[0].1);
        break;
    }
    assert!(found, "no scanned cut tore a GC relocation copy");
}

/// Worst case 3: the cut lands inside the 3.5 ms erase of a `bLock`ed
/// block — the paper's flag-decay hazard, where a torn erase can wipe the
/// lock flags before the data. Recovery must detect the torn erase by its
/// blank-check signature and re-erase (reseal) the block.
#[test]
fn worst_case_cut_mid_erase_of_locked_block_reseals_it() {
    let policy = SanitizePolicy::evanesco();
    let cfg = SsdConfig::tiny_for_tests();

    // A contiguous secure file spanning one full block per chip, trimmed:
    // enough pLocks per block that the policy escalates to bLock.
    let block_span = 2 * 24u64; // pages_per_block × chips
    let setup = |ssd: &mut Emulator| {
        ssd.write(0, block_span, true);
        ssd.trim(0, block_span);
    };
    let mut probe = Emulator::new(cfg, policy);
    let trimmed = probe.write(0, block_span, true);
    probe.trim(0, block_span);
    let locked: Vec<(usize, BlockId)> = probe
        .device_mut()
        .chips_mut()
        .iter()
        .enumerate()
        .flat_map(|(ci, chip)| {
            let blocks = chip.geometry().blocks;
            (0..blocks)
                .filter(|&b| chip.block_flag_state(BlockId(b)).reads_locked())
                .map(move |b| (ci, BlockId(b)))
                .collect::<Vec<_>>()
        })
        .collect();
    assert!(!locked.is_empty(), "a fully trimmed secure block must be bLocked");
    let (chip_i, blk) = locked[0];
    let erases_before = probe.device_mut().chips_mut()[chip_i].erase_count(blk);

    // Churn until the dead locked block is reclaimed (lazily erased).
    let mut churn: Vec<u64> = Vec::new();
    let mut x = 11u64;
    for _ in 0..1600 {
        x = lcg(x);
        churn.push(block_span + x % 400);
    }
    let mut window = None;
    for (i, &lpa) in churn.iter().enumerate() {
        let t0 = probe.result().sim_time;
        probe.write(lpa, 1, true);
        if probe.device_mut().chips_mut()[chip_i].erase_count(blk) > erases_before {
            window = Some((i, t0, probe.result().sim_time));
            break;
        }
    }
    let (idx, t0, t1) = window.expect("churn must eventually reclaim the locked block");

    // Scan the window for a cut that tears that block's erase.
    let mut found = false;
    let mut cut = t0 + Nanos::from_micros(50);
    while cut < t1 {
        let mut ssd = Emulator::new(cfg, policy);
        setup(&mut ssd);
        ssd.power_cut_at(cut);
        for &lpa in &churn[..=idx] {
            if ssd.powered_off() {
                break;
            }
            ssd.write(lpa, 1, true);
        }
        cut += Nanos::from_micros(50);
        if !ssd.powered_off() {
            continue;
        }
        let torn =
            ssd.device_mut().chips_mut()[chip_i].block_torn_erase(blk).expect("block id in range");
        if !torn {
            continue;
        }
        found = true;

        let report = ssd.recover();
        ssd.ftl().check_invariants();
        assert!(report.resealed_blocks >= 1, "torn erase must be resealed: {report:?}");
        // The paper's hazard: even if the torn erase decayed the lock
        // flags before wiping the data, none of the block's previously
        // locked secured content is recoverable after recovery.
        let recoverable = ssd.attacker_recoverable_tags();
        for t in &trimmed {
            assert!(!recoverable.contains(t), "trimmed secured tag {t} leaked via torn erase");
        }
        assert!(ssd.verify_sanitized(0, block_span));
        assert!(ssd.write_tracked(0, 1, true)[0].1);
        break;
    }
    assert!(found, "no scanned cut landed inside the locked block's 3.5 ms erase");
}

// ---------------------------------------------------------------------------
// Determinism: same config, same trace, same FaultPlan → byte-identical run.
// ---------------------------------------------------------------------------

#[test]
fn identical_seeded_crash_runs_are_byte_identical() {
    let transcript = || {
        let cfg = SsdConfig::tiny_for_tests();
        let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
        let logical = ssd.logical_pages();
        let mut plan = FaultPlan::from_seed(0xC0FFEE, Nanos::from_micros(120_000), 3);
        let mut out = String::new();
        if let Some(c) = plan.next_cut() {
            ssd.power_cut_at(c);
        }
        let mut x = 1u64;
        for _ in 0..400 {
            x = lcg(x);
            let lpa = x % (logical - 4);
            match x % 8 {
                0..=4 => {
                    for (tag, acked) in ssd.write_tracked(lpa, 1 + x % 4, !x.is_multiple_of(3)) {
                        out.push_str(&format!("w{tag}:{acked};"));
                    }
                }
                5 => {
                    let acked = ssd.trim_with(&mut NullObserver, lpa, 1 + x % 4);
                    out.push_str(&format!("t{lpa}:{acked};"));
                }
                _ => {
                    for g in ssd.read(lpa, 1 + x % 4) {
                        out.push_str(&format!("r{g:?};"));
                    }
                }
            }
            if ssd.powered_off() {
                let report = ssd.recover();
                out.push_str(&format!("{report:?}"));
                if let Some(c) = plan.next_cut() {
                    ssd.power_cut_at(c);
                }
            }
        }
        let mut tags: Vec<u64> = ssd.attacker_recoverable_tags().into_iter().collect();
        tags.sort_unstable();
        out.push_str(&format!("{tags:?}{:?}", ssd.result()));
        out
    };
    let a = transcript();
    assert!(a.contains("recoveries: "), "at least one cut must fire: {a}");
    assert_eq!(a, transcript(), "two identical seeded crash runs diverged");
}

/// Mid-coalesce power cut: the lock-coalescing queue is RAM-only, so
/// `pLock`s deferred while a block drains toward a single `bLock` are
/// *lost* by a power cut — the superseded secured versions they were
/// meant to seal sit decodable on-flash when power returns. The recovery
/// scan's mapping contest must find every such stale secured version and
/// reseal it before the device serves the host again (PR 1's crash
/// contract extended to the coalescing pass of this PR).
#[test]
fn power_cut_with_deferred_coalesced_locks_is_resealed_by_recovery() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.ftl.lock_coalescing = true;
    // A window far wider than the trace: nothing ages out, every deferred
    // lock is still queued (unissued) when the power dies.
    cfg.ftl.coalesce_window = 1_000_000;
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());

    // Fill one block per chip with secured data, then overwrite most of
    // it: the old versions become secured-invalid, and their pLocks are
    // deferred (queued toward a bLock promotion that never comes, since
    // neither block fully dies).
    let first = ssd.write(0, 48, true);
    ssd.write(0, 40, true);
    let queued = ssd.ftl().pending_coalesced_locks();
    assert_eq!(queued, 40, "all 40 superseded versions must be deferred, not locked");
    // The deferral is real: before any flush, a de-soldering attacker can
    // still read the superseded secured versions.
    let exposed = ssd.attacker_recoverable_tags();
    assert!(
        first.iter().take(40).all(|t| exposed.contains(t)),
        "deferred locks must not have sealed anything yet"
    );

    // Power dies with the queue pending; the write in flight is lost.
    let cut = ssd.result().sim_time + Nanos::from_micros(50);
    ssd.power_cut_at(cut);
    ssd.write_tracked(100, 8, true);
    assert!(ssd.powered_off(), "the cut must fire during the post-queue batch");

    let report = ssd.recover();
    ssd.ftl().check_invariants();
    assert_eq!(ssd.ftl().pending_coalesced_locks(), 0, "recovery clears the RAM queue");
    assert!(
        report.stale_secured >= 40,
        "every version the lost queue owed must be resealed by the scan: {report:?}"
    );

    // The crash contract holds: no superseded secured version survives
    // for the attacker...
    let recoverable = ssd.attacker_recoverable_tags();
    for (l, t) in first.iter().take(40).enumerate() {
        assert!(!recoverable.contains(t), "stale secured lpa {l} still attacker-readable");
    }
    assert!(ssd.verify_sanitized(0, 48));
    // ...current data is intact...
    let after = ssd.read(0, 48);
    for (l, got) in after.iter().enumerate().skip(40).take(8) {
        assert_eq!(*got, Some(first[l]), "untouched lpa {l} lost its content");
    }
    // ...and the device serves and acknowledges fresh work.
    assert!(ssd.write_tracked(0, 1, true)[0].1);
}

/// Mid-audit-scrub power cut: a corruption storm keeps the guard's
/// verify/repair/scrub machinery busy — the incremental audit scrubber
/// is mid-pass and repairs have already run recovery scans — when the
/// power dies. The crash contract must survive the combination: no
/// acked secure delete is attacker-recoverable after recovery, the
/// accounting identity still balances, and the device keeps serving.
#[test]
fn power_cut_mid_audit_scrub_keeps_acked_secure_deletes_sealed() {
    use evanesco::core::fault::CorruptionConfig;

    let cfg = SsdConfig::tiny_for_tests();
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    ssd.enable_chaos(CorruptionConfig::storm(0.25, 0x5C4B));
    let span = 48u64;

    // Phase 1, fully acked before the cut: secure writes, then secure
    // deletes over the first third of the span.
    let mut dead_secure: HashSet<u64> = HashSet::new();
    let mut live: Vec<(u64, u64)> = Vec::new();
    for lpa in 0..span {
        for (tag, acked) in ssd.write_tracked(lpa, 1, true) {
            assert!(acked, "phase-1 write must be acked");
            live.push((lpa, tag));
        }
    }
    for lpa in 0..span / 3 {
        assert!(ssd.trim_with(&mut NullObserver, lpa, 1), "phase-1 trim must be acked");
        dead_secure.extend(live.iter().filter(|&&(l, _)| l == lpa).map(|&(_, t)| t));
    }
    let stats = ssd.ftl().stats();
    assert!(stats.audit_scrub_blocks > 0, "the audit scrubber must be mid-pass: {stats:?}");
    assert!(stats.meta_corruptions_injected > 0, "the storm must have fired: {stats:?}");

    // Phase 2: the cut lands while storm + scrub churn continues.
    let cut = ssd.result().sim_time + Nanos::from_micros(200);
    ssd.power_cut_at(cut);
    let mut x = 0xA5u64;
    let mut spins = 0;
    while !ssd.powered_off() && spins < 10_000 {
        x = lcg(x);
        ssd.write_tracked(span / 3 + x % span, 1, x.is_multiple_of(2));
        spins += 1;
    }
    assert!(ssd.powered_off(), "the cut must land inside phase 2");

    ssd.recover();
    ssd.ftl().check_invariants();
    let recoverable = ssd.attacker_recoverable_tags();
    for t in &dead_secure {
        assert!(!recoverable.contains(t), "acked secure delete {t} resurfaced after the cut");
    }
    assert!(ssd.verify_sanitized(0, span / 3));
    // Live pre-cut state survived and the device serves fresh work.
    for &(lpa, tag) in live.iter().filter(|&&(l, _)| l >= span / 3) {
        let got = ssd.read(lpa, 1)[0];
        assert!(got == Some(tag) || got.is_none(), "acked lpa {lpa}: {got:?}");
    }
    assert!(ssd.write_tracked(0, 1, true)[0].1, "device dead after recovery");
    ssd.chaos_finalize();
    let stats = ssd.ftl().stats();
    assert!(stats.meta_accounting_balanced(), "identity broken across the cut: {stats:?}");
}

/// Mid-salvage cut: a checkpoint whose FTL section is corrupt is
/// restored through the salvaging path (recovery-scan rebuild); the
/// power then dies during the first post-salvage writes. Acked secure
/// deletes from before the checkpoint must stay unrecoverable through
/// both ordeals — the salvage rebuild and the subsequent crash.
#[test]
fn salvaged_checkpoint_preserves_acked_secure_deletes_across_a_cut() {
    use evanesco::ssd::checkpoint::section;

    let cfg = SsdConfig::tiny_for_tests();
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    let span = 48u64;
    let mut dead_secure: HashSet<u64> = HashSet::new();
    let mut live: Vec<(u64, u64)> = Vec::new();
    for lpa in 0..span {
        for (tag, acked) in ssd.write_tracked(lpa, 1, true) {
            assert!(acked);
            live.push((lpa, tag));
        }
    }
    for lpa in 0..span / 3 {
        assert!(ssd.trim_with(&mut NullObserver, lpa, 1));
        dead_secure.extend(live.iter().filter(|&&(l, _)| l == lpa).map(|&(_, t)| t));
    }
    let mut bytes = ssd.save_checkpoint();

    // Corrupt one byte inside the FTL section's payload (format 2:
    // 12-byte header, then framed sections [id][len:u64][crc:u32][..]).
    let mut at = 12usize;
    let ftl_payload = loop {
        assert!(at + 13 <= bytes.len(), "ftl section must exist");
        let id = bytes[at];
        let len = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().expect("len bytes")) as usize;
        if id == section::FTL {
            break at + 13;
        }
        at += 13 + len;
    };
    bytes[ftl_payload] ^= 0x10;
    assert!(
        Emulator::restore_checkpoint(&bytes).is_err(),
        "strict restore must reject the damaged ftl section"
    );
    let (mut ssd, report) =
        Emulator::restore_checkpoint_salvaging(&bytes).expect("salvaging restore succeeds");
    assert!(report.salvaged.contains(&"ftl"), "the rebuilt section must be reported: {report:?}");

    // The salvage rebuild itself must not resurrect acked secure deletes.
    let recoverable = ssd.attacker_recoverable_tags();
    for t in &dead_secure {
        assert!(!recoverable.contains(t), "salvage resurrected acked secure delete {t}");
    }

    // Now the lights go out during the first post-salvage writes.
    let cut = ssd.result().sim_time + Nanos::from_micros(200);
    ssd.power_cut_at(cut);
    let mut x = 0x51u64;
    let mut spins = 0;
    while !ssd.powered_off() && spins < 10_000 {
        x = lcg(x);
        ssd.write_tracked(span / 3 + x % span, 1, x.is_multiple_of(2));
        spins += 1;
    }
    assert!(ssd.powered_off(), "the cut must land inside the post-salvage run");
    ssd.recover();
    ssd.ftl().check_invariants();
    let recoverable = ssd.attacker_recoverable_tags();
    for t in &dead_secure {
        assert!(!recoverable.contains(t), "secure delete {t} resurfaced after salvage + cut");
    }
    assert!(ssd.verify_sanitized(0, span / 3));
    assert!(ssd.write_tracked(0, 1, true)[0].1, "device dead after salvage + cut + recovery");
}

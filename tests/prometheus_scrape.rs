//! Prometheus exposition contract tests for
//! [`Emulator::prometheus_scrape`]: series uniqueness, `# TYPE`-before-
//! sample ordering, and counter monotonicity across mid-run scrapes.
//!
//! A scrape that violates any of these is silently mis-ingested by a real
//! Prometheus server (duplicate series are dropped, untyped samples lose
//! their semantics, and a counter that moves backwards resets every rate
//! query), so the contract is pinned here at the integration level.

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{Emulator, SsdConfig};
use std::collections::HashMap;

fn telemetry_ssd() -> Emulator {
    let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
    ssd.enable_gauges();
    ssd.enable_tracing(128);
    ssd
}

fn churn(ssd: &mut Emulator, rounds: u64) {
    let logical = ssd.logical_pages();
    for i in 0..rounds {
        ssd.write((i * 3) % (logical - 4), 1 + i % 3, i % 2 == 0);
        if i % 5 == 0 {
            ssd.read((i * 7) % (logical - 4), 1);
        }
        if i % 11 == 0 {
            ssd.trim((i * 3) % (logical - 4), 1);
        }
    }
}

/// Splits a scrape into `(type_by_family, samples)` where a sample is the
/// full series identity (`name{labels}`) mapped to its parsed value.
fn parse_scrape(scrape: &str) -> (HashMap<String, String>, Vec<(String, f64)>) {
    let mut types = HashMap::new();
    let mut samples = Vec::new();
    for line in scrape.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE has a name").to_string();
            let kind = it.next().expect("TYPE has a kind").to_string();
            types.insert(name, kind);
        } else if !line.starts_with('#') {
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            let v: f64 = value.parse().unwrap_or_else(|_| panic!("unparseable value: {line}"));
            samples.push((series.to_string(), v));
        }
    }
    (types, samples)
}

/// The metric family of a series: name with labels and histogram-suffix
/// stripped.
fn family_of(series: &str) -> String {
    series
        .split('{')
        .next()
        .unwrap()
        .trim_end_matches("_bucket")
        .trim_end_matches("_sum")
        .trim_end_matches("_count")
        .to_string()
}

#[test]
fn every_series_is_unique() {
    let mut ssd = telemetry_ssd();
    churn(&mut ssd, 120);
    let scrape = ssd.prometheus_scrape();
    let (_, samples) = parse_scrape(&scrape);
    assert!(!samples.is_empty());
    let mut seen = std::collections::HashSet::new();
    for (series, _) in &samples {
        assert!(seen.insert(series.as_str()), "duplicate series in one scrape: {series}");
    }
}

#[test]
fn type_header_precedes_every_sample_of_its_family() {
    let mut ssd = telemetry_ssd();
    churn(&mut ssd, 80);
    let scrape = ssd.prometheus_scrape();
    let mut typed = std::collections::HashSet::new();
    for line in scrape.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap().to_string();
            assert!(typed.insert(name.clone()), "family {name} typed twice");
        } else if !line.starts_with('#') {
            let series = line.rsplit_once(' ').unwrap().0;
            let exact = series.split('{').next().unwrap().to_string();
            let family = family_of(series);
            assert!(
                typed.contains(&exact) || typed.contains(&family),
                "sample appears before its # TYPE header: {line}"
            );
        }
    }
}

#[test]
fn counters_are_monotone_across_mid_run_scrapes() {
    let mut ssd = telemetry_ssd();
    churn(&mut ssd, 60);
    let first = ssd.prometheus_scrape();
    churn(&mut ssd, 140);
    let second = ssd.prometheus_scrape();

    let (types1, samples1) = parse_scrape(&first);
    let (types2, samples2) = parse_scrape(&second);
    // Scraping is a pure read: the family set and typing are stable.
    assert_eq!(types1, types2);

    let later: HashMap<&str, f64> = samples2.iter().map(|(s, v)| (s.as_str(), *v)).collect();
    let mut counters_checked = 0;
    let mut grew = 0;
    for (series, v1) in &samples1 {
        let family = family_of(series);
        if types1.get(&family).map(String::as_str) != Some("counter")
            && types1.get(series.split('{').next().unwrap()).map(String::as_str) != Some("counter")
        {
            continue;
        }
        let v2 = *later
            .get(series.as_str())
            .unwrap_or_else(|| panic!("counter series vanished mid-run: {series}"));
        assert!(v2 >= *v1, "counter went backwards: {series} {v1} -> {v2}");
        counters_checked += 1;
        if v2 > *v1 {
            grew += 1;
        }
    }
    assert!(counters_checked > 20, "only {counters_checked} counter series found");
    // The run did real work between the scrapes, so some counters moved.
    assert!(grew > 5, "no counter advanced between scrapes ({grew})");
}

#[test]
fn histogram_bucket_series_are_cumulative_within_one_scrape() {
    let mut ssd = telemetry_ssd();
    churn(&mut ssd, 100);
    let scrape = ssd.prometheus_scrape();
    for op in ["read", "write", "trim"] {
        let prefix = format!("evanesco_latency_seconds_bucket{{op=\"{op}\"");
        let counts: Vec<f64> = scrape
            .lines()
            .filter(|l| l.starts_with(&prefix))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(counts.len() >= 2, "op {op} has no buckets");
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "op {op} buckets not cumulative: {counts:?}"
        );
        let count_line = format!("evanesco_latency_seconds_count{{op=\"{op}\"}}");
        let total: f64 = scrape
            .lines()
            .find(|l| l.starts_with(&count_line))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v.parse().unwrap())
            .expect("count series present");
        assert_eq!(*counts.last().unwrap(), total, "op {op}: +Inf bucket != count");
    }
}

//! Property tests for the snapshot/delta algebra the telemetry layer is
//! built on: `LatencyHistogram::since` and `RunResult::since` must
//! *compose* — the delta over `[A, C)` equals the field-wise sum of the
//! deltas over adjacent windows `[A, B)` and `[B, C)` — and the windowed
//! time series built from them must tile a run exactly.

use evanesco::ftl::SanitizePolicy;
use evanesco::nand::timing::Nanos;
use evanesco::ssd::metrics::{LatencyHistogram, RunResult};
use evanesco::ssd::{Emulator, SsdConfig};
use proptest::prelude::*;

fn histogram_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(Nanos(s));
    }
    h
}

/// Asserts the additive [`RunResult`] fields of `whole` equal the sums of
/// the two adjacent window deltas. (Rates like `iops`/`waf` and the
/// non-recoverable per-window `max` are derived, not additive.)
fn assert_run_results_compose(whole: &RunResult, first: &RunResult, second: &RunResult) {
    assert_eq!(whole.host_ops, first.host_ops + second.host_ops);
    assert_eq!(whole.sim_time, first.sim_time + second.sim_time);
    assert_eq!(whole.erases, first.erases + second.erases);
    assert_eq!(whole.plocks, first.plocks + second.plocks);
    assert_eq!(whole.blocks_locked, first.blocks_locked + second.blocks_locked);
    assert_eq!(
        whole.ftl.host_write_pages,
        first.ftl.host_write_pages + second.ftl.host_write_pages
    );
    assert_eq!(whole.ftl.nand_programs, first.ftl.nand_programs + second.ftl.nand_programs);
    assert_eq!(whole.ftl.copied_pages, first.ftl.copied_pages + second.ftl.copied_pages);
    assert_eq!(whole.ftl.gc_invocations, first.ftl.gc_invocations + second.ftl.gc_invocations);
    assert_eq!(
        whole.ftl.coalesced_plocks,
        first.ftl.coalesced_plocks + second.ftl.coalesced_plocks
    );
    for (w, f, s) in [
        (&whole.latency.write, &first.latency.write, &second.latency.write),
        (&whole.latency.read, &first.latency.read, &second.latency.read),
        (&whole.latency.trim, &first.latency.trim, &second.latency.trim),
    ] {
        assert_eq!(w.count(), f.count() + s.count());
        assert_eq!(w.sum(), f.sum() + s.sum());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// `since` composes across any two-way split of a sample stream:
    /// delta(A→C) == delta(A→B) + delta(B→C), bucket by bucket.
    #[test]
    fn latency_histogram_since_composes(
        samples in proptest::collection::vec(0u64..5_000_000_000, 1..200),
        cut in 0usize..200,
    ) {
        let cut = cut % samples.len();
        let at_cut = histogram_of(&samples[..cut]);
        let full = histogram_of(&samples);

        let first = at_cut.since(&LatencyHistogram::new());
        let second = full.since(&at_cut);
        let whole = full.since(&LatencyHistogram::new());

        prop_assert_eq!(whole.count(), first.count() + second.count());
        prop_assert_eq!(whole.sum(), first.sum() + second.sum());
        for (i, (f, s)) in first.buckets().iter().zip(second.buckets().iter()).enumerate() {
            prop_assert_eq!(whole.buckets()[i], f + s, "bucket {} mismatch", i);
        }
        // The delta over an empty earlier snapshot is the identity.
        prop_assert_eq!(whole, full);
        // max is carried from the later snapshot (documented), so the
        // second window's max equals the whole-stream max.
        prop_assert_eq!(second.max(), whole.max());
    }

    /// `RunResult::since` composes across adjacent windows of one live
    /// emulator run, whatever the cut points.
    #[test]
    fn run_result_since_composes_across_adjacent_windows(
        seed in any::<u64>(),
        cut1 in 10usize..100,
        cut2 in 100usize..200,
    ) {
        let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
        let logical = ssd.logical_pages();
        let mut x = seed | 1;
        let mut step = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut snapshots = Vec::new();
        for i in 0..200usize {
            if i == cut1 || i == cut2 {
                snapshots.push(ssd.result());
            }
            let lpa = step() % (logical - 4);
            match step() % 8 {
                0 => ssd.trim(lpa, 1 + step() % 4),
                1 => { ssd.read(lpa, 1 + step() % 4); }
                _ => { ssd.write(lpa, 1 + step() % 4, step() % 2 == 0); }
            }
        }
        let (a, b) = (snapshots[0], snapshots[1]);
        let end = ssd.result();

        assert_run_results_compose(&end.since(&a), &b.since(&a), &end.since(&b));
        // Degenerate window: a zero-width delta adds nothing.
        let zero = a.since(&a);
        assert_eq!(zero.host_ops, 0);
        assert_eq!(zero.sim_time, Nanos::ZERO);
        assert_eq!(zero.latency.write.count(), 0);
    }

    /// The windowed time series is exactly the composition law applied
    /// repeatedly: its per-window deltas tile the run.
    #[test]
    fn timeseries_windows_tile_any_run(
        seed in any::<u64>(),
        interval_us in 20u64..400,
    ) {
        let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
        ssd.enable_timeseries(Nanos::from_micros(interval_us), 4096);
        let logical = ssd.logical_pages();
        let before = ssd.result();
        let mut x = seed | 1;
        for i in 0..150u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lpa = x % (logical - 4);
            if i % 9 == 0 {
                ssd.trim(lpa, 1);
            } else {
                ssd.write(lpa, 1 + x % 3, x % 2 == 0);
            }
        }
        ssd.sample_timeseries_now();
        let whole = ssd.result().since(&before);
        let ts = ssd.timeseries().unwrap();
        prop_assert_eq!(ts.total(), ts.len() as u64, "ring must not have dropped");

        let samples: Vec<_> = ts.samples().collect();
        for pair in samples.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start, "windows must be adjacent");
        }
        let sum = |f: fn(&RunResult) -> u64| samples.iter().map(|s| f(&s.delta)).sum::<u64>();
        prop_assert_eq!(sum(|d| d.host_ops), whole.host_ops);
        prop_assert_eq!(sum(|d| d.erases), whole.erases);
        prop_assert_eq!(sum(|d| d.plocks), whole.plocks);
        prop_assert_eq!(sum(|d| d.ftl.nand_programs), whole.ftl.nand_programs);
        prop_assert_eq!(
            sum(|d| d.latency.write.count()),
            whole.latency.write.count()
        );
        let span: u64 = samples.iter().map(|s| s.end.0 - s.start.0).sum();
        prop_assert_eq!(Nanos(span), whole.sim_time, "window spans must tile simulated time");
    }
}

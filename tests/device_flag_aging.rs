//! End-to-end device-mode flag test: the whole SecureSSD stack running on
//! *physical* flag cells, aged for years, attacked afterwards. The paper's
//! DSE selections must keep the system sealed; the rejected design corners
//! must leak.

use evanesco::core::bap::BapConfig;
use evanesco::core::calibration::DesignPoint;
use evanesco::core::pap::PapConfig;
use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{Emulator, SsdConfig};

fn run_aged(pap: PapConfig, bap: BapConfig, age_days: f64) -> (bool, usize) {
    let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
    ssd.enable_device_flags(pap, bap, 1234);
    // Write and delete a mix that exercises both pLock (scattered pages)
    // and bLock (whole blocks).
    let ppb = ssd.config().ftl.geometry.pages_per_block() as u64;
    ssd.write(0, 2 * ppb, true); // fills one block per chip -> bLock on trim
    ssd.write(2 * ppb, 6, true); // partial -> pLocks on trim
    ssd.trim(0, 2 * ppb + 6);
    ssd.age_flags(age_days);
    let ok = ssd.verify_sanitized(0, 2 * ppb + 6);
    let recovered = ssd.attacker_recoverable_tags().len();
    (ok, recovered)
}

#[test]
fn paper_selections_hold_for_five_years() {
    let (ok, recovered) = run_aged(PapConfig::paper(), BapConfig::paper(), 5.0 * 365.0);
    assert!(ok, "paper flag design leaked after 5 years");
    assert_eq!(recovered, 0);
}

#[test]
fn rejected_bap_corner_reopens_blocks_within_a_year() {
    let weak_bap = BapConfig { point: DesignPoint::new(5, 200) };
    let (ok, recovered) = run_aged(PapConfig::paper(), weak_bap, 365.0);
    assert!(!ok, "weak SSL programming should have leaked");
    assert!(recovered > 0);
}

#[test]
fn rejected_pap_corner_leaks_pages_at_five_years() {
    let weak_pap = PapConfig { k: 9, point: DesignPoint::new(2, 200) };
    let (ok, _) = run_aged(weak_pap, BapConfig::paper(), 5.0 * 365.0);
    assert!(!ok, "weak pAP programming should have leaked");
}

#[test]
fn fresh_weak_flags_still_hold() {
    // The rejected corners are not broken at programming time — only
    // retention kills them. (That is why the DSE needs the aging study.)
    let weak_pap = PapConfig { k: 9, point: DesignPoint::new(2, 200) };
    let weak_bap = BapConfig { point: DesignPoint::new(5, 200) };
    let (ok, recovered) = run_aged(weak_pap, weak_bap, 0.0);
    assert!(ok);
    assert_eq!(recovered, 0);
}

#[test]
fn erase_count_stats_reflect_wear() {
    let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
    let logical = ssd.logical_pages();
    for _ in 0..3 {
        for l in 0..logical {
            ssd.write(l, 1, true);
        }
    }
    let (min, max, mean) = ssd.erase_count_stats();
    assert!(max >= 1, "GC churn must erase blocks");
    assert!(mean > 0.0);
    assert!(min <= max);
}

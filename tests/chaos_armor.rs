//! Metadata-integrity armor, property-tested.
//!
//! Three families of properties back the chaos gate's hand-built matrix
//! (`experiments chaos`) with randomized coverage:
//!
//! * **Checkpoint armor** — flipping *any single byte* of a valid
//!   checkpoint yields a typed [`SnapshotError`] from the strict path
//!   (every byte is covered by the header or a section CRC), and the
//!   salvaging path either reports what it rebuilt and hands back a
//!   *working* device, or fails with a typed error naming a required
//!   section. Never a panic, never a silently wrong restore.
//! * **Guard armor** — under a random corruption storm on the direct
//!   host path, every read still serves exactly what an acked-op shadow
//!   model expects (repair-before-serve), and the accounting identity
//!   `injected == detected == from_oob + rederived + unrecoverable`
//!   holds after the final settle.
//! * **Watchdog armor** — at any stall rate and queue depth the
//!   scoreboard reconciles (`stalls == aborts == retries + failures`)
//!   and every budget-exhausted request surfaces as a typed
//!   [`OpResult::TimedOut`], exactly once per deadline failure.

use evanesco::core::fault::CorruptionConfig;
use evanesco::ftl::observer::NullObserver;
use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{DeadlineConfig, Emulator, HostOp, OpResult, SsdConfig};
use proptest::prelude::*;
use std::collections::HashMap;

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// A small but non-trivial device: secure and insecure writes, trims,
/// reads — enough churn that every checkpoint section is populated.
fn scripted_device(seed: u64) -> Emulator {
    let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
    let mut x = seed | 1;
    for _ in 0..40 {
        x = lcg(x);
        let lpa = x % 200;
        match x % 7 {
            0..=3 => {
                let _ = ssd.write(lpa, 1 + x % 3, !x.is_multiple_of(4));
            }
            4 => ssd.trim(lpa, 1 + x % 3),
            _ => {
                let _ = ssd.read(lpa, 1 + x % 3);
            }
        }
    }
    ssd
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Checkpoint armor: any single-byte flip anywhere in the blob is
    /// either detected (typed strict error AND a truthful salvage
    /// report) or — for a required section — a typed salvage error.
    #[test]
    fn any_single_byte_flip_is_detected_or_salvaged(
        seed in any::<u64>(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut bytes = scripted_device(seed).save_checkpoint();
        let pos = (((bytes.len() as f64) * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= xor;

        // Strict restore: every byte is covered by the magic/version
        // header or by a section CRC, so the flip MUST surface as a
        // typed error — a clean restore here is silent wrong data.
        let err = Emulator::restore_checkpoint(&bytes).err();
        prop_assert!(err.is_some(), "flip at byte {pos} restored cleanly");
        prop_assert!(!err.expect("checked").to_string().is_empty());

        // Salvaging restore: either a working device plus an honest
        // report, or a typed error (required section damaged).
        match Emulator::restore_checkpoint_salvaging(&bytes) {
            Ok((mut ssd, report)) => {
                prop_assert!(
                    !report.is_clean(),
                    "salvage at byte {pos} reported a clean restore of damaged bytes"
                );
                ssd.ftl().check_invariants();
                prop_assert!(ssd.write_tracked(0, 1, true)[0].1, "salvaged device is dead");
                let _ = ssd.read(0, 4);
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Guard armor on the direct path: reads never diverge from the
    /// acked shadow, and the accounting identity balances at any rate.
    #[test]
    fn storm_never_serves_wrong_data_and_always_balances(
        seed in any::<u64>(),
        rate in 0.05f64..0.5,
    ) {
        let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
        ssd.enable_chaos(CorruptionConfig::storm(rate, seed ^ 0xA53));
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        let mut x = seed | 1;
        for _ in 0..250 {
            x = lcg(x);
            let lpa = x % 160;
            match x % 6 {
                0..=2 => {
                    for (i, (tag, acked)) in
                        ssd.write_tracked(lpa, 1 + x % 3, !x.is_multiple_of(4)).into_iter().enumerate()
                    {
                        prop_assert!(acked);
                        shadow.insert(lpa + i as u64, tag);
                    }
                }
                3 => {
                    let n = 1 + x % 3;
                    prop_assert!(ssd.trim_with(&mut NullObserver, lpa, n));
                    for l in lpa..lpa + n {
                        shadow.remove(&l);
                    }
                }
                _ => {
                    for (i, got) in ssd.read(lpa, 1 + x % 3).into_iter().enumerate() {
                        prop_assert_eq!(
                            got,
                            shadow.get(&(lpa + i as u64)).copied(),
                            "read diverged from the acked shadow at lpa {}",
                            lpa + i as u64
                        );
                    }
                }
            }
        }
        ssd.chaos_finalize();
        ssd.ftl().check_invariants();
        let stats = ssd.ftl().stats();
        prop_assert!(stats.meta_corruptions_injected > 0, "storm never fired: {:?}", stats);
        prop_assert!(stats.meta_accounting_balanced(), "identity broken: {:?}", stats);
        prop_assert_eq!(
            ssd.chaos_stats().expect("chaos armed").injected,
            stats.meta_corruptions_injected,
            "injector and FtlStats disagree"
        );
    }

    /// Watchdog armor: the scoreboard reconciles at any stall rate and
    /// queue depth, and `TimedOut` results match deadline failures 1:1.
    #[test]
    fn watchdog_reconciles_and_types_every_deadline_failure(
        seed in any::<u64>(),
        rate in 0.0f64..0.6,
        qd in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
    ) {
        let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
        ssd.enable_watchdog(DeadlineConfig::for_tests(seed ^ 0xD06, rate));
        let logical = ssd.logical_pages();
        let mut ops = Vec::new();
        let mut x = seed | 1;
        for _ in 0..120 {
            x = lcg(x);
            let lpa = x % (logical - 4);
            ops.push(match x % 5 {
                0..=2 => HostOp::Write { lpa, npages: 1 + x % 4, secure: x % 2 == 0 },
                3 => HostOp::Read { lpa, npages: 1 + x % 4 },
                _ => HostOp::Trim { lpa, npages: 1 + x % 4 },
            });
        }
        let run = ssd.run_scheduled(&ops, qd);
        let stats = ssd.watchdog_stats().expect("watchdog armed");
        prop_assert!(stats.reconciles(), "scoreboard identity broken: {:?}", stats);
        let timed_out =
            run.results.iter().filter(|r| matches!(r, OpResult::TimedOut)).count() as u64;
        prop_assert_eq!(
            timed_out, stats.deadline_failures,
            "typed TimedOut results must match deadline failures: {:?}", stats
        );
    }
}

//! Integration tests for the PR-5 observability stack: the live
//! [`ExposureLedger`] must agree with the offline VerTrace scan within
//! the 5% acceptance bound (observed: float-epsilon), reproduce the
//! paper's Table-1 orderings, attribute retirements to the right
//! invalidation path — and none of it may perturb the simulation
//! (telemetry-enabled and telemetry-disabled runs are identical).

use evanesco::ftl::observer::Tee;
use evanesco::ftl::{DecisionLevel, SanitizePolicy};
use evanesco::nand::timing::Nanos;
use evanesco::ssd::Emulator;
use evanesco::workloads::generate::generate;
use evanesco::workloads::ledger::ExposureLedger;
use evanesco::workloads::replay::replay_with;
use evanesco::workloads::vertrace::{ClassStats, VerTrace};
use evanesco::workloads::{Trace, WorkloadSpec};
use evanesco_bench::Scale;

/// One baseline-SSD run of `spec` with the live ledger and the offline
/// VerTrace attached through a single observer tee.
fn run_both(spec: &WorkloadSpec, seed: u64) -> (ExposureLedger, VerTrace, u64) {
    let mut cfg = Scale::smoke().ssd_config();
    cfg.track_tags = false;
    let mut ssd = Emulator::new(cfg, SanitizePolicy::none());
    let logical = ssd.logical_pages();
    let trace = generate(spec, logical, logical, seed);
    let mut lg = ExposureLedger::new();
    let mut vt = VerTrace::new();
    replay_with(&mut ssd, &trace, &mut Tee(&mut lg, &mut vt));
    (lg, vt, logical)
}

fn rel_diff(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom < 1e-9 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

fn max_class_diff(live: &ClassStats, offline: &ClassStats) -> f64 {
    assert_eq!(live.n_files, offline.n_files, "class file counts diverged");
    [
        (live.vaf_avg, offline.vaf_avg),
        (live.vaf_max, offline.vaf_max),
        (live.tinsec_avg, offline.tinsec_avg),
        (live.tinsec_max, offline.tinsec_max),
    ]
    .iter()
    .map(|&(a, b)| rel_diff(a, b))
    .fold(0.0, f64::max)
}

#[test]
fn live_ledger_matches_offline_vertrace_within_5_percent() {
    for spec in [WorkloadSpec::mobile(), WorkloadSpec::mail_server(), WorkloadSpec::db_server()] {
        let (mut lg, mut vt, logical) = run_both(&spec, 7);
        let offline = vt.report(logical);
        let live = lg.report(logical);
        let diff = max_class_diff(&live.uv.stats, &offline.uv)
            .max(max_class_diff(&live.mv.stats, &offline.mv));
        assert!(diff <= 0.05, "{}: live vs offline rel diff {diff}", spec.name);
    }
}

#[test]
fn ledger_reproduces_table1_orderings() {
    let reports: Vec<_> =
        [WorkloadSpec::mobile(), WorkloadSpec::mail_server(), WorkloadSpec::db_server()]
            .iter()
            .map(|spec| {
                let (mut lg, _, logical) = run_both(spec, 7);
                (spec.name.to_string(), lg.report(logical))
            })
            .collect();

    // MV files accumulate at least as many stale versions as UV files.
    for (name, r) in &reports {
        if r.uv.stats.n_files > 0 && r.mv.stats.n_files > 0 {
            assert!(
                r.mv.stats.vaf_avg >= r.uv.stats.vaf_avg,
                "{name}: MV VAF {} < UV VAF {}",
                r.mv.stats.vaf_avg,
                r.uv.stats.vaf_avg
            );
        }
    }
    // DBServer's overwrite-heavy pattern yields the largest MV VAF.
    let db = &reports.iter().find(|(n, _)| n == "DBServer").unwrap().1;
    assert!(db.mv.stats.vaf_avg > 0.0, "DBServer produced no stale MV versions");
    for (name, r) in &reports {
        assert!(
            db.mv.stats.vaf_avg >= r.mv.stats.vaf_avg,
            "{name} MV VAF {} exceeds DBServer's {}",
            r.mv.stats.vaf_avg,
            db.mv.stats.vaf_avg
        );
    }
}

#[test]
fn retirement_paths_split_by_policy() {
    // Baseline SSD: stale secured versions stay exposed, retired by host
    // updates, trims, and GC copies alike.
    let (mut lg, _, logical) = run_both(&WorkloadSpec::db_server(), 11);
    let base = lg.report(logical);
    let exposed: u64 = base.device_causes.exposed.iter().sum();
    assert!(exposed > 0, "baseline SSD must leave exposed retirements");
    assert!(
        base.device_causes.total[0] > 0 && base.device_causes.total[1] > 0,
        "expected host-update and trim retirements: {:?}",
        base.device_causes.total
    );
    // The exposure histogram saw real nonzero windows.
    let exp = {
        let mut e = base.uv.exposure;
        e.absorb(&base.mv.exposure);
        e
    };
    assert!(exp.count > 0 && exp.max > 0, "no exposure windows measured");

    // Evanesco SSD: every secured retirement sanitizes on the spot, so
    // nothing is ever exposed and every window is zero ticks.
    let mut cfg = Scale::smoke().ssd_config();
    cfg.track_tags = false;
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    let logical = ssd.logical_pages();
    let trace = generate(&WorkloadSpec::db_server(), logical, logical, 11);
    let mut lg = ExposureLedger::new();
    replay_with(&mut ssd, &trace, &mut lg);
    let sec = lg.report(logical);
    assert_eq!(sec.device_causes.exposed, [0, 0, 0], "Evanesco left exposed retirements");
    let secured: u64 = sec.device_causes.secured.iter().sum();
    assert!(secured > 0, "no secured retirements observed");
    let exp = {
        let mut e = sec.uv.exposure;
        e.absorb(&sec.mv.exposure);
        e
    };
    assert!(exp.count > 0);
    assert_eq!(exp.zero_fraction(), 1.0, "Evanesco windows must all be zero ticks");
    assert_eq!(sec.mv.stats.vaf_max, 0.0, "secSSD must leave MV files version-free");
}

/// Replays `trace` with every telemetry layer either armed or off and
/// returns the final whole-run result.
fn telemetry_run(trace: &Trace, enable: bool) -> evanesco::ssd::RunResult {
    let mut cfg = Scale::smoke().ssd_config();
    cfg.track_tags = false;
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    if enable {
        ssd.enable_gauges();
        ssd.enable_tracing(256);
        ssd.enable_timeseries(Nanos::from_micros(100), 256);
        ssd.enable_decision_log(2048, DecisionLevel::Info);
        let mut lg = ExposureLedger::new();
        replay_with(&mut ssd, trace, &mut lg);
        ssd.sample_timeseries_now();
        // The layers actually observed the run.
        assert!(ssd.timeseries().unwrap().total() > 0);
        assert!(!ssd.decision_log().is_empty());
    } else {
        let mut none = evanesco::ftl::observer::NullObserver;
        replay_with(&mut ssd, trace, &mut none);
    }
    ssd.result()
}

#[test]
fn full_telemetry_stack_is_timing_neutral() {
    let cfg = Scale::smoke().ssd_config();
    let logical = cfg.ftl.logical_pages();
    let trace = generate(&WorkloadSpec::db_server(), logical, logical, 13);
    let on = telemetry_run(&trace, true);
    let off = telemetry_run(&trace, false);
    // Identical down to every counter, latency bucket, and the simulated
    // clock: observation must not perturb the simulation.
    assert_eq!(on, off);
}

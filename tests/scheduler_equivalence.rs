//! Scheduler correctness properties: out-of-order multi-queue execution
//! must be invisible to the host.
//!
//! The out-of-order scheduler ([`evanesco::ssd::sched`]) may dispatch
//! independent requests onto idle chips in any order, but requests that
//! touch a common logical page never reorder. These tests pin the
//! contract down:
//!
//! * **byte identity** — a random mixed trace produces identical
//!   per-request results, an identical final device image, and identical
//!   sanitization outcomes at queue depths 1, 8 and 32, with and without
//!   lock coalescing;
//! * **same-LPA ordering** — reads racing overwrites of one hot page at
//!   depth 32 always observe the most recently submitted write (RAW), and
//!   never a later one (WAR/WAW), even with unrelated traffic saturating
//!   the queue.

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{Emulator, HostOp, OpResult, SsdConfig};
use proptest::prelude::*;

/// Raw op parameters; clamped against the device's logical space once,
/// so every queue depth replays the exact same trace.
fn sched_op(logical: u64) -> impl Strategy<Value = HostOp> {
    let max_run = 6u64;
    prop_oneof![
        4 => (0..logical - max_run, 1..=max_run, any::<bool>())
            .prop_map(|(lpa, npages, secure)| HostOp::Write { lpa, npages, secure }),
        2 => (0..logical - max_run, 1..=max_run)
            .prop_map(|(lpa, npages)| HostOp::Read { lpa, npages }),
        1 => (0..logical - max_run, 1..=max_run)
            .prop_map(|(lpa, npages)| HostOp::Trim { lpa, npages }),
    ]
}

/// Runs the trace at one queue depth on a fresh device and returns
/// everything the host can observe.
fn observe(cfg: SsdConfig, ops: &[HostOp], qd: usize) -> (Vec<OpResult>, Vec<Option<u64>>, bool) {
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    let run = ssd.run_scheduled(ops, qd);
    assert!(run.max_outstanding <= qd, "queue depth {qd} violated");
    // Settle deferred sanitization locks before the attacker looks.
    ssd.flush_coalesced_locks();
    ssd.ftl().check_invariants();
    let logical = ssd.logical_pages();
    let image = (0..logical).map(|l| ssd.read(l, 1)[0]).collect();
    let sanitized = ssd.verify_sanitized(0, logical);
    (run.results, image, sanitized)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Queue depth changes timing, never results.
    #[test]
    fn queue_depth_never_changes_host_visible_results(
        ops in proptest::collection::vec(sched_op(600), 1..100),
        coalesce in any::<bool>(),
    ) {
        let mut cfg = SsdConfig::tiny_for_tests();
        if coalesce {
            cfg.ftl.lock_coalescing = true;
            cfg.ftl.coalesce_window = 32;
        }
        let baseline = observe(cfg, &ops, 1);
        prop_assert!(baseline.2, "secured overwrites must be sanitized at qd 1");
        for qd in [8usize, 32] {
            let got = observe(cfg, &ops, qd);
            prop_assert_eq!(
                &got, &baseline,
                "qd {} diverged from the serialized baseline (coalesce={})", qd, coalesce
            );
        }
    }
}

/// An adversarial hot-page trace: one LPA is overwritten and read in
/// strict alternation while enough independent traffic is queued that a
/// depth-32 scheduler has every opportunity to reorder.
#[test]
fn hot_page_reads_always_observe_the_latest_submitted_write() {
    let mut ops = Vec::new();
    let hot = 7u64;
    for round in 0..40u64 {
        ops.push(HostOp::Write { lpa: hot, npages: 1, secure: true });
        // Independent noise the scheduler may freely hoist past the hot
        // page's traffic.
        for k in 0..6 {
            ops.push(HostOp::Write {
                lpa: 50 + ((round * 6 + k) * 3) % 400,
                npages: 2,
                secure: k % 2 == 0,
            });
        }
        ops.push(HostOp::Read { lpa: hot, npages: 1 });
    }
    let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
    let run = ssd.run_scheduled(&ops, 32);
    let mut last_write: Option<u64> = None;
    for (i, (op, res)) in ops.iter().zip(&run.results).enumerate() {
        match (op, res) {
            (HostOp::Write { lpa, .. }, OpResult::Write(tags, acked)) => {
                assert!(acked, "no power cut: every write acks");
                if *lpa == hot {
                    last_write = Some(tags[0]);
                }
            }
            (HostOp::Read { lpa, .. }, OpResult::Read(got)) if *lpa == hot => {
                assert_eq!(
                    got[0], last_write,
                    "request {i}: read of the hot page must see the write submitted \
                     immediately before it — neither an older nor a newer version"
                );
            }
            _ => {}
        }
    }
    // The overwrite churn itself stayed secure.
    ssd.flush_coalesced_locks();
    assert!(ssd.verify_sanitized(hot, 1));
}

/// The scheduler's speed claim, end to end at the integration level:
/// deeper queues strictly dominate on a parallel-friendly trace while
/// returning identical results.
#[test]
fn deeper_queues_are_no_slower_at_every_step() {
    let ops: Vec<HostOp> = (0..96)
        .map(|i| HostOp::Write { lpa: (i * 5) % 480, npages: 1, secure: i % 2 == 0 })
        .collect();
    let mut prev = None;
    for qd in [1usize, 2, 4, 8] {
        let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
        let run = ssd.run_scheduled(&ops, qd);
        if let Some((prev_qd, prev_time, prev_results)) = prev {
            assert!(
                run.sim_time <= prev_time,
                "qd {qd} ({:?}) slower than qd {prev_qd} ({prev_time:?})",
                run.sim_time
            );
            assert_eq!(run.results, prev_results, "qd {qd} changed results");
        }
        prev = Some((qd, run.sim_time, run.results));
    }
}

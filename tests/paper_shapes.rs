//! Integration assertions on the reproduced paper results (smoke scale):
//! every experiment generator runs, and the qualitative shapes of the
//! evaluation hold end-to-end.

use evanesco_bench::experiments::system::run_matrix;
use evanesco_bench::{run_experiment, Scale, EXPERIMENT_NAMES};
use evanesco_ftl::SanitizePolicy;

#[test]
fn every_experiment_generator_produces_output() {
    let scale = Scale::smoke();
    for name in EXPERIMENT_NAMES {
        let out = run_experiment(name, &scale);
        assert!(out.len() > 80, "{name}: suspiciously short output:\n{out}");
        assert!(out.contains("=="), "{name}: missing header");
    }
}

#[test]
fn figure14_shape_matches_paper() {
    let matrix = run_matrix(&Scale::smoke());
    for w in &matrix {
        let get = |want: SanitizePolicy| {
            w.runs.iter().find(|(p, _)| *p == want).map(|(_, r)| *r).unwrap()
        };
        let er = get(SanitizePolicy::erase_based());
        let scr = get(SanitizePolicy::scrub());
        let nob = get(SanitizePolicy::evanesco_no_block());
        let sec = get(SanitizePolicy::evanesco());

        // IOPS: baseline > secSSD >= secSSD_nobLock > scrSSD > erSSD.
        assert!(sec.iops_vs(&w.baseline) < 1.0 + 1e-9, "{}", w.name);
        assert!(
            sec.iops_vs(&w.baseline) > 0.7,
            "{}: secSSD {:.3}",
            w.name,
            sec.iops_vs(&w.baseline)
        );
        assert!(
            scr.iops_vs(&w.baseline) < 0.6,
            "{}: scrSSD {:.3}",
            w.name,
            scr.iops_vs(&w.baseline)
        );
        // Mobile trims whole blocks at once, so its erase-based penalty is the
        // mildest of the four workloads (~0.2 at smoke scale); everything else
        // collapses below 0.1.
        assert!(er.iops_vs(&w.baseline) < 0.25, "{}: erSSD {:.3}", w.name, er.iops_vs(&w.baseline));
        assert!(er.iops_vs(&w.baseline) < scr.iops_vs(&w.baseline) * 0.5, "{}", w.name);
        assert!(sec.iops >= nob.iops * 0.98, "{}: bLock regressed IOPS", w.name);

        // WAF: erSSD >> scrSSD > secSSD ~= baseline.
        assert!(
            er.waf_vs(&w.baseline) > 3.0,
            "{}: erSSD WAF {:.2}",
            w.name,
            er.waf_vs(&w.baseline)
        );
        assert!(scr.waf_vs(&w.baseline) > 1.2, "{}", w.name);
        assert!(
            sec.waf_vs(&w.baseline) < 1.1,
            "{}: secSSD WAF {:.2}",
            w.name,
            sec.waf_vs(&w.baseline)
        );

        // Erases: secSSD erases fewer blocks than scrSSD and far fewer than erSSD.
        assert!(sec.erases < scr.erases, "{}", w.name);
        assert!(er.erases > scr.erases, "{}", w.name);

        // bLock replaces pLocks where it applies.
        assert!(sec.plocks <= nob.plocks, "{}", w.name);
    }

    // The bLock saving is largest for the large-file workload (Mobile).
    let saving = |name: &str| {
        let w = matrix.iter().find(|w| w.name == name).unwrap();
        let get = |want: SanitizePolicy| {
            w.runs.iter().find(|(p, _)| *p == want).map(|(_, r)| *r).unwrap()
        };
        let sec = get(SanitizePolicy::evanesco());
        let nob = get(SanitizePolicy::evanesco_no_block());
        1.0 - sec.plocks as f64 / nob.plocks.max(1) as f64
    };
    assert!(
        saving("Mobile") > saving("DBServer"),
        "Mobile {:.2} vs DBServer {:.2}",
        saving("Mobile"),
        saving("DBServer")
    );
}

#[test]
fn figure14c_fraction_sweep_shape() {
    // Fewer secured pages -> IOPS closer to baseline.
    let out = run_experiment("fig14c", &Scale::smoke());
    let line = out.lines().find(|l| l.starts_with("DBServer")).expect("DBServer row");
    let vals: Vec<f64> = line.split_whitespace().skip(1).map(|v| v.parse().unwrap()).collect();
    assert_eq!(vals.len(), 5);
    assert!(vals[0] >= vals[4] - 0.02, "60% secured should not be slower than 100%: {vals:?}");
}

#[test]
fn dse_selects_paper_parameters_end_to_end() {
    let fig9 = run_experiment("fig9", &Scale::smoke());
    assert!(fig9.contains("selected: (ii) = (Vp4, 100us)"));
    let fig12 = run_experiment("fig12", &Scale::smoke());
    assert!(fig12.contains("selected: (ii) = (Vb6, 300us)"));
}

#[test]
fn table1_versioning_shapes() {
    let out = run_experiment("table1", &Scale::smoke());
    let row = |name: &str| -> Vec<f64> {
        out.lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("{name} row missing"))
            .split_whitespace()
            .filter_map(|c| c.parse().ok())
            .collect()
    };
    let db = row("DBServer");
    let mobile = row("Mobile");
    // Columns: uv_vaf_avg uv_vaf_max uv_tins_avg uv_tins_max mv_vaf_avg ...
    assert!(db[4] > mobile[4], "DBServer MV VAF avg should dominate: {db:?} vs {mobile:?}");
    assert!(db[4] > 0.1, "DBServer MV files must accumulate versions: {db:?}");
}

//! Property-based tests: random host op sequences against every policy,
//! cross-checked with an in-memory model and the FTL's own invariants.

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{Emulator, SsdConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// A host operation for property testing.
#[derive(Debug, Clone)]
enum HostOp {
    Write { lpa: u64, n: u64, secure: bool },
    Trim { lpa: u64, n: u64 },
    Read { lpa: u64, n: u64 },
}

fn host_op(logical: u64) -> impl Strategy<Value = HostOp> {
    let max_run = 8u64;
    prop_oneof![
        3 => (0..logical - max_run, 1..=max_run, any::<bool>())
            .prop_map(|(lpa, n, secure)| HostOp::Write { lpa, n, secure }),
        1 => (0..logical - max_run, 1..=max_run).prop_map(|(lpa, n)| HostOp::Trim { lpa, n }),
        1 => (0..logical - max_run, 1..=max_run).prop_map(|(lpa, n)| HostOp::Read { lpa, n }),
    ]
}

fn policies() -> [SanitizePolicy; 5] {
    [
        SanitizePolicy::none(),
        SanitizePolicy::evanesco(),
        SanitizePolicy::evanesco_no_block(),
        SanitizePolicy::erase_based(),
        SanitizePolicy::scrub(),
    ]
}

fn run_model_check(policy: SanitizePolicy, ops: &[HostOp]) {
    let cfg = SsdConfig::tiny_for_tests();
    let mut ssd = Emulator::new(cfg, policy);
    let logical = ssd.logical_pages();
    // Model: lpa -> current tag.
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            HostOp::Write { lpa, n, secure } => {
                let lpa = lpa % (logical - n);
                let tags = ssd.write(lpa, n, secure);
                for (i, t) in tags.into_iter().enumerate() {
                    model.insert(lpa + i as u64, t);
                }
            }
            HostOp::Trim { lpa, n } => {
                let lpa = lpa % (logical - n);
                ssd.trim(lpa, n);
                for i in 0..n {
                    model.remove(&(lpa + i));
                }
            }
            HostOp::Read { lpa, n } => {
                let lpa = lpa % (logical - n);
                let got = ssd.read(lpa, n);
                for (i, g) in got.into_iter().enumerate() {
                    assert_eq!(
                        g,
                        model.get(&(lpa + i as u64)).copied(),
                        "{policy}: read mismatch at lpa {}",
                        lpa + i as u64
                    );
                }
            }
        }
        ssd.ftl().check_invariants();
    }
    // Final read-back of the whole space must match the model.
    for l in 0..logical {
        let got = ssd.read(l, 1);
        assert_eq!(got[0], model.get(&l).copied(), "{policy}: final state mismatch at {l}");
    }
    // Secure policies never leave a superseded secured version recoverable.
    if policy.is_immediate() {
        assert!(ssd.verify_sanitized(0, logical), "{policy}: sanitization hole");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_host_sequences_preserve_semantics(
        ops in proptest::collection::vec(host_op(2 * 16 * 24), 1..120)
    ) {
        for policy in policies() {
            run_model_check(policy, &ops);
        }
    }

    #[test]
    fn heavy_overwrite_churn_is_safe(
        seed in any::<u64>()
    ) {
        // Deterministic churn derived from the seed: overwrite a small hot
        // set far beyond capacity to force repeated GC.
        let mut x = seed | 1;
        let mut ops = Vec::new();
        for i in 0..300u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lpa = x % 32;
            if i % 17 == 0 {
                ops.push(HostOp::Trim { lpa, n: 1 + (x % 4) });
            } else {
                ops.push(HostOp::Write { lpa, n: 1 + (x % 4), secure: x % 3 != 0 });
            }
        }
        for policy in [SanitizePolicy::evanesco(), SanitizePolicy::scrub()] {
            run_model_check(policy, &ops);
        }
    }
}

mod cell_encoding_props {
    use evanesco_nand::cell::{decode_bit, read_ref_voltages, state_bit, CellTech, VthState};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn decode_inverts_encode_for_all_states(
            tech_idx in 0usize..3,
            state in 0u8..8,
            jitter in -0.04f64..0.04
        ) {
            let tech = [CellTech::Slc, CellTech::Mlc, CellTech::Tlc][tech_idx];
            prop_assume!((state as usize) < tech.n_states());
            let means = evanesco_nand::cell::nominal_states(tech);
            for &ty in tech.page_types() {
                let refs = read_ref_voltages(tech, ty);
                let vth = means[state as usize].0 + jitter;
                prop_assert_eq!(
                    decode_bit(tech, ty, &refs, vth),
                    state_bit(tech, VthState(state), ty)
                );
            }
        }
    }
}

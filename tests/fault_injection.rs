//! Runtime fault-injection properties: the reliability manager
//! (`evanesco::ftl`) must absorb probabilistic chip failures — failed
//! `pLock`/`bLock` verifies, program-status failures, erase failures,
//! uncorrectable reads — without ever weakening the sanitization
//! guarantee or changing what the host observes.
//!
//! The contract pinned down here:
//!
//! * **no leak under any fault schedule** — whatever the storm severity
//!   and seed, no superseded or deleted secured version is recoverable by
//!   a raw-chip attacker, including at the paper's weakest flag-program
//!   corner (per-command `pLock` success near 50 %);
//! * **queue-depth invariance with faults on** — the fault model keys
//!   every draw on per-location attempt ordinals, never global dispatch
//!   order, so queue depths 1 and 8 produce byte-identical host results;
//! * **full accounting** — every injected failure shows up in exactly one
//!   FTL response counter (retry, escalation, fallback, remap, or
//!   retirement);
//! * **crash safety mid-ladder** — a power cut anywhere inside a fault
//!   storm (including mid-escalation) still recovers to a sanitized,
//!   serviceable device, and the grown-bad-block table survives the cut.

use evanesco::core::calibration::DesignPoint;
use evanesco::core::fault::FaultConfig;
use evanesco::ftl::{DegradedMode, SanitizePolicy};
use evanesco::nand::timing::Nanos;
use evanesco::ssd::{Emulator, HostOp, RunResult, SsdConfig};
use proptest::prelude::*;

fn storm_cfg(severity: f64, seed: u64) -> SsdConfig {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.ftl.faults = FaultConfig::storm(severity, seed);
    cfg
}

/// Asserts the accounting identities: chip-level injected failures vs the
/// FTL's response counters. Holds for any run that never lost power
/// (across a cut the status register never reaches firmware).
fn assert_fault_accounting(r: &RunResult) {
    assert_eq!(
        r.faults.plock_failures,
        r.ftl.plock_retries + r.ftl.plock_escalations + r.ftl.lock_scrub_fallbacks,
        "every failed pLock is a retry, an escalation, or a scrub fallback"
    );
    assert_eq!(
        r.faults.block_lock_failures,
        r.ftl.block_lock_retries + r.ftl.block_lock_fallbacks,
        "every failed bLock is a retry or a per-page fallback"
    );
    assert_eq!(
        r.faults.program_failures, r.ftl.program_fail_remaps,
        "every failed program is remapped exactly once"
    );
    assert_eq!(
        r.faults.erase_failures,
        r.ftl.erase_retries + r.ftl.retired_blocks,
        "every failed erase is a retry or a block retirement"
    );
}

/// Raw op parameters; clamped against the logical space once, so every
/// queue depth replays the exact same trace.
fn sched_op(logical: u64) -> impl Strategy<Value = HostOp> {
    let max_run = 6u64;
    prop_oneof![
        4 => (0..logical - max_run, 1..=max_run, any::<bool>())
            .prop_map(|(lpa, npages, secure)| HostOp::Write { lpa, npages, secure }),
        2 => (0..logical - max_run, 1..=max_run)
            .prop_map(|(lpa, npages)| HostOp::Read { lpa, npages }),
        1 => (0..logical - max_run, 1..=max_run)
            .prop_map(|(lpa, npages)| HostOp::Trim { lpa, npages }),
    ]
}

/// Runs the trace at one queue depth on a fresh faulty device and returns
/// everything the host can observe.
fn observe(
    cfg: SsdConfig,
    ops: &[HostOp],
    qd: usize,
) -> (Vec<evanesco::ssd::OpResult>, Vec<Option<u64>>, bool) {
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    let run = ssd.run_scheduled(ops, qd);
    ssd.flush_coalesced_locks();
    ssd.ftl().check_invariants();
    assert_fault_accounting(&ssd.result());
    let logical = ssd.logical_pages();
    let image = (0..logical).map(|l| ssd.read(l, 1)[0]).collect();
    let sanitized = ssd.verify_sanitized(0, logical);
    (run.results, image, sanitized)
}

/// Deterministic churn driver: overwrites and trims secured data so the
/// storm has plenty of locks, erases, and GC to attack.
fn churn(ssd: &mut Emulator, rounds: u64) {
    churn_rounds(ssd, 0..rounds);
    ssd.flush_coalesced_locks();
}

/// One contiguous slice of the churn schedule (round indices seed the
/// access pattern, so `0..n` split at any point replays identically).
fn churn_rounds(ssd: &mut Emulator, rounds: std::ops::Range<u64>) {
    let logical = ssd.logical_pages();
    let span = logical / 2;
    for round in rounds {
        for l in 0..span {
            let _ = ssd.write_tracked((l * 7 + round) % span, 1, true);
        }
        let base = (round * 13) % (span / 2);
        let _ = ssd.trim_with(&mut evanesco::ftl::observer::NullObserver, base, span / 8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random fault schedules never leave a secured version recoverable,
    /// and queue depth never changes host-visible results — faults on.
    #[test]
    fn fault_storms_never_leak_and_are_qd_invariant(
        ops in proptest::collection::vec(sched_op(600), 1..80),
        severity in 0.05f64..0.7,
        seed in any::<u64>(),
    ) {
        let cfg = storm_cfg(severity, seed);
        let baseline = observe(cfg, &ops, 1);
        prop_assert!(baseline.2, "secured data leaked at qd 1 (severity {severity})");
        let got = observe(cfg, &ops, 8);
        prop_assert_eq!(&got, &baseline, "qd 8 diverged from qd 1 under faults");
    }

    /// Heavy churn under a storm: every injected failure is accounted for
    /// by exactly one reliability response, and nothing leaks.
    #[test]
    fn reliability_counters_account_for_every_injected_failure(
        severity in 0.05f64..0.9,
        seed in any::<u64>(),
    ) {
        let cfg = storm_cfg(severity, seed);
        let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
        churn(&mut ssd, 3);
        ssd.ftl().check_invariants();
        let r = ssd.result();
        assert_fault_accounting(&r);
        prop_assert!(
            r.faults.command_failures() > 0,
            "storm at severity {severity} must inject something"
        );
        let logical = ssd.logical_pages();
        prop_assert!(ssd.verify_sanitized(0, logical), "leak at severity {severity}");
    }

    /// Fault-stream continuity: the fault model's only mutable state (the
    /// per-location attempt ordinals behind every draw) travels in the
    /// checkpoint, so a storm run that stops and resumes from bytes
    /// injects *exactly* the draws of the uninterrupted run — the
    /// injected-fault vs response accounting identities hold with no
    /// draw double-counted or lost across the boundary.
    #[test]
    fn fault_accounting_survives_a_checkpoint_boundary(
        severity in 0.05f64..0.9,
        seed in any::<u64>(),
    ) {
        let cfg = storm_cfg(severity, seed);
        let mut a = Emulator::new(cfg, SanitizePolicy::evanesco());
        churn_rounds(&mut a, 0..3);

        let mut b = Emulator::new(cfg, SanitizePolicy::evanesco());
        churn_rounds(&mut b, 0..1);
        let bytes = b.save_checkpoint();
        drop(b);
        let mut b = Emulator::restore_checkpoint(&bytes).expect("storm checkpoint restores");
        churn_rounds(&mut b, 1..3);

        let (ra, rb) = (a.result(), b.result());
        prop_assert!(
            ra.faults.command_failures() > 0,
            "storm at severity {severity} must inject something"
        );
        assert_fault_accounting(&ra);
        assert_fault_accounting(&rb);
        prop_assert_eq!(&ra, &rb, "fault draws diverged across the checkpoint boundary");
        prop_assert_eq!(a.prometheus_scrape(), b.prometheus_scrape());
        prop_assert_eq!(a.save_checkpoint(), b.save_checkpoint());
        b.ftl().check_invariants();
    }

    /// A power cut anywhere inside a fault storm — including mid-ladder,
    /// mid-relocation, or mid-retirement — recovers to a device that is
    /// sanitized, consistent, and serves new work.
    #[test]
    fn power_cut_mid_storm_recovers_sanitized(
        cut_frac in 0.02f64..0.98,
        seed in any::<u64>(),
    ) {
        let cfg = storm_cfg(0.6, seed);

        // Horizon run: measure the undisturbed trace so the cut lands
        // somewhere inside the replay.
        let mut probe = Emulator::new(cfg, SanitizePolicy::evanesco());
        churn(&mut probe, 2);
        let horizon = probe.result().sim_time;
        prop_assert!(horizon > Nanos(2));
        let cut = Nanos(((horizon.0 as f64 * cut_frac) as u64).max(1));

        let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
        ssd.power_cut_at(cut);
        churn(&mut ssd, 2);
        prop_assert!(ssd.powered_off(), "cut at {cut} inside horizon {horizon} must fire");
        let retired_before = ssd.ftl().retired_block_count();
        ssd.recover();
        // The grown-bad-block table is rebuilt from on-flash marks: no
        // retirement recorded before the cut is forgotten.
        prop_assert!(ssd.ftl().retired_block_count() >= retired_before);
        ssd.ftl().check_invariants();
        let logical = ssd.logical_pages();
        prop_assert!(ssd.verify_sanitized(0, logical), "leak across power cut");
        // The device serves and acknowledges new work after recovery
        // (unless the storm already exhausted the spare reserve).
        if ssd.ftl().degraded() != DegradedMode::ReadOnly {
            let tracked = ssd.write_tracked(0, 1, true);
            prop_assert!(tracked[0].1, "recovered device must ack writes");
        }
        prop_assert_eq!(ssd.read(5, 1).len(), 1);
    }
}

/// The paper's weakest design corner — `(Vp1, 100 µs)`, per-cell flag
/// success 47.3 %, so the k = 9 majority `pLock` fails roughly half the
/// time — must still sanitize everything via the retry/escalation ladder.
#[test]
fn weak_flag_corner_stays_sanitized() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.ftl.faults = FaultConfig::calibrated(DesignPoint::new(1, 100), 0.0, 42);
    assert!(cfg.ftl.faults.plock_fail > 0.4, "corner must be weak");
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    churn(&mut ssd, 2);
    let r = ssd.result();
    assert!(r.ftl.plock_retries > 0, "the ladder must have been exercised: {:?}", r.ftl);
    assert_fault_accounting(&r);
    let logical = ssd.logical_pages();
    assert!(ssd.verify_sanitized(0, logical), "leak at the weak flag corner");
    ssd.ftl().check_invariants();
}

/// Hard erase failures retire blocks into the grown-bad table, degrade
/// the device through `SpareLow` into `ReadOnly`, and keep serving reads.
#[test]
fn erase_failures_degrade_to_read_only_but_reads_survive() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.ftl.faults = FaultConfig { erase_fail: 1.0, seed: 5, ..FaultConfig::none() };
    // Single chip so the retirement sequence is deterministic.
    cfg.channels = 1;
    cfg.ftl.n_chips = 1;
    let mut ssd = Emulator::new(cfg, SanitizePolicy::erase_based());
    let tags = ssd.write(0, 3, true);
    ssd.trim(0, 1); // erase fails, retires the block
    assert_eq!(ssd.ftl().degraded(), DegradedMode::SpareLow);
    ssd.trim(1, 1); // second retirement exhausts the spare reserve
    assert_eq!(ssd.ftl().degraded(), DegradedMode::ReadOnly);
    assert_eq!(ssd.ftl().retired_block_count(), 2);
    let tracked = ssd.write_tracked(5, 1, false);
    assert!(!tracked[0].1, "read-only mode must reject host writes");
    assert_eq!(ssd.read(2, 1)[0], Some(tags[2]), "reads still serve in read-only mode");
    let r = ssd.result();
    assert_eq!(r.ftl.writes_rejected_readonly, 1);
    assert_fault_accounting(&r);
    let logical = ssd.logical_pages();
    assert!(ssd.verify_sanitized(0, logical));
    ssd.ftl().check_invariants();
}

/// The grown-bad-block table survives a power cut: recovery rebuilds it
/// from the spare-area retirement marks, and the degraded mode follows.
#[test]
fn bad_block_table_survives_power_cut() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.ftl.faults = FaultConfig { erase_fail: 1.0, seed: 5, ..FaultConfig::none() };
    let mut ssd = Emulator::new(cfg, SanitizePolicy::erase_based());
    let tags = ssd.write(0, 4, true);
    ssd.trim(0, 1);
    let retired = ssd.ftl().retired_block_count();
    assert!(retired >= 1, "the failed erase must retire a block");
    // Cut power with the table only in RAM and on-flash marks; the next
    // request dies on the powered-off device.
    ssd.power_cut_at(ssd.result().sim_time + Nanos(1));
    let tracked = ssd.write_tracked(9, 1, false);
    assert!(!tracked[0].1);
    assert!(ssd.powered_off());
    let report = ssd.recover();
    assert_eq!(report.retired_blocks, u64::from(retired), "table rebuilt from marks");
    assert_eq!(ssd.ftl().retired_block_count(), retired);
    assert_eq!(ssd.ftl().degraded(), DegradedMode::SpareLow);
    assert_eq!(ssd.result().recovery.retired_blocks, u64::from(retired));
    for (i, &t) in tags.iter().enumerate().skip(1) {
        assert_eq!(ssd.read(i as u64, 1)[0], Some(t), "live data survives the cycle");
    }
    ssd.ftl().check_invariants();
}

/// The read-retry ladder recovers data, counts its work, and charges the
/// extra sense latency on the timed device.
#[test]
fn read_retries_recover_data_and_cost_time() {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.ftl.faults = FaultConfig {
        read_unc: 0.8,
        read_retry_decay: 0.5,
        read_retry_budget: 4,
        ..FaultConfig::none()
    };
    let mut faulty = Emulator::new(cfg, SanitizePolicy::evanesco());
    let mut clean = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
    for ssd in [&mut faulty, &mut clean] {
        let tags = ssd.write(0, 16, true);
        for (i, &t) in tags.iter().enumerate() {
            assert_eq!(ssd.read(i as u64, 1)[0], Some(t), "retry ladder must recover data");
        }
    }
    let r = faulty.result();
    assert!(r.faults.read_retries > 0, "p = 0.8 over 16 reads must retry");
    assert!(r.sim_time > clean.result().sim_time, "reference-shift retries must cost device time");
}

//! The paper's §6 application-level story through the host file-system
//! façade: files opened secure-by-default vs `O_INSEC`, byte-level
//! contents, and attacker verification after deletes and edits.
//!
//! ```text
//! cargo run --example host_filesystem
//! ```

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::hostfs::{HostFs, OpenMode};
use evanesco::ssd::SsdConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fs = HostFs::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());

    // foo is opened with default (secure) semantics, bar with O_INSEC —
    // exactly the paper's Figure 13 example.
    fs.create("foo", b"patient record: positive", OpenMode::Secure)?;
    fs.create("bar", b"browser cache entry", OpenMode::Insecure)?;
    println!("created foo (secure, {}B) and bar (O_INSEC, {}B)", fs.len("foo")?, fs.len("bar")?);

    // Edit foo: the previous version must become irrecoverable (C2).
    fs.overwrite("foo", b"patient record: negative (corrected)")?;
    println!("foo now reads: {:?}", String::from_utf8_lossy(&fs.read("foo")?));

    // Delete foo entirely (C1).
    fs.delete("foo")?;

    let logical = fs.ssd_mut().logical_pages();
    assert!(fs.ssd_mut().verify_sanitized(0, logical));
    println!("every superseded/deleted version of foo is irrecoverable");

    // bar was O_INSEC: deleting it costs no lock commands at all.
    let locks_before = {
        let r = fs.ssd_mut().result();
        r.plocks + r.blocks_locked
    };
    fs.delete("bar")?;
    let locks_after = {
        let r = fs.ssd_mut().result();
        r.plocks + r.blocks_locked
    };
    assert_eq!(locks_before, locks_after);
    println!("deleting the O_INSEC file issued {} lock commands", locks_after - locks_before);

    let r = fs.ssd_mut().result();
    println!(
        "totals: {} host ops, {} pLocks, {} bLocks, WAF {:.2}",
        r.host_ops, r.plocks, r.blocks_locked, r.waf
    );
    Ok(())
}

//! Power-loss fault injection and secure recovery, end to end.
//!
//! Writes secure data, yanks the power mid-overwrite, shows the dark
//! device rejecting requests, then recovers and demonstrates the crash
//! contract: acknowledged data is served, the interrupted write is atomic,
//! and deleted secured data stays unrecoverable even to a de-soldered-chip
//! attacker.
//!
//! ```bash
//! cargo run --example power_cut            # cut 1800 µs into the overwrite
//! cargo run --example power_cut -- 1      # cut almost immediately
//! cargo run --example power_cut -- 999999 # cut never fires: clean scan
//! ```

use evanesco::ftl::SanitizePolicy;
use evanesco::nand::timing::Nanos;
use evanesco::ssd::{Emulator, FaultPlan, SsdConfig};

fn main() {
    let cut_us: u64 =
        std::env::args().nth(1).map(|s| s.parse().expect("cut offset in µs")).unwrap_or(1800);

    let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());

    // A secure file, plus one we delete before the crash.
    let kept = ssd.write(0, 8, true);
    ssd.write(100, 4, true);
    ssd.trim(100, 4);
    let t0 = ssd.result().sim_time;
    println!("pre-crash: 8 live secure pages, 4 securely deleted ({} ns simulated)", t0.0);

    // Pull the plug partway through a batch of secure overwrites.
    ssd.power_cut_at(t0 + Nanos::from_micros(cut_us));
    let tracked = ssd.write_tracked(0, 8, true);
    let acked = tracked.iter().filter(|&&(_, a)| a).count();
    println!("power cut at +{cut_us} µs: {acked}/8 overwrites acknowledged");
    if ssd.powered_off() {
        assert_eq!(ssd.read(0, 1), vec![None], "dark device must reject reads");
        println!("device is dark: host requests rejected until recovery");
    }

    let report = ssd.recover();
    println!(
        "recovery: scanned {} pages, rebuilt {} mappings, {} torn writes, \
         {} orphaned, {} relocked, {} resealed",
        report.scanned_pages,
        report.rebuilt_mappings,
        report.torn_writes,
        report.orphaned_pages,
        report.relocked_pages,
        report.resealed_blocks,
    );

    // The crash contract, observed through the host interface.
    let after = ssd.read(0, 8);
    for (i, &(tag, was_acked)) in tracked.iter().enumerate() {
        match (was_acked, after[i]) {
            (true, got) => assert_eq!(got, Some(tag), "acked overwrite must be served"),
            (false, got) => {
                assert_ne!(got, Some(tag), "unacked data must never become current")
            }
        }
    }
    let recoverable = ssd.attacker_recoverable_tags();
    assert!(ssd.verify_sanitized(0, 8), "no stale secured version recoverable");
    assert!(ssd.verify_sanitized(100, 4), "deleted file stays deleted across the crash");
    for (i, &(_tag, was_acked)) in tracked.iter().enumerate() {
        if !was_acked && after[i].is_none() {
            assert!(!recoverable.contains(&kept[i]), "vanished old version was sanitized");
        }
    }
    println!("crash contract holds: acked data served, C1/C2 intact, orphans sealed");

    // Back in business.
    assert!(ssd.write_tracked(0, 1, true)[0].1, "post-recovery write must ack");
    let totals = ssd.result().recovery;
    println!(
        "post-recovery write acknowledged; totals: {} recovery in {} ns of scan",
        totals.recoveries, totals.scan_time.0
    );

    // Deterministic schedules: the same seed always yields the same cuts.
    let plan = FaultPlan::from_seed(7, Nanos::from_micros(50_000), 3);
    println!("FaultPlan::from_seed(7, ..): cuts at {:?} ns", plan.cuts());
    assert_eq!(plan, FaultPlan::from_seed(7, Nanos::from_micros(50_000), 3));
}

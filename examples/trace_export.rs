//! Observability self-check and chrome://tracing export (CI-gated).
//!
//! Runs the scheduler benchmark's deterministic mixed trace at queue
//! depth 8 twice — once on the default (tracing-disabled) path, once with
//! request tracing and the live sanitization gauges on — and enforces the
//! observability layer's contract:
//!
//! 1. **schema** — the chrome trace-event export validates against the
//!    checked-in `tests/data/trace_schema.json` (drift fails CI);
//! 2. **timing neutrality** — simulated results are byte-identical with
//!    tracing on and off (observation must never change the experiment);
//! 3. **span invariant** — for every traced request the derived segments
//!    sum exactly to its recorded end-to-end latency;
//! 4. **read latency** — the histogram the PR's headline bugfix
//!    un-discarded is populated;
//! 5. **overhead** — the disabled-tracing path stays within 5% of the
//!    fastest measured configuration (min-of-N wall clock; the disabled
//!    path is a single predicted branch per reservation, so it must never
//!    lose to the enabled path by more than noise).
//!
//! Prints the export path and a Prometheus scrape excerpt, exits 1 on any
//! gate failure.
//!
//! ```bash
//! cargo run --release --example trace_export
//! ```

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{validate_chrome_trace, Emulator, HostOp, SsdConfig};
use evanesco_bench::experiments::scheduler::{mixed_trace, sched_config};
use evanesco_bench::Scale;
use std::time::Instant;

const SCHEMA: &str = include_str!("../tests/data/trace_schema.json");
const QD: usize = 8;
const REPS: usize = 5;
const MAX_DISABLED_OVERHEAD: f64 = 0.05;

fn run_once(cfg: SsdConfig, ops: &[HostOp], traced: bool) -> (Emulator, f64) {
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    if traced {
        ssd.enable_gauges();
        ssd.enable_tracing(1 << 16);
    }
    let t = Instant::now();
    ssd.run_scheduled(ops, QD);
    let wall = t.elapsed().as_secs_f64();
    ssd.flush_coalesced_locks();
    (ssd, wall)
}

fn main() {
    let scale = Scale::smoke();
    let cfg = sched_config(&scale);
    let logical = cfg.ftl.logical_pages();
    let requests = ((logical / 2) as usize).clamp(512, 20_000);
    let ops = mixed_trace(logical, requests, scale.seed);
    let mut failed = false;

    // Min-of-N wall clock for both paths; keep the last emulator of each.
    let mut plain_wall = f64::INFINITY;
    let mut traced_wall = f64::INFINITY;
    let (mut plain, mut traced) = (None, None);
    for _ in 0..REPS {
        let (ssd, w) = run_once(cfg, &ops, false);
        plain_wall = plain_wall.min(w);
        plain = Some(ssd);
        let (ssd, w) = run_once(cfg, &ops, true);
        traced_wall = traced_wall.min(w);
        traced = Some(ssd);
    }
    let plain = plain.unwrap();
    let mut traced = traced.unwrap();

    // Gate 2: observation never changes the experiment.
    let (a, b) = (plain.result(), traced.result());
    if (a.sim_time, a.host_ops, a.ftl) != (b.sim_time, b.host_ops, b.ftl) {
        eprintln!("FAIL: tracing changed simulated results: {a:?} vs {b:?}");
        failed = true;
    } else {
        println!("timing neutral: {} ns simulated either way", a.sim_time.0);
    }

    // Gate 4: the read-latency histogram is populated.
    let reads = b.latency.read;
    if reads.count() == 0 || reads.max().0 == 0 {
        eprintln!("FAIL: read latency histogram empty at qd {QD}");
        failed = true;
    } else {
        println!(
            "read latency: {} samples, p50 {:.1} us, p99 {:.1} us",
            reads.count(),
            reads.percentile(50.0).0 as f64 / 1e3,
            reads.percentile(99.0).0 as f64 / 1e3,
        );
    }

    // Prometheus scrape excerpt (full scrape is ~200 lines).
    let scrape = traced.prometheus_scrape();
    for line in scrape.lines().filter(|l| !l.starts_with('#')) {
        if ["evanesco_iops", "evanesco_waf", "evanesco_vaf", "evanesco_t_insecure"]
            .iter()
            .any(|m| line.starts_with(m))
        {
            println!("scrape: {line}");
        }
    }

    // Gates 1 and 3: schema-valid export, segments tile every request.
    let recorder = traced.take_trace().expect("tracing was enabled");
    for t in recorder.traces() {
        let sum: u64 = t.segments.iter().map(|s| s.dur().0).sum();
        if sum != t.e2e().0 {
            eprintln!("FAIL: request {} spans sum {} != e2e {}", t.id, sum, t.e2e().0);
            failed = true;
            break;
        }
    }
    let json = recorder.to_chrome_json();
    match validate_chrome_trace(&json, SCHEMA) {
        Ok(()) => println!(
            "chrome export: {} traces, {} bytes, schema OK",
            recorder.recorded().min(recorder.capacity() as u64),
            json.len()
        ),
        Err(e) => {
            eprintln!("FAIL: trace schema drift: {e}");
            failed = true;
        }
    }
    let out = std::env::temp_dir().join("evanesco_trace.json");
    std::fs::write(&out, &json).expect("write trace export");
    println!("wrote {} (open in chrome://tracing or Perfetto)", out.display());

    // Gate 5: the disabled path never loses to the enabled one by more
    // than noise. (Its true overhead vs. pre-instrumentation code is one
    // predicted branch per reservation — unmeasurable here; this bounds
    // inverted-gating regressions, e.g. event collection running while
    // disabled.)
    let fastest = plain_wall.min(traced_wall);
    let overhead = plain_wall / fastest - 1.0;
    println!(
        "wall clock (min of {REPS}): disabled {:.1} ms, enabled {:.1} ms, disabled-path overhead {:.1}%",
        plain_wall * 1e3,
        traced_wall * 1e3,
        overhead * 100.0
    );
    if overhead > MAX_DISABLED_OVERHEAD {
        eprintln!(
            "FAIL: disabled-tracing path is {:.1}% over the fastest configuration (max {:.0}%)",
            overhead * 100.0,
            MAX_DISABLED_OVERHEAD * 100.0
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!("all observability gates passed");
}

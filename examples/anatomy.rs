//! Latency anatomy demo: where did every nanosecond of tail latency go?
//!
//! Runs the scheduler benchmark's deterministic mixed trace at queue
//! depth 8 with the anatomy layer enabled, prints the per-stage
//! decomposition aggregate and the **top-5 slowest requests** with their
//! causal chains (which sanitization lock, GC copy, or retry actually
//! occupied the resource they were stuck behind), and enforces the
//! layer's core contract on every recorded request:
//!
//! > QoS wait + queue wait + dispatch stall + transfer + chip service
//! > + sanitize/GC/retry interference **== end-to-end latency, exactly**.
//!
//! Exits 1 on any tiling violation.
//!
//! ```bash
//! cargo run --release --example anatomy
//! ```

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::anatomy::REQ_KINDS;
use evanesco::ssd::{Emulator, Stage};
use evanesco_bench::experiments::scheduler::{mixed_trace, sched_config};
use evanesco_bench::Scale;

const QD: usize = 8;
const TOP: usize = 5;

fn main() {
    let scale = Scale::smoke();
    let cfg = sched_config(&scale);
    let logical = cfg.ftl.logical_pages();
    let requests = ((logical / 2) as usize).clamp(512, 20_000);
    let ops = mixed_trace(logical, requests, scale.seed);

    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    ssd.enable_anatomy(ops.len(), TOP);
    ssd.run_scheduled(&ops, QD);
    let an = ssd.take_anatomy().expect("anatomy was enabled");

    // Aggregate stage shares across all request kinds.
    let mut stage_ns = [0u64; Stage::COUNT];
    let mut e2e_ns = 0u64;
    let mut violations = 0u64;
    for row in an.rows() {
        if row.stage_sum() != row.e2e() {
            eprintln!(
                "FAIL: request {} ({}) stages sum {} ns != e2e {} ns",
                row.trace_id,
                row.kind.label(),
                row.stage_sum().0,
                row.e2e().0
            );
            violations += 1;
        }
        e2e_ns += row.e2e().0;
        for s in Stage::ALL {
            stage_ns[s.idx()] += row.stage(s).0;
        }
    }

    println!(
        "anatomy: {} requests recorded ({} evicted), qd {QD}, {} kinds",
        an.recorded(),
        an.dropped(),
        REQ_KINDS.len()
    );
    println!("\nstage decomposition (share of total end-to-end time):");
    for s in Stage::ALL {
        let share = if e2e_ns == 0 { 0.0 } else { stage_ns[s.idx()] as f64 / e2e_ns as f64 };
        println!(
            "  {:<22} {:>10.3} ms  {:>6.2}%",
            s.label(),
            stage_ns[s.idx()] as f64 / 1e6,
            share * 100.0
        );
    }

    println!("\ntop-{TOP} slowest requests with causal chains:");
    for row in an.top() {
        let dominant =
            Stage::ALL.into_iter().max_by_key(|s| row.stage(*s)).expect("stage list is non-empty");
        println!(
            "  #{} {} lpa {} x{}: e2e {:.1} us, dominant stage {} ({:.1} us, interference {:.1} us)",
            row.trace_id,
            row.kind.label(),
            row.lpa,
            row.npages,
            row.e2e().0 as f64 / 1e3,
            dominant.label(),
            row.stage(dominant).0 as f64 / 1e3,
            row.interference().0 as f64 / 1e3,
        );
        for link in &row.chain {
            println!(
                "      [{:>9}..{:>9}] {:>7.1} us  {} <- {} ({}{})",
                link.start.0,
                link.end.0,
                link.dur().0 as f64 / 1e3,
                link.stage.label(),
                link.kind.label(),
                if link.own { "own " } else { "neighbor " },
                link.cause.label(),
            );
        }
    }

    if violations > 0 {
        eprintln!("\nFAIL: {violations} tiling violations — stage sums must equal e2e exactly");
        std::process::exit(1);
    }
    println!("\nall {} requests tile exactly: stage sum == end-to-end latency", an.recorded());
}

//! Reruns the paper's design-space explorations (Figures 9 and 12) and
//! prints the parameter funnel that selects the `pLock` and `bLock`
//! programming points.
//!
//! ```text
//! cargo run --example design_space
//! ```

use evanesco::core::calibration::{plock_flag_success, DesignPoint};
use evanesco::core::dse::{explore_block, explore_plock, Region};
use evanesco::core::pap::majority_failure_prob;

fn main() {
    let plock = explore_plock(9);
    let block = explore_block();

    println!("pLock funnel (15 grid points):");
    for region in [Region::RegionI, Region::RegionII, Region::Candidate] {
        let pts: Vec<String> = plock
            .evals
            .iter()
            .filter(|e| e.region == region)
            .map(|e| format!("(Vp{},{}us)", e.point.v_index, e.point.t_us))
            .collect();
        println!("  {region:?}: {}", pts.join(" "));
    }
    println!(
        "  selected {} = (Vp{}, {}us); weakest-corner flag success was {:.1}%",
        plock.selected_label,
        plock.selected.v_index,
        plock.selected.t_us,
        100.0 * plock_flag_success(DesignPoint::new(1, 100))
    );
    println!(
        "  5-year majority-failure probability at the selected point: {:.2e}",
        majority_failure_prob(plock.selected, 5.0 * 365.0, 9)
    );

    println!("\nbLock funnel (18 grid points):");
    for region in [Region::RegionI, Region::Candidate] {
        let pts: Vec<String> = block
            .evals
            .iter()
            .filter(|e| e.region == region)
            .map(|e| format!("(Vb{},{}us)", e.point.v_index, e.point.t_us))
            .collect();
        println!("  {region:?}: {}", pts.join(" "));
    }
    println!(
        "  selected {} = (Vb{}, {}us)",
        block.selected_label, block.selected.v_index, block.selected.t_us
    );

    println!("\npaper outcome reproduced: pLock (Vp4, 100us) with k = 9; bLock (Vb6, 300us).");
}

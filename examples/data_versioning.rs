//! A miniature of the paper's §3 data-versioning study: run the DBServer
//! workload on a conventional SSD, watch stale versions accumulate, then
//! run the same trace on SecureSSD and watch them disappear.
//!
//! ```text
//! cargo run --release --example data_versioning
//! ```

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{Emulator, SsdConfig};
use evanesco::workloads::generate::generate;
use evanesco::workloads::replay::replay_with;
use evanesco::workloads::vertrace::VerTrace;
use evanesco::workloads::WorkloadSpec;

fn run(policy: SanitizePolicy) -> (String, evanesco::workloads::VerTraceReport) {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.track_tags = false;
    cfg.stale_audit = false;
    let mut ssd = Emulator::new(cfg, policy);
    let logical = ssd.logical_pages();
    let trace = generate(&WorkloadSpec::db_server(), logical, 2 * logical, 42);
    let mut vt = VerTrace::new();
    replay_with(&mut ssd, &trace, &mut vt);
    (policy.to_string(), vt.report(logical))
}

fn main() {
    println!("DBServer workload, 2x capacity written, per-file version stats:\n");
    for policy in [SanitizePolicy::none(), SanitizePolicy::evanesco()] {
        let (name, report) = run(policy);
        println!("[{name}]");
        println!(
            "  UV files: n={:4}  VAF avg {:.3} max {:.2}   T_insecure avg {:.3} max {:.2}",
            report.uv.n_files,
            report.uv.vaf_avg,
            report.uv.vaf_max,
            report.uv.tinsec_avg,
            report.uv.tinsec_max
        );
        println!(
            "  MV files: n={:4}  VAF avg {:.3} max {:.2}   T_insecure avg {:.3} max {:.2}\n",
            report.mv.n_files,
            report.mv.vaf_avg,
            report.mv.vaf_max,
            report.mv.tinsec_avg,
            report.mv.tinsec_max
        );
    }
    println!(
        "the baseline SSD accumulates stale versions of heavily-updated (MV) files;\n\
         SecureSSD locks every stale version at invalidation, so VAF collapses to 0."
    );
}

//! Fault-storm demonstration: the runtime reliability manager under
//! deterministic, seedable chip-failure injection.
//!
//! Drives an overwrite/trim-heavy secure workload while the chips fail
//! `pLock`/`bLock` verifies, program statuses, and erases at a chosen
//! storm severity, then prints the full reliability ledger: every
//! injected hazard next to the escalation-ladder response that absorbed
//! it (retry, escalation, per-page fallback, remap, retirement). Ends
//! with a power cycle to show the grown-bad-block table being rebuilt
//! from the on-flash spare-area marks.
//!
//! Exits non-zero if any secured version is recoverable by a
//! de-soldered-chip attacker, or if an injected fault is unaccounted for.
//!
//! ```bash
//! cargo run --example fault_storm             # low, mid, and high storms
//! cargo run --example fault_storm -- high     # one severity (CI matrix)
//! cargo run --example fault_storm -- 0.42 7   # custom severity and seed
//! ```

use evanesco::core::fault::FaultConfig;
use evanesco::ftl::observer::NullObserver;
use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{Emulator, SsdConfig};

fn severity_of(name: &str) -> f64 {
    match name {
        "low" => 0.05,
        "mid" => 0.35,
        "high" => 0.8,
        other => other.parse().expect("severity: low | mid | high | <float in [0,1]>"),
    }
}

/// Overwrite/trim churn over secured data: plenty of dead pages for the
/// lock ladders, plenty of GC erases for the retirement path.
fn churn(ssd: &mut Emulator, rounds: u64) {
    let span = ssd.logical_pages() / 2;
    for round in 0..rounds {
        for l in 0..span {
            let _ = ssd.write_tracked((l * 7 + round) % span, 1, true);
        }
        let _ = ssd.trim_with(&mut NullObserver, (round * 13) % (span / 2), span / 8);
    }
    ssd.flush_coalesced_locks();
}

fn run_storm(name: &str, severity: f64, seed: u64) -> bool {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.ftl.faults = FaultConfig::storm(severity, seed);
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    churn(&mut ssd, 3);

    let r = ssd.result();
    let f = r.faults;
    let s = r.ftl;
    println!("== fault storm `{name}` (severity {severity}, seed {seed}) ==");
    println!(
        "injected:  {} pLock, {} bLock, {} program, {} erase failures; \
         {} read retries, {} uncorrectable",
        f.plock_failures,
        f.block_lock_failures,
        f.program_failures,
        f.erase_failures,
        f.read_retries,
        f.unc_reads,
    );
    println!(
        "responses: {} pLock retries, {} block escalations, {} scrub fallbacks",
        s.plock_retries, s.plock_escalations, s.lock_scrub_fallbacks,
    );
    println!(
        "           {} bLock retries, {} per-page fallbacks, {} program remaps",
        s.block_lock_retries, s.block_lock_fallbacks, s.program_fail_remaps,
    );
    println!(
        "           {} erase retries, {} blocks retired, {} pages relocated, \
         {} writes rejected (read-only)",
        s.erase_retries, s.retired_blocks, s.reliability_relocations, s.writes_rejected_readonly,
    );
    println!("mode: {:?}, grown-bad table: {} blocks", ssd.ftl().degraded(), s.retired_blocks);

    // Every injected command failure must map to exactly one response.
    let accounted = f.plock_failures
        == s.plock_retries + s.plock_escalations + s.lock_scrub_fallbacks
        && f.block_lock_failures == s.block_lock_retries + s.block_lock_fallbacks
        && f.program_failures == s.program_fail_remaps
        && f.erase_failures == s.erase_retries + s.retired_blocks;
    if !accounted {
        println!("FAIL: injected faults not fully accounted for");
        return false;
    }

    // The sanitization contract: no superseded or deleted secured version
    // is recoverable even by de-soldering every chip.
    let logical = ssd.logical_pages();
    if !ssd.verify_sanitized(0, logical) {
        println!("FAIL: a secured version is attacker-recoverable");
        return false;
    }
    ssd.ftl().check_invariants();

    // Power cycle: the grown-bad-block table and the degraded mode must
    // be rebuilt from the on-flash retirement marks alone.
    let retired = ssd.ftl().retired_block_count();
    let report = ssd.recover();
    if report.retired_blocks != u64::from(retired) {
        println!(
            "FAIL: bad-block table lost across power cycle ({} vs {retired})",
            report.retired_blocks
        );
        return false;
    }
    if !ssd.verify_sanitized(0, logical) {
        println!("FAIL: leak after recovery");
        return false;
    }
    println!(
        "power cycle: {} retired blocks rediscovered, mode {:?}, still sanitized\n",
        report.retired_blocks,
        ssd.ftl().degraded(),
    );
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args.get(1).map(|s| s.parse().expect("seed")).unwrap_or(42);
    let storms: Vec<(String, f64)> = match args.first() {
        Some(name) => vec![(name.clone(), severity_of(name))],
        None => {
            ["low", "mid", "high"].into_iter().map(|n| (n.to_string(), severity_of(n))).collect()
        }
    };
    let mut ok = true;
    for (name, severity) in &storms {
        ok &= run_storm(name, *severity, seed);
    }
    if !ok {
        std::process::exit(1);
    }
    println!("all storms absorbed: sanitization guarantee held throughout");
}

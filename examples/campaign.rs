//! A two-segment checkpointed aging campaign, differentially verified.
//!
//! Runs the same smoke-scale DB-server workload twice: once chained
//! through a checkpoint (run segment 0, serialize the whole device,
//! rebuild it from the bytes, run segment 1) and once uninterrupted.
//! The two arms must end **byte-identical** — same final checkpoint,
//! same Prometheus scrape, same per-segment digests. Exits 1 on any
//! divergence, which is exactly the gate the CI `campaign-gate` job
//! enforces across real process restarts.
//!
//! ```bash
//! cargo run --release --example campaign            # default: midlife aging
//! cargo run --release --example campaign -- worn    # heavy wear + 90 rest days
//! ```

use evanesco_bench::experiments::campaign;
use evanesco_bench::Scale;

fn main() {
    let scenario = match std::env::args().nth(1) {
        None => campaign::default_scenario(),
        Some(name) => campaign::scenario_by_name(&name).unwrap_or_else(|| {
            eprintln!(
                "unknown scenario '{name}' (known: {})",
                campaign::scenarios().map(|s| s.name).join(" ")
            );
            std::process::exit(1);
        }),
    };
    let scale = Scale::smoke();
    let segments = 2;
    println!("campaign: scenario '{}', {} segments, smoke scale", scenario.name, segments);

    let (chained_ckpt, chained_scrape, chained_digests) =
        campaign::run_chained(&scale, &scenario, segments);
    let (base_ckpt, base_scrape, base_digests) =
        campaign::run_uninterrupted(&scale, &scenario, segments);

    for d in &chained_digests {
        println!(
            "  segment {}: {} host ops, {} ns simulated, {} windows, {} erases, mode {}",
            d.segment, d.host_ops, d.sim_ns, d.windows, d.erases, d.mode
        );
    }

    let mut diverged = false;
    if chained_digests != base_digests {
        eprintln!("DIVERGED: per-segment digests differ between chained and uninterrupted runs");
        diverged = true;
    }
    if chained_scrape != base_scrape {
        eprintln!("DIVERGED: final Prometheus scrapes differ");
        diverged = true;
    }
    if chained_ckpt != base_ckpt {
        eprintln!(
            "DIVERGED: final checkpoints differ ({} vs {} bytes)",
            chained_ckpt.len(),
            base_ckpt.len()
        );
        diverged = true;
    }
    if diverged {
        std::process::exit(1);
    }
    println!(
        "resume-equivalent: chained and uninterrupted runs are byte-identical \
         ({}-byte final checkpoint)",
        chained_ckpt.len()
    );
}

//! The full threat-model walkthrough (paper §5.1): a user's photos are
//! deleted, the device is stolen, the chips are de-soldered and dumped
//! through every flash interface path — and the deleted photos are gone,
//! while the surviving files are intact.
//!
//! ```text
//! cargo run --example secure_delete
//! ```

use evanesco::core::threat::Attacker;
use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{Emulator, SsdConfig};

fn main() {
    let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());

    // The user stores two "photos" (3 pages each) and a shopping list the
    // app opened with O_INSEC (no security requirement).
    let photo_a = ssd.write(0, 3, true);
    let photo_b = ssd.write(3, 3, true);
    let shopping_list = ssd.write(6, 2, false);
    println!("photo A tags {photo_a:?}");
    println!("photo B tags {photo_b:?}");
    println!("shopping list tags {shopping_list:?}");

    // The user deletes photo A. One trim, immediate locks.
    ssd.trim(0, 3);
    println!("deleted photo A ({} pLocks issued so far)", ssd.result().plocks);

    // The phone is stolen. The attacker de-solders every chip and dumps it.
    let attacker = Attacker::new();
    let chips: Vec<_> = ssd.device_mut().chips().to_vec();
    let mut recovered = std::collections::HashSet::new();
    for chip in &chips {
        let mut image = attacker.desolder(chip);
        recovered.extend(attacker.recoverable_tags(&mut image));
    }

    for t in &photo_a {
        assert!(!recovered.contains(t), "deleted photo page {t} leaked!");
    }
    println!("deleted photo A: 0/{} pages recovered", photo_a.len());

    let b_found = photo_b.iter().filter(|t| recovered.contains(t)).count();
    println!("photo B (not deleted): {b_found}/{} pages recovered (expected: all)", photo_b.len());
    assert_eq!(b_found, photo_b.len());

    // Locked pages can only be reused after a physical erase, which also
    // destroys the data — show the lifecycle by refilling the SSD.
    let logical = ssd.logical_pages();
    for l in 0..logical {
        ssd.write(l, 1, true);
    }
    assert!(ssd.verify_sanitized(0, logical));
    println!("after reuse, every superseded version remains irrecoverable");
}

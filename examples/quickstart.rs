//! Quickstart: create a SecureSSD, store a secret, delete it, and watch a
//! raw-chip attacker come up empty.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use evanesco::ftl::SanitizePolicy;
use evanesco::ssd::{Emulator, SsdConfig};

fn main() {
    // An Evanesco-enabled SSD (the paper's secSSD).
    let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());

    // Write a 4-page file with the default (secure) requirement.
    let tags = ssd.write(0, 4, true);
    println!("wrote 4 secure pages, content tags {tags:?}");
    assert_eq!(ssd.read(0, 4).iter().flatten().count(), 4);

    // Delete it. The FTL locks the pages the moment they are invalidated.
    ssd.trim(0, 4);
    let r = ssd.result();
    println!("deleted; lock commands issued: {} pLock / {} bLock", r.plocks, r.blocks_locked);

    // A maximally-capable attacker (de-soldered chips, raw interface access,
    // all keys) cannot recover any deleted version.
    assert!(ssd.verify_sanitized(0, 4));
    println!("attacker verification passed: deleted data is irrecoverable");

    // Contrast: the same flow on a conventional SSD leaks everything.
    let mut plain = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::none());
    plain.write(0, 4, true);
    plain.trim(0, 4);
    assert!(!plain.verify_sanitized(0, 4));
    println!("baseline SSD leaks the same deleted data to the attacker");
}

//! Sanitization policies — which mechanism the FTL invokes when a
//! *secured* page is invalidated (paper §6 and §7).

use std::fmt;

/// The sanitization mechanism an FTL applies to invalidated secured pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizePolicy {
    /// No sanitization — the insecure baseline SSD. Deleted data lingers
    /// until GC happens to erase it.
    None,
    /// Evanesco: `pLock` individual pages; optionally use `bLock` when an
    /// entire block can be sanitized at once (`use_block`).
    Evanesco {
        /// Whether `bLock` may be used (`false` models `secSSD_nobLock`).
        use_block: bool,
    },
    /// erSSD: immediately erase the block containing the secured page,
    /// relocating all its other valid pages first.
    EraseBased,
    /// scrSSD: copy the valid sibling pages off the wordline, then destroy
    /// the wordline in place with a one-shot scrub.
    Scrub,
}

impl SanitizePolicy {
    /// The insecure baseline.
    pub fn none() -> Self {
        SanitizePolicy::None
    }

    /// SecureSSD with both lock commands (the paper's `secSSD`).
    pub fn evanesco() -> Self {
        SanitizePolicy::Evanesco { use_block: true }
    }

    /// SecureSSD without `bLock` (the paper's `secSSD_nobLock` ablation).
    pub fn evanesco_no_block() -> Self {
        SanitizePolicy::Evanesco { use_block: false }
    }

    /// The erase-based baseline (`erSSD`).
    pub fn erase_based() -> Self {
        SanitizePolicy::EraseBased
    }

    /// The scrubbing baseline (`scrSSD`).
    pub fn scrub() -> Self {
        SanitizePolicy::Scrub
    }

    /// Whether this policy guarantees `N_invalid(f, t) = 0` at all times for
    /// secured files (immediate sanitization).
    pub fn is_immediate(&self) -> bool {
        !matches!(self, SanitizePolicy::None)
    }
}

impl fmt::Display for SanitizePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SanitizePolicy::None => "baseline",
            SanitizePolicy::Evanesco { use_block: true } => "secSSD",
            SanitizePolicy::Evanesco { use_block: false } => "secSSD_nobLock",
            SanitizePolicy::EraseBased => "erSSD",
            SanitizePolicy::Scrub => "scrSSD",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper() {
        assert_eq!(SanitizePolicy::evanesco().to_string(), "secSSD");
        assert_eq!(SanitizePolicy::evanesco_no_block().to_string(), "secSSD_nobLock");
        assert_eq!(SanitizePolicy::erase_based().to_string(), "erSSD");
        assert_eq!(SanitizePolicy::scrub().to_string(), "scrSSD");
        assert_eq!(SanitizePolicy::none().to_string(), "baseline");
    }

    #[test]
    fn immediacy() {
        assert!(!SanitizePolicy::none().is_immediate());
        assert!(SanitizePolicy::evanesco().is_immediate());
        assert!(SanitizePolicy::erase_based().is_immediate());
        assert!(SanitizePolicy::scrub().is_immediate());
    }
}

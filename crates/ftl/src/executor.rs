//! The executor abstraction between FTL logic and the flash devices.
//!
//! The FTL decides *what* NAND operations happen; an executor applies them
//! to chips and (in the SSD emulator) accounts simulated time on the right
//! channel/chip resources. Keeping the FTL generic over the executor lets
//! unit tests drive it with a plain in-memory device array and lets the
//! emulator add timing without touching FTL logic.

use crate::addr::GlobalPpa;
use evanesco_core::chip::{EvanescoChip, FlagState, ReadResult};
use evanesco_core::fault::FaultConfig;
pub use evanesco_core::fault::OpStatus;
use evanesco_nand::chip::{PageContent, PageData, PageOob};
use evanesco_nand::geometry::{BlockId, Geometry, Ppa};
use evanesco_nand::timing::Nanos;

/// Why the FTL is issuing the commands inside the current cause scope —
/// the attribution tag the latency-anatomy layer stamps onto trace
/// events so a blocked request can name *what kind of work* occupied
/// its resource (see `evanesco-ssd`'s `anatomy` module).
///
/// Causes nest (GC can trigger emergency GC, an escalation can scrub):
/// executors that care keep a stack via [`NandExecutor::push_cause`] /
/// [`NandExecutor::pop_cause`] and stamp the innermost entry. The tag is
/// purely observational — it must never change command timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OpCause {
    /// Foreground host-request work (the default outside any scope).
    #[default]
    Host,
    /// Garbage collection: victim selection, live-page copy, reclaim
    /// erases (including the lazy erase when opening a reclaimable block).
    Gc,
    /// Sanitization beyond the per-command lock kinds: erase-based or
    /// scrub-based sanitize passes and their sibling relocations.
    Sanitize,
    /// Fault-ladder work: reliability escalations, block retirement, and
    /// read-retry rounds.
    Retry,
}

impl OpCause {
    /// Stable lowercase label (Prometheus / chrome-trace args).
    pub fn label(self) -> &'static str {
        match self {
            OpCause::Host => "host",
            OpCause::Gc => "gc",
            OpCause::Sanitize => "sanitize",
            OpCause::Retry => "retry",
        }
    }
}

/// What a recovery scan learns about one physical page: occupancy, torn
/// state, lock margin, and (when readable) the FTL's OOB metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageProbe {
    /// Written (programmed, torn, or destroyed) since the last erase.
    pub written: bool,
    /// Holds a program interrupted by a power cut.
    pub torn: bool,
    /// Margin-read state of the page's pAP cells.
    pub lock: FlagState,
    /// OOB metadata, when the page decodes and is not access-blocked.
    pub oob: Option<PageOob>,
}

/// What a recovery scan learns about one block before touching its pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockProbe {
    /// Next in-order program index (pages `0..next_program` are occupied).
    pub next_program: u32,
    /// The last erase of this block was interrupted (blank-check signature).
    pub torn_erase: bool,
    /// Margin-read state of the block's SSL (bAP) cells.
    pub lock: FlagState,
    /// The block carries the grown-bad retirement mark in its spare area.
    pub bad: bool,
}

/// Executes NAND operations for the FTL.
///
/// Implementations must apply each operation to the addressed chip;
/// timing-aware implementations additionally account latency.
pub trait NandExecutor {
    /// Reads a page; returns its data if it is programmed and not locked.
    fn read(&mut self, at: GlobalPpa) -> Option<PageData>;
    /// Programs a page, reporting the chip's pass/fail status. On `Failed`
    /// the page is consumed but holds an unreliable partial program.
    fn program(&mut self, at: GlobalPpa, data: PageData) -> OpStatus;
    /// Erases a block, reporting pass/fail. On `Failed` nothing was erased:
    /// data and lock flags keep their state.
    fn erase(&mut self, chip: usize, block: BlockId) -> OpStatus;
    /// Issues `pLock` on a page, reporting flag-program verify status. On
    /// `Failed` the flag cells are left torn (page still readable).
    fn p_lock(&mut self, at: GlobalPpa) -> OpStatus;
    /// Issues `bLock` on a block, reporting SSL-program verify status.
    fn b_lock(&mut self, chip: usize, block: BlockId) -> OpStatus;
    /// Destroys a page in place (one-shot scrub). Infallible: the scrub
    /// pulse needs no verify — it only has to move cells off their read
    /// levels, which a partial pulse already does.
    fn scrub(&mut self, at: GlobalPpa);
    /// Programs the grown-bad retirement sentinel into a block's spare
    /// area (see [`EvanescoChip::mark_bad_block`]).
    fn mark_bad(&mut self, chip: usize, block: BlockId);
    /// Recovery-scan probe of one page (costs a page read on timed
    /// implementations: the scan reads the page to get its OOB).
    fn probe_page(&mut self, at: GlobalPpa) -> PageProbe;
    /// Recovery-scan probe of one block (status-register class, untimed).
    fn probe_block(&mut self, chip: usize, block: BlockId) -> BlockProbe;
    /// Busy-waits `dur` on a chip (lock-retry backoff). Untimed
    /// implementations ignore it.
    fn stall(&mut self, _chip: usize, _dur: Nanos) {}

    /// Enters a cause scope: until the matching [`NandExecutor::pop_cause`],
    /// commands are attributed to `cause` (innermost scope wins). Purely
    /// observational; untimed executors ignore it.
    fn push_cause(&mut self, _cause: OpCause) {}

    /// Leaves the innermost cause scope (no-op when none is open).
    fn pop_cause(&mut self) {}

    /// Current value of the executor's clock, for observational timestamps
    /// (the FTL decision log). Reading it never advances time or issues a
    /// command, so instrumentation stays timing-neutral. Untimed
    /// implementations without any clock return zero.
    fn now(&self) -> Nanos {
        Nanos::ZERO
    }

    // -----------------------------------------------------------------
    // Dispatch/complete split (out-of-order host scheduling)
    // -----------------------------------------------------------------
    //
    // The multi-queue scheduler dispatches independent host requests with
    // an explicit dependency time (the moment the request's queue slot and
    // its per-LPA predecessors are done). A timed executor must therefore
    // distinguish *when a command chain may start* from *when it finishes*:
    // `begin_dispatch(earliest)` opens a window whose commands start no
    // earlier than `earliest` on their chip/channel resources, and
    // `end_dispatch` reports the completion time of everything issued in
    // the window. Untimed executors have no clock, so the defaults are
    // no-ops returning time zero.

    /// Opens a dispatch window: until [`NandExecutor::end_dispatch`], every
    /// command starts no earlier than `earliest` on its resources.
    fn begin_dispatch(&mut self, _earliest: Nanos) {}

    /// Closes the dispatch window and returns the simulated completion
    /// time of all commands issued inside it (zero on untimed executors).
    fn end_dispatch(&mut self) -> Nanos {
        Nanos::ZERO
    }
}

/// Shared [`NandExecutor::probe_page`] logic over one chip.
pub fn probe_page_on(chip: &mut EvanescoChip, ppa: Ppa) -> PageProbe {
    let written = chip.page_is_written(ppa).expect("probe in range");
    let torn = chip.page_is_torn(ppa).expect("probe in range");
    let lock = chip.page_flag_state(ppa);
    let oob = if written && !chip.is_access_blocked(ppa) {
        chip.read(ppa).expect("probe in range").result.data().and_then(|d| d.oob())
    } else {
        None
    };
    PageProbe { written, torn, lock, oob }
}

/// Shared [`NandExecutor::probe_block`] logic over one chip.
pub fn probe_block_on(chip: &EvanescoChip, block: BlockId) -> BlockProbe {
    BlockProbe {
        next_program: chip.next_program_index(block),
        torn_erase: chip.block_torn_erase(block).expect("probe in range"),
        lock: chip.block_flag_state(block),
        bad: chip.is_marked_bad(block),
    }
}

/// A plain executor over an array of Evanesco chips with no timing — used
/// by FTL unit tests and functional (non-performance) experiments.
///
/// It keeps a monotonic operation counter as its clock: every NAND command
/// advances it by one, so erase timestamps are distinct and strictly
/// ordered no matter how calls interleave (the chips use the timestamp to
/// order erase→program open intervals).
#[derive(Debug, Clone)]
pub struct MemExecutor {
    chips: Vec<EvanescoChip>,
    /// Monotonic operation counter; doubles as the clock for operations
    /// (like erase) that must record a strictly increasing timestamp.
    ops: u64,
}

impl MemExecutor {
    /// Creates `n_chips` chips with the given geometry.
    pub fn new(geom: Geometry, n_chips: usize) -> Self {
        MemExecutor { chips: (0..n_chips).map(|_| EvanescoChip::new(geom)).collect(), ops: 0 }
    }

    /// Creates `n_chips` chips with the fault model armed on each (chips
    /// are decorrelated by index).
    pub fn with_faults(geom: Geometry, n_chips: usize, faults: FaultConfig) -> Self {
        let mut ex = Self::new(geom, n_chips);
        for (i, chip) in ex.chips.iter_mut().enumerate() {
            chip.enable_faults(faults, i as u64);
        }
        ex
    }

    /// Aggregated injected-fault counters across all chips.
    pub fn fault_totals(&self) -> evanesco_core::fault::FaultStats {
        let mut total = evanesco_core::fault::FaultStats::default();
        for chip in &self.chips {
            total.absorb(chip.fault_stats());
        }
        total
    }

    /// Advances the monotonic op counter and returns its new value as a
    /// timestamp (one tick per NAND command).
    fn tick(&mut self) -> Nanos {
        self.ops += 1;
        Nanos(self.ops)
    }

    /// Total NAND commands executed (the op-counter clock's current value).
    pub fn ops_executed(&self) -> u64 {
        self.ops
    }

    /// The underlying chips.
    pub fn chips(&self) -> &[EvanescoChip] {
        &self.chips
    }

    /// Mutable access (e.g. to hand a chip to an attacker).
    pub fn chips_mut(&mut self) -> &mut [EvanescoChip] {
        &mut self.chips
    }

    /// Consumes the executor, returning the chips.
    pub fn into_chips(self) -> Vec<EvanescoChip> {
        self.chips
    }
}

impl NandExecutor for MemExecutor {
    fn read(&mut self, at: GlobalPpa) -> Option<PageData> {
        self.tick();
        let out = self.chips[at.chip].read(at.ppa).expect("FTL issues in-range reads");
        match out.result {
            ReadResult::Locked => None,
            ReadResult::Content(PageContent::Data(d)) => Some(d),
            ReadResult::Content(_) => None,
        }
    }

    fn program(&mut self, at: GlobalPpa, data: PageData) -> OpStatus {
        self.tick();
        self.chips[at.chip].program(at.ppa, data).expect("FTL issues legal programs");
        self.chips[at.chip].status()
    }

    fn erase(&mut self, chip: usize, block: BlockId) -> OpStatus {
        let now = self.tick();
        self.chips[chip].erase(block, now).expect("FTL erases in-range blocks");
        self.chips[chip].status()
    }

    fn p_lock(&mut self, at: GlobalPpa) -> OpStatus {
        self.tick();
        self.chips[at.chip].p_lock(at.ppa).expect("FTL locks programmed pages");
        self.chips[at.chip].status()
    }

    fn b_lock(&mut self, chip: usize, block: BlockId) -> OpStatus {
        self.tick();
        self.chips[chip].b_lock(block).expect("FTL locks in-range blocks");
        self.chips[chip].status()
    }

    fn scrub(&mut self, at: GlobalPpa) {
        self.tick();
        self.chips[at.chip].destroy_page(at.ppa).expect("FTL scrubs in-range pages");
    }

    fn mark_bad(&mut self, chip: usize, block: BlockId) {
        self.tick();
        self.chips[chip].mark_bad_block(block).expect("FTL marks in-range blocks");
    }

    fn probe_page(&mut self, at: GlobalPpa) -> PageProbe {
        self.tick();
        probe_page_on(&mut self.chips[at.chip], at.ppa)
    }

    fn probe_block(&mut self, chip: usize, block: BlockId) -> BlockProbe {
        probe_block_on(&self.chips[chip], block)
    }

    fn now(&self) -> Nanos {
        Nanos(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::Ppa;

    #[test]
    fn mem_executor_roundtrip() {
        let mut ex = MemExecutor::new(Geometry::small_tlc(), 2);
        let at = GlobalPpa::new(1, Ppa::new(0, 0));
        ex.program(at, PageData::tagged(5));
        assert_eq!(ex.read(at).unwrap().tag(), 5);
        ex.p_lock(at);
        assert_eq!(ex.read(at), None);
        ex.erase(1, BlockId(0));
        assert_eq!(ex.read(at), None); // erased now
        assert_eq!(ex.chips().len(), 2);
    }

    #[test]
    fn block_via_executor() {
        let mut ex = MemExecutor::new(Geometry::small_tlc(), 1);
        let at = GlobalPpa::new(0, Ppa::new(2, 0));
        ex.program(at, PageData::tagged(9));
        ex.b_lock(0, BlockId(2));
        assert_eq!(ex.read(at), None);
    }

    #[test]
    fn erase_timestamps_are_distinct_and_ordered() {
        // The op-counter clock must hand every erase a strictly increasing
        // timestamp even when other commands interleave arbitrarily.
        let mut ex = MemExecutor::new(Geometry::small_tlc(), 2);
        ex.erase(0, BlockId(0));
        let t0 = ex.chips()[0].last_erase_at(BlockId(0)).unwrap();
        ex.program(GlobalPpa::new(1, Ppa::new(0, 0)), PageData::tagged(1));
        ex.read(GlobalPpa::new(1, Ppa::new(0, 0)));
        ex.erase(1, BlockId(3));
        let t1 = ex.chips()[1].last_erase_at(BlockId(3)).unwrap();
        ex.erase(0, BlockId(1));
        let t2 = ex.chips()[0].last_erase_at(BlockId(1)).unwrap();
        assert!(t0 < t1 && t1 < t2, "erase clock must be strictly monotonic: {t0} {t1} {t2}");
        assert_eq!(ex.ops_executed(), 5);
    }

    #[test]
    fn dispatch_split_is_a_no_op_on_untimed_executors() {
        let mut ex = MemExecutor::new(Geometry::small_tlc(), 1);
        ex.begin_dispatch(Nanos(123));
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        assert_eq!(ex.end_dispatch(), Nanos::ZERO);
        assert_eq!(ex.read(GlobalPpa::new(0, Ppa::new(0, 0))).unwrap().tag(), 1);
    }

    #[test]
    fn scrub_via_executor() {
        let mut ex = MemExecutor::new(Geometry::small_tlc(), 1);
        let at = GlobalPpa::new(0, Ppa::new(0, 0));
        ex.program(at, PageData::tagged(9));
        ex.scrub(at);
        assert_eq!(ex.read(at), None);
    }
}

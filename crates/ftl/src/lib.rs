//! # evanesco-ftl
//!
//! Flash translation layers for the Evanesco (ASPLOS 2020) reproduction.
//!
//! One page-mapping FTL implementation ([`ftl::Ftl`]) hosts all five SSD
//! variants evaluated in the paper, selected by [`policy::SanitizePolicy`]:
//! the insecure baseline, `secSSD` (Evanesco lock manager with `pLock` +
//! `bLock`), `secSSD_nobLock`, `erSSD` (erase-based immediate sanitization)
//! and `scrSSD` (scrubbing).
//!
//! The FTL is generic over a [`executor::NandExecutor`], so the same logic
//! runs untimed in unit tests ([`executor::MemExecutor`]) and timed inside
//! the `evanesco-ssd` emulator.
//!
//! ```rust
//! use evanesco_ftl::config::FtlConfig;
//! use evanesco_ftl::executor::MemExecutor;
//! use evanesco_ftl::ftl::Ftl;
//! use evanesco_ftl::observer::NullObserver;
//! use evanesco_ftl::policy::SanitizePolicy;
//!
//! # fn main() {
//! let cfg = FtlConfig::tiny_for_tests();
//! let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
//! let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
//! ftl.write(&mut ex, &mut NullObserver, 0, true, 42);
//! ftl.trim(&mut ex, &mut NullObserver, &[0]);   // secure delete
//! assert_eq!(ftl.stats().plocks, 1);            // locked immediately
//! # }
//! ```

pub mod addr;
pub mod config;
pub mod decision;
pub mod executor;
pub mod ftl;
pub mod observer;
pub mod policy;
pub mod recovery;
pub mod stats;
pub mod status;

pub use addr::{GlobalPpa, Lpa};
pub use config::{FaultConfig, FtlConfig, GcVictimPolicy, ReliabilityConfig, WriteAlloc};
pub use decision::{Decision, DecisionLevel, DecisionLog, DecisionRecord, EscalationRung};
pub use executor::OpCause;
pub use ftl::{DegradedMode, Ftl};
pub use observer::InvalidateCause;
pub use policy::SanitizePolicy;
pub use recovery::RecoveryReport;
pub use stats::FtlStats;

//! Observation hooks for instrumentation (the VerTrace data-versioning
//! study and the live telemetry gauges attach here; see
//! `evanesco-workloads` and `evanesco-ssd::gauges`).

use crate::addr::{GlobalPpa, Lpa};
use evanesco_nand::geometry::BlockId;

/// Why a physical page was invalidated — the path that retired it.
///
/// Attribution by retirement path is what lets the exposure ledger split
/// VAF / T_insecure contributions between host-driven updates, explicit
/// deletes, and background GC movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvalidateCause {
    /// The host overwrote the logical page, superseding this version.
    HostUpdate,
    /// The host trimmed (deleted) the logical range covering this page.
    Trim,
    /// GC relocated the live copy (or scrub-sanitized a sibling), retiring
    /// this physical page as part of block reclamation.
    GcCopy,
}

impl InvalidateCause {
    /// Stable lowercase label for exports.
    pub fn label(self) -> &'static str {
        match self {
            InvalidateCause::HostUpdate => "host_update",
            InvalidateCause::Trim => "trim",
            InvalidateCause::GcCopy => "gc_copy",
        }
    }

    /// All causes, in export order.
    pub const ALL: [InvalidateCause; 3] =
        [InvalidateCause::HostUpdate, InvalidateCause::Trim, InvalidateCause::GcCopy];
}

/// Receives FTL page-lifecycle events.
///
/// All methods have empty default bodies so observers implement only what
/// they need.
pub trait FtlObserver {
    /// A logical page was (re)written; `relocation` is true for GC copies,
    /// `secure` for pages written under a security requirement (the
    /// non-`O_INSEC` path).
    fn on_program(&mut self, _lpa: Lpa, _at: GlobalPpa, _relocation: bool, _secure: bool) {}
    /// A physical page was invalidated. `secure` is true when the page held
    /// secured content; `sanitized` is true when the policy made its
    /// content immediately unrecoverable (lock / scrub / the erase that is
    /// about to follow); `cause` names the path that retired the page.
    fn on_invalidate(
        &mut self,
        _at: GlobalPpa,
        _secure: bool,
        _sanitized: bool,
        _cause: InvalidateCause,
    ) {
    }
    /// A block was physically erased: all its invalid content is gone.
    fn on_erase(&mut self, _chip: usize, _block: BlockId) {}
    /// One host logical-time tick (a host page write was accepted).
    fn on_host_tick(&mut self) {}
    /// A power-up recovery scan finished (see [`crate::recovery`]).
    fn on_recovery(&mut self, _report: &crate::recovery::RecoveryReport) {}
}

/// The no-op observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl FtlObserver for NullObserver {}

/// One recorded page-lifecycle event — the batched form of the
/// [`FtlObserver`] callbacks (minus `on_recovery`, whose report is built
/// once at the end of recovery and dispatched directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverEvent {
    /// See [`FtlObserver::on_program`].
    Program {
        /// Logical page written.
        lpa: Lpa,
        /// Physical destination.
        at: GlobalPpa,
        /// True for GC copies.
        relocation: bool,
        /// True for secured content.
        secure: bool,
    },
    /// See [`FtlObserver::on_invalidate`].
    Invalidate {
        /// Physical page invalidated.
        at: GlobalPpa,
        /// True when the page held secured content.
        secure: bool,
        /// True when the content was made immediately unrecoverable.
        sanitized: bool,
        /// The path that retired the page.
        cause: InvalidateCause,
    },
    /// See [`FtlObserver::on_erase`].
    Erase {
        /// Chip index.
        chip: usize,
        /// Erased block.
        block: BlockId,
    },
    /// See [`FtlObserver::on_host_tick`].
    HostTick,
}

/// Dense, reusable event buffer. The FTL's hot loops push `Copy` events
/// here and the public entry points drain them to the observer once per
/// host operation — callback dispatch (and whatever the observer does
/// with it) stays off the per-page inner loops, and internal helpers
/// need no observer type parameter at all. Draining preserves recording
/// order exactly, so a batched observer sees the same call sequence a
/// per-event observer did.
#[derive(Debug, Clone, Default)]
pub struct EventBatch {
    events: Vec<ObserverEvent>,
}

impl EventBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records a program event.
    #[inline]
    pub fn program(&mut self, lpa: Lpa, at: GlobalPpa, relocation: bool, secure: bool) {
        self.events.push(ObserverEvent::Program { lpa, at, relocation, secure });
    }

    /// Records an invalidate event.
    #[inline]
    pub fn invalidate(
        &mut self,
        at: GlobalPpa,
        secure: bool,
        sanitized: bool,
        cause: InvalidateCause,
    ) {
        self.events.push(ObserverEvent::Invalidate { at, secure, sanitized, cause });
    }

    /// Records an erase event.
    #[inline]
    pub fn erase(&mut self, chip: usize, block: BlockId) {
        self.events.push(ObserverEvent::Erase { chip, block });
    }

    /// Records a host logical-time tick.
    #[inline]
    pub fn host_tick(&mut self) {
        self.events.push(ObserverEvent::HostTick);
    }

    /// Replays every buffered event into `obs` in recording order and
    /// clears the batch (capacity is retained for reuse).
    pub fn drain_into<O: FtlObserver + ?Sized>(&mut self, obs: &mut O) {
        for ev in self.events.drain(..) {
            match ev {
                ObserverEvent::Program { lpa, at, relocation, secure } => {
                    obs.on_program(lpa, at, relocation, secure);
                }
                ObserverEvent::Invalidate { at, secure, sanitized, cause } => {
                    obs.on_invalidate(at, secure, sanitized, cause);
                }
                ObserverEvent::Erase { chip, block } => obs.on_erase(chip, block),
                ObserverEvent::HostTick => obs.on_host_tick(),
            }
        }
    }
}

impl<O: FtlObserver + ?Sized> FtlObserver for &mut O {
    fn on_program(&mut self, lpa: Lpa, at: GlobalPpa, relocation: bool, secure: bool) {
        (**self).on_program(lpa, at, relocation, secure);
    }
    fn on_invalidate(
        &mut self,
        at: GlobalPpa,
        secure: bool,
        sanitized: bool,
        cause: InvalidateCause,
    ) {
        (**self).on_invalidate(at, secure, sanitized, cause);
    }
    fn on_erase(&mut self, chip: usize, block: BlockId) {
        (**self).on_erase(chip, block);
    }
    fn on_host_tick(&mut self) {
        (**self).on_host_tick();
    }
    fn on_recovery(&mut self, report: &crate::recovery::RecoveryReport) {
        (**self).on_recovery(report);
    }
}

/// `Some(observer)` forwards, `None` drops every event — the shape of an
/// optional, always-attached telemetry sink.
impl<O: FtlObserver> FtlObserver for Option<O> {
    fn on_program(&mut self, lpa: Lpa, at: GlobalPpa, relocation: bool, secure: bool) {
        if let Some(o) = self {
            o.on_program(lpa, at, relocation, secure);
        }
    }
    fn on_invalidate(
        &mut self,
        at: GlobalPpa,
        secure: bool,
        sanitized: bool,
        cause: InvalidateCause,
    ) {
        if let Some(o) = self {
            o.on_invalidate(at, secure, sanitized, cause);
        }
    }
    fn on_erase(&mut self, chip: usize, block: BlockId) {
        if let Some(o) = self {
            o.on_erase(chip, block);
        }
    }
    fn on_host_tick(&mut self) {
        if let Some(o) = self {
            o.on_host_tick();
        }
    }
    fn on_recovery(&mut self, report: &crate::recovery::RecoveryReport) {
        if let Some(o) = self {
            o.on_recovery(report);
        }
    }
}

/// Broadcasts every event to two observers (attach built-in telemetry
/// alongside a caller-supplied observer).
#[derive(Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: FtlObserver, B: FtlObserver> FtlObserver for Tee<A, B> {
    fn on_program(&mut self, lpa: Lpa, at: GlobalPpa, relocation: bool, secure: bool) {
        self.0.on_program(lpa, at, relocation, secure);
        self.1.on_program(lpa, at, relocation, secure);
    }
    fn on_invalidate(
        &mut self,
        at: GlobalPpa,
        secure: bool,
        sanitized: bool,
        cause: InvalidateCause,
    ) {
        self.0.on_invalidate(at, secure, sanitized, cause);
        self.1.on_invalidate(at, secure, sanitized, cause);
    }
    fn on_erase(&mut self, chip: usize, block: BlockId) {
        self.0.on_erase(chip, block);
        self.1.on_erase(chip, block);
    }
    fn on_host_tick(&mut self) {
        self.0.on_host_tick();
        self.1.on_host_tick();
    }
    fn on_recovery(&mut self, report: &crate::recovery::RecoveryReport) {
        self.0.on_recovery(report);
        self.1.on_recovery(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::Ppa;

    #[test]
    fn null_observer_accepts_everything() {
        let mut o = NullObserver;
        o.on_program(0, GlobalPpa::new(0, Ppa::new(0, 0)), false, true);
        o.on_invalidate(GlobalPpa::new(0, Ppa::new(0, 0)), true, true, InvalidateCause::HostUpdate);
        o.on_erase(0, BlockId(0));
        o.on_host_tick();
    }

    #[derive(Default)]
    struct Counter {
        programs: u32,
        invalidates: u32,
        ticks: u32,
    }

    impl FtlObserver for Counter {
        fn on_program(&mut self, _: Lpa, _: GlobalPpa, _: bool, _: bool) {
            self.programs += 1;
        }
        fn on_invalidate(&mut self, _: GlobalPpa, _: bool, _: bool, _: InvalidateCause) {
            self.invalidates += 1;
        }
        fn on_host_tick(&mut self) {
            self.ticks += 1;
        }
    }

    #[test]
    fn tee_broadcasts_and_option_gates() {
        let mut a = Counter::default();
        let mut b: Option<&mut Counter> = None;
        {
            let mut tee = Tee(&mut a, &mut b);
            tee.on_program(0, GlobalPpa::new(0, Ppa::new(0, 0)), false, true);
            tee.on_host_tick();
        }
        assert_eq!((a.programs, a.ticks), (1, 1));

        let mut c = Counter::default();
        let mut some = Some(&mut c);
        {
            let mut tee = Tee(&mut a, &mut some);
            tee.on_invalidate(
                GlobalPpa::new(0, Ppa::new(0, 0)),
                true,
                false,
                InvalidateCause::Trim,
            );
        }
        assert_eq!(a.invalidates, 1);
        assert_eq!(c.invalidates, 1);
    }

    #[derive(Default)]
    struct Recorder(Vec<ObserverEvent>);

    impl FtlObserver for Recorder {
        fn on_program(&mut self, lpa: Lpa, at: GlobalPpa, relocation: bool, secure: bool) {
            self.0.push(ObserverEvent::Program { lpa, at, relocation, secure });
        }
        fn on_invalidate(
            &mut self,
            at: GlobalPpa,
            secure: bool,
            sanitized: bool,
            cause: InvalidateCause,
        ) {
            self.0.push(ObserverEvent::Invalidate { at, secure, sanitized, cause });
        }
        fn on_erase(&mut self, chip: usize, block: BlockId) {
            self.0.push(ObserverEvent::Erase { chip, block });
        }
        fn on_host_tick(&mut self) {
            self.0.push(ObserverEvent::HostTick);
        }
    }

    #[test]
    fn event_batch_drains_in_recording_order() {
        let at = GlobalPpa::new(2, Ppa::new(3, 4));
        let mut batch = EventBatch::new();
        batch.host_tick();
        batch.invalidate(at, true, false, InvalidateCause::HostUpdate);
        batch.program(7, at, false, true);
        batch.erase(1, BlockId(5));
        assert_eq!(batch.len(), 4);

        let mut rec = Recorder::default();
        batch.drain_into(&mut rec);
        assert!(batch.is_empty());
        assert_eq!(
            rec.0,
            vec![
                ObserverEvent::HostTick,
                ObserverEvent::Invalidate {
                    at,
                    secure: true,
                    sanitized: false,
                    cause: InvalidateCause::HostUpdate,
                },
                ObserverEvent::Program { lpa: 7, at, relocation: false, secure: true },
                ObserverEvent::Erase { chip: 1, block: BlockId(5) },
            ]
        );

        // Draining again delivers nothing: the batch resets between ops.
        rec.0.clear();
        batch.drain_into(&mut rec);
        assert!(rec.0.is_empty());
    }

    #[test]
    fn cause_labels_are_stable() {
        let labels: Vec<&str> = InvalidateCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["host_update", "trim", "gc_copy"]);
    }
}

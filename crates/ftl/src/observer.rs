//! Observation hooks for instrumentation (the VerTrace data-versioning
//! study attaches here; see `evanesco-workloads`).

use crate::addr::{GlobalPpa, Lpa};
use evanesco_nand::geometry::BlockId;

/// Receives FTL page-lifecycle events.
///
/// All methods have empty default bodies so observers implement only what
/// they need.
pub trait FtlObserver {
    /// A logical page was (re)written; `relocation` is true for GC copies.
    fn on_program(&mut self, _lpa: Lpa, _at: GlobalPpa, _relocation: bool) {}
    /// A physical page was invalidated. `sanitized` is true when the policy
    /// made its content immediately unrecoverable (lock / scrub / the
    /// erase that is about to follow).
    fn on_invalidate(&mut self, _at: GlobalPpa, _sanitized: bool) {}
    /// A block was physically erased: all its invalid content is gone.
    fn on_erase(&mut self, _chip: usize, _block: BlockId) {}
    /// One host logical-time tick (a host page write was accepted).
    fn on_host_tick(&mut self) {}
    /// A power-up recovery scan finished (see [`crate::recovery`]).
    fn on_recovery(&mut self, _report: &crate::recovery::RecoveryReport) {}
}

/// The no-op observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl FtlObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::Ppa;

    #[test]
    fn null_observer_accepts_everything() {
        let mut o = NullObserver;
        o.on_program(0, GlobalPpa::new(0, Ppa::new(0, 0)), false);
        o.on_invalidate(GlobalPpa::new(0, Ppa::new(0, 0)), true);
        o.on_erase(0, BlockId(0));
        o.on_host_tick();
    }
}

//! The extended page status table (paper §6, Figure 13).
//!
//! SecureSSD extends the classic `free / valid / invalid` page states with a
//! `secured` state: a valid page whose owner requested secure management.
//! Invalidation of a `secured` page is what triggers sanitization.

use std::fmt;

/// Status of one physical page as tracked by the FTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageStatus {
    /// Erased and available for programming.
    #[default]
    Free,
    /// Holds live data with no security requirement.
    Valid,
    /// Holds live data that must be sanitized on invalidation.
    Secured,
    /// Logically dead. (Whether its content was already sanitized is a
    /// property of the chip — locked/destroyed — not of this table.)
    Invalid,
}

impl PageStatus {
    /// Whether the page holds live (mapped) data.
    pub fn is_live(&self) -> bool {
        matches!(self, PageStatus::Valid | PageStatus::Secured)
    }
}

impl fmt::Display for PageStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageStatus::Free => "F",
            PageStatus::Valid => "V",
            PageStatus::Secured => "S",
            PageStatus::Invalid => "I",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness() {
        assert!(!PageStatus::Free.is_live());
        assert!(PageStatus::Valid.is_live());
        assert!(PageStatus::Secured.is_live());
        assert!(!PageStatus::Invalid.is_live());
    }

    #[test]
    fn display_letters_match_paper_figure_3() {
        assert_eq!(PageStatus::Free.to_string(), "F");
        assert_eq!(PageStatus::Valid.to_string(), "V");
        assert_eq!(PageStatus::Secured.to_string(), "S");
        assert_eq!(PageStatus::Invalid.to_string(), "I");
        assert_eq!(PageStatus::default(), PageStatus::Free);
    }
}

//! Power-up recovery after an unclean shutdown.
//!
//! A power cut can interrupt any in-flight NAND operation — a program, an
//! erase, a `pLock`/`bLock` — leaving partially-written pages, half-erased
//! blocks, and lock-flag cells with degraded margin. On the next power-up
//! the FTL's RAM tables are gone; [`crate::ftl::Ftl::recover`] rebuilds
//! them from on-flash state (per-page OOB metadata stamped on every
//! program) and, critically for Evanesco's security conditions C1/C2,
//! **re-establishes every lock that was lost mid-flight before any host
//! read is served**:
//!
//! 1. blocks with a torn-erase signature are re-erased (their low-voltage
//!    flag cells decay before the data does, so a half-erased block may
//!    hold unlocked-but-recoverable secured data);
//! 2. torn `bLock`s are completed (a bLock only ever covers dead data);
//! 3. torn `pLock`s are completed, with bounded retry and exponential
//!    backoff when the lock's program-verify reports failure, and a
//!    destructive scrub as the final fallback;
//! 4. readable pages are entered into a sequence-number contest per
//!    logical page; losers are stale versions, and stale *secured*
//!    versions are sanitized through the active policy's own mechanism;
//! 5. torn writes carrying a `secure` OOB mark are orphans — data the
//!    host never acknowledged — and are sanitized the same way.
//!
//! The scan costs one page read per occupied page on timed executors,
//! which is what the recovery-time metric measures.

/// Maximum times a lock command is re-issued when its verify fails before
/// recovery falls back to destroying the page in place.
pub const MAX_LOCK_RETRIES: u32 = 4;

/// Counters describing one recovery scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Occupied pages probed (one flash read each).
    pub scanned_pages: u64,
    /// Logical mappings rebuilt from OOB metadata.
    pub rebuilt_mappings: u64,
    /// Pages found holding a program interrupted by the power cut.
    pub torn_writes: u64,
    /// Torn writes of *secured* data that were still decodable — never
    /// acknowledged to the host, so they are sanitized, not mapped.
    pub orphaned_pages: u64,
    /// Pages whose `pLock` was found torn and was re-issued.
    pub relocked_pages: u64,
    /// Blocks whose `bLock` was found torn and was re-issued.
    pub reissued_blocks: u64,
    /// Blocks with a torn-erase signature that were re-erased.
    pub resealed_blocks: u64,
    /// Stale secured versions (sequence-contest losers) sanitized.
    pub stale_secured: u64,
    /// Lock commands re-issued after a verify failure.
    pub lock_retries: u64,
    /// Locks abandoned after [`MAX_LOCK_RETRIES`] and replaced by a scrub.
    pub lock_fallbacks: u64,
    /// Grown-bad blocks in the rebuilt bad-block table after this scan
    /// (spare-area marks rediscovered plus blocks retired mid-recovery).
    pub retired_blocks: u64,
}

impl RecoveryReport {
    /// Total lock commands issued by this scan (initial + retries).
    pub fn lock_commands(&self) -> u64 {
        self.relocked_pages + self.reissued_blocks + self.lock_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_commands_sums_reissues() {
        let r = RecoveryReport {
            relocked_pages: 3,
            reissued_blocks: 1,
            lock_retries: 2,
            ..RecoveryReport::default()
        };
        assert_eq!(r.lock_commands(), 6);
    }
}

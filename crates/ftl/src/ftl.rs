//! The flash translation layer (paper §2.2 baseline behaviour, §6
//! SecureSSD extensions).
//!
//! One `Ftl` implementation hosts every evaluated SSD variant; the
//! [`SanitizePolicy`] selects what happens when a *secured* page is
//! invalidated (host overwrite, trim/delete, or GC relocation):
//!
//! | policy             | action on secured-page invalidation |
//! |--------------------|--------------------------------------|
//! | `baseline`         | nothing (data lingers until lazy erase) |
//! | `secSSD`           | `pLock`, or one `bLock` when a whole block dies |
//! | `secSSD_nobLock`   | `pLock` only |
//! | `erSSD`            | relocate the block's live pages, erase it now |
//! | `scrSSD`           | copy live wordline siblings away, scrub the wordline |
//!
//! Structural choices that matter for the results:
//!
//! * **append-only writes** with a per-chip active block and round-robin
//!   chip striping;
//! * **greedy GC** (min-live victim) triggered by a free-block threshold;
//! * **lazy erase** (paper §5.4): GC victims are merely marked reclaimable;
//!   the physical erase happens right before the block is reopened for
//!   writing, keeping the open interval short — and leaving invalid data
//!   recoverable in the meantime, which is exactly the window Evanesco
//!   closes.

use crate::addr::{GlobalPpa, Lpa};
use crate::config::FtlConfig;
use crate::decision::{Decision, DecisionLog};
use crate::executor::{NandExecutor, OpCause};
use crate::observer::{EventBatch, FtlObserver, InvalidateCause};
use crate::policy::SanitizePolicy;
use crate::recovery::{RecoveryReport, MAX_LOCK_RETRIES};
use crate::stats::FtlStats;
use crate::status::PageStatus;
use evanesco_core::chip::FlagState;
use evanesco_nand::chip::{PageData, PageOob};
use evanesco_nand::geometry::{BlockId, PageId, Ppa};
use evanesco_nand::timing::Nanos;
use std::collections::VecDeque;

mod guard;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Free,
    Open,
    Full,
    Reclaimable,
    /// Grown-bad: the erase retry budget was exhausted. The block's
    /// contents were scrubbed, its spare area carries the retirement
    /// sentinel, and it never re-enters circulation.
    Retired,
}

/// Service level of the drive under grown-bad-block pressure (the
/// degraded-mode state machine: `Normal → SpareLow → ReadOnly`, never
/// backwards except through a full recovery rebuild).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradedMode {
    /// Full service.
    #[default]
    Normal,
    /// Some chip's spare-block reserve fell to its low watermark; service
    /// continues but the drive should be replaced.
    SpareLow,
    /// Some chip exhausted its spare reserve: host writes are rejected;
    /// reads, trims, and sanitization still run (deleting data must keep
    /// working on a dying drive).
    ReadOnly,
}

#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    state: BlockState,
    /// Live (valid + secured) pages.
    live: u32,
    /// Invalid (dead, not yet erased) pages.
    invalid: u32,
    /// Programmed pages since last erase.
    written: u32,
    /// Host-write tick at which the block became full (age reference for
    /// cost-benefit GC).
    closed_at: u64,
}

impl BlockMeta {
    const EMPTY: BlockMeta =
        BlockMeta { state: BlockState::Free, live: 0, invalid: 0, written: 0, closed_at: 0 };
}

#[derive(Debug, Clone, Copy)]
struct ActiveBlock {
    id: u32,
    next_page: u32,
}

/// Live-count-bucketed index over the chip's `Full` blocks, so GC victim
/// selection is O(1) amortized instead of an O(blocks) scan per call.
///
/// Invariant: a block is indexed iff its state is [`BlockState::Full`], in
/// the bucket matching its current live count.
#[derive(Debug, Clone)]
struct VictimIndex {
    /// `buckets[live]` holds the Full blocks with that live count.
    buckets: Vec<Vec<u32>>,
    /// Per-block `(live, slot in buckets[live])` when indexed.
    pos: Vec<Option<(u32, u32)>>,
    /// Lower bound on the lowest non-empty bucket (advanced lazily).
    min_live: u32,
}

impl VictimIndex {
    fn new(blocks: u32, pages_per_block: u32) -> Self {
        VictimIndex {
            buckets: vec![Vec::new(); pages_per_block as usize + 1],
            pos: vec![None; blocks as usize],
            min_live: 0,
        }
    }

    fn insert(&mut self, block: u32, live: u32) {
        debug_assert!(self.pos[block as usize].is_none(), "block {block} indexed twice");
        let bucket = &mut self.buckets[live as usize];
        self.pos[block as usize] = Some((live, bucket.len() as u32));
        bucket.push(block);
        self.min_live = self.min_live.min(live);
    }

    fn remove(&mut self, block: u32) {
        let Some((live, slot)) = self.pos[block as usize].take() else { return };
        let bucket = &mut self.buckets[live as usize];
        bucket.swap_remove(slot as usize);
        if let Some(&moved) = bucket.get(slot as usize) {
            self.pos[moved as usize] = Some((live, slot));
        }
    }

    /// Re-buckets `block` after a live-count change (no-op if unindexed).
    fn update(&mut self, block: u32, live: u32) {
        if let Some((old, _)) = self.pos[block as usize] {
            if old != live {
                self.remove(block);
                self.insert(block, live);
            }
        }
    }

    fn contains(&self, block: u32) -> bool {
        self.pos[block as usize].is_some()
    }

    /// The indexed block with the fewest live pages, excluding fully-live
    /// blocks and `skip` (in-flight GC victims). Ties break to the lowest
    /// block id. Amortized O(1): `min_live` only moves down on insert and
    /// is advanced past drained buckets here.
    fn min_live_candidate(&mut self, skip: &std::collections::HashSet<u32>) -> Option<u32> {
        let full_live = self.buckets.len() as u32 - 1;
        while self.min_live < full_live && self.buckets[self.min_live as usize].is_empty() {
            self.min_live += 1;
        }
        for live in self.min_live..full_live {
            let bucket = &self.buckets[live as usize];
            if let Some(&b) = bucket.iter().filter(|b| !skip.contains(b)).min() {
                return Some(b);
            }
        }
        None
    }

    /// Iterates every indexed `(block, live)` pair (cost-benefit GC scans
    /// the Full blocks only, never the whole block array).
    fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .flat_map(|(live, bucket)| bucket.iter().map(move |&b| (b, live as u32)))
    }
}

#[derive(Debug, Clone)]
struct ChipState {
    p2l: Vec<Option<Lpa>>,
    status: Vec<PageStatus>,
    blocks: Vec<BlockMeta>,
    free: VecDeque<u32>,
    reclaimable: VecDeque<u32>,
    active: Option<ActiveBlock>,
    /// Blocks whose live pages are being relocated right now; nested
    /// (emergency) GC passes must not pick them again.
    gc_in_progress: std::collections::HashSet<u32>,
    /// GC victim index over the Full blocks.
    victims: VictimIndex,
    /// Running live (valid + secured) page count across the chip.
    live_total: u64,
    /// Running invalid (dead, not yet erased) page count across the chip.
    invalid_total: u64,
    /// Grown-bad blocks retired on this chip (counts against the
    /// spare-block reserve).
    retired: u32,
}

impl ChipState {
    fn new(blocks: u32, pages_per_block: u32) -> Self {
        let pages = (blocks * pages_per_block) as usize;
        ChipState {
            p2l: vec![None; pages],
            status: vec![PageStatus::Free; pages],
            blocks: vec![BlockMeta::EMPTY; blocks as usize],
            free: (0..blocks).collect(),
            reclaimable: VecDeque::new(),
            active: None,
            gc_in_progress: std::collections::HashSet::new(),
            victims: VictimIndex::new(blocks, pages_per_block),
            live_total: 0,
            invalid_total: 0,
            retired: 0,
        }
    }

    fn available_blocks(&self) -> usize {
        self.free.len() + self.reclaimable.len()
    }

    /// Transitions a block's state, keeping the victim index in sync
    /// (indexed iff `Full`).
    fn set_block_state(&mut self, block: u32, new: BlockState) {
        let meta = &mut self.blocks[block as usize];
        let was_full = meta.state == BlockState::Full;
        meta.state = new;
        let live = meta.live;
        match (was_full, new == BlockState::Full) {
            (false, true) => self.victims.insert(block, live),
            (true, false) => self.victims.remove(block),
            _ => {}
        }
    }

    /// Maps a page live (valid or secured), maintaining every counter.
    /// The slot must be `Free` (normal append) or `Invalid` (recovery
    /// re-commits scanned pages).
    fn mark_live(&mut self, idx: usize, block: u32, lpa: Lpa, secure: bool) {
        let old = self.status[idx];
        debug_assert!(!old.is_live(), "double-map of physical page {idx}");
        if old == PageStatus::Invalid {
            self.blocks[block as usize].invalid -= 1;
            self.invalid_total -= 1;
        }
        self.status[idx] = if secure { PageStatus::Secured } else { PageStatus::Valid };
        self.p2l[idx] = Some(lpa);
        self.blocks[block as usize].live += 1;
        self.live_total += 1;
        self.victims.update(block, self.blocks[block as usize].live);
    }

    /// Marks a page invalid (dead), maintaining every counter. Accepts a
    /// live page (normal invalidation) or a `Free` slot (scrub destroying
    /// a never-written sibling). Returns the page's previous status.
    fn mark_invalid(&mut self, idx: usize, block: u32) -> PageStatus {
        let old = self.status[idx];
        debug_assert!(old != PageStatus::Invalid, "double invalidate of page {idx}");
        if old.is_live() {
            self.p2l[idx] = None;
            self.blocks[block as usize].live -= 1;
            self.live_total -= 1;
        }
        self.status[idx] = PageStatus::Invalid;
        self.blocks[block as usize].invalid += 1;
        self.invalid_total += 1;
        self.victims.update(block, self.blocks[block as usize].live);
        old
    }

    /// Forgets a block's pages and counters after a physical erase.
    fn reset_block(&mut self, block: u32, pages_per_block: u32) {
        let meta = self.blocks[block as usize];
        self.live_total -= u64::from(meta.live);
        self.invalid_total -= u64::from(meta.invalid);
        self.victims.remove(block);
        let base = (block * pages_per_block) as usize;
        for i in 0..pages_per_block as usize {
            self.p2l[base + i] = None;
            self.status[base + i] = PageStatus::Free;
        }
        self.blocks[block as usize] = BlockMeta::EMPTY;
    }
}

/// One block's worth of deferred `pLock`s in the coalescing queue (paper
/// §4.3 lock-queue merge): secured pages invalidated by overwrite or GC
/// whose locks wait for the block to die — at which point the whole batch
/// becomes a single `bLock` — or for the age window to expire.
#[derive(Debug, Clone)]
struct CoalesceEntry {
    chip: usize,
    block: u32,
    pages: Vec<GlobalPpa>,
    /// Host-write tick at which the first page entered (age reference for
    /// the bounded coalescing window).
    since: u64,
}

/// The deferred-lock queue behind lock coalescing, engineered for the host
/// data plane: a dense per-`(chip, block)` table finds a block's entry in
/// O(1) (this lookup runs on every secured overwrite), entries live in a
/// slab whose slots and page buffers are recycled, and an age-ordered queue
/// of generation-stamped slot references drives window expiry. Out-of-band
/// removals (block death, erase supersede) leave stale references behind
/// instead of shifting the queue; pops skip them by generation mismatch.
#[derive(Debug, Clone, Default)]
struct CoalesceQueue {
    slab: Vec<CoalesceEntry>,
    /// Per-slot generation, bumped when the slot is freed; an `order`
    /// reference is live iff its stamp matches.
    gen: Vec<u32>,
    free: Vec<u32>,
    /// Entry-creation order: `(slot, generation stamp)`.
    order: VecDeque<(u32, u32)>,
    /// `chip * blocks_per_chip + block` → slot + 1 (0 = nothing queued).
    at: Vec<u32>,
    blocks_per_chip: u32,
    /// Recycled page buffers from settled entries.
    spare: Vec<Vec<GlobalPpa>>,
    /// Total queued pages across live entries.
    queued_pages: usize,
    /// Live entry count (the checkpoint codec needs it up front).
    live: usize,
}

impl CoalesceQueue {
    fn new(chips: usize, blocks_per_chip: u32) -> Self {
        CoalesceQueue {
            at: vec![0; chips * blocks_per_chip as usize],
            blocks_per_chip,
            ..Default::default()
        }
    }

    fn key(&self, chip: usize, block: u32) -> usize {
        chip * self.blocks_per_chip as usize + block as usize
    }

    /// Appends `pages` to the block's entry, creating one (age-stamped
    /// `since`) when none is queued. Steady state never allocates: slots
    /// and page buffers come from the recycle pools.
    fn enqueue(&mut self, chip: usize, block: u32, pages: &[GlobalPpa], since: u64) {
        self.queued_pages += pages.len();
        let key = self.key(chip, block);
        let slot = self.at[key];
        if slot != 0 {
            self.slab[(slot - 1) as usize].pages.extend_from_slice(pages);
            return;
        }
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(pages);
        let entry = CoalesceEntry { chip, block, pages: buf, since };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = entry;
                s
            }
            None => {
                self.slab.push(entry);
                self.gen.push(0);
                (self.slab.len() - 1) as u32
            }
        };
        self.at[key] = slot + 1;
        self.order.push_back((slot, self.gen[slot as usize]));
        self.live += 1;
    }

    /// Removes and returns the block's queued entry, if any. The caller
    /// owns the pages buffer; hand it back via [`CoalesceQueue::recycle`]
    /// once drained.
    fn take(&mut self, chip: usize, block: u32) -> Option<CoalesceEntry> {
        let key = self.key(chip, block);
        let slot = self.at[key];
        if slot == 0 {
            return None;
        }
        let s = (slot - 1) as usize;
        self.at[key] = 0;
        self.gen[s] = self.gen[s].wrapping_add(1);
        self.free.push(slot - 1);
        self.live -= 1;
        let e = &mut self.slab[s];
        let entry = CoalesceEntry {
            chip: e.chip,
            block: e.block,
            pages: std::mem::take(&mut e.pages),
            since: e.since,
        };
        self.queued_pages -= entry.pages.len();
        Some(entry)
    }

    /// Age stamp of the oldest live entry, if any (prunes stale
    /// references from the front).
    fn front_since(&mut self) -> Option<u64> {
        while let Some(&(slot, stamp)) = self.order.front() {
            if self.gen[slot as usize] == stamp {
                return Some(self.slab[slot as usize].since);
            }
            self.order.pop_front();
        }
        None
    }

    /// Removes and returns the oldest live entry.
    fn pop_front(&mut self) -> Option<CoalesceEntry> {
        self.front_since()?;
        let &(slot, _) = self.order.front().expect("front is live");
        let (chip, block) = {
            let e = &self.slab[slot as usize];
            (e.chip, e.block)
        };
        self.order.pop_front();
        self.take(chip, block)
    }

    /// Returns a drained entry's page buffer to the recycle pool.
    fn recycle(&mut self, pages: Vec<GlobalPpa>) {
        if pages.capacity() > 0 && self.spare.len() < 64 {
            self.spare.push(pages);
        }
    }

    /// Live queued pages across all entries.
    fn total_pages(&self) -> usize {
        self.queued_pages
    }

    /// Live entry count.
    fn len(&self) -> usize {
        self.live
    }

    /// Live entries in age (creation) order.
    fn iter(&self) -> impl Iterator<Item = &CoalesceEntry> {
        self.order
            .iter()
            .filter(|&&(slot, stamp)| self.gen[slot as usize] == stamp)
            .map(|&(slot, _)| &self.slab[slot as usize])
    }

    /// Drops every entry, keeping slots and buffers for reuse.
    fn clear(&mut self) {
        while let Some(entry) = self.pop_front() {
            let pages = entry.pages;
            self.recycle(pages);
        }
    }
}

/// A page-mapping FTL with pluggable sanitization policy.
#[derive(Debug, Clone)]
pub struct Ftl {
    cfg: FtlConfig,
    policy: SanitizePolicy,
    l2p: Vec<Option<GlobalPpa>>,
    chips: Vec<ChipState>,
    /// Chip visit order of the write frontier (see [`WriteAlloc`]); the
    /// frontier position `next_chip` indexes into this permutation.
    chip_order: Vec<usize>,
    next_chip: usize,
    stats: FtlStats,
    /// Next program sequence number; stamped into every page's OOB so a
    /// power-up recovery scan can order versions of the same logical page.
    seq: u64,
    /// Deferred-lock queue, oldest entry first ([`FtlConfig::lock_coalescing`]).
    /// RAM-only: a power cut loses it, and recovery's sequence contest
    /// re-identifies every queued page as a stale secured version to reseal.
    pending_locks: CoalesceQueue,
    /// Degraded-mode state (driven by the per-chip retired counts against
    /// the spare reserve).
    mode: DegradedMode,
    /// Bounded "explain why" log of policy decisions (disabled by default;
    /// see [`Ftl::enable_decision_log`]). Purely observational.
    decisions: DecisionLog,
    /// Recycled buffers for the host data plane (always empty between
    /// operations; never checkpointed — a restored FTL starts them fresh).
    secured_scratch: Vec<GlobalPpa>,
    trim_pending_scratch: Vec<Lpa>,
    trim_group_scratch: Vec<GlobalPpa>,
    /// Buffered observer events: internal paths record here and the public
    /// entry points drain to the caller's observer once per host operation,
    /// preserving event order exactly. Always empty between operations.
    events: EventBatch,
    /// Metadata-integrity guard: shadow checksums over every RAM table, the
    /// background audit scrubber, and the corruption injector (see
    /// [`Ftl::enable_guard`]). RAM-only and never checkpointed — a restored
    /// or recovered FTL reseals from its rebuilt state.
    guard: Option<Box<guard::MetaGuard>>,
}

impl Ftl {
    /// Creates an FTL over `cfg.n_chips` erased chips.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`FtlConfig::validate`].
    pub fn new(cfg: FtlConfig, policy: SanitizePolicy) -> Self {
        cfg.validate();
        let ppb = cfg.geometry.pages_per_block();
        Ftl {
            l2p: vec![None; cfg.logical_pages() as usize],
            chips: (0..cfg.n_chips).map(|_| ChipState::new(cfg.geometry.blocks, ppb)).collect(),
            chip_order: Self::chip_order_for(&cfg),
            next_chip: 0,
            stats: FtlStats::default(),
            seq: 0,
            pending_locks: CoalesceQueue::new(cfg.n_chips, cfg.geometry.blocks),
            mode: DegradedMode::Normal,
            decisions: DecisionLog::disabled(),
            secured_scratch: Vec::new(),
            trim_pending_scratch: Vec::new(),
            trim_group_scratch: Vec::new(),
            events: EventBatch::new(),
            guard: None,
            cfg,
            policy,
        }
    }

    /// The frontier's chip visit order. With chips numbered as
    /// `channel × cpc + way`, the die-interleaved order walks `way 0` of
    /// every channel, then `way 1`, and so on — consecutive host pages
    /// always cross channel boundaries, so their data-in transfers never
    /// share a bus.
    fn chip_order_for(cfg: &FtlConfig) -> Vec<usize> {
        match cfg.write_alloc {
            crate::config::WriteAlloc::RoundRobin => (0..cfg.n_chips).collect(),
            crate::config::WriteAlloc::ChannelInterleaved => {
                let cpc = cfg.chips_per_channel;
                let channels = cfg.n_chips / cpc;
                (0..cpc).flat_map(|way| (0..channels).map(move |ch| ch * cpc + way)).collect()
            }
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// The configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.cfg
    }

    /// The sanitization policy.
    pub fn policy(&self) -> SanitizePolicy {
        self.policy
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Turns the decision log on, keeping at most `capacity` records at
    /// `min_level` and above. Observational only: enabling it never
    /// changes simulated results.
    pub fn enable_decision_log(
        &mut self,
        capacity: usize,
        min_level: crate::decision::DecisionLevel,
    ) {
        self.decisions = DecisionLog::new(capacity, min_level);
    }

    /// The decision log (empty and disabled unless
    /// [`Ftl::enable_decision_log`] was called).
    pub fn decision_log(&self) -> &DecisionLog {
        &self.decisions
    }

    /// Records a decision with the executor's current clock (no-op while
    /// the log is disabled; never issues a command).
    fn note_decision<E: NandExecutor>(&mut self, ex: &E, decision: Decision) {
        if self.decisions.enabled() {
            self.decisions.record(ex.now(), self.stats.host_write_pages, decision);
        }
    }

    /// Number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Current mapping of a logical page.
    pub fn mapped(&self, lpa: Lpa) -> Option<GlobalPpa> {
        self.l2p[lpa as usize]
    }

    /// Status of a physical page.
    pub fn page_status(&self, at: GlobalPpa) -> PageStatus {
        self.chips[at.chip].status[self.flat(at.ppa)]
    }

    fn flat(&self, ppa: Ppa) -> usize {
        (ppa.block.0 * self.cfg.geometry.pages_per_block() + ppa.page.0) as usize
    }

    // ---------------------------------------------------------------------
    // Host interface
    // ---------------------------------------------------------------------

    /// Handles a host page write. `secure` marks the data as requiring
    /// sanitization on invalidation (the default; `O_INSEC` files pass
    /// `false`). `tag` identifies the content (for forensic verification).
    ///
    /// Returns `false` when the drive is in read-only degraded mode and the
    /// write was rejected.
    ///
    /// # Panics
    ///
    /// Panics if `lpa` is outside the logical address space.
    pub fn write<E: NandExecutor, O: FtlObserver>(
        &mut self,
        ex: &mut E,
        obs: &mut O,
        lpa: Lpa,
        secure: bool,
        tag: u64,
    ) -> bool {
        self.write_data(ex, obs, lpa, secure, PageData::tagged(tag))
    }

    /// [`Ftl::write`] with an explicit page payload (byte contents travel
    /// to the chip; used by the host file-system layer).
    ///
    /// Returns `false` when the drive is in read-only degraded mode and the
    /// write was rejected.
    ///
    /// # Panics
    ///
    /// Panics if `lpa` is outside the logical address space.
    pub fn write_data<E: NandExecutor, O: FtlObserver>(
        &mut self,
        ex: &mut E,
        obs: &mut O,
        lpa: Lpa,
        secure: bool,
        data: PageData,
    ) -> bool {
        assert!((lpa as usize) < self.l2p.len(), "lpa {lpa} out of logical space");
        if self.mode == DegradedMode::ReadOnly {
            self.stats.writes_rejected_readonly += 1;
            return false;
        }
        self.stats.host_write_pages += 1;
        self.events.host_tick();
        if self.cfg.lock_coalescing {
            self.flush_aged_locks(ex);
        }
        if let Some(old) = self.l2p[lpa as usize] {
            // A single superseded page is one block group by construction;
            // dispatch it directly instead of routing through the grouping
            // pass (this is the hottest invalidation path in the system).
            self.invalidate_block_group(
                ex,
                old.chip,
                old.ppa.block.0,
                &[old],
                InvalidateCause::HostUpdate,
            );
        }
        let seq = self.next_seq();
        let payload = data.with_oob(PageOob { lpa, secure, seq });
        // Program-status failures remap to a fresh page; the consumed slot
        // is quarantined by `note_program_failure`. Termination is
        // guaranteed by `validate()` (program_fail < 1).
        loop {
            let at = self.allocate(ex);
            self.stats.nand_programs += 1;
            if ex.program(at, payload.clone()).is_ok() {
                self.commit_mapping(lpa, at, secure);
                self.events.program(lpa, at, false, secure);
                break;
            }
            self.note_program_failure(ex, at, secure);
        }
        self.events.drain_into(obs);
        true
    }

    /// Handles a host page read; returns the stored data if mapped.
    pub fn read<E: NandExecutor>(&mut self, ex: &mut E, lpa: Lpa) -> Option<PageData> {
        self.stats.host_read_pages += 1;
        let at = self.l2p.get(lpa as usize).copied().flatten()?;
        self.stats.nand_reads += 1;
        ex.read(at)
    }

    /// Handles a host trim (delete) of a set of logical pages. Batching
    /// matters: contiguous trims of secured pages in the same block are the
    /// `bLock` opportunity (paper §6).
    ///
    /// Physical addresses are resolved one block-group at a time because a
    /// group's sanitization (relocation under erSSD/scrSSD, or GC pressure)
    /// can move pages that later groups still have to invalidate.
    pub fn trim<E: NandExecutor, O: FtlObserver>(&mut self, ex: &mut E, obs: &mut O, lpas: &[Lpa]) {
        self.stats.host_trim_pages += lpas.len() as u64;
        // Both worklists are recycled buffers: trims run on the host data
        // plane and must not allocate per request.
        let mut pending = std::mem::take(&mut self.trim_pending_scratch);
        pending.clear();
        pending.extend(lpas.iter().copied().filter(|&l| (l as usize) < self.l2p.len()));
        let mut group = std::mem::take(&mut self.trim_group_scratch);
        while let Some(at0) = pending.iter().find_map(|&l| self.l2p[l as usize]) {
            let key = (at0.chip, at0.ppa.block.0);
            group.clear();
            pending.retain(|&l| match self.l2p[l as usize] {
                Some(at) if (at.chip, at.ppa.block.0) == key => {
                    group.push(at);
                    self.l2p[l as usize] = None;
                    false
                }
                Some(_) => true,
                None => false,
            });
            // Trim locks stay synchronous: the trim ack promises the data
            // is sealed, so trimmed pages never enter the coalescing queue.
            self.invalidate_block_group(ex, key.0, key.1, &group, InvalidateCause::Trim);
        }
        self.trim_pending_scratch = pending;
        self.trim_group_scratch = group;
        self.events.drain_into(obs);
    }

    // ---------------------------------------------------------------------
    // Mapping helpers
    // ---------------------------------------------------------------------

    fn commit_mapping(&mut self, lpa: Lpa, at: GlobalPpa, secure: bool) {
        let idx = self.flat(at.ppa);
        self.chips[at.chip].mark_live(idx, at.ppa.block.0, lpa, secure);
        self.l2p[lpa as usize] = Some(at);
    }

    // ---------------------------------------------------------------------
    // Allocation & lazy erase
    // ---------------------------------------------------------------------

    fn allocate<E: NandExecutor>(&mut self, ex: &mut E) -> GlobalPpa {
        let chip = self.chip_order[self.next_chip];
        self.next_chip = (self.next_chip + 1) % self.chip_order.len();
        self.ensure_space(ex, chip);
        self.allocate_on_chip(ex, chip)
    }

    /// The chip the next host-write page will land on (frontier preview for
    /// the out-of-order scheduler; the scheduler uses it to predict which
    /// chip a queued write occupies before actually dispatching it).
    pub fn peek_alloc_chip(&self) -> usize {
        self.chip_order[self.next_chip]
    }

    /// Allocates the next page on a specific chip. Normally space was
    /// secured by the threshold-triggered GC, but sanitization-forced
    /// relocation bursts (erSSD, scrubbing) can drain a chip mid-operation;
    /// an emergency GC pass covers that case.
    fn allocate_on_chip<E: NandExecutor>(&mut self, ex: &mut E, chip: usize) -> GlobalPpa {
        // Looped rather than a single attempt: opening a block can fail
        // when a lazy erase retires the candidate as grown-bad, in which
        // case another candidate (or an emergency GC pass) is needed.
        while self.chips[chip].active.is_none() {
            if self.chips[chip].available_blocks() == 0 {
                let reclaimed = self.gc_once(ex, chip);
                assert!(reclaimed, "chip {chip} out of blocks: over-provisioning misconfigured");
                continue;
            }
            self.open_block(ex, chip);
        }
        let ppb = self.cfg.geometry.pages_per_block();
        let cs = &mut self.chips[chip];
        let ab = cs.active.as_mut().expect("just opened");
        let at = GlobalPpa::new(chip, Ppa { block: BlockId(ab.id), page: PageId(ab.next_page) });
        ab.next_page += 1;
        let full = ab.next_page == ppb;
        let id = ab.id;
        cs.blocks[id as usize].written += 1;
        if full {
            cs.blocks[id as usize].closed_at = self.stats.host_write_pages;
            cs.active = None;
            cs.set_block_state(id, BlockState::Full);
        }
        at
    }

    /// Opens a write frontier on `chip` if any candidate block survives.
    /// May leave `active` unset when every candidate's lazy erase failed
    /// terminally (the blocks were retired); the caller loops.
    fn open_block<E: NandExecutor>(&mut self, ex: &mut E, chip: usize) {
        loop {
            let cs = &mut self.chips[chip];
            let id = if let Some(id) = cs.free.pop_front() {
                id
            } else if let Some(id) = cs.reclaimable.pop_front() {
                // Lazy erase: the block is erased only now, right before
                // reuse, keeping the open interval short (paper §5.4).
                // Reclamation work, so it attributes as GC, not host.
                ex.push_cause(OpCause::Gc);
                let erased = self.erase_block(ex, chip, id);
                ex.pop_cause();
                if !erased {
                    // Candidate retired as grown-bad; try the next one.
                    continue;
                }
                id
            } else {
                panic!("chip {chip} has no block to open: over-provisioning misconfigured");
            };
            let cs = &mut self.chips[chip];
            cs.set_block_state(id, BlockState::Open);
            cs.active = Some(ActiveBlock { id, next_page: 0 });
            return;
        }
    }

    /// Erases a block with bounded retries. Returns `true` on success;
    /// `false` when the retry budget was exhausted and the block was
    /// retired as grown-bad (contents scrubbed, never reused).
    fn erase_block<E: NandExecutor>(&mut self, ex: &mut E, chip: usize, id: u32) -> bool {
        // A physical erase sanitizes harder than any lock: locks still
        // queued for this block are satisfied for free.
        if self.cfg.lock_coalescing {
            if let Some(entry) = self.pending_locks.take(chip, id) {
                let dropped = entry.pages.len();
                self.pending_locks.recycle(entry.pages);
                self.stats.coalesced_plocks += dropped as u64;
                self.note_decision(
                    ex,
                    Decision::CoalesceSupersede { chip, block: id, pages: dropped },
                );
            }
        }
        let budget = self.cfg.reliability.erase_retry_budget;
        for attempt in 0..=budget {
            let st = ex.erase(chip, BlockId(id));
            self.stats.nand_erases += 1;
            if st.is_ok() {
                let ppb = self.cfg.geometry.pages_per_block();
                self.chips[chip].reset_block(id, ppb);
                self.events.erase(chip, BlockId(id));
                return true;
            }
            if attempt < budget {
                self.stats.erase_retries += 1;
                ex.stall(chip, Nanos(self.cfg.reliability.backoff_base.0 << attempt));
            }
        }
        self.retire_block(ex, chip, id);
        false
    }

    fn ensure_space<E: NandExecutor>(&mut self, ex: &mut E, chip: usize) {
        self.ensure_space_target(ex, chip, self.cfg.gc_free_threshold);
    }

    fn ensure_space_target<E: NandExecutor>(&mut self, ex: &mut E, chip: usize, target: usize) {
        while self.chips[chip].available_blocks() < target {
            if !self.gc_once(ex, chip) {
                break;
            }
        }
    }

    // ---------------------------------------------------------------------
    // Garbage collection
    // ---------------------------------------------------------------------

    /// One greedy GC pass on `chip`. Returns false when no profitable victim
    /// exists.
    fn gc_once<E: NandExecutor>(&mut self, ex: &mut E, chip: usize) -> bool {
        let ppb = self.cfg.geometry.pages_per_block();
        // Victim selection runs over the Full-block index, never the whole
        // block array: greedy is an amortized-O(1) bucket lookup,
        // cost-benefit an O(|Full|) scan of indexed blocks only.
        let victim = {
            let cs = &mut self.chips[chip];
            let now = self.stats.host_write_pages;
            match self.cfg.gc_victim {
                crate::config::GcVictimPolicy::Greedy => {
                    cs.victims.min_live_candidate(&cs.gc_in_progress)
                }
                crate::config::GcVictimPolicy::CostBenefit => cs
                    .victims
                    .iter()
                    .filter(|&(id, live)| live < ppb && !cs.gc_in_progress.contains(&id))
                    .max_by(|&(a, _), &(b, _)| {
                        let score = |id: u32| {
                            let m = &cs.blocks[id as usize];
                            let invalid = (ppb - m.live) as f64;
                            let age = (now.saturating_sub(m.closed_at) + 1) as f64;
                            invalid * age / (m.live as f64 + 1.0)
                        };
                        score(a).partial_cmp(&score(b)).expect("finite score")
                    })
                    .map(|(id, _)| id),
            }
        };
        let Some(victim) = victim else { return false };
        ex.push_cause(OpCause::Gc);
        if self.decisions.enabled() {
            let m = self.chips[chip].blocks[victim as usize];
            let invalid = ppb - m.live;
            let score = match self.cfg.gc_victim {
                crate::config::GcVictimPolicy::Greedy => f64::from(invalid),
                crate::config::GcVictimPolicy::CostBenefit => {
                    let now = self.stats.host_write_pages;
                    let age = (now.saturating_sub(m.closed_at) + 1) as f64;
                    f64::from(invalid) * age / (f64::from(m.live) + 1.0)
                }
            };
            self.note_decision(
                ex,
                Decision::GcVictim { chip, block: victim, live: m.live, invalid, score },
            );
        }
        self.stats.gc_invocations += 1;
        self.chips[chip].gc_in_progress.insert(victim);

        // Relocate live pages, remembering which old slots were secured.
        let secured_olds = self.relocate_live_pages(ex, chip, victim);
        self.chips[chip].gc_in_progress.remove(&victim);

        // Sanitize the freshly-invalidated secured copies (paper Fig. 13:
        // "GC done" -> lock manager).
        self.sanitize_dead_block(ex, chip, victim, &secured_olds);

        // Reclamation: lazy by default (erase deferred to reuse); eager under
        // the ablation flag or when erSSD already erased the block above.
        if self.chips[chip].blocks[victim as usize].state == BlockState::Full {
            if self.cfg.eager_gc_erase {
                if self.erase_block(ex, chip, victim) {
                    self.chips[chip].free.push_back(victim);
                }
            } else {
                let cs = &mut self.chips[chip];
                cs.set_block_state(victim, BlockState::Reclaimable);
                cs.reclaimable.push_back(victim);
            }
        }
        ex.pop_cause();
        true
    }

    /// Copies every live page out of `block` (within the same chip),
    /// remapping and invalidating the old slots. Returns the old addresses
    /// that were secured.
    fn relocate_live_pages<E: NandExecutor>(
        &mut self,
        ex: &mut E,
        chip: usize,
        block: u32,
    ) -> Vec<GlobalPpa> {
        let ppb = self.cfg.geometry.pages_per_block();
        let mut secured_olds = Vec::new();
        for p in 0..ppb {
            let old = GlobalPpa::new(chip, Ppa { block: BlockId(block), page: PageId(p) });
            let idx = self.flat(old.ppa);
            let st = self.chips[chip].status[idx];
            if !st.is_live() {
                continue;
            }
            let lpa = self.chips[chip].p2l[idx].expect("live page has a reverse mapping");
            let data = ex.read(old).expect("live page is readable");
            self.stats.nand_reads += 1;
            let secure = st == PageStatus::Secured;
            let seq = self.next_seq();
            let payload = data.with_oob(PageOob { lpa, secure, seq });
            let new_at = loop {
                let new_at = self.allocate_on_chip(ex, chip);
                self.stats.nand_programs += 1;
                if ex.program(new_at, payload.clone()).is_ok() {
                    break new_at;
                }
                self.note_program_failure(ex, new_at, secure);
            };
            self.stats.copied_pages += 1;
            self.commit_mapping(lpa, new_at, secure);
            self.events.program(lpa, new_at, true, secure);

            // Invalidate the old slot (bookkeeping only; sanitization of the
            // whole dead block happens after all copies complete).
            self.chips[chip].mark_invalid(idx, block);
            if st == PageStatus::Secured {
                secured_olds.push(old);
            }
            self.events.invalidate(
                old,
                secure,
                self.policy.is_immediate() && secure,
                InvalidateCause::GcCopy,
            );
        }
        secured_olds
    }

    /// Applies the sanitization policy to a fully-dead block whose secured
    /// old copies are `secured_olds`.
    fn sanitize_dead_block<E: NandExecutor>(
        &mut self,
        ex: &mut E,
        chip: usize,
        block: u32,
        secured_olds: &[GlobalPpa],
    ) {
        // Innermost cause wins: even when invoked from inside GC, the
        // lock/erase/scrub traffic below is sanitization work.
        ex.push_cause(OpCause::Sanitize);
        match self.policy {
            SanitizePolicy::None => {}
            SanitizePolicy::Evanesco { use_block } => {
                // The victim is fully dead now; any locks still queued for
                // it coalesce into this one settlement.
                let mut all: Vec<GlobalPpa> = secured_olds.to_vec();
                let mut queued = 0u64;
                if self.cfg.lock_coalescing {
                    if let Some(entry) = self.pending_locks.take(chip, block) {
                        queued = entry.pages.len() as u64;
                        all.extend_from_slice(&entry.pages);
                        self.pending_locks.recycle(entry.pages);
                    }
                }
                if !all.is_empty() {
                    if use_block && all.len() >= self.cfg.block_min_plocks {
                        self.secure_block(ex, chip, block, &all);
                        self.stats.coalesced_plocks += queued;
                    } else {
                        for &old in &all {
                            self.secure_page(ex, old);
                        }
                        self.stats.coalesce_flushed_plocks += queued;
                    }
                }
            }
            SanitizePolicy::EraseBased => {
                if !secured_olds.is_empty() {
                    // Eager erase destroys every invalid page in the block.
                    self.detach_block(chip, block);
                    if self.erase_block(ex, chip, block) {
                        self.stats.sanitize_erases += 1;
                        self.chips[chip].free.push_back(block);
                    }
                }
            }
            SanitizePolicy::Scrub => {
                for &old in secured_olds {
                    ex.scrub(old);
                    self.stats.scrubs += 1;
                }
            }
        }
        ex.pop_cause();
    }

    // ---------------------------------------------------------------------
    // Invalidation & sanitization
    // ---------------------------------------------------------------------

    fn invalidate_block_group<E: NandExecutor>(
        &mut self,
        ex: &mut E,
        chip: usize,
        block: u32,
        group: &[GlobalPpa],
        cause: InvalidateCause,
    ) {
        // Host-update invalidations are deferrable (the host never waits on
        // them); trim invalidations must settle synchronously before the ack.
        let defer = cause == InvalidateCause::HostUpdate;
        // Mark invalid first, collecting the secured subset into a recycled
        // buffer (this runs on every host overwrite; a fresh allocation per
        // call would dominate the data plane).
        let mut secured = std::mem::take(&mut self.secured_scratch);
        secured.clear();
        for &old in group {
            let idx = self.flat(old.ppa);
            let st = self.chips[chip].status[idx];
            debug_assert!(st.is_live(), "invalidate of non-live page {old}");
            self.chips[chip].mark_invalid(idx, block);
            if st == PageStatus::Secured {
                secured.push(old);
            }
            let sec = st == PageStatus::Secured;
            self.events.invalidate(old, sec, self.policy.is_immediate() && sec, cause);
        }
        // Lock coalescing (Evanesco policies only): deferrable locks queue
        // until the block dies — one bLock then covers the whole batch — or
        // until the age window expires. Synchronous (trim) locks settle now,
        // merging any queued locks of a block that just died.
        if self.cfg.lock_coalescing {
            if let SanitizePolicy::Evanesco { use_block } = self.policy {
                let meta = self.chips[chip].blocks[block as usize];
                let fully_dead = meta.state == BlockState::Full && meta.live == 0;
                if defer && !fully_dead {
                    if !secured.is_empty() {
                        self.note_decision(
                            ex,
                            Decision::CoalesceEnqueue { chip, block, pages: secured.len() },
                        );
                        self.enqueue_pending_locks(chip, block, &secured);
                    }
                    self.secured_scratch = secured;
                    return;
                }
                let mut queued = 0u64;
                if fully_dead {
                    if let Some(entry) = self.pending_locks.take(chip, block) {
                        queued = entry.pages.len() as u64;
                        secured.extend_from_slice(&entry.pages);
                        self.pending_locks.recycle(entry.pages);
                    }
                }
                if secured.is_empty() {
                    self.secured_scratch = secured;
                    return;
                }
                if use_block && fully_dead && secured.len() >= self.cfg.block_min_plocks {
                    self.secure_block(ex, chip, block, &secured);
                    self.stats.coalesced_plocks += queued;
                } else {
                    for &old in &secured {
                        self.secure_page(ex, old);
                    }
                    self.stats.coalesce_flushed_plocks += queued;
                }
                self.secured_scratch = secured;
                return;
            }
        }
        if secured.is_empty() {
            self.secured_scratch = secured;
            return;
        }
        match self.policy {
            SanitizePolicy::None => {}
            SanitizePolicy::Evanesco { use_block } => {
                let meta = self.chips[chip].blocks[block as usize];
                let fully_dead = meta.state == BlockState::Full && meta.live == 0;
                if use_block && fully_dead && secured.len() >= self.cfg.block_min_plocks {
                    self.secure_block(ex, chip, block, &secured);
                } else {
                    for &old in &secured {
                        self.secure_page(ex, old);
                    }
                }
            }
            SanitizePolicy::EraseBased => {
                self.erase_based_sanitize(ex, chip, block);
            }
            SanitizePolicy::Scrub => {
                for &old in &secured {
                    self.scrub_sanitize(ex, old);
                }
            }
        }
        self.secured_scratch = secured;
    }

    // ---------------------------------------------------------------------
    // Lock coalescing queue
    // ---------------------------------------------------------------------

    fn enqueue_pending_locks(&mut self, chip: usize, block: u32, pages: &[GlobalPpa]) {
        let since = self.stats.host_write_pages;
        self.pending_locks.enqueue(chip, block, pages, since);
    }

    /// Settles one queue entry *now*: promotes to `bLock` when the block is
    /// fully dead and the batch is large enough, else issues the `pLock`s
    /// individually.
    fn settle_pending_entry<E: NandExecutor>(&mut self, ex: &mut E, entry: CoalesceEntry) {
        let CoalesceEntry { chip, block, pages, since: _ } = entry;
        let use_block = matches!(self.policy, SanitizePolicy::Evanesco { use_block: true });
        let meta = self.chips[chip].blocks[block as usize];
        let fully_dead =
            meta.live == 0 && matches!(meta.state, BlockState::Full | BlockState::Reclaimable);
        if use_block && fully_dead && pages.len() >= self.cfg.block_min_plocks {
            self.note_decision(ex, Decision::CoalescePromote { chip, block, pages: pages.len() });
            self.secure_block(ex, chip, block, &pages);
            self.stats.coalesced_plocks += pages.len() as u64;
        } else {
            self.note_decision(ex, Decision::CoalesceFlush { chip, block, pages: pages.len() });
            for &at in &pages {
                self.secure_page(ex, at);
            }
            self.stats.coalesce_flushed_plocks += pages.len() as u64;
        }
        self.pending_locks.recycle(pages);
    }

    /// Flushes queue entries older than the coalescing window (called once
    /// per host write; entries are in age order, so this stops at the first
    /// young one).
    fn flush_aged_locks<E: NandExecutor>(&mut self, ex: &mut E) {
        let now = self.stats.host_write_pages;
        while let Some(since) = self.pending_locks.front_since() {
            if now.saturating_sub(since) < self.cfg.coalesce_window {
                break;
            }
            let entry = self.pending_locks.pop_front().expect("front exists");
            self.settle_pending_entry(ex, entry);
        }
    }

    /// Drains the whole coalescing queue (quiesce: end of run, or before a
    /// planned shutdown). Afterwards no deferred lock is outstanding.
    pub fn flush_coalesced<E: NandExecutor, O: FtlObserver>(&mut self, ex: &mut E, obs: &mut O) {
        while let Some(entry) = self.pending_locks.pop_front() {
            self.settle_pending_entry(ex, entry);
        }
        self.events.drain_into(obs);
    }

    /// Number of deferred `pLock`s currently queued by lock coalescing.
    pub fn pending_coalesced_locks(&self) -> usize {
        self.pending_locks.total_pages()
    }

    /// erSSD: relocate all live pages of `block`, then erase it immediately.
    fn erase_based_sanitize<E: NandExecutor>(&mut self, ex: &mut E, chip: usize, block: u32) {
        ex.push_cause(OpCause::Sanitize);
        self.erase_based_sanitize_inner(ex, chip, block);
        ex.pop_cause();
    }

    fn erase_based_sanitize_inner<E: NandExecutor>(&mut self, ex: &mut E, chip: usize, block: u32) {
        // Close the block if it is the active one (cannot erase a block we
        // are appending to without losing the write pointer).
        let cs = &mut self.chips[chip];
        if let Some(ab) = cs.active {
            if ab.id == block {
                cs.active = None;
                cs.set_block_state(block, BlockState::Full);
            }
        }
        // The relocation burst can consume up to two blocks before the
        // victim's erase returns one; reserve headroom first (this GC
        // pressure is part of erSSD's cost and is accounted normally).
        self.ensure_space_target(ex, chip, self.cfg.gc_free_threshold + 1);
        // The reservation GC may already have collected — and lazy-erased —
        // this very block (or retired it); if so the secured data is
        // physically gone.
        match self.chips[chip].blocks[block as usize].state {
            BlockState::Free | BlockState::Open | BlockState::Retired => return,
            BlockState::Full | BlockState::Reclaimable => {}
        }
        let _ = self.relocate_live_pages(ex, chip, block);
        // An emergency GC during the relocation may already have queued the
        // (now dead) block as reclaimable; detach it to avoid double listing.
        self.detach_block(chip, block);
        if self.erase_block(ex, chip, block) {
            self.stats.sanitize_erases += 1;
            self.chips[chip].free.push_back(block);
        }
    }

    /// Removes a block from the free/reclaimable queues (it is about to be
    /// erased and re-listed explicitly).
    fn detach_block(&mut self, chip: usize, block: u32) {
        let cs = &mut self.chips[chip];
        cs.free.retain(|&b| b != block);
        cs.reclaimable.retain(|&b| b != block);
    }

    /// scrSSD: copy live wordline siblings elsewhere, then destroy the
    /// wordline in place.
    fn scrub_sanitize<E: NandExecutor>(&mut self, ex: &mut E, target: GlobalPpa) {
        ex.push_cause(OpCause::Sanitize);
        self.scrub_sanitize_inner(ex, target);
        ex.pop_cause();
    }

    fn scrub_sanitize_inner<E: NandExecutor>(&mut self, ex: &mut E, target: GlobalPpa) {
        // Sibling relocation consumes pages outside the host-write path;
        // keep the usual GC headroom.
        self.ensure_space(ex, target.chip);
        let geom = self.cfg.geometry;
        let chip = target.chip;
        let block = target.ppa.block;
        // The reservation GC may have collected the block and lazy-erased it
        // (physically destroying the target); don't scrub reused slots.
        if self.chips[chip].status[self.flat(target.ppa)] != PageStatus::Invalid {
            return;
        }
        let siblings = geom.wordline_siblings(target.ppa.page);

        // Move live siblings out of the wordline.
        for &p in &siblings {
            let at = GlobalPpa::new(chip, Ppa { block, page: p });
            let idx = self.flat(at.ppa);
            let st = self.chips[chip].status[idx];
            if !st.is_live() {
                continue;
            }
            let lpa = self.chips[chip].p2l[idx].expect("live page mapped");
            let data = ex.read(at).expect("live page readable");
            self.stats.nand_reads += 1;
            let secure = st == PageStatus::Secured;
            let seq = self.next_seq();
            let payload = data.with_oob(PageOob { lpa, secure, seq });
            let new_at = loop {
                let new_at = self.allocate_on_chip(ex, chip);
                self.stats.nand_programs += 1;
                if ex.program(new_at, payload.clone()).is_ok() {
                    break new_at;
                }
                self.note_program_failure(ex, new_at, secure);
            };
            self.stats.copied_pages += 1;
            self.commit_mapping(lpa, new_at, secure);
            self.events.program(lpa, new_at, true, secure);
            self.chips[chip].mark_invalid(idx, block.0);
            self.events.invalidate(at, secure, true, InvalidateCause::GcCopy);
        }

        // Destroy the wordline: the target, the siblings' old slots, and any
        // never-written slots (which become unusable).
        let mut last_destroyed = 0;
        for &p in &siblings {
            let at = GlobalPpa::new(chip, Ppa { block, page: p });
            let idx = self.flat(at.ppa);
            if self.chips[chip].status[idx] == PageStatus::Free {
                self.chips[chip].mark_invalid(idx, block.0);
                self.chips[chip].blocks[block.0 as usize].written += 1;
            }
            ex.scrub(at);
            last_destroyed = p.0;
        }
        self.stats.scrubs += 1;

        // If the wordline overlapped the active block's write pointer, the
        // pointer must skip past the destroyed slots.
        let ppb = geom.pages_per_block();
        let cs = &mut self.chips[chip];
        if let Some(ab) = cs.active.as_mut() {
            if ab.id == block.0 && ab.next_page <= last_destroyed {
                ab.next_page = last_destroyed + 1;
                if ab.next_page >= ppb {
                    cs.active = None;
                    cs.set_block_state(block.0, BlockState::Full);
                }
            }
        }
    }

    // ---------------------------------------------------------------------
    // Runtime reliability manager (lock ladders, remap, block retirement)
    // ---------------------------------------------------------------------

    /// Current degraded-mode service level.
    pub fn degraded(&self) -> DegradedMode {
        self.mode
    }

    /// Size of the grown-bad-block table (retired blocks across all chips).
    pub fn retired_block_count(&self) -> u32 {
        self.chips.iter().map(|c| c.retired).sum()
    }

    /// Issues one `pLock` with bounded, backed-off retries. Returns whether
    /// the flag verified. Does not escalate — callers pick the next rung.
    fn plock_with_retry<E: NandExecutor>(&mut self, ex: &mut E, at: GlobalPpa) -> bool {
        let budget = self.cfg.reliability.plock_retry_budget;
        let base = self.cfg.reliability.backoff_base;
        for attempt in 0..=budget {
            self.stats.plocks += 1;
            if ex.p_lock(at).is_ok() {
                return true;
            }
            if attempt < budget {
                self.stats.plock_retries += 1;
                ex.stall(at.chip, Nanos(base.0 << attempt));
            }
        }
        false
    }

    /// Secures one dead page — the hot-path escalation ladder: `pLock`
    /// retries, then block-level escalation (relocate + `bLock`, erase as
    /// last resort). On return the page is never host-readable.
    fn secure_page<E: NandExecutor>(&mut self, ex: &mut E, at: GlobalPpa) {
        // An earlier escalation in the same batch may already have erased,
        // scrubbed, or even recycled the slot; only still-invalid slots
        // need a lock.
        if self.chips[at.chip].status[self.flat(at.ppa)] != PageStatus::Invalid {
            return;
        }
        if self.plock_with_retry(ex, at) {
            return;
        }
        self.stats.plock_escalations += 1;
        self.note_decision(
            ex,
            Decision::Escalation {
                chip: at.chip,
                block: at.ppa.block.0,
                rung: crate::decision::EscalationRung::PlockExhausted,
            },
        );
        self.escalate_block(ex, at.chip, at.ppa.block.0);
    }

    /// Terminal per-page rung inside a failed block-level settle: `pLock`
    /// retries, then an in-place scrub (infallible — the partial pulse
    /// physically destroys the wordline's charge).
    fn plock_or_scrub<E: NandExecutor>(&mut self, ex: &mut E, at: GlobalPpa) {
        if self.chips[at.chip].status[self.flat(at.ppa)] != PageStatus::Invalid {
            return;
        }
        if self.plock_with_retry(ex, at) {
            return;
        }
        self.stats.lock_scrub_fallbacks += 1;
        self.note_decision(
            ex,
            Decision::Escalation {
                chip: at.chip,
                block: at.ppa.block.0,
                rung: crate::decision::EscalationRung::ScrubFallback,
            },
        );
        ex.scrub(at);
        self.stats.scrubs += 1;
    }

    /// `bLock` with bounded, backed-off retries. Returns verify success;
    /// counts the terminal failure as a fallback.
    fn block_lock_with_retry<E: NandExecutor>(
        &mut self,
        ex: &mut E,
        chip: usize,
        block: u32,
    ) -> bool {
        let budget = self.cfg.reliability.block_retry_budget;
        let base = self.cfg.reliability.backoff_base;
        for attempt in 0..=budget {
            self.stats.blocks_locked += 1;
            if ex.b_lock(chip, BlockId(block)).is_ok() {
                return true;
            }
            if attempt < budget {
                self.stats.block_lock_retries += 1;
                ex.stall(chip, Nanos(base.0 << attempt));
            }
        }
        self.stats.block_lock_fallbacks += 1;
        false
    }

    /// Settles a batch of dead secured pages of one block with a `bLock`,
    /// demoting to per-page locks (scrub as last resort) when the SSL
    /// program keeps failing its verify.
    fn secure_block<E: NandExecutor>(
        &mut self,
        ex: &mut E,
        chip: usize,
        block: u32,
        pages: &[GlobalPpa],
    ) {
        if self.block_lock_with_retry(ex, chip, block) {
            return;
        }
        self.note_decision(
            ex,
            Decision::Escalation {
                chip,
                block,
                rung: crate::decision::EscalationRung::BlockLockDemoted,
            },
        );
        for &at in pages {
            self.plock_or_scrub(ex, at);
        }
    }

    /// Block-level escalation after a page's `pLock` ladder is exhausted:
    /// stop appending to the block, relocate its live pages, then `bLock`
    /// the whole block; if even that fails, erase it immediately (the
    /// erSSD fallback — which retires the block if the erase fails too).
    fn escalate_block<E: NandExecutor>(&mut self, ex: &mut E, chip: usize, block: u32) {
        ex.push_cause(OpCause::Retry);
        self.escalate_block_inner(ex, chip, block);
        ex.pop_cause();
    }

    fn escalate_block_inner<E: NandExecutor>(&mut self, ex: &mut E, chip: usize, block: u32) {
        let cs = &mut self.chips[chip];
        if cs.active.is_some_and(|ab| ab.id == block) {
            // Sacrifice the write pointer: the block's remaining free pages
            // are wasted until the eventual erase reclaims them.
            cs.active = None;
            cs.set_block_state(block, BlockState::Full);
        }
        if self.chips[chip].blocks[block as usize].live > 0 {
            // The relocation burst consumes pages; reserve headroom first.
            self.ensure_space_target(ex, chip, self.cfg.gc_free_threshold + 1);
            match self.chips[chip].blocks[block as usize].state {
                // The reservation GC consumed (or retired) the block: the
                // offending page is already physically gone.
                BlockState::Free | BlockState::Open | BlockState::Retired => return,
                BlockState::Full | BlockState::Reclaimable => {}
            }
            let before = self.stats.copied_pages;
            let _ = self.relocate_live_pages(ex, chip, block);
            self.stats.reliability_relocations += self.stats.copied_pages - before;
        }
        match self.chips[chip].blocks[block as usize].state {
            BlockState::Free | BlockState::Open | BlockState::Retired => return,
            BlockState::Full | BlockState::Reclaimable => {}
        }
        if self.block_lock_with_retry(ex, chip, block) {
            let cs = &mut self.chips[chip];
            if cs.blocks[block as usize].state == BlockState::Full {
                cs.set_block_state(block, BlockState::Reclaimable);
                cs.reclaimable.push_back(block);
            }
            return;
        }
        // erSSD rung: physically destroy the block's contents now.
        self.note_decision(
            ex,
            Decision::Escalation {
                chip,
                block,
                rung: crate::decision::EscalationRung::SanitizeErase,
            },
        );
        self.detach_block(chip, block);
        if self.erase_block(ex, chip, block) {
            self.stats.sanitize_erases += 1;
            self.chips[chip].free.push_back(block);
        }
    }

    /// Quarantines the slot consumed by a failed program: the page holds a
    /// torn remnant of the payload. If the payload was secure-class the
    /// remnant is destroyed on the spot (a torn page can still decode).
    fn note_program_failure<E: NandExecutor>(&mut self, ex: &mut E, at: GlobalPpa, secure: bool) {
        self.stats.program_fail_remaps += 1;
        let idx = self.flat(at.ppa);
        self.chips[at.chip].mark_invalid(idx, at.ppa.block.0);
        if secure {
            ex.scrub(at);
            self.stats.scrubs += 1;
        }
    }

    /// Retires a block as grown-bad: scrubs every written page (the erase
    /// pulse no longer completes, but single-wordline scrub pulses still
    /// destroy charge, so no remnant survives), programs the spare-area
    /// retirement sentinel, removes the block from circulation, and
    /// re-evaluates the degraded mode.
    fn retire_block<E: NandExecutor>(&mut self, ex: &mut E, chip: usize, id: u32) {
        // Retirement is the fault ladder's terminal rung.
        ex.push_cause(OpCause::Retry);
        let written = ex.probe_block(chip, BlockId(id)).next_program;
        for p in 0..written {
            ex.scrub(GlobalPpa::new(chip, Ppa { block: BlockId(id), page: PageId(p) }));
            self.stats.scrubs += 1;
        }
        ex.mark_bad(chip, BlockId(id));
        ex.pop_cause();
        self.detach_block(chip, id);
        let cs = &mut self.chips[chip];
        cs.set_block_state(id, BlockState::Retired);
        cs.retired += 1;
        self.stats.retired_blocks += 1;
        self.note_decision(ex, Decision::BlockRetired { chip, block: id });
        self.update_degraded(chip, ex.now());
    }

    /// Re-derives the degraded mode from `chip`'s retired count. The mode
    /// only escalates at runtime; recovery rebuilds it from scratch.
    /// `now` timestamps the transition in the decision log.
    fn update_degraded(&mut self, chip: usize, now: Nanos) {
        let res = &self.cfg.reliability;
        let used = self.chips[chip].retired as usize;
        let from = self.mode;
        if used >= res.spare_blocks {
            self.mode = DegradedMode::ReadOnly;
        } else if res.spare_blocks - used <= res.spare_low_watermark
            && self.mode == DegradedMode::Normal
        {
            self.mode = DegradedMode::SpareLow;
        }
        if self.mode != from {
            self.decisions.record(
                now,
                self.stats.host_write_pages,
                Decision::DegradedTransition { from, to: self.mode },
            );
        }
    }

    // ---------------------------------------------------------------------
    // Power-up recovery (see crate::recovery for the algorithm overview)
    // ---------------------------------------------------------------------

    /// Rebuilds all RAM state from on-flash state after an unclean
    /// shutdown and re-establishes every lock lost mid-flight, *before*
    /// any host operation is served.
    ///
    /// Cumulative [`FtlStats`] are deliberately preserved: they are
    /// simulator-level observability, not FTL RAM state.
    pub fn recover<E: NandExecutor, O: FtlObserver>(
        &mut self,
        ex: &mut E,
        obs: &mut O,
    ) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let ppb = self.cfg.geometry.pages_per_block();
        let n_blocks = self.cfg.geometry.blocks;

        // Phase 0: forget everything RAM held. The on-flash truth wins.
        for m in self.l2p.iter_mut() {
            *m = None;
        }
        for cs in &mut self.chips {
            cs.p2l.iter_mut().for_each(|p| *p = None);
            cs.status.iter_mut().for_each(|s| *s = PageStatus::Free);
            cs.blocks.iter_mut().for_each(|b| *b = BlockMeta::EMPTY);
            cs.free.clear();
            cs.reclaimable.clear();
            cs.active = None;
            cs.gc_in_progress.clear();
            cs.victims = VictimIndex::new(n_blocks, ppb);
            cs.live_total = 0;
            cs.invalid_total = 0;
            cs.retired = 0;
        }
        self.next_chip = 0;
        // Rebuilt below from the on-flash grown-bad-block marks.
        self.mode = DegradedMode::Normal;
        // The deferred-lock queue died with RAM. Its pages are rediscovered
        // below as stale secured versions (sequence-contest losers) and
        // resealed through the policy's own mechanism.
        self.pending_locks.clear();

        // Best version of each logical page seen so far: (seq, at, secure).
        let mut winner: Vec<Option<(u64, GlobalPpa, bool)>> = vec![None; self.l2p.len()];
        // Every readable mapped page: (at, lpa, seq, secure).
        let mut candidates: Vec<(GlobalPpa, Lpa, u64, bool)> = Vec::new();
        // Decodable torn writes of secured data (never acknowledged).
        let mut orphans: Vec<GlobalPpa> = Vec::new();
        let mut max_seq = 0u64;

        // Phase 1: physical scan.
        for chip in 0..self.chips.len() {
            for b in 0..n_blocks {
                let bid = BlockId(b);
                let bp = ex.probe_block(chip, bid);

                // A grown-bad mark short-circuits everything: the block was
                // retired (its contents scrubbed at retirement) and never
                // re-enters circulation. The spare-area sentinel is the
                // persistent bad-block table.
                if bp.bad {
                    let cs = &mut self.chips[chip];
                    cs.set_block_state(b, BlockState::Retired);
                    cs.retired += 1;
                    continue;
                }

                // A torn erase is finished first: its low-voltage flag
                // cells may already be clear while data pages survive, so
                // the block must be sealed before anything is served.
                // (A terminal erase failure retires the block instead —
                // either way the hazard is closed.)
                if bp.torn_erase {
                    if self.erase_block(ex, chip, b) {
                        self.chips[chip].free.push_back(b);
                    }
                    report.resealed_blocks += 1;
                    continue;
                }

                // A bLock — torn or complete — only ever covers dead data:
                // complete it if torn, mark every occupied page invalid.
                if bp.lock.is_torn() {
                    self.reissue_b_lock(ex, chip, b, bp.next_program, &mut report);
                    report.reissued_blocks += 1;
                }
                if bp.lock.reads_locked() || bp.lock.is_torn() {
                    let cs = &mut self.chips[chip];
                    let base = (b * ppb) as usize;
                    for i in 0..bp.next_program as usize {
                        cs.mark_invalid(base + i, b);
                    }
                    cs.blocks[b as usize].written = bp.next_program;
                    if bp.next_program == 0 {
                        cs.free.push_back(b);
                    } else {
                        cs.set_block_state(b, BlockState::Full);
                    }
                    continue;
                }

                if bp.next_program == 0 {
                    self.chips[chip].free.push_back(b);
                    continue;
                }

                // Page-by-page scan of the occupied prefix.
                for p in 0..bp.next_program {
                    let at = GlobalPpa::new(chip, Ppa { block: bid, page: PageId(p) });
                    let idx = self.flat(at.ppa);
                    let probe = ex.probe_page(at);
                    report.scanned_pages += 1;
                    self.stats.nand_reads += 1;
                    self.chips[chip].blocks[b as usize].written += 1;
                    self.chips[chip].mark_invalid(idx, b);

                    if probe.torn {
                        report.torn_writes += 1;
                        if probe.oob.is_some_and(|o| o.secure) {
                            report.orphaned_pages += 1;
                            orphans.push(at);
                        }
                        continue;
                    }
                    if probe.lock.is_torn() {
                        // The pLock's page is by definition a dead secured
                        // version; completing the lock sanitizes it.
                        self.relock_page(ex, at, &mut report);
                        report.relocked_pages += 1;
                        continue;
                    }
                    if probe.lock.reads_locked() {
                        continue; // completed lock: sealed dead data
                    }
                    match probe.oob {
                        Some(oob) if (oob.lpa as usize) < winner.len() => {
                            max_seq = max_seq.max(oob.seq);
                            candidates.push((at, oob.lpa, oob.seq, oob.secure));
                            let w = &mut winner[oob.lpa as usize];
                            if w.is_none_or(|(ws, _, _)| oob.seq > ws) {
                                *w = Some((oob.seq, at, oob.secure));
                            }
                        }
                        // Garbage / destroyed / out-of-range OOB: stays
                        // Invalid.
                        _ => {}
                    }
                }
                // Partially-written blocks are sealed, not resumed: the
                // interrupted tail page makes in-order append unsafe.
                self.chips[chip].set_block_state(b, BlockState::Full);
            }
        }
        self.seq = max_seq + 1;

        // Phase 2: commit the newest version of each logical page.
        for (lpa, won) in winner.iter().enumerate() {
            if let Some((_, at, secure)) = *won {
                // commit_mapping expects the slot not to be counted live yet.
                self.commit_mapping(lpa as Lpa, at, secure);
                report.rebuilt_mappings += 1;
            }
        }

        // Phase 3: classify fully-dead blocks as reclaimable (lazy erase).
        for cs in &mut self.chips {
            for b in 0..n_blocks {
                if cs.blocks[b as usize].state == BlockState::Full
                    && cs.blocks[b as usize].live == 0
                {
                    cs.set_block_state(b, BlockState::Reclaimable);
                    cs.reclaimable.push_back(b);
                }
            }
        }

        // Phase 4: sanitize sequence-contest losers that carried the
        // secure mark, plus decodable secured orphans, through the active
        // policy's own mechanism.
        let mut to_sanitize: Vec<GlobalPpa> = Vec::new();
        for &(at, lpa, seq, secure) in &candidates {
            let lost = winner[lpa as usize] != Some((seq, at, secure));
            if lost && secure {
                report.stale_secured += 1;
                to_sanitize.push(at);
            }
        }
        to_sanitize.extend_from_slice(&orphans);
        self.sanitize_after_recovery(ex, &to_sanitize, &mut report);

        // Phase 5: re-derive the degraded mode from the rebuilt grown-bad
        // table (blocks retired during this recovery included).
        report.retired_blocks = u64::from(self.retired_block_count());
        for chip in 0..self.chips.len() {
            self.update_degraded(chip, ex.now());
        }

        // The rebuilt state is the new ground truth: reseal the metadata
        // guard (and settle any injected-but-undetected corruption — the
        // rebuild itself is the flash-side repair).
        self.guard_after_recover();

        self.events.drain_into(obs);
        obs.on_recovery(&report);
        report
    }

    /// Applies the active policy to pages recovery found to need
    /// sanitization (stale secured versions and orphaned torn writes).
    fn sanitize_after_recovery<E: NandExecutor>(
        &mut self,
        ex: &mut E,
        targets: &[GlobalPpa],
        report: &mut RecoveryReport,
    ) {
        if targets.is_empty() {
            return;
        }
        // Group by (chip, block) — same batching the runtime paths use.
        let mut groups: Vec<(usize, u32, Vec<GlobalPpa>)> = Vec::new();
        for &at in targets {
            let key = (at.chip, at.ppa.block.0);
            match groups.iter_mut().find(|(c, b, _)| (*c, *b) == key) {
                Some((_, _, v)) => v.push(at),
                None => groups.push((key.0, key.1, vec![at])),
            }
        }
        match self.policy {
            SanitizePolicy::None => {}
            SanitizePolicy::Evanesco { use_block } => {
                for (chip, block, group) in groups {
                    let meta = self.chips[chip].blocks[block as usize];
                    let fully_dead = meta.live == 0
                        && matches!(meta.state, BlockState::Full | BlockState::Reclaimable);
                    if use_block && fully_dead && group.len() >= self.cfg.block_min_plocks {
                        self.reissue_b_lock(ex, chip, block, meta.written, report);
                        self.stats.blocks_locked += 1;
                    } else {
                        for &at in &group {
                            self.relock_page(ex, at, report);
                        }
                    }
                }
            }
            SanitizePolicy::EraseBased => {
                for (chip, block, _) in groups {
                    // The block may already have been consumed (lazy-erased
                    // on reuse, or retired) by a previous group's relocations.
                    match self.chips[chip].blocks[block as usize].state {
                        BlockState::Free | BlockState::Open | BlockState::Retired => continue,
                        BlockState::Full | BlockState::Reclaimable => {}
                    }
                    let _ = self.relocate_live_pages(ex, chip, block);
                    self.detach_block(chip, block);
                    if self.erase_block(ex, chip, block) {
                        self.stats.sanitize_erases += 1;
                        self.chips[chip].free.push_back(block);
                    }
                }
            }
            SanitizePolicy::Scrub => {
                for (_, _, group) in groups {
                    for &at in &group {
                        self.scrub_sanitize(ex, at);
                    }
                }
            }
        }
    }

    /// Issues `pLock` with verify; bounded retry with exponential backoff
    /// on verify failure, destructive scrub as the final fallback.
    fn relock_page<E: NandExecutor>(
        &mut self,
        ex: &mut E,
        at: GlobalPpa,
        report: &mut RecoveryReport,
    ) {
        let base = self.cfg.timing.t_plock;
        for attempt in 0..MAX_LOCK_RETRIES {
            ex.p_lock(at);
            self.stats.plocks += 1;
            if ex.probe_page(at).lock == FlagState::Locked {
                return;
            }
            report.lock_retries += 1;
            ex.stall(at.chip, Nanos(base.0 << attempt));
        }
        ex.scrub(at);
        self.stats.scrubs += 1;
        report.lock_fallbacks += 1;
    }

    /// Issues `bLock` with verify and bounded retry; falls back to
    /// per-page locks (which themselves fall back to scrubs).
    fn reissue_b_lock<E: NandExecutor>(
        &mut self,
        ex: &mut E,
        chip: usize,
        block: u32,
        written: u32,
        report: &mut RecoveryReport,
    ) {
        let base = self.cfg.timing.t_block;
        for attempt in 0..MAX_LOCK_RETRIES {
            ex.b_lock(chip, BlockId(block));
            if ex.probe_block(chip, BlockId(block)).lock == FlagState::Locked {
                return;
            }
            report.lock_retries += 1;
            ex.stall(chip, Nanos(base.0 << attempt));
        }
        report.lock_fallbacks += 1;
        for p in 0..written {
            let at = GlobalPpa::new(chip, Ppa { block: BlockId(block), page: PageId(p) });
            self.relock_page(ex, at, report);
        }
    }

    // ---------------------------------------------------------------------
    // Introspection for tests and experiments
    // ---------------------------------------------------------------------

    /// Number of live (valid or secured) pages across all chips. O(chips):
    /// reads the running totals, no page scan.
    pub fn live_pages(&self) -> u64 {
        self.chips.iter().map(|c| c.live_total).sum()
    }

    /// Number of invalid (dead, not yet erased) pages across all chips.
    /// O(chips): reads the running totals, no page scan.
    pub fn invalid_pages(&self) -> u64 {
        self.chips.iter().map(|c| c.invalid_total).sum()
    }

    /// Verifies internal consistency: mapping tables, the per-block and
    /// per-chip live/invalid counters, and the GC victim index all agree
    /// with a ground-truth scan of the page status table.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency; used by property tests.
    pub fn check_invariants(&self) {
        let ppb = self.cfg.geometry.pages_per_block();
        let mut mapped = 0u64;
        for (lpa, at) in self.l2p.iter().enumerate() {
            if let Some(at) = at {
                let idx = self.flat(at.ppa);
                assert_eq!(
                    self.chips[at.chip].p2l[idx],
                    Some(lpa as Lpa),
                    "l2p/p2l disagree at lpa {lpa}"
                );
                assert!(
                    self.chips[at.chip].status[idx].is_live(),
                    "mapped page not live at lpa {lpa}"
                );
                mapped += 1;
            }
        }
        assert_eq!(mapped, self.live_pages(), "live-page counter drift");
        for (ci, c) in self.chips.iter().enumerate() {
            let mut live_sum = 0u64;
            let mut invalid_sum = 0u64;
            for (bi, b) in c.blocks.iter().enumerate() {
                let base = bi * ppb as usize;
                let live =
                    (0..ppb as usize).filter(|&i| c.status[base + i].is_live()).count() as u32;
                let invalid = (0..ppb as usize)
                    .filter(|&i| c.status[base + i] == PageStatus::Invalid)
                    .count() as u32;
                assert_eq!(live, b.live, "block live count drift at chip {ci} block {bi}");
                assert_eq!(invalid, b.invalid, "block invalid count drift at chip {ci} block {bi}");
                live_sum += u64::from(live);
                invalid_sum += u64::from(invalid);
                let indexed = c.victims.contains(bi as u32);
                assert_eq!(
                    indexed,
                    b.state == BlockState::Full,
                    "victim index membership drift at chip {ci} block {bi} ({:?})",
                    b.state
                );
                if indexed {
                    let (bucket, _) = c.victims.pos[bi].expect("indexed block has a position");
                    assert_eq!(bucket, b.live, "victim index bucket drift at chip {ci} block {bi}");
                }
            }
            assert_eq!(live_sum, c.live_total, "chip live total drift at chip {ci}");
            assert_eq!(invalid_sum, c.invalid_total, "chip invalid total drift at chip {ci}");
            let retired = c.blocks.iter().filter(|b| b.state == BlockState::Retired).count() as u32;
            assert_eq!(retired, c.retired, "retired count drift at chip {ci}");
            for (bi, b) in c.blocks.iter().enumerate() {
                if b.state == BlockState::Retired {
                    let bi = bi as u32;
                    assert!(
                        !c.free.contains(&bi) && !c.reclaimable.contains(&bi),
                        "retired block {bi} still in circulation on chip {ci}"
                    );
                    assert!(
                        c.active.is_none_or(|ab| ab.id != bi),
                        "retired block {bi} is the active frontier on chip {ci}"
                    );
                }
            }
        }
    }

    /// Serializes every dynamic table of the FTL — the L2P map, per-chip
    /// page/block state (including the GC victim index and free/reclaimable
    /// queue *orders*, which affect future victim and allocation choices),
    /// the write frontier, counters, sequence number, coalescing queue, and
    /// degraded mode — into a checkpoint stream.
    ///
    /// The decision log is observational only and not checkpointed.
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x30);
        e.usize(self.l2p.len());
        for slot in &self.l2p {
            e.opt(slot, encode_gppa);
        }
        e.usize(self.chips.len());
        for c in &self.chips {
            e.usize(c.p2l.len());
            for slot in &c.p2l {
                e.opt(slot, |e, lpa| e.u64(*lpa));
            }
            for &s in &c.status {
                e.u8(match s {
                    PageStatus::Free => 0,
                    PageStatus::Valid => 1,
                    PageStatus::Secured => 2,
                    PageStatus::Invalid => 3,
                });
            }
            e.usize(c.blocks.len());
            for b in &c.blocks {
                e.u8(match b.state {
                    BlockState::Free => 0,
                    BlockState::Open => 1,
                    BlockState::Full => 2,
                    BlockState::Reclaimable => 3,
                    BlockState::Retired => 4,
                });
                e.u32(b.live);
                e.u32(b.invalid);
                e.u32(b.written);
                e.u64(b.closed_at);
            }
            e.usize(c.free.len());
            for &b in &c.free {
                e.u32(b);
            }
            e.usize(c.reclaimable.len());
            for &b in &c.reclaimable {
                e.u32(b);
            }
            e.opt(&c.active, |e, a| {
                e.u32(a.id);
                e.u32(a.next_page);
            });
            let mut gc: Vec<u32> = c.gc_in_progress.iter().copied().collect();
            gc.sort_unstable();
            e.usize(gc.len());
            for b in gc {
                e.u32(b);
            }
            // Victim index verbatim: bucket order breaks cost-benefit GC
            // ties, so it must survive exactly (never rebuilt sorted).
            e.usize(c.victims.buckets.len());
            for bucket in &c.victims.buckets {
                e.usize(bucket.len());
                for &b in bucket {
                    e.u32(b);
                }
            }
            e.usize(c.victims.pos.len());
            for p in &c.victims.pos {
                e.opt(p, |e, &(live, slot)| {
                    e.u32(live);
                    e.u32(slot);
                });
            }
            e.u32(c.victims.min_live);
            e.u64(c.live_total);
            e.u64(c.invalid_total);
            e.u32(c.retired);
        }
        e.usize(self.chip_order.len());
        for &c in &self.chip_order {
            e.usize(c);
        }
        e.usize(self.next_chip);
        self.stats.encode_snapshot(e);
        e.u64(self.seq);
        e.usize(self.pending_locks.len());
        for entry in self.pending_locks.iter() {
            e.usize(entry.chip);
            e.u32(entry.block);
            e.usize(entry.pages.len());
            for p in &entry.pages {
                encode_gppa(e, p);
            }
            e.u64(entry.since);
        }
        e.u8(match self.mode {
            DegradedMode::Normal => 0,
            DegradedMode::SpareLow => 1,
            DegradedMode::ReadOnly => 2,
        });
    }

    /// Restores state written by [`Ftl::encode_state`] into an FTL built
    /// with the same configuration and policy.
    ///
    /// # Errors
    ///
    /// Fails on truncation, structural corruption, or table dimensions
    /// that do not match this FTL's geometry.
    pub fn decode_state(
        &mut self,
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<(), evanesco_nand::snapshot::SnapshotError> {
        use evanesco_nand::snapshot::SnapshotError;
        d.expect_tag(0x30, "ftl")?;
        let n_l2p = d.usize()?;
        if n_l2p != self.l2p.len() {
            return Err(SnapshotError::Mismatch(format!(
                "L2P size {n_l2p} does not match the configured device ({})",
                self.l2p.len()
            )));
        }
        for slot in &mut self.l2p {
            *slot = d.opt(decode_gppa)?;
        }
        let n_chips = d.usize()?;
        if n_chips != self.chips.len() {
            return Err(SnapshotError::Mismatch(format!(
                "chip count {n_chips} does not match the configured device ({})",
                self.chips.len()
            )));
        }
        for c in &mut self.chips {
            let n_pages = d.usize()?;
            if n_pages != c.p2l.len() {
                return Err(SnapshotError::Mismatch(format!(
                    "chip page count {n_pages} does not match geometry ({})",
                    c.p2l.len()
                )));
            }
            for slot in &mut c.p2l {
                *slot = d.opt(|d| d.u64())?;
            }
            for s in &mut c.status {
                *s = match d.u8()? {
                    0 => PageStatus::Free,
                    1 => PageStatus::Valid,
                    2 => PageStatus::Secured,
                    3 => PageStatus::Invalid,
                    b => {
                        return Err(SnapshotError::Corrupt(format!("unknown page status {b:#04x}")))
                    }
                };
            }
            let n_blocks = d.usize()?;
            if n_blocks != c.blocks.len() {
                return Err(SnapshotError::Mismatch(format!(
                    "block count {n_blocks} does not match geometry ({})",
                    c.blocks.len()
                )));
            }
            for b in &mut c.blocks {
                b.state = match d.u8()? {
                    0 => BlockState::Free,
                    1 => BlockState::Open,
                    2 => BlockState::Full,
                    3 => BlockState::Reclaimable,
                    4 => BlockState::Retired,
                    v => {
                        return Err(SnapshotError::Corrupt(format!("unknown block state {v:#04x}")))
                    }
                };
                b.live = d.u32()?;
                b.invalid = d.u32()?;
                b.written = d.u32()?;
                b.closed_at = d.u64()?;
            }
            c.free.clear();
            for _ in 0..d.usize()? {
                c.free.push_back(d.u32()?);
            }
            c.reclaimable.clear();
            for _ in 0..d.usize()? {
                c.reclaimable.push_back(d.u32()?);
            }
            c.active = d.opt(|d| Ok(ActiveBlock { id: d.u32()?, next_page: d.u32()? }))?;
            c.gc_in_progress.clear();
            for _ in 0..d.usize()? {
                c.gc_in_progress.insert(d.u32()?);
            }
            let n_buckets = d.usize()?;
            if n_buckets != c.victims.buckets.len() {
                return Err(SnapshotError::Mismatch(format!(
                    "victim bucket count {n_buckets} does not match geometry ({})",
                    c.victims.buckets.len()
                )));
            }
            for bucket in &mut c.victims.buckets {
                bucket.clear();
                for _ in 0..d.usize()? {
                    bucket.push(d.u32()?);
                }
            }
            let n_pos = d.usize()?;
            if n_pos != c.victims.pos.len() {
                return Err(SnapshotError::Mismatch(format!(
                    "victim position count {n_pos} does not match geometry ({})",
                    c.victims.pos.len()
                )));
            }
            for p in &mut c.victims.pos {
                *p = d.opt(|d| Ok((d.u32()?, d.u32()?)))?;
            }
            c.victims.min_live = d.u32()?;
            c.live_total = d.u64()?;
            c.invalid_total = d.u64()?;
            c.retired = d.u32()?;
        }
        let n_order = d.usize()?;
        if n_order != self.chip_order.len() {
            return Err(SnapshotError::Mismatch(
                "chip-order length does not match the configured device".into(),
            ));
        }
        for c in &mut self.chip_order {
            *c = d.usize()?;
        }
        self.next_chip = d.usize()?;
        self.stats = FtlStats::decode_snapshot(d)?;
        self.seq = d.u64()?;
        self.pending_locks.clear();
        for _ in 0..d.usize()? {
            let chip = d.usize()?;
            let block = d.u32()?;
            let n = d.usize()?;
            // Cap the pre-allocation: a corrupted length prefix must surface
            // as a decode error downstream, not an OOM abort here.
            let mut pages = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                pages.push(decode_gppa(d)?);
            }
            let since = d.u64()?;
            if chip >= self.chips.len() || block >= self.cfg.geometry.blocks {
                return Err(SnapshotError::Corrupt(format!(
                    "coalesce entry out of range: chip {chip}, block {block}"
                )));
            }
            self.pending_locks.enqueue(chip, block, &pages, since);
        }
        self.mode = match d.u8()? {
            0 => DegradedMode::Normal,
            1 => DegradedMode::SpareLow,
            2 => DegradedMode::ReadOnly,
            b => return Err(SnapshotError::Corrupt(format!("unknown degraded mode {b:#04x}"))),
        };
        Ok(())
    }
}

fn encode_gppa(e: &mut evanesco_nand::snapshot::Enc, at: &GlobalPpa) {
    e.usize(at.chip);
    e.u32(at.ppa.block.0);
    e.u32(at.ppa.page.0);
}

fn decode_gppa(
    d: &mut evanesco_nand::snapshot::Dec<'_>,
) -> Result<GlobalPpa, evanesco_nand::snapshot::SnapshotError> {
    let chip = d.usize()?;
    let block = d.u32()?;
    let page = d.u32()?;
    Ok(GlobalPpa { chip, ppa: Ppa { block: BlockId(block), page: PageId(page) } })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::MemExecutor;
    use crate::observer::NullObserver;
    use evanesco_core::threat::Attacker;

    fn setup(policy: SanitizePolicy) -> (Ftl, MemExecutor) {
        let cfg = FtlConfig::tiny_for_tests();
        let ftl = Ftl::new(cfg, policy);
        let ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        (ftl, ex)
    }

    /// Single-chip setup so page placement is deterministic.
    fn setup_one_chip(policy: SanitizePolicy) -> (Ftl, MemExecutor) {
        let cfg = FtlConfig { n_chips: 1, ..FtlConfig::tiny_for_tests() };
        let ftl = Ftl::new(cfg, policy);
        let ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        (ftl, ex)
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut ftl, mut ex) = setup(SanitizePolicy::none());
        ftl.write(&mut ex, &mut NullObserver, 5, false, 777);
        assert_eq!(ftl.read(&mut ex, 5).unwrap().tag(), 777);
        assert_eq!(ftl.read(&mut ex, 6), None);
        ftl.check_invariants();
    }

    #[test]
    fn overwrite_remaps_and_invalidates() {
        let (mut ftl, mut ex) = setup(SanitizePolicy::none());
        ftl.write(&mut ex, &mut NullObserver, 0, false, 1);
        let first = ftl.mapped(0).unwrap();
        ftl.write(&mut ex, &mut NullObserver, 0, false, 2);
        let second = ftl.mapped(0).unwrap();
        assert_ne!(first, second, "append-only: overwrite uses a new page");
        assert_eq!(ftl.page_status(first), PageStatus::Invalid);
        assert_eq!(ftl.read(&mut ex, 0).unwrap().tag(), 2);
        assert_eq!(ftl.invalid_pages(), 1);
        ftl.check_invariants();
    }

    #[test]
    fn snapshot_roundtrip_resumes_ftl_exactly() {
        use evanesco_nand::snapshot::{Dec, Enc};
        let cfg = FtlConfig::tiny_for_tests();
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        // Drive enough traffic to populate GC structures and the queues.
        let logical = cfg.logical_pages();
        for round in 0..6u64 {
            for lpa in 0..logical / 2 {
                ftl.write(&mut ex, &mut NullObserver, lpa, lpa % 3 == 0, round * 1000 + lpa);
            }
            ftl.trim(
                &mut ex,
                &mut NullObserver,
                &(0..logical / 8).map(|i| i * 4).collect::<Vec<_>>(),
            );
        }
        ftl.check_invariants();

        let mut e = Enc::new();
        ftl.encode_state(&mut e);
        let bytes = e.into_bytes();
        let mut restored = Ftl::new(cfg, SanitizePolicy::evanesco());
        restored.decode_state(&mut Dec::new(&bytes)).unwrap();
        let mut d = Dec::new(&bytes);
        restored.check_invariants();
        // decode_state consumed its own stream exactly.
        Ftl::new(cfg, SanitizePolicy::evanesco()).decode_state(&mut d).unwrap();
        d.finish().unwrap();

        assert_eq!(restored.stats(), ftl.stats());
        assert_eq!(restored.degraded(), ftl.degraded());
        // Continue both in lockstep against identical executors.
        let mut ex2 = ex.clone();
        for lpa in 0..logical / 2 {
            ftl.write(&mut ex, &mut NullObserver, lpa, lpa % 2 == 0, 9000 + lpa);
            restored.write(&mut ex2, &mut NullObserver, lpa, lpa % 2 == 0, 9000 + lpa);
        }
        assert_eq!(restored.stats(), ftl.stats());
        for lpa in 0..logical {
            assert_eq!(restored.mapped(lpa), ftl.mapped(lpa), "mapping diverged at lpa {lpa}");
        }
        let mut ea = Enc::new();
        let mut eb = Enc::new();
        ftl.encode_state(&mut ea);
        restored.encode_state(&mut eb);
        assert_eq!(ea.into_bytes(), eb.into_bytes(), "post-resume state diverged");
    }

    #[test]
    fn snapshot_decode_rejects_geometry_mismatch() {
        use evanesco_nand::snapshot::{Dec, Enc, SnapshotError};
        let cfg = FtlConfig::tiny_for_tests();
        let ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut e = Enc::new();
        ftl.encode_state(&mut e);
        let bytes = e.into_bytes();
        let other = FtlConfig { n_chips: 1, ..cfg };
        let mut wrong = Ftl::new(other, SanitizePolicy::evanesco());
        let err = wrong.decode_state(&mut Dec::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");
    }

    #[test]
    fn writes_stripe_across_chips() {
        let (mut ftl, mut ex) = setup(SanitizePolicy::none());
        ftl.write(&mut ex, &mut NullObserver, 0, false, 1);
        ftl.write(&mut ex, &mut NullObserver, 1, false, 2);
        assert_ne!(ftl.mapped(0).unwrap().chip, ftl.mapped(1).unwrap().chip);
    }

    #[test]
    fn trim_unmaps() {
        let (mut ftl, mut ex) = setup(SanitizePolicy::none());
        ftl.write(&mut ex, &mut NullObserver, 3, false, 9);
        ftl.trim(&mut ex, &mut NullObserver, &[3]);
        assert_eq!(ftl.mapped(3), None);
        assert_eq!(ftl.read(&mut ex, 3), None);
        ftl.check_invariants();
    }

    #[test]
    fn baseline_leaves_deleted_data_recoverable() {
        // The data-versioning vulnerability: without sanitization, a raw-chip
        // attacker recovers trimmed data.
        let (mut ftl, mut ex) = setup(SanitizePolicy::none());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 4242);
        ftl.trim(&mut ex, &mut NullObserver, &[0]);
        let attacker = Attacker::new();
        // The first write lands on chip 0 (round-robin starts there).
        assert!(attacker.recover_tag(&mut ex.chips_mut()[0], 4242));
    }

    #[test]
    fn evanesco_locks_trimmed_secured_page() {
        let (mut ftl, mut ex) = setup(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 4242);
        ftl.trim(&mut ex, &mut NullObserver, &[0]);
        assert_eq!(ftl.stats().plocks, 1);
        let attacker = Attacker::new();
        for chip in ex.chips_mut() {
            assert!(!attacker.recover_tag(chip, 4242));
        }
        ftl.check_invariants();
    }

    #[test]
    fn evanesco_skips_insecure_pages() {
        let (mut ftl, mut ex) = setup(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, false, 1);
        ftl.trim(&mut ex, &mut NullObserver, &[0]);
        assert_eq!(ftl.stats().plocks, 0);
        assert_eq!(ftl.stats().blocks_locked, 0);
    }

    #[test]
    fn evanesco_overwrite_locks_old_version() {
        // Condition C2: no old content after an update.
        let (mut ftl, mut ex) = setup(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 100);
        ftl.write(&mut ex, &mut NullObserver, 0, true, 200);
        assert_eq!(ftl.stats().plocks, 1);
        let attacker = Attacker::new();
        let mut found_new = false;
        for chip in ex.chips_mut() {
            assert!(!attacker.recover_tag(chip, 100), "old version leaked");
            found_new |= attacker.recover_tag(chip, 200);
        }
        assert!(found_new, "current version must remain readable");
    }

    #[test]
    fn block_used_for_whole_block_trim() {
        // Fill one whole block on one chip with secured pages, then trim them
        // all: the lock manager should issue a single bLock, not 24 pLocks.
        let cfg = FtlConfig::tiny_for_tests();
        let ppb = cfg.geometry.pages_per_block() as u64; // 24
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        // Interleave lpas so one chip gets a full block: with 2 chips,
        // even lpas go to chip 0. Write 2*ppb pages.
        let lpas: Vec<Lpa> = (0..2 * ppb).collect();
        for &l in &lpas {
            ftl.write(&mut ex, &mut NullObserver, l, true, l);
        }
        ftl.trim(&mut ex, &mut NullObserver, &lpas);
        let s = ftl.stats();
        assert_eq!(s.blocks_locked, 2, "one bLock per fully-dead block");
        assert_eq!(s.plocks, 0, "no pLocks needed: {s:?}");
        // Nothing recoverable.
        let attacker = Attacker::new();
        for chip in ex.chips_mut() {
            for &l in &lpas {
                assert!(!attacker.recover_tag(chip, l));
            }
        }
        ftl.check_invariants();
    }

    #[test]
    fn no_block_policy_uses_plocks_only() {
        let cfg = FtlConfig::tiny_for_tests();
        let ppb = cfg.geometry.pages_per_block() as u64;
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco_no_block());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let lpas: Vec<Lpa> = (0..2 * ppb).collect();
        for &l in &lpas {
            ftl.write(&mut ex, &mut NullObserver, l, true, l);
        }
        ftl.trim(&mut ex, &mut NullObserver, &lpas);
        let s = ftl.stats();
        assert_eq!(s.blocks_locked, 0);
        assert_eq!(s.plocks, 2 * ppb);
    }

    #[test]
    fn erase_based_destroys_immediately_with_copies() {
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::erase_based());
        for (l, tag) in [(0u64, 10u64), (1, 20), (2, 30)] {
            ftl.write(&mut ex, &mut NullObserver, l, true, tag);
        }
        ftl.trim(&mut ex, &mut NullObserver, &[0]);
        let s = ftl.stats();
        assert_eq!(s.sanitize_erases, 1);
        assert!(s.copied_pages >= 2, "live pages relocated: {s:?}");
        let attacker = Attacker::new();
        for chip in ex.chips_mut() {
            assert!(!attacker.recover_tag(chip, 10));
        }
        // The survivors are still readable through the FTL.
        assert_eq!(ftl.read(&mut ex, 1).unwrap().tag(), 20);
        assert_eq!(ftl.read(&mut ex, 2).unwrap().tag(), 30);
        ftl.check_invariants();
    }

    #[test]
    fn scrub_destroys_page_and_relocates_wl_siblings() {
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::scrub());
        // Three pages fill exactly one TLC wordline.
        for (l, tag) in [(0u64, 10u64), (1, 20), (2, 30)] {
            ftl.write(&mut ex, &mut NullObserver, l, true, tag);
        }
        ftl.trim(&mut ex, &mut NullObserver, &[1]); // middle page of the WL
        let s = ftl.stats();
        assert_eq!(s.scrubs, 1);
        assert_eq!(s.copied_pages, 2, "both live siblings relocated");
        let attacker = Attacker::new();
        for chip in ex.chips_mut() {
            assert!(!attacker.recover_tag(chip, 20));
        }
        assert_eq!(ftl.read(&mut ex, 0).unwrap().tag(), 10);
        assert_eq!(ftl.read(&mut ex, 2).unwrap().tag(), 30);
        ftl.check_invariants();
    }

    #[test]
    fn gc_reclaims_space_under_pressure() {
        let cfg = FtlConfig::tiny_for_tests();
        let mut ftl = Ftl::new(cfg, SanitizePolicy::none());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let logical = ftl.logical_pages();
        // Write the full logical space twice: forces GC.
        for round in 0..2 {
            for l in 0..logical {
                ftl.write(&mut ex, &mut NullObserver, l, false, round * 10_000 + l);
            }
        }
        let s = ftl.stats();
        assert!(s.gc_invocations > 0, "GC must have run: {s:?}");
        assert!(s.nand_erases > 0);
        assert!(s.waf() >= 1.0);
        // All data still correct after GC.
        for l in 0..logical {
            assert_eq!(ftl.read(&mut ex, l).unwrap().tag(), 10_000 + l);
        }
        ftl.check_invariants();
    }

    #[test]
    fn gc_relocation_of_secured_pages_sanitizes_old_copies() {
        // Condition C2 under GC: moved secured pages leave no readable old
        // copy, enforced by bLock of the dead victim block.
        let cfg = FtlConfig::tiny_for_tests();
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let logical = ftl.logical_pages();
        for round in 0..3u64 {
            for l in 0..logical {
                ftl.write(&mut ex, &mut NullObserver, l, true, round * 100_000 + l);
            }
        }
        let s = ftl.stats();
        assert!(s.gc_invocations > 0);
        assert!(s.total_lock_commands() > 0);
        // No stale version of any page is recoverable.
        let attacker = Attacker::new();
        let mut recovered = std::collections::HashSet::new();
        for chip in ex.chips_mut() {
            recovered.extend(attacker.recoverable_tags(chip));
        }
        for l in 0..logical {
            assert!(!recovered.contains(&l), "round-0 version of {l} leaked");
            assert!(!recovered.contains(&(100_000 + l)), "round-1 version of {l} leaked");
            assert!(recovered.contains(&(200_000 + l)), "current version of {l} missing");
        }
        ftl.check_invariants();
    }

    #[test]
    fn lazy_erase_defers_physical_erase() {
        let cfg = FtlConfig::tiny_for_tests();
        let mut ftl = Ftl::new(cfg, SanitizePolicy::none());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let ppb = cfg.geometry.pages_per_block() as u64;
        // Fill one block per chip, then trim everything: blocks become fully
        // invalid but must NOT be erased until reuse.
        let lpas: Vec<Lpa> = (0..2 * ppb).collect();
        for &l in &lpas {
            ftl.write(&mut ex, &mut NullObserver, l, false, l);
        }
        ftl.trim(&mut ex, &mut NullObserver, &lpas);
        assert_eq!(ftl.stats().nand_erases, 0, "erase must be lazy");
        assert_eq!(ftl.invalid_pages(), 2 * ppb);
    }

    #[test]
    fn waf_of_erase_based_far_exceeds_evanesco() {
        // Steady-state random overwrites of secured data.
        let run = |policy| {
            let cfg = FtlConfig::tiny_for_tests();
            let mut ftl = Ftl::new(cfg, policy);
            let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
            let logical = ftl.logical_pages();
            for l in 0..logical {
                ftl.write(&mut ex, &mut NullObserver, l, true, l);
            }
            let mut rng_state = 12345u64;
            for i in 0..2000u64 {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let l = rng_state % logical;
                ftl.write(&mut ex, &mut NullObserver, l, true, 1_000_000 + i);
            }
            ftl.check_invariants();
            ftl.stats().waf()
        };
        let waf_er = run(SanitizePolicy::erase_based());
        let waf_sec = run(SanitizePolicy::evanesco());
        let waf_scr = run(SanitizePolicy::scrub());
        // In this tiny geometry (24-page blocks) erSSD relocates at most 23
        // pages per sanitization, so the gap is smaller than the paper's
        // 576-page blocks; the ordering and a clear multiple still hold.
        assert!(waf_er > 3.0 * waf_sec, "erSSD {waf_er} vs secSSD {waf_sec}");
        assert!(waf_scr > waf_sec, "scrSSD {waf_scr} vs secSSD {waf_sec}");
    }

    #[test]
    #[should_panic(expected = "out of logical space")]
    fn write_outside_logical_space_panics() {
        let (mut ftl, mut ex) = setup(SanitizePolicy::none());
        let too_big = ftl.logical_pages();
        ftl.write(&mut ex, &mut NullObserver, too_big, false, 0);
    }

    #[test]
    fn scrub_in_open_block_advances_write_pointer() {
        // Trim the only written page of the active block: the scrub destroys
        // its whole wordline including the two never-written sibling slots,
        // and subsequent writes must skip past them.
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::scrub());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 10); // page 0 of WL0
        ftl.trim(&mut ex, &mut NullObserver, &[0]);
        ftl.check_invariants();
        // Next write lands on page 3 (WL1), not on the destroyed WL0 slots.
        ftl.write(&mut ex, &mut NullObserver, 1, true, 11);
        let at = ftl.mapped(1).unwrap();
        assert_eq!(at.ppa.page.0, 3, "write pointer must skip the scrubbed WL");
        assert_eq!(ftl.read(&mut ex, 1).unwrap().tag(), 11);
        ftl.check_invariants();
    }

    #[test]
    fn erase_based_handles_target_in_active_block() {
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::erase_based());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 1);
        ftl.write(&mut ex, &mut NullObserver, 1, true, 2);
        // Overwrite lpa 0: its old copy sits in the *active* block, which
        // must be closed, relocated and erased immediately.
        ftl.write(&mut ex, &mut NullObserver, 0, true, 3);
        assert_eq!(ftl.stats().sanitize_erases, 1);
        assert_eq!(ftl.read(&mut ex, 0).unwrap().tag(), 3);
        assert_eq!(ftl.read(&mut ex, 1).unwrap().tag(), 2);
        ftl.check_invariants();
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], 1));
    }

    #[test]
    fn block_not_used_while_block_still_open() {
        // Trimming many secured pages of a block that still has free slots
        // must fall back to pLocks: bLock would brick the unwritten pages.
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::evanesco());
        // Write 12 of the block's 24 pages, then trim them all at once.
        let lpas: Vec<Lpa> = (0..12).collect();
        for &l in &lpas {
            ftl.write(&mut ex, &mut NullObserver, l, true, l);
        }
        ftl.trim(&mut ex, &mut NullObserver, &lpas);
        let s = ftl.stats();
        assert_eq!(s.blocks_locked, 0, "open block must not be bLocked");
        assert_eq!(s.plocks, 12);
        // The block is still usable for new writes.
        ftl.write(&mut ex, &mut NullObserver, 20, true, 99);
        assert_eq!(ftl.read(&mut ex, 20).unwrap().tag(), 99);
        ftl.check_invariants();
    }

    #[test]
    fn cost_benefit_gc_also_reclaims() {
        let mut cfg = FtlConfig::tiny_for_tests();
        cfg.gc_victim = crate::config::GcVictimPolicy::CostBenefit;
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let logical = ftl.logical_pages();
        for round in 0..3u64 {
            for l in 0..logical {
                ftl.write(&mut ex, &mut NullObserver, l, true, round * 100_000 + l);
            }
        }
        assert!(ftl.stats().gc_invocations > 0);
        for l in 0..logical {
            assert_eq!(ftl.read(&mut ex, l).unwrap().tag(), 200_000 + l);
        }
        ftl.check_invariants();
    }

    #[test]
    fn recover_rebuilds_mapping_after_ram_loss() {
        // Crash with no in-flight op: recovery must reproduce the exact
        // pre-crash mapping from OOB metadata alone.
        let cfg = FtlConfig::tiny_for_tests();
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let logical = ftl.logical_pages();
        for round in 0..3u64 {
            for l in 0..logical {
                ftl.write(&mut ex, &mut NullObserver, l, l % 2 == 0, round * 100_000 + l);
            }
        }
        ftl.trim(&mut ex, &mut NullObserver, &[0, 1, 2]);
        let before: Vec<_> = (0..logical).map(|l| ftl.mapped(l)).collect();
        let report = ftl.recover(&mut ex, &mut NullObserver);
        ftl.check_invariants();
        // Secured trims (lpa 0, 2) are locked on flash and stay deleted.
        // The insecure trim (lpa 1) is advisory: its old version is still
        // readable on flash, so the scan legitimately resurrects it.
        assert_eq!(report.rebuilt_mappings, logical - 2);
        assert!(report.scanned_pages > 0);
        assert_eq!(ftl.mapped(0), None);
        assert_eq!(ftl.mapped(2), None);
        assert_eq!(ftl.read(&mut ex, 1).unwrap().tag(), 200_001);
        let after: Vec<_> = (0..logical).map(|l| ftl.mapped(l)).collect();
        assert_eq!(before[3..], after[3..], "recovery changed surviving mappings");
        for l in 3..logical {
            assert_eq!(ftl.read(&mut ex, l).unwrap().tag(), 200_000 + l);
        }
        // The device still takes writes after recovery.
        ftl.write(&mut ex, &mut NullObserver, 0, true, 555);
        assert_eq!(ftl.read(&mut ex, 0).unwrap().tag(), 555);
        ftl.check_invariants();
    }

    #[test]
    fn recover_completes_torn_plock() {
        // Power cut mid-pLock during a secure trim: the only version of the
        // page has a torn lock. Recovery completes the lock; the data is
        // unrecoverable and the mapping stays gone.
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 4242);
        let at = ftl.mapped(0).unwrap();
        ex.chips_mut()[at.chip].interrupt_p_lock(at.ppa, 0.5, 7).unwrap();
        let report = ftl.recover(&mut ex, &mut NullObserver);
        assert_eq!(report.relocked_pages, 1);
        assert_eq!(ftl.mapped(0), None);
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[at.chip], 4242));
        ftl.check_invariants();
    }

    #[test]
    fn recover_reerases_torn_erase_block() {
        // Power cut early in an erase: flag cells (low-voltage) are already
        // clear but the data survived — momentarily unlocked. Recovery must
        // finish the erase before serving anything.
        let cfg = FtlConfig::tiny_for_tests();
        let ppb = cfg.geometry.pages_per_block() as u64;
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::evanesco());
        let lpas: Vec<Lpa> = (0..ppb).collect();
        for &l in &lpas {
            ftl.write(&mut ex, &mut NullObserver, l, true, 9000 + l);
        }
        ftl.trim(&mut ex, &mut NullObserver, &lpas); // one bLock
        assert_eq!(ftl.stats().blocks_locked, 1);
        // Interrupt an erase of the locked block at 20% of tBERS: past the
        // flag-wipe point, before the data-wipe point.
        ex.chips_mut()[0].interrupt_erase(BlockId(0), 0.2, 11).unwrap();
        let attacker = Attacker::new();
        assert!(
            attacker.recover_tag(&mut ex.chips_mut()[0], 9000),
            "the partial erase should have dropped the lock while data survives"
        );
        let report = ftl.recover(&mut ex, &mut NullObserver);
        assert_eq!(report.resealed_blocks, 1);
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], 9000));
        ftl.check_invariants();
    }

    #[test]
    fn recover_retries_lock_verify_failures_with_backoff() {
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 1);
        let at = ftl.mapped(0).unwrap();
        ex.chips_mut()[at.chip].interrupt_p_lock(at.ppa, 0.5, 3).unwrap();
        // The first two re-issues fail program-verify; the third succeeds.
        ex.chips_mut()[at.chip].inject_lock_verify_failures(2);
        let report = ftl.recover(&mut ex, &mut NullObserver);
        assert_eq!(report.relocked_pages, 1);
        assert_eq!(report.lock_retries, 2);
        assert_eq!(report.lock_fallbacks, 0);
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[at.chip], 1));
    }

    #[test]
    fn recover_falls_back_to_scrub_after_retry_budget() {
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 1);
        let at = ftl.mapped(0).unwrap();
        ex.chips_mut()[at.chip].interrupt_p_lock(at.ppa, 0.5, 3).unwrap();
        // Every re-issue fails: recovery must not loop forever.
        ex.chips_mut()[at.chip].inject_lock_verify_failures(100);
        let report = ftl.recover(&mut ex, &mut NullObserver);
        assert_eq!(report.lock_fallbacks, 1);
        assert_eq!(report.lock_retries, u64::from(crate::recovery::MAX_LOCK_RETRIES));
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[at.chip], 1), "scrub fallback");
        ftl.check_invariants();
    }

    #[test]
    fn recover_sanitizes_torn_secure_overwrite_orphan() {
        // Power cut mid-program of a secure overwrite, late enough that the
        // partial page decodes: the old version must win the seq contest and
        // the unacknowledged orphan must not be attacker-readable.
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 100);
        let old = ftl.mapped(0).unwrap();
        // Hand-craft the torn overwrite on the next append slot.
        let next = GlobalPpa::new(0, Ppa::new(0, 1));
        let data = PageData::tagged(200).with_oob(PageOob { lpa: 0, secure: true, seq: 999 });
        ex.chips_mut()[0].interrupt_program(next.ppa, data, 0.9).unwrap();
        let report = ftl.recover(&mut ex, &mut NullObserver);
        assert_eq!(report.torn_writes, 1);
        assert_eq!(report.orphaned_pages, 1);
        // The acknowledged old version is still served...
        assert_eq!(ftl.mapped(0), Some(old));
        assert_eq!(ftl.read(&mut ex, 0).unwrap().tag(), 100);
        // ...and the torn orphan is sealed against forensics.
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], 200));
        ftl.check_invariants();
    }

    #[test]
    fn trim_of_unmapped_lpas_is_harmless() {
        let (mut ftl, mut ex) = setup(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 1);
        // Mix of mapped and never-written lpas.
        ftl.trim(&mut ex, &mut NullObserver, &[0, 5, 6]);
        assert_eq!(ftl.mapped(0), None);
        assert_eq!(ftl.stats().plocks, 1);
        ftl.check_invariants();
    }

    #[test]
    fn channel_interleaved_frontier_crosses_channels() {
        // 2 channels × 2 ways, chip numbering channel*cpc + way: the
        // frontier must alternate channels (0, 2, 1, 3), not fill one
        // channel's chips back to back.
        let cfg = FtlConfig { n_chips: 4, chips_per_channel: 2, ..FtlConfig::tiny_for_tests() };
        let mut ftl = Ftl::new(cfg, SanitizePolicy::none());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let mut order = Vec::new();
        for l in 0..4u64 {
            let predicted = ftl.peek_alloc_chip();
            ftl.write(&mut ex, &mut NullObserver, l as Lpa, false, l);
            let landed = ftl.mapped(l as Lpa).unwrap().chip;
            assert_eq!(predicted, landed, "peek_alloc_chip must predict placement");
            order.push(landed);
        }
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn round_robin_frontier_visits_chips_in_numbering_order() {
        let cfg = FtlConfig {
            n_chips: 4,
            chips_per_channel: 2,
            write_alloc: crate::config::WriteAlloc::RoundRobin,
            ..FtlConfig::tiny_for_tests()
        };
        let mut ftl = Ftl::new(cfg, SanitizePolicy::none());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        for l in 0..4u64 {
            ftl.write(&mut ex, &mut NullObserver, l as Lpa, false, l);
        }
        let order: Vec<usize> = (0..4).map(|l| ftl.mapped(l).unwrap().chip).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn coalescing_promotes_block_death_to_single_block_lock() {
        // A block whose secured pages die one by one (overwrites) must end
        // with exactly one bLock and zero per-page pLocks.
        let cfg = FtlConfig { n_chips: 1, lock_coalescing: true, ..FtlConfig::tiny_for_tests() };
        let ppb = cfg.geometry.pages_per_block() as u64;
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        for l in 0..ppb {
            ftl.write(&mut ex, &mut NullObserver, l as Lpa, true, l);
        }
        for l in 0..ppb {
            ftl.write(&mut ex, &mut NullObserver, l as Lpa, true, 100 + l);
            ftl.check_invariants();
        }
        let s = ftl.stats();
        assert_eq!(s.blocks_locked, 1, "one bLock for the whole dead block");
        assert_eq!(s.plocks, 0, "no redundant per-page locks");
        assert_eq!(s.coalesced_plocks, ppb - 1, "all queued locks coalesced");
        assert_eq!(ftl.pending_coalesced_locks(), 0);
        // The batch bLock actually seals the stale data.
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], 0));
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], ppb - 1));
    }

    #[test]
    fn coalescing_age_window_flushes_individual_plocks() {
        // A queued lock whose block never dies must still be issued within
        // the bounded window.
        let cfg = FtlConfig {
            n_chips: 1,
            lock_coalescing: true,
            coalesce_window: 4,
            ..FtlConfig::tiny_for_tests()
        };
        let ppb = cfg.geometry.pages_per_block() as u64;
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        for l in 0..ppb {
            ftl.write(&mut ex, &mut NullObserver, l as Lpa, true, l);
        }
        ftl.write(&mut ex, &mut NullObserver, 0, true, 999); // queue one lock
        assert_eq!(ftl.pending_coalesced_locks(), 1);
        assert_eq!(ftl.stats().plocks, 0);
        for i in 0..6u64 {
            ftl.write(&mut ex, &mut NullObserver, (ppb + 1 + i) as Lpa, false, 5000 + i);
        }
        assert_eq!(ftl.pending_coalesced_locks(), 0, "window expired");
        let s = ftl.stats();
        assert_eq!(s.plocks, 1);
        assert_eq!(s.coalesce_flushed_plocks, 1);
        assert_eq!(s.blocks_locked, 0);
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], 0));
        ftl.check_invariants();
    }

    #[test]
    fn flush_coalesced_drains_the_queue_on_demand() {
        let cfg = FtlConfig { n_chips: 1, lock_coalescing: true, ..FtlConfig::tiny_for_tests() };
        let ppb = cfg.geometry.pages_per_block() as u64;
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        for l in 0..ppb {
            ftl.write(&mut ex, &mut NullObserver, l as Lpa, true, l);
        }
        ftl.write(&mut ex, &mut NullObserver, 3, true, 999);
        assert_eq!(ftl.pending_coalesced_locks(), 1);
        ftl.flush_coalesced(&mut ex, &mut NullObserver);
        assert_eq!(ftl.pending_coalesced_locks(), 0);
        assert_eq!(ftl.stats().plocks, 1, "block still has live pages: pLock, not bLock");
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], 3));
        ftl.check_invariants();
    }

    #[test]
    fn incremental_counters_survive_churn_gc_and_coalescing() {
        // Heavy overwrite/trim churn with GC and coalescing enabled: the
        // O(chips) live/invalid totals and the victim index must stay in
        // lockstep with the ground-truth page scan the whole way.
        let cfg =
            FtlConfig { lock_coalescing: true, coalesce_window: 8, ..FtlConfig::tiny_for_tests() };
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let span = 200u64;
        for i in 0..2200u64 {
            let lpa = (i * 17 + i / 31) % span;
            ftl.write(&mut ex, &mut NullObserver, lpa as Lpa, i % 2 == 0, i);
            if i % 97 == 0 {
                let t = (i % span) as Lpa;
                ftl.trim(&mut ex, &mut NullObserver, &[t, t + 1, t + 2]);
            }
            if i % 256 == 0 {
                ftl.check_invariants();
            }
        }
        assert!(ftl.stats().gc_invocations > 0, "churn must exercise the victim index");
        ftl.flush_coalesced(&mut ex, &mut NullObserver);
        assert_eq!(ftl.pending_coalesced_locks(), 0);
        ftl.check_invariants();
        // The O(1)-maintained aggregates agree with a fresh scan of reality.
        let mapped = (0..span).filter(|&l| ftl.mapped(l as Lpa).is_some()).count() as u64;
        assert_eq!(ftl.live_pages(), mapped);
        assert!(ftl.invalid_pages() > 0);
    }

    // -----------------------------------------------------------------
    // Runtime reliability manager
    // -----------------------------------------------------------------

    use evanesco_core::fault::FaultConfig;

    /// Single chip with the fault model armed (placement deterministic).
    fn setup_faulty(policy: SanitizePolicy, faults: FaultConfig) -> (Ftl, MemExecutor) {
        let cfg = FtlConfig { n_chips: 1, faults, ..FtlConfig::tiny_for_tests() };
        let ftl = Ftl::new(cfg, policy);
        let ex = MemExecutor::with_faults(cfg.geometry, cfg.n_chips, faults);
        (ftl, ex)
    }

    #[test]
    fn plock_retry_absorbs_transient_verify_failures() {
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 10);
        ftl.write(&mut ex, &mut NullObserver, 1, true, 20);
        // Two forced verify failures: within the retry budget of 3.
        ex.chips_mut()[0].inject_lock_verify_failures(2);
        ftl.trim(&mut ex, &mut NullObserver, &[0]);
        let s = ftl.stats();
        assert_eq!(s.plocks, 3, "two failed attempts plus the success");
        assert_eq!(s.plock_retries, 2);
        assert_eq!(s.plock_escalations, 0);
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], 10));
        assert_eq!(ftl.read(&mut ex, 1).unwrap().tag(), 20);
        ftl.check_invariants();
    }

    #[test]
    fn plock_exhaustion_escalates_to_block_settlement() {
        let (mut ftl, mut ex) = setup_one_chip(SanitizePolicy::evanesco());
        ftl.write(&mut ex, &mut NullObserver, 0, true, 10);
        ftl.write(&mut ex, &mut NullObserver, 1, true, 20);
        // Exhaust the pLock ladder (budget 3 -> 4 attempts); the subsequent
        // bLock succeeds.
        ex.chips_mut()[0].inject_lock_verify_failures(4);
        ftl.trim(&mut ex, &mut NullObserver, &[0]);
        let s = ftl.stats();
        assert_eq!(s.plocks, 4);
        assert_eq!(s.plock_retries, 3);
        assert_eq!(s.plock_escalations, 1);
        assert_eq!(s.blocks_locked, 1, "escalation settles the block with one bLock");
        assert_eq!(s.reliability_relocations, 1, "live sibling moved out first");
        // The injected hazards are fully accounted for by the responses.
        let f = ex.fault_totals();
        assert_eq!(f.plock_failures, s.plock_retries + s.plock_escalations);
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], 10));
        assert_eq!(ftl.read(&mut ex, 1).unwrap().tag(), 20, "relocated page survives");
        ftl.check_invariants();
    }

    #[test]
    fn block_lock_fallback_demotes_to_per_page_locks() {
        let cfg = FtlConfig { n_chips: 1, ..FtlConfig::tiny_for_tests() };
        let ppb = cfg.geometry.pages_per_block() as u64;
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let lpas: Vec<Lpa> = (0..ppb).collect();
        for &l in &lpas {
            ftl.write(&mut ex, &mut NullObserver, l, true, l);
        }
        // Exhaust the bLock ladder (budget 2 -> 3 attempts); per-page locks
        // then succeed.
        ex.chips_mut()[0].inject_lock_verify_failures(3);
        ftl.trim(&mut ex, &mut NullObserver, &lpas);
        let s = ftl.stats();
        assert_eq!(s.blocks_locked, 3);
        assert_eq!(s.block_lock_retries, 2);
        assert_eq!(s.block_lock_fallbacks, 1);
        assert_eq!(s.plocks, ppb, "every dead page sealed individually");
        assert_eq!(s.lock_scrub_fallbacks, 0);
        assert_eq!(ex.fault_totals().block_lock_failures, 3);
        let attacker = Attacker::new();
        for &l in &lpas {
            assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], l));
        }
        ftl.check_invariants();
    }

    #[test]
    fn erase_failure_retires_block_after_relocating_live_pages() {
        let faults = FaultConfig { erase_fail: 1.0, seed: 11, ..FaultConfig::none() };
        let (mut ftl, mut ex) = setup_faulty(SanitizePolicy::erase_based(), faults);
        for (l, tag) in [(0u64, 10u64), (1, 20), (2, 30)] {
            ftl.write(&mut ex, &mut NullObserver, l, true, tag);
        }
        ftl.trim(&mut ex, &mut NullObserver, &[0]);
        let s = ftl.stats();
        assert_eq!(s.erase_retries, 1, "one backed-off retry before giving up");
        assert_eq!(s.retired_blocks, 1);
        assert_eq!(s.sanitize_erases, 0, "the erase never succeeded");
        assert!(s.copied_pages >= 2, "live pages relocated before the erase: {s:?}");
        assert_eq!(ftl.retired_block_count(), 1);
        assert_eq!(ftl.degraded(), DegradedMode::SpareLow, "one of two spares consumed");
        // Retirement scrubs every written page of the dead block.
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut ex.chips_mut()[0], 10));
        assert_eq!(ftl.read(&mut ex, 1).unwrap().tag(), 20);
        assert_eq!(ftl.read(&mut ex, 2).unwrap().tag(), 30);
        // Both erase attempts were injected faults.
        assert_eq!(ex.fault_totals().erase_failures, 2);
        ftl.check_invariants();
    }

    #[test]
    fn spare_exhaustion_enters_read_only_mode() {
        let faults = FaultConfig { erase_fail: 1.0, seed: 11, ..FaultConfig::none() };
        let (mut ftl, mut ex) = setup_faulty(SanitizePolicy::erase_based(), faults);
        for (l, tag) in [(0u64, 10u64), (1, 20), (2, 30)] {
            ftl.write(&mut ex, &mut NullObserver, l, true, tag);
        }
        ftl.trim(&mut ex, &mut NullObserver, &[0]); // retires block 0
        assert_eq!(ftl.degraded(), DegradedMode::SpareLow);
        ftl.trim(&mut ex, &mut NullObserver, &[1]); // retires the next block
        assert_eq!(ftl.retired_block_count(), 2);
        assert_eq!(ftl.degraded(), DegradedMode::ReadOnly, "spare reserve exhausted");
        // Host writes are rejected; reads still serve.
        assert!(!ftl.write(&mut ex, &mut NullObserver, 7, false, 70));
        assert_eq!(ftl.stats().writes_rejected_readonly, 1);
        assert_eq!(ftl.mapped(7), None);
        assert_eq!(ftl.read(&mut ex, 2).unwrap().tag(), 30);
        // The accounting identity holds: every injected erase failure is an
        // FTL retry or a retirement.
        let s = ftl.stats();
        assert_eq!(ex.fault_totals().erase_failures, s.erase_retries + s.retired_blocks);
        ftl.check_invariants();
    }

    #[test]
    fn recovery_rebuilds_bad_block_table_and_degraded_mode() {
        let faults = FaultConfig { erase_fail: 1.0, seed: 11, ..FaultConfig::none() };
        let (mut ftl, mut ex) = setup_faulty(SanitizePolicy::erase_based(), faults);
        for (l, tag) in [(0u64, 10u64), (1, 20), (2, 30)] {
            ftl.write(&mut ex, &mut NullObserver, l, true, tag);
        }
        ftl.trim(&mut ex, &mut NullObserver, &[0]);
        assert_eq!(ftl.retired_block_count(), 1);
        // Power cycle: all RAM state (mapping, bad-block table, mode) lost.
        let cfg = FtlConfig { n_chips: 1, faults, ..FtlConfig::tiny_for_tests() };
        let mut fresh = Ftl::new(cfg, SanitizePolicy::erase_based());
        let report = fresh.recover(&mut ex, &mut NullObserver);
        assert_eq!(report.retired_blocks, 1, "table rebuilt from spare-area marks");
        assert_eq!(fresh.retired_block_count(), 1);
        assert_eq!(fresh.degraded(), DegradedMode::SpareLow);
        assert_eq!(fresh.read(&mut ex, 1).unwrap().tag(), 20);
        assert_eq!(fresh.read(&mut ex, 2).unwrap().tag(), 30);
        fresh.check_invariants();
    }

    #[test]
    fn program_failure_remaps_and_destroys_secure_remnant() {
        let faults = FaultConfig { program_fail: 0.5, seed: 3, ..FaultConfig::none() };
        let (mut ftl, mut ex) = setup_faulty(SanitizePolicy::evanesco(), faults);
        for l in 0..30u64 {
            assert!(ftl.write(&mut ex, &mut NullObserver, l, true, 1000 + l));
        }
        for l in 0..30u64 {
            assert_eq!(ftl.read(&mut ex, l).unwrap().tag(), 1000 + l, "remap preserved data");
        }
        let s = ftl.stats();
        assert!(s.program_fail_remaps > 0, "p=0.5 over 30 writes must fail sometimes");
        // Every injected program failure is one remap, and every secure
        // remnant was destroyed on the spot.
        assert_eq!(ex.fault_totals().program_failures, s.program_fail_remaps);
        assert_eq!(s.scrubs, s.program_fail_remaps);
        ftl.check_invariants();
    }
}

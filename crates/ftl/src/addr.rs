//! Logical and global physical addressing.

use evanesco_nand::geometry::Ppa;
use std::fmt;

/// Logical page address, in page-size (16-KiB) units.
pub type Lpa = u64;

/// A physical page address qualified with its chip index within the SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalPpa {
    /// Flat chip index (`channel * chips_per_channel + chip`).
    pub chip: usize,
    /// Physical page address within the chip.
    pub ppa: Ppa,
}

impl GlobalPpa {
    /// Creates a global physical page address.
    pub fn new(chip: usize, ppa: Ppa) -> Self {
        GlobalPpa { chip, ppa }
    }
}

impl fmt::Display for GlobalPpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip{}/{}", self.chip, self.ppa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        let a = GlobalPpa::new(0, Ppa::new(1, 2));
        let b = GlobalPpa::new(1, Ppa::new(0, 0));
        assert!(a < b);
        assert_eq!(a.to_string(), "chip0/PB#0x0001:pg2");
    }
}

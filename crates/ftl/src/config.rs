//! FTL configuration.

pub use evanesco_core::fault::FaultConfig;
use evanesco_nand::geometry::Geometry;
use evanesco_nand::timing::{Nanos, TimingSpec};

/// Knobs of the runtime reliability manager: how hard the FTL fights each
/// fault class before escalating, and how much grown-bad-block headroom it
/// keeps before degrading service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Extra `pLock` attempts (with exponential backoff) after a verify
    /// failure before escalating to a block-level sanitize.
    pub plock_retry_budget: u32,
    /// Extra `bLock` attempts before falling back to per-page locks or an
    /// immediate erase.
    pub block_retry_budget: u32,
    /// Extra `erase` attempts before retiring the block as grown-bad.
    pub erase_retry_budget: u32,
    /// Base of the exponential lock-retry backoff (`base << attempt`).
    pub backoff_base: Nanos,
    /// Grown-bad blocks a chip may absorb before the drive goes read-only
    /// (the spare-block reserve).
    pub spare_blocks: usize,
    /// Remaining-reserve level at or below which the drive enters the
    /// `SpareLow` warning state.
    pub spare_low_watermark: usize,
}

impl ReliabilityConfig {
    /// Production-shaped defaults: a few retries everywhere, 100 µs
    /// backoff base, and a reserve of 8 spare blocks per chip.
    pub fn paper() -> Self {
        ReliabilityConfig {
            plock_retry_budget: 3,
            block_retry_budget: 2,
            erase_retry_budget: 1,
            backoff_base: Nanos::from_micros(100),
            spare_blocks: 8,
            spare_low_watermark: 2,
        }
    }

    /// Small-reserve variant for the tiny test geometry.
    pub fn tiny_for_tests() -> Self {
        ReliabilityConfig { spare_blocks: 2, spare_low_watermark: 1, ..Self::paper() }
    }
}

/// How GC selects its victim block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcVictimPolicy {
    /// Fewest live pages (maximum immediate space gain).
    #[default]
    Greedy,
    /// Cost-benefit: weigh reclaimable space against copy cost and block
    /// age (`invalid × age / (live + 1)`), avoiding the greedy policy's
    /// tendency to churn hot blocks.
    CostBenefit,
}

/// Order in which the write frontier visits chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteAlloc {
    /// Chip-major round-robin (`0, 1, 2, …`): with multi-way channels,
    /// consecutive pages land on *neighbouring chips of the same channel*
    /// and their data-in transfers serialize on the shared bus.
    RoundRobin,
    /// Die-interleaved: the frontier alternates channels first, then ways
    /// (`0, cpc, 1, cpc+1, …` in chip numbering), so consecutive pages
    /// transfer over different channels and the array programs of a burst
    /// overlap maximally (paper §6's multi-channel/multi-way parallelism).
    #[default]
    ChannelInterleaved,
}

/// Static configuration of an FTL instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtlConfig {
    /// Per-chip geometry.
    pub geometry: Geometry,
    /// Number of chips managed (channels × chips-per-channel).
    pub n_chips: usize,
    /// Chips sharing one channel (bus). The FTL uses this only to order the
    /// die-interleaved write frontier; `1` degenerates to chip-major
    /// round-robin regardless of [`FtlConfig::write_alloc`].
    pub chips_per_channel: usize,
    /// Write-frontier chip order.
    pub write_alloc: WriteAlloc,
    /// When true, the lock manager defers `pLock`s for overwrite- and
    /// GC-invalidated secured pages in a per-block queue (bounded by
    /// [`FtlConfig::coalesce_window`] host writes) and promotes the batch
    /// to a single `bLock` once every valid page of the block has died —
    /// the paper's lock-queue merging policy. Trim-invalidated pages are
    /// always locked synchronously (the trim ack promises durability).
    pub lock_coalescing: bool,
    /// Maximum host-write ticks a coalesced `pLock` may stay pending
    /// before it is force-flushed (bounds the insecure window).
    pub coalesce_window: u64,
    /// Over-provisioning ratio: fraction of physical capacity hidden from
    /// the logical address space (needed for GC headroom).
    pub op_ratio: f64,
    /// GC starts on a chip when its free+reclaimable block count drops to
    /// this threshold.
    pub gc_free_threshold: usize,
    /// Minimum number of pending page locks for the lock manager to prefer
    /// one `bLock` over individual `pLock`s. The paper's rule — estimated
    /// pLock latency exceeds `tbLock` — gives `ceil(300/100) + 1 = 4`.
    pub block_min_plocks: usize,
    /// When true, GC victims are erased immediately at collection time
    /// instead of lazily at reuse. The paper rejects this (§5.4: the open
    /// interval degrades reliability); the flag exists for the ablation.
    pub eager_gc_erase: bool,
    /// GC victim-selection policy.
    pub gc_victim: GcVictimPolicy,
    /// Operation latencies (shared with the chips).
    pub timing: TimingSpec,
    /// Chip fault model armed on every chip (zero probabilities = the
    /// fault-free ideal device).
    pub faults: FaultConfig,
    /// Reliability-manager knobs (retry budgets, backoff, spare reserve).
    pub reliability: ReliabilityConfig,
}

impl FtlConfig {
    /// Configuration matching the paper's SecureSSD (§7): 2 channels × 4
    /// chips, paper geometry and timing, ~12.5 % over-provisioning.
    pub fn paper() -> Self {
        FtlConfig {
            geometry: Geometry::paper_tlc(),
            n_chips: 8,
            chips_per_channel: 4,
            write_alloc: WriteAlloc::ChannelInterleaved,
            lock_coalescing: false,
            coalesce_window: 64,
            op_ratio: 0.125,
            gc_free_threshold: 2,
            block_min_plocks: 4,
            eager_gc_erase: false,
            gc_victim: GcVictimPolicy::Greedy,
            timing: TimingSpec::paper(),
            faults: FaultConfig::none(),
            reliability: ReliabilityConfig::paper(),
        }
    }

    /// Paper structure with a reduced block count per chip (capacity scaling
    /// knob for tractable experiments).
    pub fn paper_scaled(blocks_per_chip: u32) -> Self {
        FtlConfig { geometry: Geometry::paper_tlc_with_blocks(blocks_per_chip), ..Self::paper() }
    }

    /// A tiny configuration for unit tests: 2 chips × 16 blocks × 24 pages.
    pub fn tiny_for_tests() -> Self {
        FtlConfig {
            geometry: Geometry {
                tech: evanesco_nand::cell::CellTech::Tlc,
                blocks: 16,
                wordlines_per_block: 8,
                page_bytes: 16 * 1024,
                spare_bytes: 1024,
            },
            n_chips: 2,
            chips_per_channel: 1,
            write_alloc: WriteAlloc::ChannelInterleaved,
            lock_coalescing: false,
            coalesce_window: 64,
            op_ratio: 0.2,
            gc_free_threshold: 2,
            block_min_plocks: 4,
            eager_gc_erase: false,
            gc_victim: GcVictimPolicy::Greedy,
            timing: TimingSpec::paper(),
            faults: FaultConfig::none(),
            reliability: ReliabilityConfig::tiny_for_tests(),
        }
    }

    /// Validates structural invariants of the configuration.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any violation: zero chips or
    /// blocks, an over-provisioning ratio outside `(0, 1)`, an empty
    /// logical address space, or a GC threshold the geometry cannot
    /// satisfy.
    pub fn validate(&self) {
        assert!(self.n_chips > 0, "FtlConfig: n_chips must be positive");
        assert!(self.geometry.blocks > 0, "FtlConfig: geometry needs at least one block");
        assert!(
            self.geometry.wordlines_per_block > 0,
            "FtlConfig: geometry needs at least one wordline per block"
        );
        assert!(
            self.op_ratio > 0.0 && self.op_ratio < 1.0,
            "FtlConfig: op_ratio must be in (0, 1), got {}",
            self.op_ratio
        );
        assert!(self.logical_pages() > 0, "FtlConfig: logical address space is empty");
        assert!(self.gc_free_threshold >= 1, "FtlConfig: gc_free_threshold must be >= 1");
        assert!(self.chips_per_channel >= 1, "FtlConfig: chips_per_channel must be >= 1");
        assert!(
            self.n_chips.is_multiple_of(self.chips_per_channel),
            "FtlConfig: chips_per_channel {} must divide n_chips {}",
            self.chips_per_channel,
            self.n_chips
        );
        assert!(self.coalesce_window >= 1, "FtlConfig: coalesce_window must be >= 1");
        assert!(
            (self.geometry.blocks as usize) > self.gc_free_threshold,
            "FtlConfig: gc_free_threshold {} needs more than {} blocks per chip",
            self.gc_free_threshold,
            self.geometry.blocks
        );
        assert!(self.block_min_plocks >= 1, "FtlConfig: block_min_plocks must be >= 1");
        for (name, p) in [
            ("program_fail", self.faults.program_fail),
            ("erase_fail", self.faults.erase_fail),
            ("plock_fail", self.faults.plock_fail),
            ("block_lock_fail", self.faults.block_lock_fail),
            ("read_unc", self.faults.read_unc),
            ("read_retry_decay", self.faults.read_retry_decay),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "FtlConfig: fault probability {name} must be in [0, 1], got {p}"
            );
        }
        // A certain program failure makes the write-remap loop diverge: no
        // page would ever accept data.
        assert!(
            self.faults.program_fail < 1.0,
            "FtlConfig: fault probability program_fail must be below 1, got {}",
            self.faults.program_fail
        );
        assert!(
            self.reliability.backoff_base.0 >= 1,
            "FtlConfig: reliability backoff_base must be positive"
        );
        assert!(
            self.reliability.spare_blocks >= 1,
            "FtlConfig: reliability spare_blocks must be >= 1"
        );
        assert!(
            self.reliability.spare_low_watermark < self.reliability.spare_blocks,
            "FtlConfig: spare_low_watermark {} must be below spare_blocks {}",
            self.reliability.spare_low_watermark,
            self.reliability.spare_blocks
        );
        assert!(
            self.reliability.spare_blocks < self.geometry.blocks as usize,
            "FtlConfig: spare_blocks {} must be below the {} blocks per chip",
            self.reliability.spare_blocks,
            self.geometry.blocks
        );
    }

    /// Total physical pages across all chips.
    pub fn physical_pages(&self) -> u64 {
        self.geometry.pages_per_chip() * self.n_chips as u64
    }

    /// Number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        (self.physical_pages() as f64 * (1.0 - self.op_ratio)).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity_is_about_30_gib() {
        let cfg = FtlConfig::paper();
        let bytes = cfg.physical_pages() * cfg.geometry.page_bytes as u64;
        assert!(bytes > 28 * (1 << 30) && bytes < 34 * (1 << 30));
        assert!(cfg.logical_pages() < cfg.physical_pages());
    }

    #[test]
    fn scaling_preserves_block_shape() {
        let cfg = FtlConfig::paper_scaled(32);
        assert_eq!(cfg.geometry.blocks, 32);
        assert_eq!(cfg.geometry.pages_per_block(), 576);
    }

    #[test]
    fn block_trigger_consistent_with_timing() {
        let cfg = FtlConfig::paper();
        let t_plock = cfg.timing.t_plock.0;
        let t_block = cfg.timing.t_block.0;
        // With the default trigger, the chosen pLock batch is always more
        // expensive than one bLock.
        assert!(cfg.block_min_plocks as u64 * t_plock > t_block);
        // And one fewer would not be.
        assert!((cfg.block_min_plocks as u64 - 1) * t_plock <= t_block);
    }

    #[test]
    fn tiny_config_sizes() {
        let cfg = FtlConfig::tiny_for_tests();
        assert_eq!(cfg.geometry.pages_per_block(), 24);
        assert_eq!(cfg.physical_pages(), 2 * 16 * 24);
    }
}

//! FTL operation counters and derived metrics (WAF, lock mix).

/// Cumulative FTL statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host-initiated page writes.
    pub host_write_pages: u64,
    /// Host-initiated page reads.
    pub host_read_pages: u64,
    /// Host-initiated trimmed pages.
    pub host_trim_pages: u64,
    /// NAND page programs (host + relocation).
    pub nand_programs: u64,
    /// NAND page reads (host + relocation).
    pub nand_reads: u64,
    /// NAND block erases.
    pub nand_erases: u64,
    /// Pages copied by GC or sanitization-forced relocation.
    pub copied_pages: u64,
    /// GC invocations.
    pub gc_invocations: u64,
    /// `pLock` commands issued.
    pub plocks: u64,
    /// `bLock` commands issued.
    pub blocks_locked: u64,
    /// Wordline scrubs performed (scrSSD).
    pub scrubs: u64,
    /// Immediate block erases forced by sanitization (erSSD).
    pub sanitize_erases: u64,
    /// Deferred `pLock`s retired *without* a per-page command: their block
    /// was promoted to one `bLock`, or physically erased while they were
    /// queued (lock coalescing, paper §4.3's lock-queue merge).
    pub coalesced_plocks: u64,
    /// Deferred `pLock`s that aged out of the coalescing window and were
    /// issued individually after all.
    pub coalesce_flushed_plocks: u64,
}

impl FtlStats {
    /// Write amplification factor: NAND programs per host page write.
    ///
    /// Returns 0 when nothing has been written.
    pub fn waf(&self) -> f64 {
        if self.host_write_pages == 0 {
            0.0
        } else {
            self.nand_programs as f64 / self.host_write_pages as f64
        }
    }

    /// Pages sanitized per lock command mix — how many `pLock`s were saved
    /// by `bLock` batching is derived by callers comparing policies.
    pub fn total_lock_commands(&self) -> u64 {
        self.plocks + self.blocks_locked
    }

    /// Field-wise difference `self − earlier`: the counters accumulated
    /// since an earlier snapshot (used to exclude the prefill phase from
    /// measured metrics).
    pub fn since(&self, earlier: &FtlStats) -> FtlStats {
        FtlStats {
            host_write_pages: self.host_write_pages - earlier.host_write_pages,
            host_read_pages: self.host_read_pages - earlier.host_read_pages,
            host_trim_pages: self.host_trim_pages - earlier.host_trim_pages,
            nand_programs: self.nand_programs - earlier.nand_programs,
            nand_reads: self.nand_reads - earlier.nand_reads,
            nand_erases: self.nand_erases - earlier.nand_erases,
            copied_pages: self.copied_pages - earlier.copied_pages,
            gc_invocations: self.gc_invocations - earlier.gc_invocations,
            plocks: self.plocks - earlier.plocks,
            blocks_locked: self.blocks_locked - earlier.blocks_locked,
            scrubs: self.scrubs - earlier.scrubs,
            sanitize_erases: self.sanitize_erases - earlier.sanitize_erases,
            coalesced_plocks: self.coalesced_plocks - earlier.coalesced_plocks,
            coalesce_flushed_plocks: self.coalesce_flushed_plocks - earlier.coalesce_flushed_plocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_is_programs_over_host_writes() {
        let s = FtlStats { host_write_pages: 100, nand_programs: 250, ..Default::default() };
        assert!((s.waf() - 2.5).abs() < 1e-12);
        assert_eq!(FtlStats::default().waf(), 0.0);
    }

    #[test]
    fn lock_command_total() {
        let s = FtlStats { plocks: 7, blocks_locked: 2, ..Default::default() };
        assert_eq!(s.total_lock_commands(), 9);
    }
}

//! FTL operation counters and derived metrics (WAF, lock mix).

/// Cumulative FTL statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host-initiated page writes.
    pub host_write_pages: u64,
    /// Host-initiated page reads.
    pub host_read_pages: u64,
    /// Host-initiated trimmed pages.
    pub host_trim_pages: u64,
    /// NAND page programs (host + relocation).
    pub nand_programs: u64,
    /// NAND page reads (host + relocation).
    pub nand_reads: u64,
    /// NAND block erases.
    pub nand_erases: u64,
    /// Pages copied by GC or sanitization-forced relocation.
    pub copied_pages: u64,
    /// GC invocations.
    pub gc_invocations: u64,
    /// `pLock` commands issued.
    pub plocks: u64,
    /// `bLock` commands issued.
    pub blocks_locked: u64,
    /// Wordline scrubs performed (scrSSD).
    pub scrubs: u64,
    /// Immediate block erases forced by sanitization (erSSD).
    pub sanitize_erases: u64,
    /// Deferred `pLock`s retired *without* a per-page command: their block
    /// was promoted to one `bLock`, or physically erased while they were
    /// queued (lock coalescing, paper §4.3's lock-queue merge).
    pub coalesced_plocks: u64,
    /// Deferred `pLock`s that aged out of the coalescing window and were
    /// issued individually after all.
    pub coalesce_flushed_plocks: u64,
    /// Reliability manager — `pLock` verify failures answered with a
    /// backed-off retry.
    pub plock_retries: u64,
    /// `pLock` retry budgets exhausted, escalating the page's block to a
    /// block-level sanitize (relocate + `bLock`/erase).
    pub plock_escalations: u64,
    /// `pLock` retry budgets exhausted inside a block-level fallback,
    /// answered with an in-place scrub (the infallible terminal rung).
    pub lock_scrub_fallbacks: u64,
    /// `bLock` verify failures answered with a backed-off retry.
    pub block_lock_retries: u64,
    /// `bLock` retry budgets exhausted, falling back to per-page locks or
    /// an immediate erase.
    pub block_lock_fallbacks: u64,
    /// Program-status failures remapped to a fresh page (the consumed slot
    /// is marked invalid-suspect and scrubbed if it held secure data).
    pub program_fail_remaps: u64,
    /// Erase-status failures answered with a retry.
    pub erase_retries: u64,
    /// Blocks retired as grown-bad after exhausting the erase retry budget.
    pub retired_blocks: u64,
    /// Live pages relocated because their block was escalated to a
    /// block-level sanitize (subset of `copied_pages`).
    pub reliability_relocations: u64,
    /// Host writes rejected because the drive is in read-only degraded
    /// mode (spare-block reserve exhausted).
    pub writes_rejected_readonly: u64,
    /// Metadata guard — corruptions injected into FTL RAM structures by
    /// the chaos injector (zero outside chaos runs).
    pub meta_corruptions_injected: u64,
    /// Metadata guard — corruptions detected by the shadow checksums or
    /// the OOB audit scrubber before any host op was served from the
    /// damaged table.
    pub meta_corruptions_detected: u64,
    /// Metadata guard — detected corruptions repaired by rebuilding the
    /// structure from on-flash OOB ground truth (full recovery scan).
    pub meta_repairs_from_oob: u64,
    /// Metadata guard — detected corruptions repaired by re-deriving the
    /// structure (counters, victim index) from the in-RAM map.
    pub meta_repairs_rederived: u64,
    /// Metadata guard — repairs that failed post-verification; the drive
    /// degraded to read-only instead of serving from the bad table.
    pub meta_unrecoverable: u64,
    /// Audit scrubber — blocks cross-checked against on-flash OOB.
    pub audit_scrub_blocks: u64,
    /// Audit scrubber — RAM-vs-OOB divergences found (subset of
    /// `meta_corruptions_detected`).
    pub audit_divergences: u64,
    /// Metadata guard — logical pages a repair's recovery scan re-mapped
    /// from stale-but-readable flash (insecurely trimmed data has no
    /// on-flash tombstone) and the guard's trim filter re-invalidated
    /// before any host op could read the resurrected mapping.
    pub meta_resurrections_pruned: u64,
}

impl FtlStats {
    /// Write amplification factor: NAND programs per host page write.
    ///
    /// Returns 0 when nothing has been written.
    pub fn waf(&self) -> f64 {
        if self.host_write_pages == 0 {
            0.0
        } else {
            self.nand_programs as f64 / self.host_write_pages as f64
        }
    }

    /// Pages sanitized per lock command mix — how many `pLock`s were saved
    /// by `bLock` batching is derived by callers comparing policies.
    pub fn total_lock_commands(&self) -> u64 {
        self.plocks + self.blocks_locked
    }

    /// Field-wise difference `self − earlier`: the counters accumulated
    /// since an earlier snapshot (used to exclude the prefill phase from
    /// measured metrics).
    pub fn since(&self, earlier: &FtlStats) -> FtlStats {
        FtlStats {
            host_write_pages: self.host_write_pages - earlier.host_write_pages,
            host_read_pages: self.host_read_pages - earlier.host_read_pages,
            host_trim_pages: self.host_trim_pages - earlier.host_trim_pages,
            nand_programs: self.nand_programs - earlier.nand_programs,
            nand_reads: self.nand_reads - earlier.nand_reads,
            nand_erases: self.nand_erases - earlier.nand_erases,
            copied_pages: self.copied_pages - earlier.copied_pages,
            gc_invocations: self.gc_invocations - earlier.gc_invocations,
            plocks: self.plocks - earlier.plocks,
            blocks_locked: self.blocks_locked - earlier.blocks_locked,
            scrubs: self.scrubs - earlier.scrubs,
            sanitize_erases: self.sanitize_erases - earlier.sanitize_erases,
            coalesced_plocks: self.coalesced_plocks - earlier.coalesced_plocks,
            coalesce_flushed_plocks: self.coalesce_flushed_plocks - earlier.coalesce_flushed_plocks,
            plock_retries: self.plock_retries - earlier.plock_retries,
            plock_escalations: self.plock_escalations - earlier.plock_escalations,
            lock_scrub_fallbacks: self.lock_scrub_fallbacks - earlier.lock_scrub_fallbacks,
            block_lock_retries: self.block_lock_retries - earlier.block_lock_retries,
            block_lock_fallbacks: self.block_lock_fallbacks - earlier.block_lock_fallbacks,
            program_fail_remaps: self.program_fail_remaps - earlier.program_fail_remaps,
            erase_retries: self.erase_retries - earlier.erase_retries,
            retired_blocks: self.retired_blocks - earlier.retired_blocks,
            reliability_relocations: self.reliability_relocations - earlier.reliability_relocations,
            writes_rejected_readonly: self.writes_rejected_readonly
                - earlier.writes_rejected_readonly,
            meta_corruptions_injected: self.meta_corruptions_injected
                - earlier.meta_corruptions_injected,
            meta_corruptions_detected: self.meta_corruptions_detected
                - earlier.meta_corruptions_detected,
            meta_repairs_from_oob: self.meta_repairs_from_oob - earlier.meta_repairs_from_oob,
            meta_repairs_rederived: self.meta_repairs_rederived - earlier.meta_repairs_rederived,
            meta_unrecoverable: self.meta_unrecoverable - earlier.meta_unrecoverable,
            audit_scrub_blocks: self.audit_scrub_blocks - earlier.audit_scrub_blocks,
            audit_divergences: self.audit_divergences - earlier.audit_divergences,
            meta_resurrections_pruned: self.meta_resurrections_pruned
                - earlier.meta_resurrections_pruned,
        }
    }

    /// Serializes every counter into a checkpoint stream.
    pub fn encode_snapshot(&self, e: &mut evanesco_nand::snapshot::Enc) {
        for v in self.as_array() {
            e.u64(v);
        }
    }

    /// Inverse of [`FtlStats::encode_snapshot`]. Version-1 checkpoints
    /// predate the metadata-guard counters; those decode as zero.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode_snapshot(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        let v2 = d.version() >= 2;
        Ok(FtlStats {
            host_write_pages: d.u64()?,
            host_read_pages: d.u64()?,
            host_trim_pages: d.u64()?,
            nand_programs: d.u64()?,
            nand_reads: d.u64()?,
            nand_erases: d.u64()?,
            copied_pages: d.u64()?,
            gc_invocations: d.u64()?,
            plocks: d.u64()?,
            blocks_locked: d.u64()?,
            scrubs: d.u64()?,
            sanitize_erases: d.u64()?,
            coalesced_plocks: d.u64()?,
            coalesce_flushed_plocks: d.u64()?,
            plock_retries: d.u64()?,
            plock_escalations: d.u64()?,
            lock_scrub_fallbacks: d.u64()?,
            block_lock_retries: d.u64()?,
            block_lock_fallbacks: d.u64()?,
            program_fail_remaps: d.u64()?,
            erase_retries: d.u64()?,
            retired_blocks: d.u64()?,
            reliability_relocations: d.u64()?,
            writes_rejected_readonly: d.u64()?,
            meta_corruptions_injected: if v2 { d.u64()? } else { 0 },
            meta_corruptions_detected: if v2 { d.u64()? } else { 0 },
            meta_repairs_from_oob: if v2 { d.u64()? } else { 0 },
            meta_repairs_rederived: if v2 { d.u64()? } else { 0 },
            meta_unrecoverable: if v2 { d.u64()? } else { 0 },
            audit_scrub_blocks: if v2 { d.u64()? } else { 0 },
            audit_divergences: if v2 { d.u64()? } else { 0 },
            meta_resurrections_pruned: if v2 { d.u64()? } else { 0 },
        })
    }

    fn as_array(&self) -> [u64; 32] {
        [
            self.host_write_pages,
            self.host_read_pages,
            self.host_trim_pages,
            self.nand_programs,
            self.nand_reads,
            self.nand_erases,
            self.copied_pages,
            self.gc_invocations,
            self.plocks,
            self.blocks_locked,
            self.scrubs,
            self.sanitize_erases,
            self.coalesced_plocks,
            self.coalesce_flushed_plocks,
            self.plock_retries,
            self.plock_escalations,
            self.lock_scrub_fallbacks,
            self.block_lock_retries,
            self.block_lock_fallbacks,
            self.program_fail_remaps,
            self.erase_retries,
            self.retired_blocks,
            self.reliability_relocations,
            self.writes_rejected_readonly,
            self.meta_corruptions_injected,
            self.meta_corruptions_detected,
            self.meta_repairs_from_oob,
            self.meta_repairs_rederived,
            self.meta_unrecoverable,
            self.audit_scrub_blocks,
            self.audit_divergences,
            self.meta_resurrections_pruned,
        ]
    }

    /// The metadata-integrity accounting identity: every injected
    /// corruption must be answered by exactly one repair (from OOB or
    /// re-derived) or a counted unrecoverable degradation — and every
    /// detection must trace back to an injection (no false positives).
    pub fn meta_accounting_balanced(&self) -> bool {
        self.meta_corruptions_detected == self.meta_corruptions_injected
            && self.meta_repairs_from_oob + self.meta_repairs_rederived + self.meta_unrecoverable
                == self.meta_corruptions_detected
    }

    /// Total reliability-manager interventions (every injected command
    /// failure is answered by exactly one of these).
    pub fn reliability_events(&self) -> u64 {
        self.plock_retries
            + self.plock_escalations
            + self.lock_scrub_fallbacks
            + self.block_lock_retries
            + self.block_lock_fallbacks
            + self.program_fail_remaps
            + self.erase_retries
            + self.retired_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_is_programs_over_host_writes() {
        let s = FtlStats { host_write_pages: 100, nand_programs: 250, ..Default::default() };
        assert!((s.waf() - 2.5).abs() < 1e-12);
        assert_eq!(FtlStats::default().waf(), 0.0);
    }

    #[test]
    fn lock_command_total() {
        let s = FtlStats { plocks: 7, blocks_locked: 2, ..Default::default() };
        assert_eq!(s.total_lock_commands(), 9);
    }

    #[test]
    fn meta_accounting_identity() {
        assert!(FtlStats::default().meta_accounting_balanced());
        let balanced = FtlStats {
            meta_corruptions_injected: 5,
            meta_corruptions_detected: 5,
            meta_repairs_from_oob: 3,
            meta_repairs_rederived: 1,
            meta_unrecoverable: 1,
            ..Default::default()
        };
        assert!(balanced.meta_accounting_balanced());
        let silent = FtlStats { meta_corruptions_injected: 1, ..Default::default() };
        assert!(!silent.meta_accounting_balanced(), "an unaccounted injection must trip");
        let phantom = FtlStats {
            meta_corruptions_detected: 1,
            meta_repairs_rederived: 1,
            ..Default::default()
        };
        assert!(!phantom.meta_accounting_balanced(), "a false positive must trip");
    }

    #[test]
    fn guard_counters_roundtrip_and_default_to_zero_for_v1() {
        use evanesco_nand::snapshot::{Dec, Enc};
        let s = FtlStats {
            host_write_pages: 9,
            meta_corruptions_injected: 4,
            meta_corruptions_detected: 4,
            meta_repairs_from_oob: 2,
            meta_repairs_rederived: 2,
            audit_scrub_blocks: 17,
            ..Default::default()
        };
        let mut e = Enc::new();
        s.encode_snapshot(&mut e);
        let bytes = e.into_bytes();
        let restored = FtlStats::decode_snapshot(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(restored, s);
        // A v1 stream carries only the first 24 counters.
        let mut d = Dec::new(&bytes[..24 * 8]);
        // Dec::new assumes the current version; simulate v1 via the header
        // path in integration tests — here just check the length math.
        assert!(FtlStats::decode_snapshot(&mut d).is_err(), "v2 decode needs all 31 counters");
    }
}

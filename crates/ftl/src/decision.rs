//! Bounded, leveled FTL decision log.
//!
//! Answers "why did the FTL do that?" for the decisions that matter to
//! sanitization behaviour: GC victim selection (with the score that won),
//! the lock-coalescing queue lifecycle (enqueue / bLock promotion / aged
//! flush / erase supersession), the reliability escalation ladder, and
//! degraded-mode transitions. Every record carries the simulated timestamp
//! and the host logical tick at which the decision was taken, so entries
//! line up with the timeseries windows and VerTrace timelines.
//!
//! The log is observational only: recording reads the executor clock but
//! never issues a command or advances time, so enabled vs disabled runs
//! produce byte-identical simulated results (the same guarantee tracing
//! makes). It is disabled (zero capacity) by default and bounded when on —
//! the ring keeps the most recent `capacity` records and counts the rest
//! in [`DecisionLog::dropped`].

use crate::ftl::DegradedMode;
use evanesco_nand::timing::Nanos;
use std::collections::VecDeque;

/// Severity of a logged decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DecisionLevel {
    /// Routine policy decisions (GC victim picks, coalescing traffic).
    #[default]
    Info,
    /// Reliability escalations: the preferred mechanism failed and a
    /// stronger rung took over.
    Warn,
    /// Permanent state loss: block retirement, degraded-mode transitions.
    Error,
}

impl DecisionLevel {
    /// Stable lowercase label for exports.
    pub fn label(self) -> &'static str {
        match self {
            DecisionLevel::Info => "info",
            DecisionLevel::Warn => "warn",
            DecisionLevel::Error => "error",
        }
    }
}

/// The rung of the lock-failure escalation ladder that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscalationRung {
    /// A page's `pLock` retry budget ran out; block-level escalation began.
    PlockExhausted,
    /// A `bLock` settle failed its verify; demoted to per-page locks.
    BlockLockDemoted,
    /// A page's terminal `pLock` rung failed; in-place scrub destroyed it.
    ScrubFallback,
    /// Even the `bLock` after relocation failed; the block was erased on
    /// the spot (the erSSD fallback).
    SanitizeErase,
}

impl EscalationRung {
    /// Stable lowercase label for exports.
    pub fn label(self) -> &'static str {
        match self {
            EscalationRung::PlockExhausted => "plock_exhausted",
            EscalationRung::BlockLockDemoted => "block_lock_demoted",
            EscalationRung::ScrubFallback => "scrub_fallback",
            EscalationRung::SanitizeErase => "sanitize_erase",
        }
    }
}

/// One loggable FTL decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// GC picked `block` as the victim; `score` is the value that won the
    /// selection (invalid count for greedy, the cost-benefit ratio
    /// otherwise).
    GcVictim { chip: usize, block: u32, live: u32, invalid: u32, score: f64 },
    /// `pages` deferred `pLock`s joined the coalescing queue for `block`.
    CoalesceEnqueue { chip: usize, block: u32, pages: usize },
    /// A queue entry settled as one `bLock` covering `pages` locks.
    CoalescePromote { chip: usize, block: u32, pages: usize },
    /// A queue entry settled as `pages` individual `pLock`s (block not
    /// dead, or the batch was below the promotion threshold).
    CoalesceFlush { chip: usize, block: u32, pages: usize },
    /// A physical erase superseded `pages` locks still queued for `block`.
    CoalesceSupersede { chip: usize, block: u32, pages: usize },
    /// A reliability-escalation rung fired on `block`.
    Escalation { chip: usize, block: u32, rung: EscalationRung },
    /// `block` was retired as grown-bad.
    BlockRetired { chip: usize, block: u32 },
    /// The drive's service level degraded.
    DegradedTransition { from: DegradedMode, to: DegradedMode },
}

impl Decision {
    /// The severity this decision is logged at.
    pub fn level(&self) -> DecisionLevel {
        match self {
            Decision::GcVictim { .. }
            | Decision::CoalesceEnqueue { .. }
            | Decision::CoalescePromote { .. }
            | Decision::CoalesceFlush { .. }
            | Decision::CoalesceSupersede { .. } => DecisionLevel::Info,
            Decision::Escalation { .. } => DecisionLevel::Warn,
            Decision::BlockRetired { .. } | Decision::DegradedTransition { .. } => {
                DecisionLevel::Error
            }
        }
    }

    /// Stable kind label for exports.
    pub fn kind(&self) -> &'static str {
        match self {
            Decision::GcVictim { .. } => "gc_victim",
            Decision::CoalesceEnqueue { .. } => "coalesce_enqueue",
            Decision::CoalescePromote { .. } => "coalesce_promote",
            Decision::CoalesceFlush { .. } => "coalesce_flush",
            Decision::CoalesceSupersede { .. } => "coalesce_supersede",
            Decision::Escalation { .. } => "escalation",
            Decision::BlockRetired { .. } => "block_retired",
            Decision::DegradedTransition { .. } => "degraded_transition",
        }
    }
}

/// One record in the log: a decision plus when it was taken.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// Monotone sequence number across the whole run (survives ring
    /// eviction: `seq` of the oldest retained record tells how far back
    /// the window reaches).
    pub seq: u64,
    /// Simulated time of the decision.
    pub at: Nanos,
    /// Host logical tick (accepted host page writes so far).
    pub tick: u64,
    /// What was decided.
    pub decision: Decision,
}

impl DecisionRecord {
    /// Human-readable one-line rendering.
    pub fn render(&self) -> String {
        let head = format!(
            "[{}] t={}ns tick={} {}",
            self.decision.level().label(),
            self.at.0,
            self.tick,
            self.decision.kind()
        );
        let tail = match self.decision {
            Decision::GcVictim { chip, block, live, invalid, score } => {
                format!("chip={chip} block={block} live={live} invalid={invalid} score={score:.2}")
            }
            Decision::CoalesceEnqueue { chip, block, pages }
            | Decision::CoalescePromote { chip, block, pages }
            | Decision::CoalesceFlush { chip, block, pages }
            | Decision::CoalesceSupersede { chip, block, pages } => {
                format!("chip={chip} block={block} pages={pages}")
            }
            Decision::Escalation { chip, block, rung } => {
                format!("chip={chip} block={block} rung={}", rung.label())
            }
            Decision::BlockRetired { chip, block } => format!("chip={chip} block={block}"),
            Decision::DegradedTransition { from, to } => format!("{from:?} -> {to:?}"),
        };
        format!("{head} {tail}")
    }
}

/// The bounded, leveled ring of [`DecisionRecord`]s.
///
/// `capacity == 0` means disabled: recording is a no-op and nothing is
/// counted. When enabled, records below `min_level` are filtered out
/// (not counted as dropped), and the ring evicts oldest-first once full.
#[derive(Debug, Clone, Default)]
pub struct DecisionLog {
    capacity: usize,
    min_level: DecisionLevel,
    ring: VecDeque<DecisionRecord>,
    /// Records evicted from the ring because it was full.
    pub dropped: u64,
    /// Total records accepted (retained + dropped), by level
    /// `[info, warn, error]`.
    pub counts: [u64; 3],
    seq: u64,
}

impl DecisionLog {
    /// A disabled log (the default state of a fresh FTL).
    pub fn disabled() -> Self {
        DecisionLog::default()
    }

    /// An enabled log keeping at most `capacity` records at `min_level`+.
    pub fn new(capacity: usize, min_level: DecisionLevel) -> Self {
        DecisionLog { capacity, min_level, ..DecisionLog::default() }
    }

    /// Whether recording does anything.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends a record (no-op when disabled or below the level filter).
    pub fn record(&mut self, at: Nanos, tick: u64, decision: Decision) {
        if self.capacity == 0 || decision.level() < self.min_level {
            return;
        }
        self.counts[decision.level() as usize] += 1;
        self.ring.push_back(DecisionRecord { seq: self.seq, at, tick, decision });
        self.seq += 1;
        if self.ring.len() > self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.ring.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records accepted over the run (retained + dropped).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Renders the retained records as text, one line each.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} older records dropped ...\n", self.dropped));
        }
        for r in &self.ring {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(log: &mut DecisionLog, i: u64, d: Decision) {
        log.record(Nanos(i * 10), i, d);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = DecisionLog::disabled();
        rec(&mut log, 1, Decision::BlockRetired { chip: 0, block: 3 });
        assert!(!log.enabled());
        assert_eq!(log.len(), 0);
        assert_eq!(log.total(), 0);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut log = DecisionLog::new(2, DecisionLevel::Info);
        for i in 0..5 {
            rec(&mut log, i, Decision::CoalesceEnqueue { chip: 0, block: i as u32, pages: 1 });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped, 3);
        assert_eq!(log.total(), 5);
        let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
        assert_eq!(seqs, [3, 4]);
    }

    #[test]
    fn level_filter_drops_below_min() {
        let mut log = DecisionLog::new(8, DecisionLevel::Warn);
        rec(&mut log, 0, Decision::GcVictim { chip: 0, block: 1, live: 2, invalid: 3, score: 3.0 });
        rec(
            &mut log,
            1,
            Decision::Escalation { chip: 0, block: 1, rung: EscalationRung::ScrubFallback },
        );
        rec(&mut log, 2, Decision::BlockRetired { chip: 0, block: 1 });
        assert_eq!(log.len(), 2);
        assert_eq!(log.counts, [0, 1, 1]);
    }

    #[test]
    fn render_is_one_line_per_record() {
        let mut log = DecisionLog::new(4, DecisionLevel::Info);
        rec(
            &mut log,
            7,
            Decision::GcVictim { chip: 1, block: 9, live: 0, invalid: 24, score: 24.0 },
        );
        rec(
            &mut log,
            8,
            Decision::DegradedTransition { from: DegradedMode::Normal, to: DegradedMode::SpareLow },
        );
        let text = log.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("gc_victim"), "{text}");
        assert!(text.contains("[error]"), "{text}");
        assert!(text.contains("tick=7"), "{text}");
    }
}

//! Metadata-integrity guard: shadow checksums over every FTL RAM table, a
//! background audit scrubber that cross-checks RAM against on-flash OOB
//! between host operations, and the deterministic corruption injector that
//! exercises both.
//!
//! The protocol is a strict bracket around every host operation:
//!
//! * **pre-op** ([`Ftl::guard_preop`]): verify every table against its seal
//!   and repair any divergence *before* the operation is served — the FTL
//!   never serves from a table that failed its check — then advance the
//!   audit scrubber by one block.
//! * **post-op** ([`Ftl::guard_postop`]): reseal every table over the
//!   now-current state, then (maybe) inject the next corruption. The seal
//!   always reflects the truth, so an injection is guaranteed to be caught
//!   at the next pre-op or at [`Ftl::guard_finalize`].
//!
//! Repair is classified per table. Derived structures (live/invalid
//! counters, the GC victim index) are re-derived from the page status table
//! in RAM; authoritative structures (L2P map, coalescing queue, bad-block
//! table) fall back to the full power-up recovery scan, rebuilding from
//! on-flash OOB; a sealed trim-tombstone filter then prunes any mapping
//! the scan resurrected from insecurely trimmed (still readable) flash,
//! keeping the repair invisible to the host. A repair that still fails
//! the consistency check degrades
//! the drive to [`DegradedMode::ReadOnly`] — the existing watermark
//! machinery — rather than silently serving wrong mappings.
//!
//! Corruption draws are keyed on `(seed, op-boundary ordinal)` alone, never
//! on wall-clock or dispatch order, so a qd1 and a qd8 run of the same host
//! sequence inject — and repair — identically.

use super::*;
use evanesco_core::fault::{
    CorruptTarget, CorruptionConfig, CorruptionHit, CorruptionModel, CorruptionStats,
};

/// FNV-1a 64-bit accumulator for the table seals. Not cryptographic — the
/// threat model is accidental bit corruption, not an adversary forging a
/// table and its checksum together (see DESIGN.md §14).
struct Seal(u64);

impl Seal {
    fn new() -> Self {
        Seal(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn gppa(&mut self, at: GlobalPpa) {
        self.u64(at.chip as u64);
        self.u64(u64::from(at.ppa.block.0));
        self.u64(u64::from(at.ppa.page.0));
    }

    fn done(self) -> u64 {
        self.0
    }
}

/// Seal slots, indexed to match [`CorruptTarget::ALL`].
const N_SEALS: usize = 5;

/// The guard state riding alongside the FTL (RAM-only, never checkpointed).
#[derive(Debug, Clone)]
pub(crate) struct MetaGuard {
    /// Deterministic corruption injector (rate 0 = armor without attack).
    model: CorruptionModel,
    /// Shadow checksums, one per guarded table, resealed at every post-op.
    seals: [u64; N_SEALS],
    /// Flat audit-scrub cursor: `chip * blocks_per_chip + block`.
    cursor: u64,
    /// Trim tombstone filter: one bit per logical page, set when the
    /// sealed L2P truth has that page deliberately unmapped. Flash OOB
    /// cannot represent an *insecure* delete (the page stays readable
    /// with valid metadata — a real FTL persists trims in its mapping
    /// journal), so a mid-run repair that rebuilds from the recovery
    /// scan would resurrect insecurely trimmed data. The filter prunes
    /// those resurrections right after the rebuild. Deliberately NOT
    /// consulted by genuine post-power-cut recovery, where the filter
    /// is stale and flash-only rebuild semantics are the contract.
    unmapped: Vec<u64>,
    /// An injection landed after the last verify and has not been settled
    /// yet (used to account injections wiped by a power cut: the recovery
    /// rebuild is their repair).
    pending: bool,
    /// Test hook: the next pre-op declares the state unrecoverable.
    force_unrecoverable: bool,
}

impl Ftl {
    /// Arms the metadata-integrity guard: seals every table and starts the
    /// audit scrubber and the corruption injector (`cfg.rate == 0` runs the
    /// armor without any attack). Purely RAM-side: the guard is never
    /// checkpointed, and a recovered FTL reseals from its rebuilt state.
    pub fn enable_guard(&mut self, cfg: CorruptionConfig) {
        self.guard = Some(Box::new(MetaGuard {
            model: CorruptionModel::new(cfg),
            seals: [0; N_SEALS],
            cursor: 0,
            pending: false,
            force_unrecoverable: false,
            unmapped: Vec::new(),
        }));
        self.guard_reseal();
    }

    /// Whether the guard is armed.
    pub fn guard_enabled(&self) -> bool {
        self.guard.is_some()
    }

    /// The injector's own accounting (`None` when the guard is off). The
    /// chaos gate cross-checks this against [`FtlStats`].
    pub fn guard_corruption_stats(&self) -> Option<CorruptionStats> {
        self.guard.as_ref().map(|g| g.model.stats())
    }

    /// Test hook: the next [`Ftl::guard_preop`] treats the state as an
    /// unrecoverable corruption and degrades to read-only (accounted as one
    /// injected + detected + unrecoverable event, keeping the identity).
    pub fn guard_force_unrecoverable(&mut self) {
        if let Some(g) = self.guard.as_mut() {
            g.force_unrecoverable = true;
        }
    }

    /// Recomputes every seal over the current state. Call after any
    /// out-of-band mutation between op brackets (quiesce flush, recovery).
    pub fn guard_reseal(&mut self) {
        if self.guard.is_none() {
            return;
        }
        let seals = self.compute_seals();
        let mut bits = std::mem::take(&mut self.guard.as_mut().expect("guard armed").unmapped);
        bits.clear();
        bits.resize(self.l2p.len().div_ceil(64), 0);
        for (i, slot) in self.l2p.iter().enumerate() {
            if slot.is_none() {
                bits[i / 64] |= 1u64 << (i % 64);
            }
        }
        let g = self.guard.as_mut().expect("guard armed");
        g.seals = seals;
        g.unmapped = bits;
    }

    /// Pre-op gate: verify + repair, then one audit-scrub step. Must run
    /// before serving each host operation.
    pub fn guard_preop<E: NandExecutor, O: FtlObserver>(&mut self, ex: &mut E, obs: &mut O) {
        let Some(g) = self.guard.as_mut() else { return };
        if std::mem::take(&mut g.force_unrecoverable) {
            g.pending = false;
            g.model.note_injected(CorruptTarget::L2pMap);
            self.stats.meta_corruptions_injected += 1;
            self.stats.meta_corruptions_detected += 1;
            self.stats.meta_unrecoverable += 1;
            self.mode = DegradedMode::ReadOnly;
            self.guard_reseal();
            return;
        }
        self.guard_verify_and_repair(ex, obs);
        self.guard_audit_step(ex, obs);
    }

    /// Post-op: reseal every table over the (now mutated) state, then maybe
    /// inject the next corruption. Must run after each host operation.
    pub fn guard_postop(&mut self) {
        if self.guard.is_none() {
            return;
        }
        self.guard_reseal();
        let Some(hit) = self.guard.as_mut().expect("guard armed").model.next_boundary() else {
            return;
        };
        let target = self.apply_corruption(hit);
        self.stats.meta_corruptions_injected += 1;
        let g = self.guard.as_mut().expect("guard armed");
        g.model.note_injected(target);
        g.pending = true;
    }

    /// End-of-run settlement: verify + repair without injecting, so every
    /// injected corruption is accounted before results are read.
    pub fn guard_finalize<E: NandExecutor, O: FtlObserver>(&mut self, ex: &mut E, obs: &mut O) {
        if self.guard.is_none() {
            return;
        }
        self.guard_verify_and_repair(ex, obs);
    }

    /// Called at the end of [`Ftl::recover`]: the rebuilt state is the new
    /// ground truth. An injection that was still pending (e.g. wiped by a
    /// power cut before its pre-op) is settled here — the flash-side
    /// rebuild *is* its repair, and is accounted as corrected-from-OOB.
    pub(super) fn guard_after_recover(&mut self) {
        let Some(g) = self.guard.as_mut() else { return };
        if std::mem::take(&mut g.pending) {
            self.stats.meta_corruptions_detected += 1;
            self.stats.meta_repairs_from_oob += 1;
        }
        self.guard_reseal();
    }

    // -----------------------------------------------------------------
    // Verify / repair
    // -----------------------------------------------------------------

    fn guard_verify_and_repair<E: NandExecutor, O: FtlObserver>(
        &mut self,
        ex: &mut E,
        obs: &mut O,
    ) {
        let expected = self.guard.as_ref().expect("guard armed").seals;
        let actual = self.compute_seals();
        if actual == expected {
            return;
        }
        self.stats.meta_corruptions_detected += 1;
        // One injection can tamper more than one seal (un-retiring a block
        // moves both the bad-block and state seals); pick the strongest
        // repair any mismatched table needs.
        let mismatch = |t: CorruptTarget| actual[seal_index(t)] != expected[seal_index(t)];
        let needs_oob = mismatch(CorruptTarget::L2pMap)
            || mismatch(CorruptTarget::CoalesceQueue)
            || mismatch(CorruptTarget::BadBlockTable);
        // recover() settles `pending` itself; clear it first so this
        // detection is not double-counted by guard_after_recover.
        self.guard.as_mut().expect("guard armed").pending = false;
        if needs_oob {
            // Authoritative tables: rebuild everything from on-flash OOB
            // through the power-up recovery scan, then prune the mappings
            // the scan resurrected from insecurely trimmed (still
            // readable) flash — the sealed tombstone filter is the trim
            // truth flash cannot carry.
            let tombstones =
                std::mem::take(&mut self.guard.as_mut().expect("guard armed").unmapped);
            let _ = self.recover(ex, obs);
            self.stats.meta_repairs_from_oob += 1;
            self.guard_prune_resurrections(ex, obs, &tombstones);
        } else {
            // Derived structures: re-derive from the RAM status table.
            self.rederive_counters_and_victims();
            self.stats.meta_repairs_rederived += 1;
        }
        if !self.invariants_ok() {
            // Never serve from a table that failed its check: degrade to
            // read-only through the existing watermark machinery.
            self.stats.meta_unrecoverable += 1;
            self.mode = DegradedMode::ReadOnly;
        }
        self.guard_reseal();
    }

    /// Re-invalidates every mapping the recovery scan resurrected from
    /// insecurely trimmed flash: a page whose sealed truth (`tombstones`,
    /// captured at the last reseal) was *deliberately unmapped* but that
    /// the OOB rebuild re-mapped. Between reseal and repair the only
    /// mutation was the injected corruption, so the filter is exact. The
    /// re-invalidation replays the host's original delete (trim cause:
    /// synchronous locks if a secured page ever got here), so the repair
    /// stays semantically invisible to the host.
    fn guard_prune_resurrections<E: NandExecutor, O: FtlObserver>(
        &mut self,
        ex: &mut E,
        obs: &mut O,
        tombstones: &[u64],
    ) {
        let mut resurrected: Vec<Lpa> = Vec::new();
        for (i, slot) in self.l2p.iter().enumerate() {
            if slot.is_some() && tombstones.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1) {
                resurrected.push(i as Lpa);
            }
        }
        if resurrected.is_empty() {
            return;
        }
        self.stats.meta_resurrections_pruned += resurrected.len() as u64;
        // Same block-grouped unmap-then-invalidate walk as `Ftl::trim`.
        let mut group: Vec<GlobalPpa> = Vec::new();
        while let Some(at0) = resurrected.iter().find_map(|&l| self.l2p[l as usize]) {
            let key = (at0.chip, at0.ppa.block.0);
            group.clear();
            resurrected.retain(|&l| match self.l2p[l as usize] {
                Some(at) if (at.chip, at.ppa.block.0) == key => {
                    group.push(at);
                    self.l2p[l as usize] = None;
                    false
                }
                Some(_) => true,
                None => false,
            });
            self.invalidate_block_group(ex, key.0, key.1, &group, InvalidateCause::Trim);
        }
        self.events.drain_into(obs);
    }

    /// Rebuilds the per-block live/invalid counters, the per-chip running
    /// totals, and the GC victim index from the page status table.
    fn rederive_counters_and_victims(&mut self) {
        let ppb = self.cfg.geometry.pages_per_block();
        let n_blocks = self.cfg.geometry.blocks;
        for c in &mut self.chips {
            let mut live_total = 0u64;
            let mut invalid_total = 0u64;
            for b in 0..n_blocks as usize {
                let base = b * ppb as usize;
                let live =
                    (0..ppb as usize).filter(|&i| c.status[base + i].is_live()).count() as u32;
                let invalid = (0..ppb as usize)
                    .filter(|&i| c.status[base + i] == PageStatus::Invalid)
                    .count() as u32;
                c.blocks[b].live = live;
                c.blocks[b].invalid = invalid;
                live_total += u64::from(live);
                invalid_total += u64::from(invalid);
            }
            c.live_total = live_total;
            c.invalid_total = invalid_total;
            // Rebuild the victim index in block-id order. Bucket order only
            // breaks cost-benefit ties; greedy selection is order-blind.
            c.victims = VictimIndex::new(n_blocks, ppb);
            for b in 0..n_blocks {
                if c.blocks[b as usize].state == BlockState::Full {
                    c.victims.insert(b, c.blocks[b as usize].live);
                }
            }
        }
    }

    /// Non-panicking consistency check (the repair-verification twin of
    /// [`Ftl::check_invariants`]), hardened against out-of-range addresses
    /// a corrupted L2P entry could carry.
    fn invariants_ok(&self) -> bool {
        let ppb = self.cfg.geometry.pages_per_block();
        let n_blocks = self.cfg.geometry.blocks;
        let mut mapped = 0u64;
        for (lpa, at) in self.l2p.iter().enumerate() {
            if let Some(at) = at {
                if at.chip >= self.chips.len() || at.ppa.block.0 >= n_blocks || at.ppa.page.0 >= ppb
                {
                    return false;
                }
                let idx = self.flat(at.ppa);
                if self.chips[at.chip].p2l[idx] != Some(lpa as Lpa) {
                    return false;
                }
                if !self.chips[at.chip].status[idx].is_live() {
                    return false;
                }
                mapped += 1;
            }
        }
        if mapped != self.live_pages() {
            return false;
        }
        for c in &self.chips {
            let mut live_sum = 0u64;
            let mut invalid_sum = 0u64;
            for (bi, b) in c.blocks.iter().enumerate() {
                let base = bi * ppb as usize;
                let live =
                    (0..ppb as usize).filter(|&i| c.status[base + i].is_live()).count() as u32;
                let invalid = (0..ppb as usize)
                    .filter(|&i| c.status[base + i] == PageStatus::Invalid)
                    .count() as u32;
                if live != b.live || invalid != b.invalid {
                    return false;
                }
                live_sum += u64::from(live);
                invalid_sum += u64::from(invalid);
                let indexed = c.victims.contains(bi as u32);
                if indexed != (b.state == BlockState::Full) {
                    return false;
                }
                if indexed {
                    match c.victims.pos[bi] {
                        Some((bucket, _)) if bucket == b.live => {}
                        _ => return false,
                    }
                }
            }
            if live_sum != c.live_total || invalid_sum != c.invalid_total {
                return false;
            }
            let retired = c.blocks.iter().filter(|b| b.state == BlockState::Retired).count() as u32;
            if retired != c.retired {
                return false;
            }
        }
        true
    }

    // -----------------------------------------------------------------
    // Audit scrubber
    // -----------------------------------------------------------------

    /// One incremental audit step: cross-checks the cursor block's RAM
    /// state against on-flash OOB, then advances the cursor. A divergence
    /// here means the seal machinery missed something (it should stay 0 in
    /// every run); it is counted separately and repaired from flash.
    fn guard_audit_step<E: NandExecutor, O: FtlObserver>(&mut self, ex: &mut E, obs: &mut O) {
        let n_blocks = u64::from(self.cfg.geometry.blocks);
        let total = self.chips.len() as u64 * n_blocks;
        let g = self.guard.as_mut().expect("guard armed");
        let cur = g.cursor % total;
        g.cursor = cur + 1;
        let chip = (cur / n_blocks) as usize;
        let block = (cur % n_blocks) as u32;
        self.stats.audit_scrub_blocks += 1;
        if self.audit_block_diverges(ex, chip, block) {
            self.stats.audit_divergences += 1;
            let g = self.guard.as_mut().expect("guard armed");
            g.pending = false;
            let tombstones = std::mem::take(&mut g.unmapped);
            let _ = self.recover(ex, obs);
            self.guard_prune_resurrections(ex, obs, &tombstones);
            self.guard_reseal();
        }
    }

    /// Cross-checks one block: retirement mark, and for every RAM-live page
    /// the flash copy must be readable with matching OOB and back-pointers.
    fn audit_block_diverges<E: NandExecutor>(
        &mut self,
        ex: &mut E,
        chip: usize,
        block: u32,
    ) -> bool {
        let bp = ex.probe_block(chip, BlockId(block));
        let state = self.chips[chip].blocks[block as usize].state;
        if bp.bad != (state == BlockState::Retired) {
            return true;
        }
        if bp.bad {
            return false;
        }
        let ppb = self.cfg.geometry.pages_per_block();
        for p in 0..bp.next_program.min(ppb) {
            let at = GlobalPpa::new(chip, Ppa { block: BlockId(block), page: PageId(p) });
            let idx = self.flat(at.ppa);
            let st = self.chips[chip].status[idx];
            if !st.is_live() {
                // Free/invalid RAM slots legitimately cover locked, stale,
                // or destroyed flash pages; nothing to cross-check.
                continue;
            }
            let probe = ex.probe_page(at);
            self.stats.nand_reads += 1;
            if probe.torn || probe.lock.is_torn() || probe.lock.reads_locked() {
                return true; // a live page must be readable
            }
            match probe.oob {
                Some(oob) => {
                    if self.chips[chip].p2l[idx] != Some(oob.lpa) {
                        return true;
                    }
                    if (oob.lpa as usize) >= self.l2p.len()
                        || self.l2p[oob.lpa as usize] != Some(at)
                    {
                        return true;
                    }
                    if (st == PageStatus::Secured) != oob.secure {
                        return true;
                    }
                }
                None => return true,
            }
        }
        false
    }

    // -----------------------------------------------------------------
    // Seals
    // -----------------------------------------------------------------

    fn compute_seals(&self) -> [u64; N_SEALS] {
        [
            self.seal_l2p(),
            self.seal_counters(),
            self.seal_coalesce(),
            self.seal_bad_blocks(),
            self.seal_victims(),
        ]
    }

    fn seal_l2p(&self) -> u64 {
        let mut s = Seal::new();
        for slot in &self.l2p {
            match slot {
                Some(at) => s.gppa(*at),
                None => s.u64(u64::MAX),
            }
        }
        s.done()
    }

    fn seal_counters(&self) -> u64 {
        let mut s = Seal::new();
        for c in &self.chips {
            for b in &c.blocks {
                s.u64(u64::from(b.live));
                s.u64(u64::from(b.invalid));
            }
            s.u64(c.live_total);
            s.u64(c.invalid_total);
        }
        s.done()
    }

    fn seal_coalesce(&self) -> u64 {
        let mut s = Seal::new();
        s.u64(self.pending_locks.len() as u64);
        for e in self.pending_locks.iter() {
            s.u64(e.chip as u64);
            s.u64(u64::from(e.block));
            s.u64(e.since);
            s.u64(e.pages.len() as u64);
            for &p in &e.pages {
                s.gppa(p);
            }
        }
        s.done()
    }

    fn seal_bad_blocks(&self) -> u64 {
        let mut s = Seal::new();
        for c in &self.chips {
            s.u64(u64::from(c.retired));
            for b in &c.blocks {
                s.u64(u64::from(b.state == BlockState::Retired));
            }
        }
        s.done()
    }

    fn seal_victims(&self) -> u64 {
        let mut s = Seal::new();
        for c in &self.chips {
            s.u64(u64::from(c.victims.min_live));
            for bucket in &c.victims.buckets {
                s.u64(bucket.len() as u64);
                for &b in bucket {
                    s.u64(u64::from(b));
                }
            }
            for p in &c.victims.pos {
                match p {
                    Some((live, slot)) => {
                        s.u64(u64::from(*live));
                        s.u64(u64::from(*slot));
                    }
                    None => s.u64(u64::MAX),
                }
            }
        }
        s.done()
    }

    // -----------------------------------------------------------------
    // Injection
    // -----------------------------------------------------------------

    /// Applies a drawn corruption, guaranteeing a state change so every
    /// injection is detectable. Draws whose target structure is empty fall
    /// through to the L2P map (always populated); the returned target is
    /// the one actually damaged.
    fn apply_corruption(&mut self, hit: CorruptionHit) -> CorruptTarget {
        let salt = hit.salt;
        let target = match hit.target {
            CorruptTarget::CoalesceQueue if self.pending_locks.len() == 0 => CorruptTarget::L2pMap,
            CorruptTarget::BadBlockTable if !self.chips.iter().any(|c| c.retired > 0) => {
                CorruptTarget::L2pMap
            }
            CorruptTarget::VictimIndex
                if !self.chips.iter().any(|c| c.victims.pos.iter().any(|p| p.is_some())) =>
            {
                CorruptTarget::L2pMap
            }
            t => t,
        };
        match target {
            CorruptTarget::L2pMap => {
                let i = (salt % self.l2p.len() as u64) as usize;
                self.l2p[i] = match self.l2p[i] {
                    Some(_) => None,
                    None => {
                        let geom = self.cfg.geometry;
                        Some(GlobalPpa::new(
                            ((salt >> 8) % self.chips.len() as u64) as usize,
                            Ppa {
                                block: BlockId(((salt >> 24) % u64::from(geom.blocks)) as u32),
                                page: PageId(
                                    ((salt >> 48) % u64::from(geom.pages_per_block())) as u32,
                                ),
                            },
                        ))
                    }
                };
            }
            CorruptTarget::Counters => {
                let chip = (salt % self.chips.len() as u64) as usize;
                let b = ((salt >> 16) % u64::from(self.cfg.geometry.blocks)) as usize;
                let delta = ((salt >> 32) % 7 + 1) as u32;
                let c = &mut self.chips[chip];
                c.blocks[b].live = c.blocks[b].live.wrapping_add(delta);
                c.live_total = c.live_total.wrapping_add(u64::from(delta));
            }
            CorruptTarget::CoalesceQueue => {
                // Silently drop a whole batch of deferred locks — exactly
                // the remnant-data hazard the guard exists to catch.
                let e = self.pending_locks.pop_front().expect("fall-through checked non-empty");
                self.pending_locks.recycle(e.pages);
            }
            CorruptTarget::BadBlockTable => {
                let n = self.chips.len();
                let start = (salt % n as u64) as usize;
                let chip = (0..n)
                    .map(|i| (start + i) % n)
                    .find(|&i| self.chips[i].retired > 0)
                    .expect("fall-through checked a retired block exists");
                let c = &mut self.chips[chip];
                let b = c
                    .blocks
                    .iter()
                    .position(|b| b.state == BlockState::Retired)
                    .expect("retired count > 0");
                // Un-retire: the grown-bad block looks reusable again.
                c.blocks[b].state = BlockState::Reclaimable;
                c.retired -= 1;
            }
            CorruptTarget::VictimIndex => {
                let n = self.chips.len();
                let start = (salt % n as u64) as usize;
                let chip = (0..n)
                    .map(|i| (start + i) % n)
                    .find(|&i| self.chips[i].victims.pos.iter().any(|p| p.is_some()))
                    .expect("fall-through checked an indexed block exists");
                let c = &mut self.chips[chip];
                let b = c
                    .victims
                    .pos
                    .iter()
                    .position(|p| p.is_some())
                    .expect("an indexed block exists") as u32;
                // Drop a Full block from the index: GC can no longer see it.
                c.victims.remove(b);
            }
        }
        target
    }
}

fn seal_index(t: CorruptTarget) -> usize {
    CorruptTarget::ALL.iter().position(|&x| x == t).expect("target in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FtlConfig;
    use crate::executor::MemExecutor;
    use crate::observer::NullObserver;
    use crate::policy::SanitizePolicy;

    fn drive(ftl: &mut Ftl, ex: &mut MemExecutor, rounds: u64) {
        let logical = ftl.config().logical_pages();
        let mut x = 0x1234_5678u64;
        for _ in 0..rounds {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lpa = x % logical;
            ftl.guard_preop(ex, &mut NullObserver);
            match x % 5 {
                0 => {
                    ftl.trim(ex, &mut NullObserver, &[lpa]);
                }
                1 => {
                    let _ = ftl.read(ex, lpa);
                }
                _ => {
                    ftl.write(ex, &mut NullObserver, lpa, !x.is_multiple_of(3), x);
                }
            }
            ftl.guard_postop();
        }
    }

    #[test]
    fn guarded_storm_accounts_every_injection() {
        let cfg = FtlConfig::tiny_for_tests();
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        ftl.enable_guard(CorruptionConfig::storm(0.3, 99));
        drive(&mut ftl, &mut ex, 300);
        ftl.guard_finalize(&mut ex, &mut NullObserver);
        let s = ftl.stats();
        assert!(s.meta_corruptions_injected > 10, "storm actually fired: {s:?}");
        assert!(s.meta_accounting_balanced(), "identity violated: {s:?}");
        assert_eq!(s.audit_divergences, 0, "seals caught everything first");
        assert_eq!(
            ftl.guard_corruption_stats().unwrap().injected,
            s.meta_corruptions_injected,
            "model and FtlStats agree"
        );
        ftl.check_invariants();
    }

    #[test]
    fn guard_at_rate_zero_changes_no_host_visible_state() {
        let cfg = FtlConfig::tiny_for_tests();
        let mut guarded = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut bare = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex_g = MemExecutor::new(cfg.geometry, cfg.n_chips);
        let mut ex_b = MemExecutor::new(cfg.geometry, cfg.n_chips);
        guarded.enable_guard(CorruptionConfig::none());
        drive(&mut guarded, &mut ex_g, 200);
        drive(&mut bare, &mut ex_b, 200);
        guarded.guard_finalize(&mut ex_g, &mut NullObserver);
        let s = guarded.stats();
        assert_eq!(s.meta_corruptions_injected, 0);
        assert_eq!(s.meta_corruptions_detected, 0);
        assert_eq!(s.audit_divergences, 0);
        assert!(s.audit_scrub_blocks >= 200);
        for lpa in 0..cfg.logical_pages() {
            assert_eq!(guarded.mapped(lpa), bare.mapped(lpa), "mapping diverged at {lpa}");
        }
        for lpa in 0..cfg.logical_pages() {
            let a = guarded.read(&mut ex_g, lpa).map(|d| d.tag());
            let b = bare.read(&mut ex_b, lpa).map(|d| d.tag());
            assert_eq!(a, b, "read diverged at {lpa}");
        }
    }

    #[test]
    fn injections_are_qd_invariant_for_a_fixed_op_sequence() {
        // The draw is keyed on the boundary ordinal alone; two identical
        // host sequences see identical injections and identical repairs.
        let cfg = FtlConfig::tiny_for_tests();
        let mk = || {
            let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
            let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
            ftl.enable_guard(CorruptionConfig::storm(0.25, 7));
            drive(&mut ftl, &mut ex, 250);
            ftl.guard_finalize(&mut ex, &mut NullObserver);
            (ftl, ex)
        };
        let (a, mut ex_a) = mk();
        let (b, mut ex_b) = mk();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.guard_corruption_stats(), b.guard_corruption_stats());
        let mut ea = evanesco_nand::snapshot::Enc::new();
        let mut eb = evanesco_nand::snapshot::Enc::new();
        let (mut a, mut b) = (a, b);
        a.encode_state(&mut ea);
        b.encode_state(&mut eb);
        assert_eq!(ea.into_bytes(), eb.into_bytes(), "post-repair state diverged");
        for lpa in 0..cfg.logical_pages() {
            let ra = a.read(&mut ex_a, lpa).map(|d| d.tag());
            let rb = b.read(&mut ex_b, lpa).map(|d| d.tag());
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn forced_unrecoverable_degrades_to_read_only_and_stays_accounted() {
        let cfg = FtlConfig::tiny_for_tests();
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        ftl.enable_guard(CorruptionConfig::none());
        ftl.guard_preop(&mut ex, &mut NullObserver);
        ftl.write(&mut ex, &mut NullObserver, 0, true, 1);
        ftl.guard_postop();
        ftl.guard_force_unrecoverable();
        ftl.guard_preop(&mut ex, &mut NullObserver);
        assert_eq!(ftl.degraded(), DegradedMode::ReadOnly);
        assert!(!ftl.write(&mut ex, &mut NullObserver, 1, true, 2), "writes rejected");
        let s = ftl.stats();
        assert_eq!(s.meta_unrecoverable, 1);
        assert!(s.meta_accounting_balanced(), "{s:?}");
    }

    #[test]
    fn oob_repair_does_not_resurrect_insecurely_trimmed_data() {
        // An insecure trim leaves the page readable with valid OOB — the
        // recovery scan would happily re-map it. The guard's tombstone
        // filter must prune that resurrection after an OOB repair.
        let cfg = FtlConfig::tiny_for_tests();
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        ftl.enable_guard(CorruptionConfig::none());
        for (lpa, secure, tag) in [(1, true, 0xA1u64), (3, false, 0xB3)] {
            ftl.guard_preop(&mut ex, &mut NullObserver);
            ftl.write(&mut ex, &mut NullObserver, lpa, secure, tag);
            ftl.guard_postop();
        }
        ftl.guard_preop(&mut ex, &mut NullObserver);
        ftl.trim(&mut ex, &mut NullObserver, &[3]);
        ftl.guard_postop();
        assert!(ftl.read(&mut ex, 3).is_none(), "trim acked");
        // Hand-corrupt the L2P map (the rate is 0, so nothing else fires):
        // dropping a live mapping forces the full-scan OOB repair.
        ftl.l2p[1] = None;
        ftl.guard_finalize(&mut ex, &mut NullObserver);
        let s = ftl.stats();
        assert_eq!(s.meta_repairs_from_oob, 1, "{s:?}");
        assert!(s.meta_resurrections_pruned >= 1, "{s:?}");
        assert_eq!(ftl.read(&mut ex, 1).map(|d| d.tag()), Some(0xA1), "live data survived");
        assert!(ftl.mapped(3).is_none(), "trimmed page stayed dead");
        assert!(ftl.read(&mut ex, 3).is_none(), "trimmed page stayed dead");
        ftl.check_invariants();
    }

    #[test]
    fn storm_never_leaks_a_secured_delete() {
        use evanesco_core::threat::Attacker;
        // Corruption + repair must never unwind an acked sanitization.
        let cfg = FtlConfig::tiny_for_tests();
        let mut ftl = Ftl::new(cfg, SanitizePolicy::evanesco());
        let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
        ftl.enable_guard(CorruptionConfig::storm(0.5, 3));
        let tags: Vec<u64> = (0..8).map(|i| 0xDEAD_0000 + i).collect();
        for (i, &t) in tags.iter().enumerate() {
            ftl.guard_preop(&mut ex, &mut NullObserver);
            ftl.write(&mut ex, &mut NullObserver, i as Lpa, true, t);
            ftl.guard_postop();
        }
        for i in 0..tags.len() {
            ftl.guard_preop(&mut ex, &mut NullObserver);
            ftl.trim(&mut ex, &mut NullObserver, &[i as Lpa]);
            ftl.guard_postop();
        }
        ftl.guard_preop(&mut ex, &mut NullObserver);
        ftl.flush_coalesced(&mut ex, &mut NullObserver);
        ftl.guard_reseal();
        ftl.guard_finalize(&mut ex, &mut NullObserver);
        let attacker = Attacker::new();
        for chip in ex.chips_mut() {
            for &t in &tags {
                assert!(!attacker.recover_tag(chip, t), "tag {t:#x} recoverable after storm");
            }
        }
        assert!(ftl.stats().meta_accounting_balanced(), "{:?}", ftl.stats());
    }
}

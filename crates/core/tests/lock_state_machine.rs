//! Property-based state-machine test of the Evanesco chip: arbitrary legal
//! command sequences can never re-expose locked data without an erase.

use evanesco_core::chip::{EvanescoChip, ReadResult};
use evanesco_nand::chip::PageData;
use evanesco_nand::geometry::{BlockId, Geometry, PageId, Ppa};
use evanesco_nand::timing::Nanos;
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Program the next in-order page of block `b` (if space remains).
    Program { b: u32 },
    /// pLock a random already-programmed page of block `b`.
    PLock { b: u32, p: u32 },
    /// bLock block `b`.
    BLock { b: u32 },
    /// Erase block `b`.
    Erase { b: u32 },
}

fn cmd(blocks: u32, ppb: u32) -> impl Strategy<Value = Cmd> {
    prop_oneof![
        4 => (0..blocks).prop_map(|b| Cmd::Program { b }),
        2 => (0..blocks, 0..ppb).prop_map(|(b, p)| Cmd::PLock { b, p }),
        1 => (0..blocks).prop_map(|b| Cmd::BLock { b }),
        1 => (0..blocks).prop_map(|b| Cmd::Erase { b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn locks_hold_until_erase(cmds in proptest::collection::vec(cmd(4, 12), 1..200)) {
        let geom = Geometry {
            tech: evanesco_nand::cell::CellTech::Tlc,
            blocks: 4,
            wordlines_per_block: 4,
            page_bytes: 16 * 1024,
            spare_bytes: 1024,
        };
        let ppb = geom.pages_per_block();
        let mut chip = EvanescoChip::new(geom);
        // Model state.
        let mut page_locked: HashSet<(u32, u32)> = HashSet::new();
        let mut block_locked: HashSet<u32> = HashSet::new();
        let mut programmed: Vec<u32> = vec![0; 4]; // next program index per block
        let mut tag = 0u64;

        for c in cmds {
            match c {
                Cmd::Program { b } => {
                    if programmed[b as usize] < ppb {
                        let p = programmed[b as usize];
                        chip.program(Ppa::new(b, p), PageData::tagged(tag)).unwrap();
                        programmed[b as usize] += 1;
                        tag += 1;
                    }
                }
                Cmd::PLock { b, p } => {
                    if p < programmed[b as usize] {
                        chip.p_lock(Ppa::new(b, p)).unwrap();
                        page_locked.insert((b, p));
                    } else {
                        prop_assert!(chip.p_lock(Ppa::new(b, p)).is_err());
                    }
                }
                Cmd::BLock { b } => {
                    chip.b_lock(BlockId(b)).unwrap();
                    block_locked.insert(b);
                }
                Cmd::Erase { b } => {
                    chip.erase(BlockId(b), Nanos::ZERO).unwrap();
                    block_locked.remove(&b);
                    page_locked.retain(|&(bb, _)| bb != b);
                    programmed[b as usize] = 0;
                }
            }

            // Invariant: the chip's access gating agrees with the model for
            // every page, after every command.
            for b in 0..4u32 {
                for p in 0..ppb {
                    let ppa = Ppa { block: BlockId(b), page: PageId(p) };
                    let expect_blocked =
                        block_locked.contains(&b) || page_locked.contains(&(b, p));
                    prop_assert_eq!(
                        chip.is_access_blocked(ppa),
                        expect_blocked,
                        "gating mismatch at block {} page {}", b, p
                    );
                    let out = chip.read(ppa).unwrap();
                    match (expect_blocked, &out.result) {
                        (true, ReadResult::Locked) => {}
                        (false, ReadResult::Locked) => {
                            prop_assert!(false, "spurious lock at {}/{}", b, p)
                        }
                        (true, _) => prop_assert!(false, "leak at {}/{}", b, p),
                        (false, _) => {}
                    }
                }
            }
        }
    }
}

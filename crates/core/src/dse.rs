//! Design-space exploration for the `pLock` and `bLock` programming
//! parameters (paper §5.3 Figure 9, §5.4 Figure 12).
//!
//! The exploration reproduces the paper's three-step funnel for each
//! command:
//!
//! 1. exclude points that damage data cells / cannot reach the read-kill
//!    voltage (**Region I**);
//! 2. exclude points that cannot reliably program the flag cells
//!    (**Region II**, `pLock` only);
//! 3. among the remaining candidates — labeled (i)…(vi) as in the paper —
//!    keep those that meet the retention requirement, then pick the one
//!    with the shortest program latency (ties broken by larger margin).
//!
//! The paper's outcomes, which [`explore_plock`] and [`explore_block`]
//! reproduce: `pLock` selects combination (ii) = `(Vp4, 100 µs)` with `k = 9`
//! flag cells; `bLock` selects combination (ii) = `(Vb6, 300 µs)`.

use crate::calibration::{
    block_center_vth_after, block_initial_center_vth, plock_data_rber_factor, plock_flag_success,
    DesignPoint, BLOCK_READ_KILL_VTH, BLOCK_T_US, BLOCK_V_INDICES, PLOCK_REGION1_RBER_LIMIT,
    PLOCK_REGION2_SUCCESS_FLOOR, PLOCK_T_US, PLOCK_V_INDICES,
};
use crate::pap::{expected_flag_errors, majority_failure_prob};

/// Why a design point was excluded, or that it survived to candidacy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Excluded in step 1 (data-cell damage / insufficient program level).
    RegionI,
    /// Excluded in step 2 (unreliable flag programming; `pLock` only).
    RegionII,
    /// Survived to the retention evaluation.
    Candidate,
}

/// Evaluation record of one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointEval {
    /// The design point.
    pub point: DesignPoint,
    /// Region classification.
    pub region: Region,
    /// Candidate label "(i)".."(vi)" (paper Figure 9a / 12a), if candidate.
    pub label: Option<&'static str>,
    /// Step-1 metric: data-cell RBER factor (`pLock`) or initial SSL center
    /// Vth (`bLock`).
    pub step1_metric: f64,
    /// Step-2 metric: flag program success rate (`pLock` only).
    pub step2_metric: Option<f64>,
    /// Whether the point meets the 5-year retention requirement.
    pub retention_ok: bool,
}

/// Full exploration report for one command.
#[derive(Debug, Clone, PartialEq)]
pub struct DseReport {
    /// Every grid point with its classification.
    pub evals: Vec<PointEval>,
    /// The selected design point.
    pub selected: DesignPoint,
    /// Label of the selected candidate.
    pub selected_label: &'static str,
}

impl DseReport {
    /// The candidate evaluations only, in label order (i)..(vi).
    pub fn candidates(&self) -> Vec<&PointEval> {
        let mut c: Vec<&PointEval> =
            self.evals.iter().filter(|e| e.region == Region::Candidate).collect();
        c.sort_by_key(|e| e.label.map(label_rank).unwrap_or(usize::MAX));
        c
    }
}

/// The retention requirement used for the final selection: 5 years at 30 °C
/// after 1 K P/E cycles (the stretch case in Figures 9d / 12b).
pub const RETENTION_REQUIREMENT_DAYS: f64 = 5.0 * 365.0;

/// Majority-failure probability budget for a pAP candidate to count as
/// meeting the retention requirement.
pub const PAP_FAILURE_BUDGET: f64 = 1e-3;

const LABELS: [&str; 6] = ["(i)", "(ii)", "(iii)", "(iv)", "(v)", "(vi)"];

fn label_rank(label: &str) -> usize {
    LABELS.iter().position(|&l| l == label).unwrap_or(usize::MAX)
}

/// Candidate labeling: the paper numbers candidates by how robustly they
/// hold their programmed level over retention — (i) is the strongest
/// combination, (vi) the weakest. `strength` is the 5-year retention metric
/// (pAP flag margin minus decay, or SSL center Vth at 5 years).
fn label_candidates(cands: &mut [(DesignPoint, f64)]) -> Vec<(DesignPoint, &'static str)> {
    cands.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite strength"));
    cands.iter().zip(LABELS.iter()).map(|(&(p, _), &l)| (p, l)).collect()
}

/// Runs the `pLock` design-space exploration (Figure 9) with `k` flag cells.
///
/// # Panics
///
/// Panics if no candidate meets the retention requirement (cannot happen
/// with the calibrated tables).
pub fn explore_plock(k: usize) -> DseReport {
    let mut evals = Vec::new();
    let mut cands: Vec<(DesignPoint, f64)> = Vec::new();
    for vi in PLOCK_V_INDICES {
        for t in PLOCK_T_US {
            let p = DesignPoint::new(vi, t);
            let rber_factor = plock_data_rber_factor(p);
            let success = plock_flag_success(p);
            let region = if rber_factor > PLOCK_REGION1_RBER_LIMIT {
                Region::RegionI
            } else if success < PLOCK_REGION2_SUCCESS_FLOOR {
                Region::RegionII
            } else {
                Region::Candidate
            };
            if region == Region::Candidate {
                cands.push((p, crate::calibration::plock_flag_margin(p)));
            }
            evals.push(PointEval {
                point: p,
                region,
                label: None,
                step1_metric: rber_factor,
                step2_metric: Some(success),
                retention_ok: false,
            });
        }
    }
    let labeled = label_candidates(&mut cands);
    for (p, l) in &labeled {
        let ok = majority_failure_prob(*p, RETENTION_REQUIREMENT_DAYS, k) < PAP_FAILURE_BUDGET;
        let e = evals.iter_mut().find(|e| e.point == *p).expect("candidate in grid");
        e.label = Some(l);
        e.retention_ok = ok;
    }
    let selected_eval = select(&evals);
    DseReport { selected: selected_eval.0, selected_label: selected_eval.1, evals }
}

/// Runs the `bLock` design-space exploration (Figure 12).
///
/// # Panics
///
/// Panics if no candidate meets the retention requirement.
pub fn explore_block() -> DseReport {
    let mut evals = Vec::new();
    let mut cands: Vec<(DesignPoint, f64)> = Vec::new();
    for vi in BLOCK_V_INDICES {
        for t in BLOCK_T_US {
            let p = DesignPoint::new(vi, t);
            let initial = block_initial_center_vth(p);
            let region =
                if initial < BLOCK_READ_KILL_VTH { Region::RegionI } else { Region::Candidate };
            if region == Region::Candidate {
                cands.push((p, block_center_vth_after(p, RETENTION_REQUIREMENT_DAYS)));
            }
            evals.push(PointEval {
                point: p,
                region,
                label: None,
                step1_metric: initial,
                step2_metric: None,
                retention_ok: false,
            });
        }
    }
    let labeled = label_candidates(&mut cands);
    for (p, l) in &labeled {
        let ok = block_center_vth_after(*p, RETENTION_REQUIREMENT_DAYS) >= BLOCK_READ_KILL_VTH;
        let e = evals.iter_mut().find(|e| e.point == *p).expect("candidate in grid");
        e.label = Some(l);
        e.retention_ok = ok;
    }
    let selected_eval = select(&evals);
    DseReport { selected: selected_eval.0, selected_label: selected_eval.1, evals }
}

/// Final selection: among retention-passing candidates, minimize latency;
/// break ties with higher program voltage (more margin).
fn select(evals: &[PointEval]) -> (DesignPoint, &'static str) {
    evals
        .iter()
        .filter(|e| e.region == Region::Candidate && e.retention_ok)
        .min_by(|a, b| {
            (a.point.t_us, std::cmp::Reverse(a.point.v_index))
                .cmp(&(b.point.t_us, std::cmp::Reverse(b.point.v_index)))
        })
        .map(|e| (e.point, e.label.expect("candidates are labeled")))
        .expect("at least one candidate meets retention")
}

/// Figure 9(d) series: expected error-free flag cells (out of `k`) for a
/// candidate point over a retention sweep.
pub fn flag_cells_without_errors(point: DesignPoint, days: &[f64], k: usize) -> Vec<f64> {
    days.iter().map(|&d| k as f64 - expected_flag_errors(point, d, k)).collect()
}

/// Figure 12(b) series: SSL center Vth for a candidate point over a
/// retention sweep.
pub fn ssl_center_vth_series(point: DesignPoint, days: &[f64]) -> Vec<f64> {
    days.iter().map(|&d| block_center_vth_after(point, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plock_selects_paper_combination_ii() {
        let report = explore_plock(9);
        assert_eq!(report.selected, DesignPoint::new(4, 100));
        assert_eq!(report.selected_label, "(ii)");
    }

    #[test]
    fn plock_funnel_counts_match_figure_9a() {
        let report = explore_plock(9);
        let r1 = report.evals.iter().filter(|e| e.region == Region::RegionI).count();
        let r2 = report.evals.iter().filter(|e| e.region == Region::RegionII).count();
        let c = report.evals.iter().filter(|e| e.region == Region::Candidate).count();
        assert_eq!((r1, r2, c), (4, 5, 6));
        assert_eq!(report.evals.len(), 15);
    }

    #[test]
    fn plock_candidate_labels_match_paper() {
        // Paper: (i) = (Vp4, 150µs), (ii) = (Vp4, 100µs), (vi) = (Vp2, 200µs).
        let report = explore_plock(9);
        let by_label = |l: &'static str| {
            report.evals.iter().find(|e| e.label == Some(l)).map(|e| e.point).unwrap()
        };
        assert_eq!(by_label("(i)"), DesignPoint::new(4, 150));
        assert_eq!(by_label("(ii)"), DesignPoint::new(4, 100));
        assert_eq!(by_label("(vi)"), DesignPoint::new(2, 200));
    }

    #[test]
    fn block_selects_paper_combination_ii() {
        let report = explore_block();
        assert_eq!(report.selected, DesignPoint::new(6, 300));
        assert_eq!(report.selected_label, "(ii)");
    }

    #[test]
    fn block_funnel_matches_figure_12() {
        let report = explore_block();
        let r1 = report.evals.iter().filter(|e| e.region == Region::RegionI).count();
        let c = report.evals.iter().filter(|e| e.region == Region::Candidate).count();
        assert_eq!((r1, c), (12, 6));
        // Paper: (i) = (Vb6, 400µs) reliable, (vi) = (Vb5, 200µs) unreliable.
        let by_label = |l: &'static str| report.evals.iter().find(|e| e.label == Some(l)).unwrap();
        assert_eq!(by_label("(i)").point, DesignPoint::new(6, 400));
        assert!(by_label("(i)").retention_ok);
        assert_eq!(by_label("(vi)").point, DesignPoint::new(5, 200));
        assert!(!by_label("(vi)").retention_ok);
        // Text: neither (iv) nor (v) is reliable.
        assert!(!by_label("(iv)").retention_ok);
        assert!(!by_label("(v)").retention_ok);
        // (iii) is reliable but slower than (ii).
        assert!(by_label("(iii)").retention_ok);
        assert!(by_label("(iii)").point.t_us > 300);
    }

    #[test]
    fn candidates_sorted_by_label() {
        let report = explore_plock(9);
        let cands = report.candidates();
        assert_eq!(cands.len(), 6);
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.label, Some(LABELS[i]));
        }
    }

    #[test]
    fn figure_9d_series_shapes() {
        // The weak candidate (vi) degrades to ~4-5 good cells at 5 years; the
        // strong candidates stay near 9.
        let days = [10.0, 100.0, 1000.0, 10_000.0];
        let weak = flag_cells_without_errors(DesignPoint::new(2, 200), &days, 9);
        let strong = flag_cells_without_errors(DesignPoint::new(4, 150), &days, 9);
        assert!(weak.last().unwrap() < &5.0);
        assert!(strong.last().unwrap() > &6.5);
        for w in weak.windows(2) {
            assert!(w[1] <= w[0], "error-free cells must not increase with time");
        }
    }

    #[test]
    fn figure_12b_series_shapes() {
        let days = [10.0, 100.0, 1000.0, 10_000.0];
        let strong = ssl_center_vth_series(DesignPoint::new(6, 400), &days);
        let weak = ssl_center_vth_series(DesignPoint::new(5, 200), &days);
        assert!(strong.iter().all(|&v| v > 3.5));
        assert!(weak[0] < 3.0, "weak candidate under 3V already at 10 days");
        for w in strong.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn smaller_k_still_selects_but_more_fragile() {
        // Ablation: with k = 5 the same point is selected, but the weak
        // candidates' failure probability grows.
        let r5 = explore_plock(5);
        let r9 = explore_plock(9);
        assert_eq!(r5.selected, r9.selected);
        let weak = DesignPoint::new(3, 100);
        assert!(
            crate::pap::majority_failure_prob(weak, RETENTION_REQUIREMENT_DAYS, 5)
                > crate::pap::majority_failure_prob(weak, RETENTION_REQUIREMENT_DAYS, 9)
        );
    }
}

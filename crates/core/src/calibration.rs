//! Empirical device calibration for the pAP and bAP flag cells.
//!
//! The paper derives these curves from 160 real 48-layer 3D TLC chips
//! (3 686 400 wordlines) on an in-house test board. We cannot measure real
//! silicon, so every curve here is an **empirical model anchored to the
//! figures the paper reports**:
//!
//! * Figure 9(b): data-cell RBER increase (program disturb) during `pLock`
//!   as a function of program voltage and latency — Region I exclusions.
//! * Figure 9(c): flag-cell program success rate — 47.3 % at the weakest
//!   corner `(Vp1, 100 µs)` — Region II exclusions.
//! * Figure 9(d): flag-cell retention errors over 10–10⁴ days at 1 K P/E.
//! * Figure 11(b): page RBER vs. the SSL's center Vth — the ECC limit is
//!   crossed as the center Vth passes ~3 V.
//! * Figure 12(b): SSL center Vth vs. retention for the six candidate
//!   `(V, t)` combinations.
//!
//! The absolute voltages are synthetic (the paper anonymizes them as
//! `Vp1..Vp5` / `Vb1..Vb6`); the *relationships* — which corners are
//! excluded, which candidates survive retention, which combination is
//! finally selected — reproduce the paper.

/// A point in a lock-command design space: program-voltage index and
/// program latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Program-voltage index (1-based: `Vp1..Vp5` or `Vb1..Vb6`).
    pub v_index: u8,
    /// Program latency in microseconds.
    pub t_us: u32,
}

impl DesignPoint {
    /// Creates a design point.
    pub fn new(v_index: u8, t_us: u32) -> Self {
        DesignPoint { v_index, t_us }
    }
}

// ---------------------------------------------------------------------------
// pLock (Figure 9)
// ---------------------------------------------------------------------------

/// Program-voltage grid for `pLock`: `Vp1..Vp5`, 0.5-V steps (paper §5.3).
pub const PLOCK_V_INDICES: [u8; 5] = [1, 2, 3, 4, 5];
/// Absolute synthetic program voltages for `Vp1..Vp5`.
pub const PLOCK_VOLTAGES: [f64; 5] = [14.0, 14.5, 15.0, 15.5, 16.0];
/// Latency grid for `pLock` (µs).
pub const PLOCK_T_US: [u32; 3] = [100, 150, 200];

/// Normalized RBER of *data cells* on the wordline after programming a pAP
/// flag with this design point (program disturb; Figure 9b). `1.0` means
/// "no increase over the pre-pLock RBER".
///
/// # Panics
///
/// Panics for a point outside the pLock grid.
pub fn plock_data_rber_factor(p: DesignPoint) -> f64 {
    let row = match p.v_index {
        1 => [0.97, 0.98, 0.99],
        2 => [0.98, 0.99, 1.00],
        3 => [0.99, 1.00, 1.02],
        4 => [1.01, 1.03, 1.07],
        5 => [1.06, 1.09, 1.13],
        v => panic!("pLock voltage index {v} out of grid"),
    };
    row[plock_t_slot(p.t_us)]
}

/// Fraction of flag cells successfully programmed by one shot at this design
/// point (Figure 9c). The paper's anchor: 47.3 % at `(Vp1, 100 µs)`.
///
/// # Panics
///
/// Panics for a point outside the pLock grid.
pub fn plock_flag_success(p: DesignPoint) -> f64 {
    let row = match p.v_index {
        1 => [0.473, 0.55, 0.66],
        2 => [0.86, 0.96, 0.997],
        3 => [0.995, 0.999, 0.9995],
        4 => [0.9999, 0.99995, 0.99999],
        5 => [0.99999, 0.999995, 0.999999],
        v => panic!("pLock voltage index {v} out of grid"),
    };
    row[plock_t_slot(p.t_us)]
}

/// Threshold on [`plock_data_rber_factor`] above which a point damages data
/// cells (Region I).
pub const PLOCK_REGION1_RBER_LIMIT: f64 = 1.05;
/// Threshold on [`plock_flag_success`] below which flag programming is
/// unreliable (Region II).
pub const PLOCK_REGION2_SUCCESS_FLOOR: f64 = 0.99;

/// Vth margin (volts) of a programmed flag cell above the SLC flag read
/// reference, as a function of the programming point. Stronger programming
/// leaves more margin for retention loss.
pub fn plock_flag_margin(p: DesignPoint) -> f64 {
    0.55 * p.v_index as f64 + 0.003 * (p.t_us as f64 - 100.0) - 0.05
}

/// Retention-induced Vth decay of a flag cell (volts) after `days`,
/// log-linear in time (charge detrapping), at 1 K P/E and 30 °C — the
/// condition of Figure 9(d).
pub fn plock_flag_decay(days: f64) -> f64 {
    0.42 * (1.0 + days).log10()
}

/// Per-cell sigma of the flag-cell Vth around its programmed margin.
pub const PLOCK_FLAG_SIGMA: f64 = 0.35;

fn plock_t_slot(t_us: u32) -> usize {
    PLOCK_T_US
        .iter()
        .position(|&t| t == t_us)
        .unwrap_or_else(|| panic!("pLock latency {t_us}us out of grid"))
}

// ---------------------------------------------------------------------------
// bLock (Figures 11 and 12)
// ---------------------------------------------------------------------------

/// Program-voltage grid for `bLock`: `Vb1..Vb6`, 1.0-V steps (paper §5.4).
pub const BLOCK_V_INDICES: [u8; 6] = [1, 2, 3, 4, 5, 6];
/// Absolute synthetic program voltages for `Vb1..Vb6`.
pub const BLOCK_VOLTAGES: [f64; 6] = [16.0, 17.0, 18.0, 19.0, 20.0, 21.0];
/// Latency grid for `bLock` (µs).
pub const BLOCK_T_US: [u32; 3] = [200, 300, 400];

/// SSL center Vth (volts) right after a one-shot `bLock` program at this
/// design point (Figure 12; Region I = cannot reach 3 V).
///
/// # Panics
///
/// Panics for a point outside the bLock grid.
pub fn block_initial_center_vth(p: DesignPoint) -> f64 {
    let row = match p.v_index {
        1 => [1.00, 1.10, 1.20],
        2 => [1.60, 1.70, 1.80],
        3 => [2.10, 2.20, 2.30],
        4 => [2.60, 2.75, 2.90],
        5 => [3.05, 3.30, 3.70],
        6 => [3.80, 4.15, 4.60],
        v => panic!("bLock voltage index {v} out of grid"),
    };
    row[block_t_slot(p.t_us)]
}

/// Retention decay slope of the SSL center Vth (volts per decade of days).
///
/// Shorter program pulses populate shallower charge traps, which detrap
/// faster — this is why the 200-µs corners fail the 5-year requirement even
/// at the highest voltage (Figure 12b, combinations (iv)/(vi)).
///
/// # Panics
///
/// Panics for a point outside the bLock grid.
pub fn block_decay_per_decade(p: DesignPoint) -> f64 {
    let row = match p.v_index {
        1..=4 => [0.50, 0.40, 0.30],
        5 => [0.45, 0.31, 0.20],
        6 => [0.42, 0.25, 0.17],
        v => panic!("bLock voltage index {v} out of grid"),
    };
    row[block_t_slot(p.t_us)]
}

/// SSL center Vth after `days` of retention.
pub fn block_center_vth_after(p: DesignPoint, days: f64) -> f64 {
    block_initial_center_vth(p) - block_decay_per_decade(p) * (1.0 + days).log10()
}

/// The SSL center Vth above which reads of the block fail beyond the ECC
/// limit (paper Figure 11b: "when the center Vth of an SSL exceeds 3 V").
pub const BLOCK_READ_KILL_VTH: f64 = 3.0;

/// Gate voltage applied to SSL cells during a normal read; SSL cells whose
/// Vth exceeds it stay off and block their bitline.
pub const SSL_GATE_VOLTAGE: f64 = 3.65;
/// Per-cell sigma of SSL Vth around the center.
pub const SSL_VTH_SIGMA: f64 = 0.28;

fn block_t_slot(t_us: u32) -> usize {
    BLOCK_T_US
        .iter()
        .position(|&t| t == t_us)
        .unwrap_or_else(|| panic!("bLock latency {t_us}us out of grid"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plock_weakest_corner_matches_paper_anchor() {
        // Paper: "(Vp1, 100µs) can program only 47.3% of flag cells".
        assert_eq!(plock_flag_success(DesignPoint::new(1, 100)), 0.473);
    }

    #[test]
    fn plock_success_monotonic_in_voltage_and_time() {
        for (vi, t) in [(1u8, 100u32), (2, 150), (3, 100)] {
            let p = plock_flag_success(DesignPoint::new(vi, t));
            assert!(plock_flag_success(DesignPoint::new(vi + 1, t)) >= p);
        }
        for vi in PLOCK_V_INDICES {
            let mut prev = 0.0;
            for t in PLOCK_T_US {
                let s = plock_flag_success(DesignPoint::new(vi, t));
                assert!(s >= prev);
                prev = s;
            }
        }
    }

    #[test]
    fn plock_region1_is_exactly_four_combos() {
        // Paper Fig. 9a: Region I excludes 4 combinations.
        let mut excluded = 0;
        for vi in PLOCK_V_INDICES {
            for t in PLOCK_T_US {
                if plock_data_rber_factor(DesignPoint::new(vi, t)) > PLOCK_REGION1_RBER_LIMIT {
                    excluded += 1;
                }
            }
        }
        assert_eq!(excluded, 4);
    }

    #[test]
    fn plock_region2_is_exactly_five_combos() {
        // Paper Fig. 9a/9c: Region II excludes 5 more combinations.
        let mut excluded = 0;
        for vi in PLOCK_V_INDICES {
            for t in PLOCK_T_US {
                let p = DesignPoint::new(vi, t);
                if plock_data_rber_factor(p) <= PLOCK_REGION1_RBER_LIMIT
                    && plock_flag_success(p) < PLOCK_REGION2_SUCCESS_FLOOR
                {
                    excluded += 1;
                }
            }
        }
        assert_eq!(excluded, 5);
    }

    #[test]
    fn plock_margin_grows_with_programming_strength() {
        assert!(
            plock_flag_margin(DesignPoint::new(4, 100))
                > plock_flag_margin(DesignPoint::new(2, 200))
        );
        assert!(
            plock_flag_margin(DesignPoint::new(3, 200))
                > plock_flag_margin(DesignPoint::new(3, 100))
        );
    }

    #[test]
    fn block_region1_is_low_voltage_corners() {
        // Vb1..Vb4 cannot push the SSL center past 3 V at any latency.
        for vi in 1u8..=4 {
            for t in BLOCK_T_US {
                assert!(block_initial_center_vth(DesignPoint::new(vi, t)) < BLOCK_READ_KILL_VTH);
            }
        }
        // Vb5/Vb6 all reach 3 V.
        for vi in 5u8..=6 {
            for t in BLOCK_T_US {
                assert!(block_initial_center_vth(DesignPoint::new(vi, t)) >= BLOCK_READ_KILL_VTH);
            }
        }
    }

    #[test]
    fn block_strongest_corner_above_4v_after_5_years() {
        // Paper Fig. 12b: (Vb6, 400µs) predicted above 4 V even after 5 years.
        let v = block_center_vth_after(DesignPoint::new(6, 400), 5.0 * 365.0);
        assert!(v > 4.0, "center vth {v}");
    }

    #[test]
    fn block_weak_candidate_fails_before_one_year() {
        // Paper Fig. 12b: (Vb5, 200µs) drops below 3 V before 1 year.
        let v = block_center_vth_after(DesignPoint::new(5, 200), 365.0);
        assert!(v < BLOCK_READ_KILL_VTH, "center vth {v}");
        // And it starts above 3 V (it is a candidate, not Region I).
        assert!(block_initial_center_vth(DesignPoint::new(5, 200)) >= BLOCK_READ_KILL_VTH);
    }

    #[test]
    fn block_selected_combination_survives_5_years() {
        // The paper's final pick (Vb6, 300µs).
        let v = block_center_vth_after(DesignPoint::new(6, 300), 5.0 * 365.0);
        assert!(v >= BLOCK_READ_KILL_VTH, "center vth {v}");
    }

    #[test]
    fn short_pulses_decay_faster() {
        for vi in 5u8..=6 {
            assert!(
                block_decay_per_decade(DesignPoint::new(vi, 200))
                    > block_decay_per_decade(DesignPoint::new(vi, 400))
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of grid")]
    fn out_of_grid_latency_panics() {
        plock_flag_success(DesignPoint::new(1, 123));
    }

    #[test]
    #[should_panic(expected = "out of grid")]
    fn out_of_grid_voltage_panics() {
        block_initial_center_vth(DesignPoint::new(9, 200));
    }

    #[test]
    fn flag_decay_is_log_time() {
        let d1 = plock_flag_decay(10.0);
        let d2 = plock_flag_decay(100.0);
        let d3 = plock_flag_decay(1000.0);
        assert!((d2 - d1) > 0.0);
        // Roughly constant per decade.
        assert!(((d3 - d2) - (d2 - d1)).abs() < 0.02);
    }
}

//! The k-bit majority circuit that decodes a pAP flag from its `k` redundant
//! flag cells (paper §5.3, Figure 8b).
//!
//! Evanesco deliberately avoids an ECC module for flag cells: a majority
//! vote over `k` SLC cells is a ~200-transistor combinational circuit, cheap
//! enough to replicate once per chip.

/// Majority vote over a slice of bits.
///
/// Returns `true` when strictly more than half of the inputs are `true`.
/// For Evanesco, `true` means *disabled* (the flag cell was programmed).
///
/// # Panics
///
/// Panics if `bits` is empty or has even length (a majority circuit needs an
/// odd input count to avoid ties).
pub fn majority(bits: &[bool]) -> bool {
    majority_count(bits.iter().filter(|&&b| b).count(), bits.len())
}

/// Majority vote expressed over pre-counted inputs: `true` when strictly
/// more than half of the `total` inputs are `true`. The allocation-free
/// form of [`majority`] for callers that already hold a count.
///
/// # Panics
///
/// Panics if `total` is zero or even (a majority circuit needs an odd
/// input count to avoid ties).
pub fn majority_count(ones: usize, total: usize) -> bool {
    assert!(total != 0, "majority of zero inputs");
    assert!(total % 2 == 1, "majority circuit needs an odd input count");
    ones > total / 2
}

/// How many flipped inputs a `k`-input majority circuit tolerates while
/// still producing the programmed value: `floor(k / 2)`.
pub fn tolerated_errors(k: usize) -> usize {
    k / 2
}

/// Rough transistor-count estimate for a k-bit majority gate.
///
/// The paper cites ~200 transistors for the 9-bit circuit; the estimate
/// scales quadratically with input count (sorting-network style
/// implementations).
pub fn transistor_estimate(k: usize) -> usize {
    // Anchored at k = 9 -> ~200.
    (200.0 * (k as f64 / 9.0).powi(2)).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_majorities() {
        assert!(majority(&[true, true, false]));
        assert!(!majority(&[true, false, false]));
        assert!(majority(&[true; 9]));
        assert!(!majority(&[false; 9]));
    }

    #[test]
    fn nine_bit_tolerates_four_errors() {
        // k = 9 keeps the flag readable with up to 4 flipped cells.
        assert_eq!(tolerated_errors(9), 4);
        let mut bits = [true; 9];
        for b in bits.iter_mut().take(4) {
            *b = false;
        }
        assert!(majority(&bits));
        bits[4] = false;
        assert!(!majority(&bits));
    }

    #[test]
    #[should_panic(expected = "odd input count")]
    fn even_input_rejected() {
        majority(&[true, false]);
    }

    #[test]
    #[should_panic(expected = "zero inputs")]
    fn empty_input_rejected() {
        majority(&[]);
    }

    #[test]
    fn transistor_estimate_anchored_at_paper_value() {
        assert_eq!(transistor_estimate(9), 200);
        assert!(transistor_estimate(5) < 200);
        assert!(transistor_estimate(11) > 200);
    }
}

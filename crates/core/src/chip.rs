//! The Evanesco-enhanced NAND chip: `pLock`, `bLock`, and on-chip read
//! gating (paper §5.2, Figure 7).
//!
//! The wrapper holds the behavioral access-permission state (one pAP bit
//! per page, one bAP bit per block — the *decoded* values the majority
//! circuit / SSL sensing would produce) and enforces the access rules:
//!
//! * a read first checks the block's bAP, then the page's pAP; if either is
//!   disabled the chip outputs **all-zero data** and never drives the
//!   data-out pins from the page buffer;
//! * `pLock`/`bLock` set flags; **no API exists to clear them** — only
//!   [`EvanescoChip::erase`] resets flags, and erasing destroys the data;
//! * flags live in flash cells, so they survive power cycles and chip
//!   de-soldering (cloning the chip state preserves them — see
//!   [`crate::threat`]).
//!
//! Device-level reliability of the flags themselves is modeled separately
//! in [`crate::pap`] / [`crate::bap`]; the behavioral layer uses the decoded
//! values, which the design-space exploration guarantees error-free for the
//! selected parameters.

use crate::bap::BapConfig;
use crate::error::EvanescoError;
use crate::fault::{FaultConfig, FaultModel, FaultStats, OpStatus, ReadReliability};
use crate::pap::PapConfig;
use evanesco_nand::chip::{Chip, PageContent, PageData};
use evanesco_nand::geometry::{BlockId, Geometry, Ppa};
use evanesco_nand::timing::{Nanos, TimingSpec};

/// Fraction of `tBERS` after which an interrupted erase has wiped the
/// pAP/bAP flag cells. Flags are programmed at low voltage (shallow charge),
/// so erase pulses clear them *before* the data pages are destroyed — an
/// interrupted erase can therefore unlock still-recoverable data. The
/// torn-erase signature ([`evanesco_nand::chip::Chip::block_torn_erase`])
/// closes this hole: recovery re-erases every torn block before serving
/// reads.
pub const TORN_ERASE_FLAG_WIPE_FRACTION: f64 = 0.15;

/// Number of SSL cells modeled for a torn `bLock` draw.
const SSL_CELLS: u32 = 4;

/// Decoded state of one lock-flag group (the k pAP cells of a page, or the
/// SSL cells of a block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FlagState {
    /// No lock command ever touched these cells.
    #[default]
    Clean,
    /// A lock command (or an erase of locked cells) was interrupted:
    /// some cells carry charge, some do not. `reads_locked` is what the
    /// k=9 majority circuit / SSL sensing decodes *today*, but the margin
    /// is degraded — a margin read distinguishes this from both `Clean`
    /// and `Locked`, and recovery must re-issue the lock either way.
    Torn {
        /// Current (unreliable) decode of the degraded cells.
        reads_locked: bool,
    },
    /// Lock completed; decodes as locked with full margin.
    Locked,
}

impl FlagState {
    /// What the access-control circuit decodes right now.
    pub fn reads_locked(self) -> bool {
        matches!(self, FlagState::Locked | FlagState::Torn { reads_locked: true })
    }

    /// Whether the cells are in the degraded partial-program state.
    pub fn is_torn(self) -> bool {
        matches!(self, FlagState::Torn { .. })
    }
}

/// Deterministic per-cell uniform draw in `[0, 1)` for torn-operation
/// modeling (SplitMix64 finalizer over the operation salt and cell
/// coordinates). Pure function: identical runs make identical draws.
/// Shared with [`crate::fault`] for runtime fault draws.
pub(crate) fn unit_draw(salt: u64, a: u64, b: u64, cell: u64) -> f64 {
    let mut z = salt
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.rotate_left(17).wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ cell.wrapping_mul(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// What an Evanesco-gated read returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadResult {
    /// Access blocked by a pAP or bAP flag: the interface returns data with
    /// all bits set to `0`.
    Locked,
    /// Normal read: the underlying page content.
    Content(PageContent),
}

impl ReadResult {
    /// Programmed data, if the read exposed any.
    pub fn data(&self) -> Option<&PageData> {
        match self {
            ReadResult::Locked => None,
            ReadResult::Content(c) => c.data(),
        }
    }
}

/// Result of a gated read: outcome plus array latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureReadOutput {
    /// The gated outcome.
    pub result: ReadResult,
    /// Array-access latency (a locked read still senses the array and the
    /// flag cells; latency is unchanged).
    pub latency: Nanos,
}

/// Lock-command counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// `pLock` commands executed.
    pub plocks: u64,
    /// `bLock` commands executed.
    pub blocks: u64,
}

/// A NAND chip extended with the Evanesco lock mechanism.
#[derive(Debug, Clone)]
pub struct EvanescoChip {
    inner: Chip,
    /// pAP flag state per page, indexed `[block][page]`. In behavioral mode
    /// this is the truth; in device mode it records the FTL's *intent*
    /// while the physical cells decide actual gating.
    pap_locked: Vec<Vec<FlagState>>,
    /// bAP flag state per block (intent in device mode).
    bap_locked: Vec<FlagState>,
    pap_config: PapConfig,
    bap_config: BapConfig,
    lock_stats: LockStats,
    /// Runtime fault model: probabilistic program/erase/lock/read failures
    /// plus the forced lock-failure test hook (one injection path for tests
    /// and runtime — see [`crate::fault`]).
    fault: FaultModel,
    /// Status register: pass/fail of the last fallible command (the NAND
    /// `READ STATUS` model). Executors read this after each op.
    status: OpStatus,
    /// Reference-shift retries the last data read needed (timed executors
    /// charge `tR` per retry).
    last_read_retries: u32,
    /// Grown-bad-block marks: a sentinel programmed into the block's spare
    /// area when the FTL retires it. Never cleared — firmware does not
    /// erase retired blocks, so the mark survives power loss like any
    /// flash-resident state.
    bad_mark: Vec<bool>,
    /// Optional physical flag-cell simulation (see
    /// [`crate::device_flags`]); when present, read gating consults the
    /// physical cells instead of the decoded intent.
    device_flags: Option<crate::device_flags::FlagDeviceSim>,
}

impl EvanescoChip {
    /// Creates a chip with paper timing and the paper's flag configurations.
    pub fn new(geom: Geometry) -> Self {
        Self::with_timing(geom, TimingSpec::paper())
    }

    /// Creates a chip with explicit timing.
    pub fn with_timing(geom: Geometry, timing: TimingSpec) -> Self {
        let pages = geom.pages_per_block() as usize;
        EvanescoChip {
            inner: Chip::with_timing(geom, timing),
            pap_locked: vec![vec![FlagState::Clean; pages]; geom.blocks as usize],
            bap_locked: vec![FlagState::Clean; geom.blocks as usize],
            pap_config: PapConfig::paper(),
            bap_config: BapConfig::paper(),
            lock_stats: LockStats::default(),
            fault: FaultModel::disabled(),
            status: OpStatus::Ok,
            last_read_retries: 0,
            bad_mark: vec![false; geom.blocks as usize],
            device_flags: None,
        }
    }

    /// Arms the runtime fault model. `chip_id` decorrelates chips that
    /// share a seed. Both `run` and `run_scheduled` paths go through the
    /// chip, so both see the same hazards.
    pub fn enable_faults(&mut self, cfg: FaultConfig, chip_id: u64) {
        self.fault = FaultModel::new(cfg, chip_id);
    }

    /// Injected-failure counters of the fault model.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.stats()
    }

    /// Pass/fail status of the last fallible command (`READ STATUS`).
    pub fn status(&self) -> OpStatus {
        self.status
    }

    /// Reference-shift retries the last data read performed.
    pub fn last_read_retries(&self) -> u32 {
        self.last_read_retries
    }

    /// Switches the chip to **device mode**: locks program physical flag
    /// cells under the given configurations, and read gating decodes those
    /// cells. Use [`EvanescoChip::age_flags`] to apply retention.
    pub fn enable_device_flags(&mut self, pap: PapConfig, bap: BapConfig, seed: u64) {
        self.pap_config = pap;
        self.bap_config = bap;
        let geom = self.inner.geometry();
        self.device_flags = Some(crate::device_flags::FlagDeviceSim::new(
            pap,
            bap,
            seed,
            geom.blocks,
            geom.pages_per_block(),
        ));
    }

    /// Applies `days` of retention to the physical flags (device mode
    /// only; a no-op in behavioral mode, where the DSE-validated
    /// parameters guarantee error-free flags for the rated lifetime).
    pub fn age_flags(&mut self, days: f64) {
        if let Some(sim) = &mut self.device_flags {
            sim.age(days);
        }
    }

    /// Locked pages whose physical flag no longer decodes as disabled —
    /// sanitization holes (device mode only; empty in behavioral mode).
    pub fn flag_leaks(&self) -> (usize, usize) {
        match &self.device_flags {
            Some(sim) => (sim.leaked_page_flags(), sim.leaked_block_flags()),
            None => (0, 0),
        }
    }

    /// The chip geometry.
    pub fn geometry(&self) -> &Geometry {
        self.inner.geometry()
    }

    /// The latency table.
    pub fn timing(&self) -> &TimingSpec {
        self.inner.timing()
    }

    /// The underlying behavioral chip's operation counters.
    pub fn nand_stats(&self) -> evanesco_nand::chip::ChipStats {
        self.inner.stats()
    }

    /// Lock-command counters.
    pub fn lock_stats(&self) -> LockStats {
        self.lock_stats
    }

    /// The pAP flag configuration.
    pub fn pap_config(&self) -> PapConfig {
        self.pap_config
    }

    /// The bAP flag configuration.
    pub fn bap_config(&self) -> BapConfig {
        self.bap_config
    }

    /// Serializes the full chip state — the behavioral NAND substrate, the
    /// decoded pAP/bAP flag intent, flag configurations, lock/fault
    /// counters, status register, bad-block marks, and (in device mode) the
    /// physical flag-cell simulation — into a checkpoint stream.
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x22);
        self.inner.encode_state(e);
        e.usize(self.pap_locked.len());
        for block in &self.pap_locked {
            e.usize(block.len());
            for &f in block {
                e.u8(encode_flag_state(f));
            }
        }
        e.usize(self.bap_locked.len());
        for &f in &self.bap_locked {
            e.u8(encode_flag_state(f));
        }
        e.usize(self.pap_config.k);
        e.u8(self.pap_config.point.v_index);
        e.u32(self.pap_config.point.t_us);
        e.u8(self.bap_config.point.v_index);
        e.u32(self.bap_config.point.t_us);
        e.u64(self.lock_stats.plocks);
        e.u64(self.lock_stats.blocks);
        self.fault.encode_state(e);
        e.u8(match self.status {
            OpStatus::Ok => 0,
            OpStatus::Failed => 1,
        });
        e.u32(self.last_read_retries);
        e.usize(self.bad_mark.len());
        for &b in &self.bad_mark {
            e.bool(b);
        }
        e.opt(&self.device_flags, |e, sim| sim.encode_state(e));
    }

    /// Restores state written by [`EvanescoChip::encode_state`] into this
    /// chip. The chip must have been constructed against the same geometry
    /// and (for fault-stream continuity) the same fault configuration; the
    /// fault model's dynamic state is overlaid on the armed model.
    ///
    /// # Errors
    ///
    /// Fails on truncation, structural corruption, or a geometry mismatch.
    pub fn decode_state(
        &mut self,
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<(), evanesco_nand::snapshot::SnapshotError> {
        use crate::calibration::DesignPoint;
        use evanesco_nand::snapshot::SnapshotError;
        d.expect_tag(0x22, "evanesco-chip")?;
        let inner = Chip::decode_state(d)?;
        if inner.geometry() != self.inner.geometry() {
            return Err(SnapshotError::Mismatch(format!(
                "chip geometry {:?} does not match the configured device {:?}",
                inner.geometry(),
                self.inner.geometry()
            )));
        }
        self.inner = inner;
        let n_blocks = d.usize()?;
        let mut pap_locked = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let n_pages = d.usize()?;
            let mut pages = Vec::with_capacity(n_pages);
            for _ in 0..n_pages {
                pages.push(decode_flag_state(d)?);
            }
            pap_locked.push(pages);
        }
        let n_bap = d.usize()?;
        let mut bap_locked = Vec::with_capacity(n_bap);
        for _ in 0..n_bap {
            bap_locked.push(decode_flag_state(d)?);
        }
        if pap_locked.len() != self.pap_locked.len() || bap_locked.len() != self.bap_locked.len() {
            return Err(SnapshotError::Mismatch(
                "flag table dimensions do not match the configured device".into(),
            ));
        }
        self.pap_locked = pap_locked;
        self.bap_locked = bap_locked;
        let k = d.usize()?;
        self.pap_config = PapConfig { k, point: DesignPoint::new(d.u8()?, d.u32()?) };
        self.bap_config = BapConfig { point: DesignPoint::new(d.u8()?, d.u32()?) };
        self.lock_stats = LockStats { plocks: d.u64()?, blocks: d.u64()? };
        self.fault.decode_state(d)?;
        self.status = match d.u8()? {
            0 => OpStatus::Ok,
            1 => OpStatus::Failed,
            b => return Err(SnapshotError::Corrupt(format!("unknown op status {b:#04x}"))),
        };
        self.last_read_retries = d.u32()?;
        let n_marks = d.usize()?;
        if n_marks != self.bad_mark.len() {
            return Err(SnapshotError::Mismatch(
                "bad-block mark count does not match the configured device".into(),
            ));
        }
        for m in &mut self.bad_mark {
            *m = d.bool()?;
        }
        let (blocks, ppb) = (self.inner.geometry().blocks, self.inner.geometry().pages_per_block());
        self.device_flags =
            d.opt(|d| crate::device_flags::FlagDeviceSim::decode_state(d, blocks, ppb))?;
        Ok(())
    }

    fn check_block(&self, block: BlockId) -> Result<(), EvanescoError> {
        if block.0 < self.geometry().blocks {
            Ok(())
        } else {
            Err(EvanescoError::BadBlock { block })
        }
    }

    /// Whether a page is individually locked (pAP disabled). In device
    /// mode this decodes the physical flag cells.
    pub fn is_page_locked(&self, ppa: Ppa) -> bool {
        match &self.device_flags {
            Some(sim) => sim.page_reads_locked(ppa),
            None => self.pap_locked[ppa.block.0 as usize][ppa.page.0 as usize].reads_locked(),
        }
    }

    /// Whether a whole block is locked (bAP disabled). In device mode this
    /// senses the physical SSL.
    pub fn is_block_locked(&self, block: BlockId) -> bool {
        match &self.device_flags {
            Some(sim) => sim.block_reads_locked(block),
            None => self.bap_locked[block.0 as usize].reads_locked(),
        }
    }

    /// Margin-read probe of a page's pAP cells: distinguishes clean,
    /// torn (degraded), and fully-locked cells. This is what the recovery
    /// scan uses to find locks that were lost mid-flight. In device mode
    /// it reports the recorded intent (the physical sim keeps only the
    /// decoded value).
    pub fn page_flag_state(&self, ppa: Ppa) -> FlagState {
        self.pap_locked[ppa.block.0 as usize][ppa.page.0 as usize]
    }

    /// Margin-read probe of a block's SSL cells (see
    /// [`EvanescoChip::page_flag_state`]).
    pub fn block_flag_state(&self, block: BlockId) -> FlagState {
        self.bap_locked[block.0 as usize]
    }

    /// Whether a read of this page would be blocked (bAP checked first,
    /// then pAP — Figure 7b).
    pub fn is_access_blocked(&self, ppa: Ppa) -> bool {
        self.is_block_locked(ppa.block) || self.is_page_locked(ppa)
    }

    /// Gated page read (Figure 7): returns all-zero for locked pages.
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn read(&mut self, ppa: Ppa) -> Result<SecureReadOutput, EvanescoError> {
        let out = self.inner.read(ppa)?;
        let result = if self.is_access_blocked(ppa) {
            ReadResult::Locked
        } else {
            ReadResult::Content(out.content)
        };
        // Read-retry ladder: only a data read runs ECC decode; locked and
        // erased/torn reads never declare UNC. Terminal UNC is recovered by
        // soft-decision decoding (the host still gets the data), counted as
        // a reliability event.
        let rel = if matches!(&result, ReadResult::Content(PageContent::Data(_))) {
            self.fault.read_outcome(ppa.block.0, ppa.page.0)
        } else {
            ReadReliability::default()
        };
        self.last_read_retries = rel.retries;
        Ok(SecureReadOutput { result, latency: out.latency })
    }

    /// Programs a page (passes through to the underlying chip; programming
    /// uses SBPI to inhibit the flag cells, so pAP flags stay enabled).
    ///
    /// Under the fault model a program can fail status: the page is
    /// consumed and holds an unreliable partial program (torn), and
    /// [`EvanescoChip::status`] reports `Failed` — the FTL must remap the
    /// write to a fresh page.
    ///
    /// # Errors
    ///
    /// Propagates the underlying chip's program-rule violations.
    pub fn program(&mut self, ppa: Ppa, data: PageData) -> Result<Nanos, EvanescoError> {
        if self.fault.program_fails(ppa.block.0, ppa.page.0) {
            self.inner.interrupt_program(ppa, data, 0.8)?;
            self.status = OpStatus::Failed;
            return Ok(self.timing().t_prog);
        }
        let lat = self.inner.program(ppa, data)?;
        self.status = OpStatus::Ok;
        Ok(lat)
    }

    /// `pLock <ppn>`: disables access to one page by programming its pAP
    /// flag cells (one-shot, low-voltage, SBPI-inhibited).
    ///
    /// Idempotent: locking a locked page is a no-op that still costs
    /// `tpLock`.
    ///
    /// # Errors
    ///
    /// * [`EvanescoError::LockOnUnwrittenPage`] if the page was never
    ///   programmed (an FTL invariant violation);
    /// * address errors from the underlying chip.
    pub fn p_lock(&mut self, ppa: Ppa) -> Result<Nanos, EvanescoError> {
        if !self.inner.page_is_written(ppa)? {
            return Err(EvanescoError::LockOnUnwrittenPage { ppa });
        }
        if self.fault.plock_fails(ppa.block.0, ppa.page.0) {
            self.pap_locked[ppa.block.0 as usize][ppa.page.0 as usize] =
                FlagState::Torn { reads_locked: false };
            self.lock_stats.plocks += 1;
            self.status = OpStatus::Failed;
            return Ok(self.timing().t_plock);
        }
        self.pap_locked[ppa.block.0 as usize][ppa.page.0 as usize] = FlagState::Locked;
        if let Some(sim) = &mut self.device_flags {
            sim.program_page_flag(ppa);
        }
        self.lock_stats.plocks += 1;
        self.status = OpStatus::Ok;
        Ok(self.timing().t_plock)
    }

    /// `bLock <pbn>`: disables access to an entire block by programming its
    /// SSL cells. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`EvanescoError::BadBlock`] for an out-of-range block.
    pub fn b_lock(&mut self, block: BlockId) -> Result<Nanos, EvanescoError> {
        self.check_block(block)?;
        if self.fault.block_lock_fails(block.0) {
            self.bap_locked[block.0 as usize] = FlagState::Torn { reads_locked: false };
            self.lock_stats.blocks += 1;
            self.status = OpStatus::Failed;
            return Ok(self.timing().t_block);
        }
        self.bap_locked[block.0 as usize] = FlagState::Locked;
        if let Some(sim) = &mut self.device_flags {
            sim.program_block_flag(block);
        }
        self.lock_stats.blocks += 1;
        self.status = OpStatus::Ok;
        Ok(self.timing().t_block)
    }

    /// Fault injection: makes the next `n` lock commands (`pLock` or
    /// `bLock`) fail program-verify, leaving their flag cells torn. This is
    /// the same injection path the probabilistic fault model uses (see
    /// [`crate::fault::FaultModel::force_lock_failures`]).
    pub fn inject_lock_verify_failures(&mut self, n: u32) {
        self.fault.force_lock_failures(n);
    }

    /// Erases a block: destroys all data **and only then** re-enables the
    /// pAP/bAP flags — the single path by which a lock disappears.
    ///
    /// Under the fault model an erase can fail status: nothing is erased
    /// (data *and* lock flags keep their state) and
    /// [`EvanescoChip::status`] reports `Failed` — the FTL retries and
    /// eventually retires the block.
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn erase(&mut self, block: BlockId, now: Nanos) -> Result<Nanos, EvanescoError> {
        self.check_block(block)?;
        if self.fault.erase_fails(block.0) {
            self.status = OpStatus::Failed;
            return Ok(self.timing().t_bers);
        }
        let lat = self.inner.erase(block, now)?;
        for f in &mut self.pap_locked[block.0 as usize] {
            *f = FlagState::Clean;
        }
        self.bap_locked[block.0 as usize] = FlagState::Clean;
        if let Some(sim) = &mut self.device_flags {
            sim.erase_block(block);
        }
        self.status = OpStatus::Ok;
        Ok(lat)
    }

    /// Marks a block grown-bad by programming a retirement sentinel into
    /// its spare area (the factory bad-block-marking idiom: programming
    /// bits toward `0` works even on a block whose erase fails). The mark
    /// is never cleared — firmware never erases a retired block — so it
    /// survives power loss and is rebuilt by the recovery scan.
    ///
    /// # Errors
    ///
    /// Returns [`EvanescoError::BadBlock`] for an out-of-range block.
    pub fn mark_bad_block(&mut self, block: BlockId) -> Result<Nanos, EvanescoError> {
        self.check_block(block)?;
        self.bad_mark[block.0 as usize] = true;
        self.status = OpStatus::Ok;
        Ok(self.timing().t_prog)
    }

    /// Whether the block carries the grown-bad retirement mark.
    pub fn is_marked_bad(&self, block: BlockId) -> bool {
        self.bad_mark[block.0 as usize]
    }

    /// Models a `pLock` interrupted after `fraction` of `tpLock`: each of
    /// the k pAP cells independently got programmed with probability
    /// `fraction` (deterministic draws keyed on `salt`). The result is
    /// `Clean` (no cell fired), `Locked` (all fired), or `Torn` with
    /// whatever the majority circuit decodes from the partial set.
    ///
    /// # Errors
    ///
    /// Same preconditions as [`EvanescoChip::p_lock`].
    pub fn interrupt_p_lock(
        &mut self,
        ppa: Ppa,
        fraction: f64,
        salt: u64,
    ) -> Result<(), EvanescoError> {
        if !self.inner.page_is_written(ppa)? {
            return Err(EvanescoError::LockOnUnwrittenPage { ppa });
        }
        let slot = &mut self.pap_locked[ppa.block.0 as usize][ppa.page.0 as usize];
        if *slot == FlagState::Locked {
            return Ok(()); // re-lock of completed cells: nothing to degrade
        }
        let k = self.pap_config.k;
        let fired = (0..k)
            .filter(|&c| {
                unit_draw(salt, u64::from(ppa.block.0), u64::from(ppa.page.0), c as u64) < fraction
            })
            .count();
        *slot = if fired == 0 {
            FlagState::Clean
        } else if fired == k {
            FlagState::Locked
        } else {
            FlagState::Torn { reads_locked: 2 * fired > k }
        };
        Ok(())
    }

    /// Models a `bLock` interrupted after `fraction` of `tbLock` (see
    /// [`EvanescoChip::interrupt_p_lock`]; the SSL is modeled as a small
    /// group of cells).
    ///
    /// # Errors
    ///
    /// Returns [`EvanescoError::BadBlock`] for an out-of-range block.
    pub fn interrupt_b_lock(
        &mut self,
        block: BlockId,
        fraction: f64,
        salt: u64,
    ) -> Result<(), EvanescoError> {
        self.check_block(block)?;
        let slot = &mut self.bap_locked[block.0 as usize];
        if *slot == FlagState::Locked {
            return Ok(());
        }
        let fired = (0..SSL_CELLS)
            .filter(|&c| unit_draw(salt, u64::from(block.0), 0x55AA, u64::from(c)) < fraction)
            .count() as u32;
        *slot = if fired == 0 {
            FlagState::Clean
        } else if fired == SSL_CELLS {
            FlagState::Locked
        } else {
            FlagState::Torn { reads_locked: 2 * fired > SSL_CELLS }
        };
        Ok(())
    }

    /// Models an erase interrupted after `fraction` of `tBERS`. Data decays
    /// per [`evanesco_nand::chip::Chip::interrupt_erase`]; the low-voltage
    /// flag cells decay *faster* (fully cleared past
    /// [`TORN_ERASE_FLAG_WIPE_FRACTION`]), so a torn erase can drop a lock
    /// while the locked data is still recoverable. The block keeps its
    /// torn-erase signature, which recovery uses to finish the erase before
    /// any host read is served.
    ///
    /// # Errors
    ///
    /// Returns a bad-block error for an out-of-range block.
    pub fn interrupt_erase(
        &mut self,
        block: BlockId,
        fraction: f64,
        salt: u64,
    ) -> Result<(), EvanescoError> {
        self.check_block(block)?;
        self.inner.interrupt_erase(block, fraction)?;
        let progress = fraction / TORN_ERASE_FLAG_WIPE_FRACTION;
        let k = self.pap_config.k;
        let bi = block.0 as usize;
        for (page, slot) in self.pap_locked[bi].iter_mut().enumerate() {
            if *slot == FlagState::Clean {
                continue;
            }
            let surviving = (0..k)
                .filter(|&c| {
                    unit_draw(salt, u64::from(block.0), page as u64, c as u64 | 1 << 32) >= progress
                })
                .count();
            *slot = if surviving == 0 {
                FlagState::Clean
            } else {
                // Even surviving cells lost margin: always torn.
                FlagState::Torn { reads_locked: 2 * surviving > k }
            };
        }
        let bslot = &mut self.bap_locked[bi];
        if *bslot != FlagState::Clean {
            let surviving = (0..SSL_CELLS)
                .filter(|&c| {
                    unit_draw(salt, u64::from(block.0), 0xB10C, u64::from(c) | 1 << 33) >= progress
                })
                .count() as u32;
            *bslot = if surviving == 0 {
                FlagState::Clean
            } else {
                FlagState::Torn { reads_locked: 2 * surviving > SSL_CELLS }
            };
        }
        if let Some(sim) = &mut self.device_flags {
            if progress >= 1.0 {
                sim.erase_block(block);
            }
        }
        Ok(())
    }

    /// Models a program interrupted after `fraction` of `tPROG`
    /// (passthrough to [`evanesco_nand::chip::Chip::interrupt_program`];
    /// SBPI keeps the flag cells inhibited, so they are unaffected).
    ///
    /// # Errors
    ///
    /// Same preconditions as [`EvanescoChip::program`].
    pub fn interrupt_program(
        &mut self,
        ppa: Ppa,
        data: PageData,
        fraction: f64,
    ) -> Result<(), EvanescoError> {
        Ok(self.inner.interrupt_program(ppa, data, fraction)?)
    }

    /// Models a scrub interrupted after `fraction` of `tscrub`
    /// (passthrough to [`evanesco_nand::chip::Chip::interrupt_scrub`]).
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn interrupt_scrub(&mut self, ppa: Ppa, fraction: f64) -> Result<(), EvanescoError> {
        Ok(self.inner.interrupt_scrub(ppa, fraction)?)
    }

    /// Whether a page has been written since the last erase (metadata
    /// probe; includes torn and destroyed pages).
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn page_is_written(&self, ppa: Ppa) -> Result<bool, EvanescoError> {
        Ok(self.inner.page_is_written(ppa)?)
    }

    /// Whether a page holds a torn (interrupted) program.
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn page_is_torn(&self, ppa: Ppa) -> Result<bool, EvanescoError> {
        Ok(self.inner.page_is_torn(ppa)?)
    }

    /// Whether the last erase of `block` was interrupted (power-up
    /// blank-check signature).
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn block_torn_erase(&self, block: BlockId) -> Result<bool, EvanescoError> {
        Ok(self.inner.block_torn_erase(block)?)
    }

    /// Destroys a page in place (scrubbing; used by the scrSSD baseline,
    /// which does not rely on locks).
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn destroy_page(&mut self, ppa: Ppa) -> Result<Nanos, EvanescoError> {
        Ok(self.inner.destroy_page(ppa)?)
    }

    /// Erase count of a block.
    pub fn erase_count(&self, block: BlockId) -> u64 {
        self.inner.erase_count(block)
    }

    /// Time of the last erase of `block`, if it was ever erased.
    pub fn last_erase_at(&self, block: BlockId) -> Option<Nanos> {
        self.inner.last_erase_at(block)
    }

    /// Next in-order programmable page index of a block.
    pub fn next_program_index(&self, block: BlockId) -> u32 {
        self.inner.next_program_index(block)
    }

    /// Interface-level dump of a block, **as an attacker sees it**: every
    /// page is read through the gated path, so locked pages appear as
    /// all-zero ([`ReadResult::Locked`]).
    pub fn interface_dump_block(&mut self, block: BlockId) -> Vec<ReadResult> {
        let pages = self.geometry().pages_per_block();
        (0..pages)
            .map(|p| {
                self.read(Ppa { block, page: evanesco_nand::geometry::PageId(p) })
                    .expect("in-range page")
                    .result
            })
            .collect()
    }
}

fn encode_flag_state(f: FlagState) -> u8 {
    match f {
        FlagState::Clean => 0,
        FlagState::Torn { reads_locked: false } => 1,
        FlagState::Torn { reads_locked: true } => 2,
        FlagState::Locked => 3,
    }
}

fn decode_flag_state(
    d: &mut evanesco_nand::snapshot::Dec<'_>,
) -> Result<FlagState, evanesco_nand::snapshot::SnapshotError> {
    Ok(match d.u8()? {
        0 => FlagState::Clean,
        1 => FlagState::Torn { reads_locked: false },
        2 => FlagState::Torn { reads_locked: true },
        3 => FlagState::Locked,
        b => {
            return Err(evanesco_nand::snapshot::SnapshotError::Corrupt(format!(
                "unknown flag state {b:#04x}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::PageId;
    use evanesco_nand::NandError;

    fn chip() -> EvanescoChip {
        EvanescoChip::new(Geometry::small_tlc())
    }

    fn fill(chip: &mut EvanescoChip, block: u32, pages: u32) {
        for p in 0..pages {
            chip.program(Ppa::new(block, p), PageData::tagged(1000 + p as u64)).unwrap();
        }
    }

    #[test]
    fn plock_blocks_page_reads_only() {
        let mut c = chip();
        fill(&mut c, 0, 3);
        c.p_lock(Ppa::new(0, 1)).unwrap();
        assert_eq!(c.read(Ppa::new(0, 1)).unwrap().result, ReadResult::Locked);
        // Sibling pages still readable (Figure 7a).
        assert_eq!(c.read(Ppa::new(0, 0)).unwrap().result.data().unwrap().tag(), 1000);
        assert_eq!(c.read(Ppa::new(0, 2)).unwrap().result.data().unwrap().tag(), 1002);
    }

    #[test]
    fn block_blocks_all_pages_regardless_of_pap() {
        let mut c = chip();
        fill(&mut c, 0, 4);
        c.b_lock(BlockId(0)).unwrap();
        for p in 0..4 {
            assert_eq!(c.read(Ppa::new(0, p)).unwrap().result, ReadResult::Locked);
        }
        // Other blocks unaffected.
        fill(&mut c, 1, 1);
        assert!(c.read(Ppa::new(1, 0)).unwrap().result.data().is_some());
    }

    #[test]
    fn locks_survive_until_erase_and_only_erase_unlocks() {
        let mut c = chip();
        fill(&mut c, 0, 2);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        c.b_lock(BlockId(0)).unwrap();
        assert!(c.is_page_locked(Ppa::new(0, 0)));
        assert!(c.is_block_locked(BlockId(0)));
        c.erase(BlockId(0), Nanos::ZERO).unwrap();
        assert!(!c.is_page_locked(Ppa::new(0, 0)));
        assert!(!c.is_block_locked(BlockId(0)));
        // After erase+unlock the data is gone: a fresh read sees erased.
        let out = c.read(Ppa::new(0, 0)).unwrap();
        assert_eq!(out.result, ReadResult::Content(PageContent::Erased));
    }

    #[test]
    fn plock_rejects_unwritten_pages() {
        let mut c = chip();
        let err = c.p_lock(Ppa::new(0, 0)).unwrap_err();
        assert!(matches!(err, EvanescoError::LockOnUnwrittenPage { .. }));
    }

    #[test]
    fn lock_latencies_match_design() {
        let mut c = chip();
        fill(&mut c, 0, 1);
        assert_eq!(c.p_lock(Ppa::new(0, 0)).unwrap(), Nanos::from_micros(100));
        assert_eq!(c.b_lock(BlockId(0)).unwrap(), Nanos::from_micros(300));
    }

    #[test]
    fn lock_stats_count_commands() {
        let mut c = chip();
        fill(&mut c, 0, 2);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        c.p_lock(Ppa::new(0, 1)).unwrap();
        c.b_lock(BlockId(0)).unwrap();
        assert_eq!(c.lock_stats(), LockStats { plocks: 2, blocks: 1 });
    }

    #[test]
    fn interface_dump_hides_locked_pages() {
        let mut c = chip();
        fill(&mut c, 0, 3);
        c.p_lock(Ppa::new(0, 1)).unwrap();
        let dump = c.interface_dump_block(BlockId(0));
        assert!(dump[0].data().is_some());
        assert_eq!(dump[1], ReadResult::Locked);
        assert!(dump[2].data().is_some());
    }

    #[test]
    fn locked_page_can_still_be_block_locked_and_erased() {
        let mut c = chip();
        fill(&mut c, 0, 2);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        c.p_lock(Ppa::new(0, 0)).unwrap(); // idempotent
        c.b_lock(BlockId(0)).unwrap();
        c.b_lock(BlockId(0)).unwrap(); // idempotent
        c.erase(BlockId(0), Nanos::ZERO).unwrap();
        assert!(!c.is_access_blocked(Ppa::new(0, 0)));
    }

    #[test]
    fn bad_addresses_propagate() {
        let mut c = chip();
        assert!(matches!(
            c.read(Ppa::new(9999, 0)),
            Err(EvanescoError::Nand(NandError::BadAddress { .. }))
        ));
        assert!(matches!(c.b_lock(BlockId(9999)), Err(EvanescoError::BadBlock { .. })));
    }

    #[test]
    fn program_rules_still_enforced_through_wrapper() {
        let mut c = chip();
        fill(&mut c, 0, 1);
        let err = c.program(Ppa::new(0, 0), PageData::tagged(5)).unwrap_err();
        assert!(matches!(err, EvanescoError::Nand(NandError::ProgramOnProgrammedPage { .. })));
    }

    #[test]
    fn clone_preserves_locks_like_desoldering() {
        // Flags live in flash cells: copying the chip (de-soldering and
        // remounting in a reader) does not clear them.
        let mut c = chip();
        fill(&mut c, 0, 1);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        let mut stolen = c.clone();
        assert_eq!(stolen.read(Ppa::new(0, 0)).unwrap().result, ReadResult::Locked);
    }

    #[test]
    fn page_id_helper_reads() {
        let mut c = chip();
        fill(&mut c, 2, 1);
        let ppa = Ppa { block: BlockId(2), page: PageId(0) };
        assert!(c.read(ppa).unwrap().result.data().is_some());
    }

    #[test]
    fn interrupted_plock_spans_clean_to_locked() {
        let mut c = chip();
        fill(&mut c, 0, 3);
        c.interrupt_p_lock(Ppa::new(0, 0), 0.0, 1).unwrap();
        assert_eq!(c.page_flag_state(Ppa::new(0, 0)), FlagState::Clean);
        c.interrupt_p_lock(Ppa::new(0, 1), 1.0, 1).unwrap();
        assert_eq!(c.page_flag_state(Ppa::new(0, 1)), FlagState::Locked);
        // A mid-flight cut leaves torn cells; a margin read sees it, and
        // re-issuing the lock completes it.
        c.interrupt_p_lock(Ppa::new(0, 2), 0.5, 1).unwrap();
        assert!(c.page_flag_state(Ppa::new(0, 2)).is_torn());
        c.p_lock(Ppa::new(0, 2)).unwrap();
        assert_eq!(c.page_flag_state(Ppa::new(0, 2)), FlagState::Locked);
        assert_eq!(c.read(Ppa::new(0, 2)).unwrap().result, ReadResult::Locked);
    }

    #[test]
    fn interrupted_erase_wipes_flags_before_data() {
        // The dangerous window: flags cleared, data intact — but the block
        // carries the torn-erase signature so recovery can close it.
        let mut c = chip();
        fill(&mut c, 0, 2);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        c.b_lock(BlockId(0)).unwrap();
        let f = (TORN_ERASE_FLAG_WIPE_FRACTION
            + evanesco_nand::chip::TORN_ERASE_DATA_WIPE_FRACTION)
            / 2.0;
        c.interrupt_erase(BlockId(0), f, 42).unwrap();
        assert_eq!(c.page_flag_state(Ppa::new(0, 0)), FlagState::Clean);
        assert_eq!(c.block_flag_state(BlockId(0)), FlagState::Clean);
        assert!(c.block_torn_erase(BlockId(0)).unwrap());
        // Data survived the partial erase and is now unprotected...
        assert!(c.read(Ppa::new(0, 0)).unwrap().result.data().is_some());
        // ...until the erase is finished.
        c.erase(BlockId(0), Nanos::ZERO).unwrap();
        assert!(!c.block_torn_erase(BlockId(0)).unwrap());
        assert!(c.read(Ppa::new(0, 0)).unwrap().result.data().is_none());
    }

    #[test]
    fn injected_verify_failures_leave_torn_flags() {
        let mut c = chip();
        fill(&mut c, 0, 2);
        c.inject_lock_verify_failures(1);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        assert_eq!(c.page_flag_state(Ppa::new(0, 0)), FlagState::Torn { reads_locked: false });
        assert!(c.read(Ppa::new(0, 0)).unwrap().result.data().is_some());
        // The injection is consumed: the retry completes the lock.
        c.p_lock(Ppa::new(0, 0)).unwrap();
        assert_eq!(c.page_flag_state(Ppa::new(0, 0)), FlagState::Locked);
    }

    #[test]
    fn status_register_reports_lock_verify_failures() {
        let mut c = chip();
        fill(&mut c, 0, 1);
        c.inject_lock_verify_failures(1);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        assert_eq!(c.status(), crate::fault::OpStatus::Failed);
        assert_eq!(c.fault_stats().plock_failures, 1);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        assert_eq!(c.status(), crate::fault::OpStatus::Ok);
    }

    #[test]
    fn failed_erase_leaves_data_and_locks_intact() {
        let mut c = chip();
        c.enable_faults(
            crate::fault::FaultConfig { erase_fail: 1.0, ..crate::fault::FaultConfig::none() },
            0,
        );
        fill(&mut c, 0, 2);
        c.p_lock(Ppa::new(0, 1)).unwrap();
        c.erase(BlockId(0), Nanos::ZERO).unwrap();
        assert_eq!(c.status(), crate::fault::OpStatus::Failed);
        assert_eq!(c.fault_stats().erase_failures, 1);
        // Nothing was destroyed or unlocked.
        assert!(c.read(Ppa::new(0, 0)).unwrap().result.data().is_some());
        assert_eq!(c.read(Ppa::new(0, 1)).unwrap().result, ReadResult::Locked);
    }

    #[test]
    fn failed_program_consumes_the_page_as_torn() {
        let mut c = chip();
        c.enable_faults(
            crate::fault::FaultConfig { program_fail: 1.0, ..crate::fault::FaultConfig::none() },
            0,
        );
        c.program(Ppa::new(0, 0), PageData::tagged(7)).unwrap();
        assert_eq!(c.status(), crate::fault::OpStatus::Failed);
        assert!(c.page_is_written(Ppa::new(0, 0)).unwrap());
        assert!(c.page_is_torn(Ppa::new(0, 0)).unwrap());
        assert_eq!(c.next_program_index(BlockId(0)), 1);
    }

    #[test]
    fn bad_block_mark_survives_erase_attempts() {
        let mut c = chip();
        assert!(!c.is_marked_bad(BlockId(3)));
        c.mark_bad_block(BlockId(3)).unwrap();
        assert!(c.is_marked_bad(BlockId(3)));
        c.erase(BlockId(3), Nanos::ZERO).unwrap();
        assert!(c.is_marked_bad(BlockId(3)), "spare-area mark is never cleared");
        // And like the lock flags, it is flash-resident: cloning (chip
        // de-soldering / power cycling) preserves it.
        assert!(c.clone().is_marked_bad(BlockId(3)));
    }

    #[test]
    fn device_mode_paper_flags_behave_like_behavioral_mode() {
        let mut c = chip();
        c.enable_device_flags(PapConfig::paper(), BapConfig::paper(), 99);
        fill(&mut c, 0, 3);
        c.p_lock(Ppa::new(0, 1)).unwrap();
        assert_eq!(c.read(Ppa::new(0, 1)).unwrap().result, ReadResult::Locked);
        assert!(c.read(Ppa::new(0, 0)).unwrap().result.data().is_some());
        c.age_flags(5.0 * 365.0);
        assert_eq!(c.read(Ppa::new(0, 1)).unwrap().result, ReadResult::Locked);
        assert_eq!(c.flag_leaks(), (0, 0));
        c.erase(BlockId(0), Nanos::ZERO).unwrap();
        assert!(!c.is_page_locked(Ppa::new(0, 1)));
    }

    #[test]
    fn device_mode_weak_flags_leak_data_after_aging() {
        use crate::calibration::DesignPoint;
        let mut c = chip();
        // Figure 9(d)'s weakest candidate (vi) = (Vp2, 200µs).
        c.enable_device_flags(
            PapConfig { k: 9, point: DesignPoint::new(2, 200) },
            BapConfig::paper(),
            7,
        );
        let n = 72;
        fill(&mut c, 0, n);
        for p in 0..n {
            c.p_lock(Ppa::new(0, p)).unwrap();
        }
        c.age_flags(5.0 * 365.0);
        let (page_leaks, _) = c.flag_leaks();
        assert!(page_leaks > 5, "weak flags should leak: {page_leaks}/{n}");
        // And the leak is exploitable: some locked page reads data again.
        let readable =
            (0..n).filter(|&p| c.read(Ppa::new(0, p)).unwrap().result.data().is_some()).count();
        assert_eq!(readable, page_leaks);
    }

    #[test]
    fn snapshot_roundtrip_resumes_device_mode_chip() {
        use evanesco_nand::snapshot::{Dec, Enc};
        let fault_cfg = crate::fault::FaultConfig::storm(0.4, 11);
        let build = || {
            let mut c = chip();
            c.enable_faults(fault_cfg, 3);
            c.enable_device_flags(PapConfig::paper(), BapConfig::paper(), 99);
            c
        };
        let mut live = build();
        fill(&mut live, 0, 6);
        let _ = live.p_lock(Ppa::new(0, 1));
        let _ = live.p_lock(Ppa::new(0, 2));
        let _ = live.b_lock(BlockId(2));
        live.mark_bad_block(BlockId(5)).unwrap();
        live.age_flags(30.0);

        let mut e = Enc::new();
        live.encode_state(&mut e);
        let bytes = e.into_bytes();
        let mut restored = build();
        restored.decode_state(&mut Dec::new(&bytes)).unwrap();

        assert_eq!(restored.lock_stats(), live.lock_stats());
        assert_eq!(restored.fault_stats(), live.fault_stats());
        assert_eq!(restored.status(), live.status());
        assert_eq!(restored.flag_leaks(), live.flag_leaks());
        for p in 0..6 {
            assert_eq!(
                restored.read(Ppa::new(0, p)).unwrap().result,
                live.read(Ppa::new(0, p)).unwrap().result
            );
        }
        assert!(restored.is_marked_bad(BlockId(5)));
        // Continued operation stays in lockstep, including fault draws.
        for p in 0..4 {
            let a = live.p_lock(Ppa::new(1, p));
            let b = restored.p_lock(Ppa::new(1, p));
            assert_eq!(a.is_ok(), b.is_ok());
            assert_eq!(live.status(), restored.status());
        }
        // Re-encoding the restored chip is byte-identical.
        let mut e2 = Enc::new();
        let mut e3 = Enc::new();
        live.encode_state(&mut e2);
        restored.encode_state(&mut e3);
        assert_eq!(e2.into_bytes(), e3.into_bytes());
    }
}

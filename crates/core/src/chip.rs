//! The Evanesco-enhanced NAND chip: `pLock`, `bLock`, and on-chip read
//! gating (paper §5.2, Figure 7).
//!
//! The wrapper holds the behavioral access-permission state (one pAP bit
//! per page, one bAP bit per block — the *decoded* values the majority
//! circuit / SSL sensing would produce) and enforces the access rules:
//!
//! * a read first checks the block's bAP, then the page's pAP; if either is
//!   disabled the chip outputs **all-zero data** and never drives the
//!   data-out pins from the page buffer;
//! * `pLock`/`bLock` set flags; **no API exists to clear them** — only
//!   [`EvanescoChip::erase`] resets flags, and erasing destroys the data;
//! * flags live in flash cells, so they survive power cycles and chip
//!   de-soldering (cloning the chip state preserves them — see
//!   [`crate::threat`]).
//!
//! Device-level reliability of the flags themselves is modeled separately
//! in [`crate::pap`] / [`crate::bap`]; the behavioral layer uses the decoded
//! values, which the design-space exploration guarantees error-free for the
//! selected parameters.

use crate::bap::BapConfig;
use crate::error::EvanescoError;
use crate::pap::PapConfig;
use evanesco_nand::chip::{Chip, PageContent, PageData};
use evanesco_nand::geometry::{BlockId, Geometry, Ppa};
use evanesco_nand::timing::{Nanos, TimingSpec};

/// What an Evanesco-gated read returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadResult {
    /// Access blocked by a pAP or bAP flag: the interface returns data with
    /// all bits set to `0`.
    Locked,
    /// Normal read: the underlying page content.
    Content(PageContent),
}

impl ReadResult {
    /// Programmed data, if the read exposed any.
    pub fn data(&self) -> Option<&PageData> {
        match self {
            ReadResult::Locked => None,
            ReadResult::Content(c) => c.data(),
        }
    }
}

/// Result of a gated read: outcome plus array latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureReadOutput {
    /// The gated outcome.
    pub result: ReadResult,
    /// Array-access latency (a locked read still senses the array and the
    /// flag cells; latency is unchanged).
    pub latency: Nanos,
}

/// Lock-command counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// `pLock` commands executed.
    pub plocks: u64,
    /// `bLock` commands executed.
    pub blocks: u64,
}

/// A NAND chip extended with the Evanesco lock mechanism.
#[derive(Debug, Clone)]
pub struct EvanescoChip {
    inner: Chip,
    /// Decoded pAP flag per page, indexed `[block][page]`; `true` = locked.
    /// In behavioral mode this is the truth; in device mode it records the
    /// FTL's *intent* while the physical cells decide actual gating.
    pap_locked: Vec<Vec<bool>>,
    /// Decoded bAP flag per block; `true` = locked (intent in device mode).
    bap_locked: Vec<bool>,
    pap_config: PapConfig,
    bap_config: BapConfig,
    lock_stats: LockStats,
    /// Optional physical flag-cell simulation (see
    /// [`crate::device_flags`]); when present, read gating consults the
    /// physical cells instead of the decoded intent.
    device_flags: Option<crate::device_flags::FlagDeviceSim>,
}

impl EvanescoChip {
    /// Creates a chip with paper timing and the paper's flag configurations.
    pub fn new(geom: Geometry) -> Self {
        Self::with_timing(geom, TimingSpec::paper())
    }

    /// Creates a chip with explicit timing.
    pub fn with_timing(geom: Geometry, timing: TimingSpec) -> Self {
        let pages = geom.pages_per_block() as usize;
        EvanescoChip {
            inner: Chip::with_timing(geom, timing),
            pap_locked: vec![vec![false; pages]; geom.blocks as usize],
            bap_locked: vec![false; geom.blocks as usize],
            pap_config: PapConfig::paper(),
            bap_config: BapConfig::paper(),
            lock_stats: LockStats::default(),
            device_flags: None,
        }
    }

    /// Switches the chip to **device mode**: locks program physical flag
    /// cells under the given configurations, and read gating decodes those
    /// cells. Use [`EvanescoChip::age_flags`] to apply retention.
    pub fn enable_device_flags(&mut self, pap: PapConfig, bap: BapConfig, seed: u64) {
        self.pap_config = pap;
        self.bap_config = bap;
        self.device_flags = Some(crate::device_flags::FlagDeviceSim::new(pap, bap, seed));
    }

    /// Applies `days` of retention to the physical flags (device mode
    /// only; a no-op in behavioral mode, where the DSE-validated
    /// parameters guarantee error-free flags for the rated lifetime).
    pub fn age_flags(&mut self, days: f64) {
        if let Some(sim) = &mut self.device_flags {
            sim.age(days);
        }
    }

    /// Locked pages whose physical flag no longer decodes as disabled —
    /// sanitization holes (device mode only; empty in behavioral mode).
    pub fn flag_leaks(&self) -> (usize, usize) {
        match &self.device_flags {
            Some(sim) => (sim.leaked_page_flags(), sim.leaked_block_flags()),
            None => (0, 0),
        }
    }

    /// The chip geometry.
    pub fn geometry(&self) -> &Geometry {
        self.inner.geometry()
    }

    /// The latency table.
    pub fn timing(&self) -> &TimingSpec {
        self.inner.timing()
    }

    /// The underlying behavioral chip's operation counters.
    pub fn nand_stats(&self) -> evanesco_nand::chip::ChipStats {
        self.inner.stats()
    }

    /// Lock-command counters.
    pub fn lock_stats(&self) -> LockStats {
        self.lock_stats
    }

    /// The pAP flag configuration.
    pub fn pap_config(&self) -> PapConfig {
        self.pap_config
    }

    /// The bAP flag configuration.
    pub fn bap_config(&self) -> BapConfig {
        self.bap_config
    }

    fn check_block(&self, block: BlockId) -> Result<(), EvanescoError> {
        if block.0 < self.geometry().blocks {
            Ok(())
        } else {
            Err(EvanescoError::BadBlock { block })
        }
    }

    /// Whether a page is individually locked (pAP disabled). In device
    /// mode this decodes the physical flag cells.
    pub fn is_page_locked(&self, ppa: Ppa) -> bool {
        match &self.device_flags {
            Some(sim) => sim.page_reads_locked(ppa),
            None => self.pap_locked[ppa.block.0 as usize][ppa.page.0 as usize],
        }
    }

    /// Whether a whole block is locked (bAP disabled). In device mode this
    /// senses the physical SSL.
    pub fn is_block_locked(&self, block: BlockId) -> bool {
        match &self.device_flags {
            Some(sim) => sim.block_reads_locked(block),
            None => self.bap_locked[block.0 as usize],
        }
    }

    /// Whether a read of this page would be blocked (bAP checked first,
    /// then pAP — Figure 7b).
    pub fn is_access_blocked(&self, ppa: Ppa) -> bool {
        self.is_block_locked(ppa.block) || self.is_page_locked(ppa)
    }

    /// Gated page read (Figure 7): returns all-zero for locked pages.
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn read(&mut self, ppa: Ppa) -> Result<SecureReadOutput, EvanescoError> {
        let out = self.inner.read(ppa)?;
        let result = if self.is_access_blocked(ppa) {
            ReadResult::Locked
        } else {
            ReadResult::Content(out.content)
        };
        Ok(SecureReadOutput { result, latency: out.latency })
    }

    /// Programs a page (passes through to the underlying chip; programming
    /// uses SBPI to inhibit the flag cells, so pAP flags stay enabled).
    ///
    /// # Errors
    ///
    /// Propagates the underlying chip's program-rule violations.
    pub fn program(&mut self, ppa: Ppa, data: PageData) -> Result<Nanos, EvanescoError> {
        Ok(self.inner.program(ppa, data)?)
    }

    /// `pLock <ppn>`: disables access to one page by programming its pAP
    /// flag cells (one-shot, low-voltage, SBPI-inhibited).
    ///
    /// Idempotent: locking a locked page is a no-op that still costs
    /// `tpLock`.
    ///
    /// # Errors
    ///
    /// * [`EvanescoError::LockOnUnwrittenPage`] if the page was never
    ///   programmed (an FTL invariant violation);
    /// * address errors from the underlying chip.
    pub fn p_lock(&mut self, ppa: Ppa) -> Result<Nanos, EvanescoError> {
        if !self.inner.page_is_written(ppa)? {
            return Err(EvanescoError::LockOnUnwrittenPage { ppa });
        }
        self.pap_locked[ppa.block.0 as usize][ppa.page.0 as usize] = true;
        if let Some(sim) = &mut self.device_flags {
            sim.program_page_flag(ppa);
        }
        self.lock_stats.plocks += 1;
        Ok(self.timing().t_plock)
    }

    /// `bLock <pbn>`: disables access to an entire block by programming its
    /// SSL cells. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`EvanescoError::BadBlock`] for an out-of-range block.
    pub fn b_lock(&mut self, block: BlockId) -> Result<Nanos, EvanescoError> {
        self.check_block(block)?;
        self.bap_locked[block.0 as usize] = true;
        if let Some(sim) = &mut self.device_flags {
            sim.program_block_flag(block);
        }
        self.lock_stats.blocks += 1;
        Ok(self.timing().t_block)
    }

    /// Erases a block: destroys all data **and only then** re-enables the
    /// pAP/bAP flags — the single path by which a lock disappears.
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn erase(&mut self, block: BlockId, now: Nanos) -> Result<Nanos, EvanescoError> {
        let lat = self.inner.erase(block, now)?;
        for f in &mut self.pap_locked[block.0 as usize] {
            *f = false;
        }
        self.bap_locked[block.0 as usize] = false;
        if let Some(sim) = &mut self.device_flags {
            sim.erase_block(block);
        }
        Ok(lat)
    }

    /// Destroys a page in place (scrubbing; used by the scrSSD baseline,
    /// which does not rely on locks).
    ///
    /// # Errors
    ///
    /// Propagates address errors from the underlying chip.
    pub fn destroy_page(&mut self, ppa: Ppa) -> Result<Nanos, EvanescoError> {
        Ok(self.inner.destroy_page(ppa)?)
    }

    /// Erase count of a block.
    pub fn erase_count(&self, block: BlockId) -> u64 {
        self.inner.erase_count(block)
    }

    /// Time of the last erase of `block`, if it was ever erased.
    pub fn last_erase_at(&self, block: BlockId) -> Option<Nanos> {
        self.inner.last_erase_at(block)
    }

    /// Next in-order programmable page index of a block.
    pub fn next_program_index(&self, block: BlockId) -> u32 {
        self.inner.next_program_index(block)
    }

    /// Interface-level dump of a block, **as an attacker sees it**: every
    /// page is read through the gated path, so locked pages appear as
    /// all-zero ([`ReadResult::Locked`]).
    pub fn interface_dump_block(&mut self, block: BlockId) -> Vec<ReadResult> {
        let pages = self.geometry().pages_per_block();
        (0..pages)
            .map(|p| {
                self.read(Ppa { block, page: evanesco_nand::geometry::PageId(p) })
                    .expect("in-range page")
                    .result
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::PageId;
    use evanesco_nand::NandError;

    fn chip() -> EvanescoChip {
        EvanescoChip::new(Geometry::small_tlc())
    }

    fn fill(chip: &mut EvanescoChip, block: u32, pages: u32) {
        for p in 0..pages {
            chip.program(Ppa::new(block, p), PageData::tagged(1000 + p as u64)).unwrap();
        }
    }

    #[test]
    fn plock_blocks_page_reads_only() {
        let mut c = chip();
        fill(&mut c, 0, 3);
        c.p_lock(Ppa::new(0, 1)).unwrap();
        assert_eq!(c.read(Ppa::new(0, 1)).unwrap().result, ReadResult::Locked);
        // Sibling pages still readable (Figure 7a).
        assert_eq!(
            c.read(Ppa::new(0, 0)).unwrap().result.data().unwrap().tag(),
            1000
        );
        assert_eq!(
            c.read(Ppa::new(0, 2)).unwrap().result.data().unwrap().tag(),
            1002
        );
    }

    #[test]
    fn block_blocks_all_pages_regardless_of_pap() {
        let mut c = chip();
        fill(&mut c, 0, 4);
        c.b_lock(BlockId(0)).unwrap();
        for p in 0..4 {
            assert_eq!(c.read(Ppa::new(0, p)).unwrap().result, ReadResult::Locked);
        }
        // Other blocks unaffected.
        fill(&mut c, 1, 1);
        assert!(c.read(Ppa::new(1, 0)).unwrap().result.data().is_some());
    }

    #[test]
    fn locks_survive_until_erase_and_only_erase_unlocks() {
        let mut c = chip();
        fill(&mut c, 0, 2);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        c.b_lock(BlockId(0)).unwrap();
        assert!(c.is_page_locked(Ppa::new(0, 0)));
        assert!(c.is_block_locked(BlockId(0)));
        c.erase(BlockId(0), Nanos::ZERO).unwrap();
        assert!(!c.is_page_locked(Ppa::new(0, 0)));
        assert!(!c.is_block_locked(BlockId(0)));
        // After erase+unlock the data is gone: a fresh read sees erased.
        let out = c.read(Ppa::new(0, 0)).unwrap();
        assert_eq!(out.result, ReadResult::Content(PageContent::Erased));
    }

    #[test]
    fn plock_rejects_unwritten_pages() {
        let mut c = chip();
        let err = c.p_lock(Ppa::new(0, 0)).unwrap_err();
        assert!(matches!(err, EvanescoError::LockOnUnwrittenPage { .. }));
    }

    #[test]
    fn lock_latencies_match_design() {
        let mut c = chip();
        fill(&mut c, 0, 1);
        assert_eq!(c.p_lock(Ppa::new(0, 0)).unwrap(), Nanos::from_micros(100));
        assert_eq!(c.b_lock(BlockId(0)).unwrap(), Nanos::from_micros(300));
    }

    #[test]
    fn lock_stats_count_commands() {
        let mut c = chip();
        fill(&mut c, 0, 2);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        c.p_lock(Ppa::new(0, 1)).unwrap();
        c.b_lock(BlockId(0)).unwrap();
        assert_eq!(c.lock_stats(), LockStats { plocks: 2, blocks: 1 });
    }

    #[test]
    fn interface_dump_hides_locked_pages() {
        let mut c = chip();
        fill(&mut c, 0, 3);
        c.p_lock(Ppa::new(0, 1)).unwrap();
        let dump = c.interface_dump_block(BlockId(0));
        assert!(dump[0].data().is_some());
        assert_eq!(dump[1], ReadResult::Locked);
        assert!(dump[2].data().is_some());
    }

    #[test]
    fn locked_page_can_still_be_block_locked_and_erased() {
        let mut c = chip();
        fill(&mut c, 0, 2);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        c.p_lock(Ppa::new(0, 0)).unwrap(); // idempotent
        c.b_lock(BlockId(0)).unwrap();
        c.b_lock(BlockId(0)).unwrap(); // idempotent
        c.erase(BlockId(0), Nanos::ZERO).unwrap();
        assert!(!c.is_access_blocked(Ppa::new(0, 0)));
    }

    #[test]
    fn bad_addresses_propagate() {
        let mut c = chip();
        assert!(matches!(
            c.read(Ppa::new(9999, 0)),
            Err(EvanescoError::Nand(NandError::BadAddress { .. }))
        ));
        assert!(matches!(c.b_lock(BlockId(9999)), Err(EvanescoError::BadBlock { .. })));
    }

    #[test]
    fn program_rules_still_enforced_through_wrapper() {
        let mut c = chip();
        fill(&mut c, 0, 1);
        let err = c.program(Ppa::new(0, 0), PageData::tagged(5)).unwrap_err();
        assert!(matches!(
            err,
            EvanescoError::Nand(NandError::ProgramOnProgrammedPage { .. })
        ));
    }

    #[test]
    fn clone_preserves_locks_like_desoldering() {
        // Flags live in flash cells: copying the chip (de-soldering and
        // remounting in a reader) does not clear them.
        let mut c = chip();
        fill(&mut c, 0, 1);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        let mut stolen = c.clone();
        assert_eq!(stolen.read(Ppa::new(0, 0)).unwrap().result, ReadResult::Locked);
    }

    #[test]
    fn page_id_helper_reads() {
        let mut c = chip();
        fill(&mut c, 2, 1);
        let ppa = Ppa { block: BlockId(2), page: PageId(0) };
        assert!(c.read(ppa).unwrap().result.data().is_some());
    }

    #[test]
    fn device_mode_paper_flags_behave_like_behavioral_mode() {
        let mut c = chip();
        c.enable_device_flags(PapConfig::paper(), BapConfig::paper(), 99);
        fill(&mut c, 0, 3);
        c.p_lock(Ppa::new(0, 1)).unwrap();
        assert_eq!(c.read(Ppa::new(0, 1)).unwrap().result, ReadResult::Locked);
        assert!(c.read(Ppa::new(0, 0)).unwrap().result.data().is_some());
        c.age_flags(5.0 * 365.0);
        assert_eq!(c.read(Ppa::new(0, 1)).unwrap().result, ReadResult::Locked);
        assert_eq!(c.flag_leaks(), (0, 0));
        c.erase(BlockId(0), Nanos::ZERO).unwrap();
        assert!(!c.is_page_locked(Ppa::new(0, 1)));
    }

    #[test]
    fn device_mode_weak_flags_leak_data_after_aging() {
        use crate::calibration::DesignPoint;
        let mut c = chip();
        // Figure 9(d)'s weakest candidate (vi) = (Vp2, 200µs).
        c.enable_device_flags(
            PapConfig { k: 9, point: DesignPoint::new(2, 200) },
            BapConfig::paper(),
            7,
        );
        let n = 72;
        fill(&mut c, 0, n);
        for p in 0..n {
            c.p_lock(Ppa::new(0, p)).unwrap();
        }
        c.age_flags(5.0 * 365.0);
        let (page_leaks, _) = c.flag_leaks();
        assert!(page_leaks > 5, "weak flags should leak: {page_leaks}/{n}");
        // And the leak is exploitable: some locked page reads data again.
        let readable = (0..n)
            .filter(|&p| c.read(Ppa::new(0, p)).unwrap().result.data().is_some())
            .count();
        assert_eq!(readable, page_leaks);
    }
}

//! Error types for the Evanesco layer.

use evanesco_nand::geometry::{BlockId, Ppa};
use evanesco_nand::NandError;
use std::error::Error;
use std::fmt;

/// Errors raised by the Evanesco-enhanced chip.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvanescoError {
    /// An underlying NAND operation failed.
    Nand(NandError),
    /// `pLock` was issued on a page that was never programmed; the FTL
    /// only ever locks invalidated (previously programmed) pages, so this
    /// indicates a controller bug.
    LockOnUnwrittenPage {
        /// Offending address.
        ppa: Ppa,
    },
    /// A lock command addressed a block outside the chip geometry.
    BadBlock {
        /// Offending block.
        block: BlockId,
    },
}

impl fmt::Display for EvanescoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvanescoError::Nand(e) => write!(f, "nand error: {e}"),
            EvanescoError::LockOnUnwrittenPage { ppa } => {
                write!(f, "pLock on never-programmed page {ppa}")
            }
            EvanescoError::BadBlock { block } => write!(f, "block out of range: {block}"),
        }
    }
}

impl Error for EvanescoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvanescoError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for EvanescoError {
    fn from(e: NandError) -> Self {
        EvanescoError::Nand(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EvanescoError::from(NandError::BadBlock { block: BlockId(3) });
        assert!(e.to_string().contains("nand error"));
        assert!(Error::source(&e).is_some());
        let e2 = EvanescoError::LockOnUnwrittenPage { ppa: Ppa::new(0, 1) };
        assert!(Error::source(&e2).is_none());
        assert!(!e2.to_string().is_empty());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvanescoError>();
    }
}

//! Runtime chip fault model: deterministic, seedable injection of the
//! failure modes the paper's characterization exposes (§4, §6.2).
//!
//! Evanesco's commands are not infallible. One-shot flag programming fails
//! at weak design corners (per-cell success as low as 47.3 % at
//! `(Vp1, 100 µs)`), program status can report FAIL after a marginal pulse,
//! erases wear out, and raw bit-error rates drift toward the ECC limit with
//! P/E cycling, retention, and read disturb. The FTL's reliability manager
//! (`evanesco-ftl`) must absorb all of these without ever weakening the
//! sanitization guarantee — this module is the hazard generator it is
//! tested against.
//!
//! Determinism contract: every draw is a pure hash of
//! `(seed, chip, op kind, block, page, per-location attempt ordinal)` —
//! **never** of global dispatch order. Two runs that issue the same
//! per-location command sequences see the same faults even if the commands
//! interleave differently across chips, which is what keeps the scheduler's
//! queue-depth equivalence guarantee intact with faults enabled.

use crate::calibration::DesignPoint;
use crate::chip::unit_draw;
use crate::pap::majority_failure_prob;
use evanesco_nand::ecc::EccModel;
use evanesco_nand::math::prob_above;
use std::collections::HashMap;

/// Status-register outcome of a chip operation (the NAND `READ STATUS`
/// model): every `program`/`erase`/`pLock`/`bLock` completes its bus/array
/// timing and then reports pass or fail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OpStatus {
    /// The operation passed program/erase verify.
    #[default]
    Ok,
    /// The operation failed verify; its target is left in the documented
    /// failure state (torn flags, torn page, un-erased block).
    Failed,
}

impl OpStatus {
    /// Whether the operation passed.
    pub fn is_ok(self) -> bool {
        self == OpStatus::Ok
    }
}

/// Probabilities and knobs of the chip fault model. All probabilities are
/// per-command; zero disables that fault class entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Base seed; each chip salts it with its own id.
    pub seed: u64,
    /// Program-status failure probability per `program` command. The failed
    /// page is consumed and holds an unreliable partial program.
    pub program_fail: f64,
    /// Erase-status failure probability per `erase` command. A failed erase
    /// leaves data *and* lock flags intact.
    pub erase_fail: f64,
    /// One-shot `pLock` flag-program failure probability (the k-cell
    /// majority fails to reach the locked decode).
    pub plock_fail: f64,
    /// One-shot `bLock` SSL-program failure probability.
    pub block_lock_fail: f64,
    /// Probability that the first sense of a data read exceeds the ECC
    /// limit (uncorrectable), triggering the read-retry ladder.
    pub read_unc: f64,
    /// Multiplier applied to the failure probability on each reference-shift
    /// retry (retries re-sense with moved read references, so each attempt
    /// is easier than the last).
    pub read_retry_decay: f64,
    /// Reference-shift retries the chip firmware attempts before declaring
    /// the read uncorrectable and falling back to soft-decision recovery.
    pub read_retry_budget: u32,
}

impl FaultConfig {
    /// No faults: every command succeeds (the pre-reliability behavior).
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            program_fail: 0.0,
            erase_fail: 0.0,
            plock_fail: 0.0,
            block_lock_fail: 0.0,
            read_unc: 0.0,
            read_retry_decay: 0.25,
            read_retry_budget: 4,
        }
    }

    /// A fault storm scaled by `severity` ∈ [0, 1]: lock failures dominate
    /// (they are the cheapest to trigger physically), program/erase status
    /// failures and uncorrectable reads ride along at lower rates.
    pub fn storm(severity: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            program_fail: severity * 0.25,
            erase_fail: severity * 0.25,
            plock_fail: severity,
            block_lock_fail: severity * 0.5,
            read_unc: severity * 0.1,
            read_retry_decay: 0.25,
            read_retry_budget: 4,
        }
    }

    /// Fault rates calibrated to the device models: `pLock` failure from
    /// the pAP majority curve at `point` (k = 9, day 0), `bLock` failure
    /// from the same per-cell physics across two independent SSL gates, and
    /// the uncorrectable-read rate from the RBER/ECC model via
    /// [`unc_probability`].
    pub fn calibrated(point: DesignPoint, rber: f64, seed: u64) -> Self {
        let plock = majority_failure_prob(point, 0.0, 9).clamp(0.0, 1.0);
        FaultConfig {
            seed,
            // Program/erase status failures are rare events on healthy
            // blocks; the grown-bad-block path is exercised by `storm`.
            program_fail: 1e-4,
            erase_fail: 1e-4,
            plock_fail: plock,
            block_lock_fail: (plock * plock).clamp(0.0, 1.0),
            read_unc: unc_probability(rber, &EccModel::new()),
            read_retry_decay: 0.25,
            read_retry_budget: 4,
        }
    }

    /// Whether any fault class is enabled.
    pub fn any(&self) -> bool {
        self.program_fail > 0.0
            || self.erase_fail > 0.0
            || self.plock_fail > 0.0
            || self.block_lock_fail > 0.0
            || self.read_unc > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Probability that a codeword at the given raw bit-error rate exceeds the
/// ECC correction limit (normal approximation of the binomial error-count
/// tail over the codeword bits).
pub fn unc_probability(rber: f64, ecc: &EccModel) -> f64 {
    if rber <= 0.0 {
        return 0.0;
    }
    let n = f64::from(ecc.codeword_bytes) * 8.0;
    let mean = n * rber;
    let sd = (n * rber * (1.0 - rber)).sqrt().max(1e-12);
    prob_above(mean, sd, f64::from(ecc.t_bits) + 0.5).clamp(0.0, 1.0)
}

/// Per-chip injected-failure counters. Every `true` returned by a
/// [`FaultModel`] query is counted here, so the FTL's response counters can
/// be audited against the hazards actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Program commands that failed status.
    pub program_failures: u64,
    /// Erase commands that failed status.
    pub erase_failures: u64,
    /// `pLock` commands that failed flag-program verify (including forced
    /// test-hook failures).
    pub plock_failures: u64,
    /// `bLock` commands that failed SSL-program verify (including forced
    /// test-hook failures).
    pub block_lock_failures: u64,
    /// Extra reference-shift read attempts performed by the retry ladder.
    pub read_retries: u64,
    /// Reads still uncorrectable after the full retry ladder (recovered via
    /// soft-decision fallback; counted as reliability events).
    pub unc_reads: u64,
}

impl FaultStats {
    /// Accumulates another chip's counters into this one.
    pub fn absorb(&mut self, other: FaultStats) {
        self.program_failures += other.program_failures;
        self.erase_failures += other.erase_failures;
        self.plock_failures += other.plock_failures;
        self.block_lock_failures += other.block_lock_failures;
        self.read_retries += other.read_retries;
        self.unc_reads += other.unc_reads;
    }

    /// Total injected command failures (excluding read events).
    pub fn command_failures(&self) -> u64 {
        self.program_failures + self.erase_failures + self.plock_failures + self.block_lock_failures
    }

    /// Field-wise difference `self − earlier` (counters accumulated since
    /// an earlier snapshot).
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            program_failures: self.program_failures - earlier.program_failures,
            erase_failures: self.erase_failures - earlier.erase_failures,
            plock_failures: self.plock_failures - earlier.plock_failures,
            block_lock_failures: self.block_lock_failures - earlier.block_lock_failures,
            read_retries: self.read_retries - earlier.read_retries,
            unc_reads: self.unc_reads - earlier.unc_reads,
        }
    }
}

/// Outcome of the read-retry ladder for one data read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadReliability {
    /// Reference-shift retries performed (0 = first sense decoded).
    pub retries: u32,
    /// The ladder was exhausted; the data was recovered by soft-decision
    /// decoding (slow path) and the event counted in
    /// [`FaultStats::unc_reads`].
    pub uncorrectable: bool,
}

const K_PLOCK: u8 = 1;
const K_BLOCK: u8 = 2;
const K_PROGRAM: u8 = 3;
const K_ERASE: u8 = 4;
const K_READ: u8 = 5;

/// Deterministic per-chip fault generator. Owned by each
/// [`crate::chip::EvanescoChip`]; queried once per fallible command.
#[derive(Debug, Clone)]
pub struct FaultModel {
    cfg: FaultConfig,
    chip_salt: u64,
    /// Unified test hook (formerly `forced_lock_failures` on the chip): the
    /// next N lock commands fail verify regardless of probabilities.
    forced_lock_failures: u32,
    stats: FaultStats,
    /// Per-(kind, block, page) attempt ordinals, so repeated commands on
    /// one location draw an independent hazard each time without depending
    /// on what other locations did in between.
    attempts: HashMap<(u8, u32, u32), u32>,
}

impl FaultModel {
    /// A model for one chip; `chip_id` decorrelates chips sharing a seed.
    pub fn new(cfg: FaultConfig, chip_id: u64) -> Self {
        FaultModel {
            cfg,
            chip_salt: cfg.seed ^ chip_id.wrapping_mul(0xA076_1D64_78BD_642F),
            forced_lock_failures: 0,
            stats: FaultStats::default(),
            attempts: HashMap::new(),
        }
    }

    /// A fault-free model (every query answers "no fault").
    pub fn disabled() -> Self {
        Self::new(FaultConfig::none(), 0)
    }

    /// The configuration in force.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Injected-failure counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Forces the next `n` lock commands (`pLock` or `bLock`) to fail
    /// verify. Shared with the probabilistic path: forced failures are
    /// consumed one per lock command and counted in [`FaultStats`].
    pub fn force_lock_failures(&mut self, n: u32) {
        self.forced_lock_failures += n;
    }

    fn consume_forced(&mut self) -> bool {
        if self.forced_lock_failures > 0 {
            self.forced_lock_failures -= 1;
            true
        } else {
            false
        }
    }

    fn ordinal(&mut self, kind: u8, block: u32, page: u32) -> u32 {
        let n = self.attempts.entry((kind, block, page)).or_insert(0);
        let v = *n;
        *n += 1;
        v
    }

    fn draw(&self, kind: u8, block: u32, page: u32, ordinal: u32, extra: u32) -> f64 {
        unit_draw(
            self.chip_salt ^ (u64::from(kind) << 56),
            u64::from(block),
            u64::from(page),
            u64::from(ordinal) | (u64::from(extra) << 32),
        )
    }

    /// Does this `pLock` of `(block, page)` fail verify?
    pub fn plock_fails(&mut self, block: u32, page: u32) -> bool {
        if self.consume_forced() {
            self.stats.plock_failures += 1;
            return true;
        }
        if self.cfg.plock_fail <= 0.0 {
            return false;
        }
        let n = self.ordinal(K_PLOCK, block, page);
        let fail = self.draw(K_PLOCK, block, page, n, 0) < self.cfg.plock_fail;
        if fail {
            self.stats.plock_failures += 1;
        }
        fail
    }

    /// Does this `bLock` of `block` fail verify?
    pub fn block_lock_fails(&mut self, block: u32) -> bool {
        if self.consume_forced() {
            self.stats.block_lock_failures += 1;
            return true;
        }
        if self.cfg.block_lock_fail <= 0.0 {
            return false;
        }
        let n = self.ordinal(K_BLOCK, block, 0);
        let fail = self.draw(K_BLOCK, block, 0, n, 0) < self.cfg.block_lock_fail;
        if fail {
            self.stats.block_lock_failures += 1;
        }
        fail
    }

    /// Does this `program` of `(block, page)` fail status?
    pub fn program_fails(&mut self, block: u32, page: u32) -> bool {
        if self.cfg.program_fail <= 0.0 {
            return false;
        }
        let n = self.ordinal(K_PROGRAM, block, page);
        let fail = self.draw(K_PROGRAM, block, page, n, 0) < self.cfg.program_fail;
        if fail {
            self.stats.program_failures += 1;
        }
        fail
    }

    /// Does this `erase` of `block` fail status?
    pub fn erase_fails(&mut self, block: u32) -> bool {
        if self.cfg.erase_fail <= 0.0 {
            return false;
        }
        let n = self.ordinal(K_ERASE, block, 0);
        let fail = self.draw(K_ERASE, block, 0, n, 0) < self.cfg.erase_fail;
        if fail {
            self.stats.erase_failures += 1;
        }
        fail
    }

    /// Serializes the model's **dynamic** state — forced-failure hook,
    /// injected-failure counters, and per-location attempt ordinals — into
    /// a checkpoint stream. The configuration and chip salt are *not*
    /// stored: they are rebuilt from the device config on restore, keeping
    /// the hazard stream a pure function of `(config, state)`.
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x20);
        e.u32(self.forced_lock_failures);
        for v in [
            self.stats.program_failures,
            self.stats.erase_failures,
            self.stats.plock_failures,
            self.stats.block_lock_failures,
            self.stats.read_retries,
            self.stats.unc_reads,
        ] {
            e.u64(v);
        }
        // HashMap iteration order is nondeterministic per-instance; sort the
        // keys so identical states serialize to identical bytes.
        let mut keys: Vec<_> = self.attempts.keys().copied().collect();
        keys.sort_unstable();
        e.usize(keys.len());
        for k in keys {
            e.u8(k.0);
            e.u32(k.1);
            e.u32(k.2);
            e.u32(self.attempts[&k]);
        }
    }

    /// Restores dynamic state written by [`FaultModel::encode_state`] into
    /// a freshly-constructed model (same config + chip id).
    ///
    /// # Errors
    ///
    /// Fails on truncation or structural corruption.
    pub fn decode_state(
        &mut self,
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<(), evanesco_nand::snapshot::SnapshotError> {
        d.expect_tag(0x20, "fault-model")?;
        self.forced_lock_failures = d.u32()?;
        self.stats = FaultStats {
            program_failures: d.u64()?,
            erase_failures: d.u64()?,
            plock_failures: d.u64()?,
            block_lock_failures: d.u64()?,
            read_retries: d.u64()?,
            unc_reads: d.u64()?,
        };
        self.attempts.clear();
        let n = d.usize()?;
        for _ in 0..n {
            let k = (d.u8()?, d.u32()?, d.u32()?);
            let v = d.u32()?;
            self.attempts.insert(k, v);
        }
        Ok(())
    }

    /// Runs the read-retry ladder for one data read of `(block, page)`:
    /// draws the initial-sense hazard, then up to
    /// [`FaultConfig::read_retry_budget`] reference-shift retries with the
    /// failure probability decayed per attempt.
    pub fn read_outcome(&mut self, block: u32, page: u32) -> ReadReliability {
        if self.cfg.read_unc <= 0.0 {
            return ReadReliability::default();
        }
        let n = self.ordinal(K_READ, block, page);
        let mut p = self.cfg.read_unc;
        for attempt in 0..=self.cfg.read_retry_budget {
            if self.draw(K_READ, block, page, n, attempt) >= p {
                self.stats.read_retries += u64::from(attempt);
                return ReadReliability { retries: attempt, uncorrectable: false };
            }
            p *= self.cfg.read_retry_decay;
        }
        self.stats.read_retries += u64::from(self.cfg.read_retry_budget);
        self.stats.unc_reads += 1;
        ReadReliability { retries: self.cfg.read_retry_budget, uncorrectable: true }
    }
}

const K_CORRUPT: u8 = 6;

/// splitmix64 finalizer: the integer-valued companion of
/// [`crate::chip::unit_draw`], used where a corruption draw needs raw bits
/// (cell index, bit position) rather than a unit-interval probability.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FTL RAM structure targeted by one injected metadata corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptTarget {
    /// The logical-to-physical mapping table.
    L2pMap,
    /// Per-block live/invalid counters and the per-chip running totals.
    Counters,
    /// The lock-coalescing queue (deferred `pLock` intent).
    CoalesceQueue,
    /// The grown-bad-block table (retired marks).
    BadBlockTable,
    /// The GC victim index (live-count buckets).
    VictimIndex,
}

impl CorruptTarget {
    /// Every target, in draw order.
    pub const ALL: [CorruptTarget; 5] = [
        CorruptTarget::L2pMap,
        CorruptTarget::Counters,
        CorruptTarget::CoalesceQueue,
        CorruptTarget::BadBlockTable,
        CorruptTarget::VictimIndex,
    ];

    /// Stable label (metrics, reports).
    pub fn label(self) -> &'static str {
        match self {
            CorruptTarget::L2pMap => "l2p_map",
            CorruptTarget::Counters => "counters",
            CorruptTarget::CoalesceQueue => "coalesce_queue",
            CorruptTarget::BadBlockTable => "bad_block_table",
            CorruptTarget::VictimIndex => "victim_index",
        }
    }

    fn index(self) -> usize {
        match self {
            CorruptTarget::L2pMap => 0,
            CorruptTarget::Counters => 1,
            CorruptTarget::CoalesceQueue => 2,
            CorruptTarget::BadBlockTable => 3,
            CorruptTarget::VictimIndex => 4,
        }
    }
}

/// Knobs of the metadata-corruption injector. Like [`FaultConfig`], zero
/// disables injection entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionConfig {
    /// Seed of the keyed draw stream.
    pub seed: u64,
    /// Per-host-op-boundary probability that one corruption is injected.
    pub rate: f64,
}

impl CorruptionConfig {
    /// No corruption: the guard machinery runs but nothing is injected.
    pub fn none() -> Self {
        CorruptionConfig { seed: 0, rate: 0.0 }
    }

    /// A corruption storm at `rate` per host-op boundary.
    pub fn storm(rate: f64, seed: u64) -> Self {
        CorruptionConfig { seed, rate }
    }

    /// Whether injection is enabled at all.
    pub fn any(&self) -> bool {
        self.rate > 0.0
    }
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Injected-corruption counters, per target structure. The FTL guard's
/// detected/repaired counters must reconcile exactly against these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptionStats {
    /// Total corruptions injected.
    pub injected: u64,
    /// Injections per [`CorruptTarget`] (indexed as [`CorruptTarget::ALL`]).
    pub per_target: [u64; 5],
}

/// One corruption event: which structure to damage and raw key material
/// for picking the cell and bit inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionHit {
    /// Structure the draw selected (the applier may fall through to
    /// [`CorruptTarget::L2pMap`] when the drawn structure is empty; it
    /// reports the target actually damaged via
    /// [`CorruptionModel::note_injected`]).
    pub target: CorruptTarget,
    /// Well-mixed key material for cell/bit selection.
    pub salt: u64,
}

/// Deterministic metadata-corruption generator.
///
/// Determinism contract (mirrors [`FaultModel`]): every draw is a pure
/// hash of `(seed, op-ordinal)` where the ordinal counts completed
/// host-op boundaries — **never** global dispatch order or wall clock —
/// so a queue-depth-1 run and a queue-depth-8 run of the same workload
/// inject the same corruption stream.
#[derive(Debug, Clone)]
pub struct CorruptionModel {
    cfg: CorruptionConfig,
    ordinal: u64,
    stats: CorruptionStats,
}

impl CorruptionModel {
    /// A model drawing from `cfg`'s keyed stream.
    pub fn new(cfg: CorruptionConfig) -> Self {
        CorruptionModel { cfg, ordinal: 0, stats: CorruptionStats::default() }
    }

    /// The configuration in force.
    pub fn config(&self) -> CorruptionConfig {
        self.cfg
    }

    /// Injected-corruption counters so far.
    pub fn stats(&self) -> CorruptionStats {
        self.stats
    }

    /// Host-op boundaries consumed so far.
    pub fn boundaries(&self) -> u64 {
        self.ordinal
    }

    /// Draws the corruption decision for the next host-op boundary. The
    /// ordinal advances whether or not a hit fires, keeping the stream a
    /// pure function of the boundary count.
    pub fn next_boundary(&mut self) -> Option<CorruptionHit> {
        let n = self.ordinal;
        self.ordinal += 1;
        if self.cfg.rate <= 0.0 {
            return None;
        }
        let key = self.cfg.seed ^ (u64::from(K_CORRUPT) << 56);
        if unit_draw(key, n, 0, 0) >= self.cfg.rate {
            return None;
        }
        let pick = unit_draw(key, n, 1, 0) * CorruptTarget::ALL.len() as f64;
        let target = CorruptTarget::ALL[(pick as usize).min(CorruptTarget::ALL.len() - 1)];
        Some(CorruptionHit { target, salt: mix64(key ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D)) })
    }

    /// Records the corruption actually applied (the applier may have fallen
    /// through from an empty drawn structure to the always-present L2P map).
    pub fn note_injected(&mut self, target: CorruptTarget) {
        self.stats.injected += 1;
        self.stats.per_target[target.index()] += 1;
    }
}

/// Flips one keyed-drawn bit of a serialized checkpoint: the
/// checkpoint-bytes leg of the corruption injector. Returns the damaged
/// `(offset, bit)` so the caller can report it; `None` for an empty blob.
pub fn corrupt_checkpoint_bytes(seed: u64, ordinal: u64, bytes: &mut [u8]) -> Option<(usize, u8)> {
    if bytes.is_empty() {
        return None;
    }
    let h =
        mix64(seed ^ (u64::from(K_CORRUPT) << 56) ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let offset = (h % bytes.len() as u64) as usize;
    let bit = ((h >> 56) % 8) as u8;
    bytes[offset] ^= 1 << bit;
    Some((offset, bit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_never_fails() {
        let mut m = FaultModel::disabled();
        for b in 0..8 {
            for p in 0..8 {
                assert!(!m.plock_fails(b, p));
                assert!(!m.program_fails(b, p));
                assert_eq!(m.read_outcome(b, p), ReadReliability::default());
            }
            assert!(!m.block_lock_fails(b));
            assert!(!m.erase_fails(b));
        }
        assert_eq!(m.stats(), FaultStats::default());
    }

    #[test]
    fn draws_are_deterministic_and_location_keyed() {
        let cfg = FaultConfig::storm(0.5, 42);
        let mut a = FaultModel::new(cfg, 3);
        let mut b = FaultModel::new(cfg, 3);
        // Same per-location sequences in different global orders.
        let mut outcomes_a = Vec::new();
        for blk in 0..4 {
            for attempt in 0..3 {
                let _ = attempt;
                outcomes_a.push(a.plock_fails(blk, 1));
            }
        }
        let mut outcomes_b = vec![false; 12];
        for attempt in 0..3 {
            let _ = attempt;
            for blk in (0..4).rev() {
                let n = b.attempts.get(&(K_PLOCK, blk, 1)).copied().unwrap_or(0);
                outcomes_b[(blk * 3 + n) as usize] = b.plock_fails(blk, 1);
            }
        }
        assert_eq!(outcomes_a, outcomes_b);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn chips_with_same_seed_are_decorrelated() {
        let cfg = FaultConfig::storm(0.5, 7);
        let mut a = FaultModel::new(cfg, 0);
        let mut b = FaultModel::new(cfg, 1);
        let oa: Vec<bool> = (0..64).map(|i| a.plock_fails(i % 8, i / 8)).collect();
        let ob: Vec<bool> = (0..64).map(|i| b.plock_fails(i % 8, i / 8)).collect();
        assert_ne!(oa, ob);
    }

    #[test]
    fn forced_failures_consume_one_per_lock_command() {
        let mut m = FaultModel::disabled();
        m.force_lock_failures(2);
        assert!(m.plock_fails(0, 0));
        assert!(m.block_lock_fails(1));
        assert!(!m.plock_fails(0, 0));
        let s = m.stats();
        assert_eq!(s.plock_failures, 1);
        assert_eq!(s.block_lock_failures, 1);
    }

    #[test]
    fn failure_rate_tracks_configured_probability() {
        let cfg = FaultConfig { plock_fail: 0.3, ..FaultConfig::none() };
        let mut m = FaultModel::new(FaultConfig { seed: 9, ..cfg }, 0);
        let trials = 4000u32;
        let fails = (0..trials).filter(|&i| m.plock_fails(i % 64, i / 64)).count();
        let rate = fails as f64 / f64::from(trials);
        assert!((rate - 0.3).abs() < 0.05, "observed {rate}");
        assert_eq!(m.stats().plock_failures, fails as u64);
    }

    #[test]
    fn read_ladder_decays_and_counts() {
        let cfg = FaultConfig {
            read_unc: 1.0,
            read_retry_decay: 0.0,
            read_retry_budget: 4,
            ..FaultConfig::none()
        };
        let mut m = FaultModel::new(cfg, 0);
        // First sense always fails (p = 1.0); first retry always succeeds
        // (p decayed to 0).
        let out = m.read_outcome(0, 0);
        assert_eq!(out, ReadReliability { retries: 1, uncorrectable: false });
        assert_eq!(m.stats().read_retries, 1);
        assert_eq!(m.stats().unc_reads, 0);

        let cfg = FaultConfig { read_retry_decay: 1.0, ..cfg };
        let mut m = FaultModel::new(cfg, 0);
        let out = m.read_outcome(0, 0);
        assert!(out.uncorrectable);
        assert_eq!(out.retries, 4);
        assert_eq!(m.stats().unc_reads, 1);
    }

    #[test]
    fn snapshot_resumes_hazard_stream_exactly() {
        use evanesco_nand::snapshot::{Dec, Enc};
        let cfg = FaultConfig::storm(0.6, 77);
        let mut live = FaultModel::new(cfg, 2);
        live.force_lock_failures(3);
        for i in 0..40u32 {
            let _ = live.plock_fails(i % 5, i % 7);
            let _ = live.program_fails(i % 5, i % 7);
            let _ = live.read_outcome(i % 5, i % 7);
        }
        let mut e = Enc::new();
        live.encode_state(&mut e);
        let bytes = e.into_bytes();
        let mut restored = FaultModel::new(cfg, 2);
        restored.decode_state(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(restored.stats(), live.stats());
        // Both continue with identical draws — no lost or repeated ordinals.
        for i in 0..60u32 {
            assert_eq!(restored.plock_fails(i % 5, i % 7), live.plock_fails(i % 5, i % 7));
            assert_eq!(restored.erase_fails(i % 5), live.erase_fails(i % 5));
            assert_eq!(restored.read_outcome(i % 5, i % 7), live.read_outcome(i % 5, i % 7));
        }
        assert_eq!(restored.stats(), live.stats());
    }

    #[test]
    fn calibrated_weak_corner_fails_about_half_the_time() {
        // (Vp1, 100µs): 47.3 % per-cell success -> the k = 9 majority fails
        // roughly half the time, the acceptance corner for the escalation
        // ladder.
        let cfg = FaultConfig::calibrated(DesignPoint::new(1, 100), 0.0, 1);
        assert!(cfg.plock_fail > 0.4 && cfg.plock_fail < 0.7, "plock_fail {}", cfg.plock_fail);
        // The paper's selected point is effectively fault-free.
        let good = FaultConfig::calibrated(DesignPoint::new(4, 100), 0.0, 1);
        assert!(good.plock_fail < 1e-6);
    }

    #[test]
    fn corruption_stream_is_deterministic_and_ordinal_keyed() {
        let cfg = CorruptionConfig::storm(0.4, 99);
        let mut a = CorruptionModel::new(cfg);
        let mut b = CorruptionModel::new(cfg);
        let ha: Vec<_> = (0..200).map(|_| a.next_boundary()).collect();
        let hb: Vec<_> = (0..200).map(|_| b.next_boundary()).collect();
        assert_eq!(ha, hb, "same seed, same boundary stream");
        let fired = ha.iter().filter(|h| h.is_some()).count();
        let rate = fired as f64 / 200.0;
        assert!((rate - 0.4).abs() < 0.15, "observed {rate}");
        // Every target is eventually drawn.
        for t in CorruptTarget::ALL {
            assert!(ha.iter().flatten().any(|h| h.target == t), "target {} never drawn", t.label());
        }
    }

    #[test]
    fn corruption_disabled_never_fires_but_ordinal_advances() {
        let mut m = CorruptionModel::new(CorruptionConfig::none());
        assert!(!m.config().any());
        for _ in 0..50 {
            assert_eq!(m.next_boundary(), None);
        }
        assert_eq!(m.boundaries(), 50);
        assert_eq!(m.stats(), CorruptionStats::default());
    }

    #[test]
    fn note_injected_attributes_per_target() {
        let mut m = CorruptionModel::new(CorruptionConfig::storm(1.0, 5));
        m.note_injected(CorruptTarget::L2pMap);
        m.note_injected(CorruptTarget::L2pMap);
        m.note_injected(CorruptTarget::VictimIndex);
        let s = m.stats();
        assert_eq!(s.injected, 3);
        assert_eq!(s.per_target[CorruptTarget::L2pMap.index()], 2);
        assert_eq!(s.per_target[CorruptTarget::VictimIndex.index()], 1);
        assert_eq!(s.per_target.iter().sum::<u64>(), s.injected);
    }

    #[test]
    fn checkpoint_byte_corruption_is_keyed_and_flips_one_bit() {
        let original = vec![0u8; 64];
        let mut a = original.clone();
        let mut b = original.clone();
        let hit_a = corrupt_checkpoint_bytes(7, 3, &mut a).unwrap();
        let hit_b = corrupt_checkpoint_bytes(7, 3, &mut b).unwrap();
        assert_eq!(hit_a, hit_b);
        assert_eq!(a, b);
        let flipped: Vec<_> = a.iter().zip(&original).filter(|(x, y)| x != y).collect();
        assert_eq!(flipped.len(), 1, "exactly one byte damaged");
        assert_eq!(a[hit_a.0] ^ original[hit_a.0], 1 << hit_a.1);
        // A different ordinal lands elsewhere (with overwhelming odds).
        let mut c = original.clone();
        let hit_c = corrupt_checkpoint_bytes(7, 4, &mut c).unwrap();
        assert_ne!(hit_a, hit_c);
        assert_eq!(corrupt_checkpoint_bytes(7, 0, &mut []), None);
    }

    #[test]
    fn unc_probability_tracks_ecc_limit() {
        let ecc = EccModel::new();
        assert_eq!(unc_probability(0.0, &ecc), 0.0);
        assert!(unc_probability(ecc.limit_rber() * 0.5, &ecc) < 1e-9);
        assert!(unc_probability(ecc.limit_rber() * 1.5, &ecc) > 0.99);
    }
}

//! Page access-permission (pAP) flag device model (paper §5.3).
//!
//! Each page's pAP flag is stored in `k` spare SLC flash cells on the same
//! wordline, programmed with a low-voltage one-shot pulse under SBPI
//! inhibition (so neither the data cells nor the sibling pages' flag cells
//! are touched), and decoded by a k-bit majority circuit.
//!
//! The device model answers the questions the paper's design-space
//! exploration asks: does a one-shot pulse at `(V, t)` reliably program the
//! flag cells, and do the programmed cells keep their value across years of
//! retention?

use crate::calibration::{
    plock_flag_decay, plock_flag_margin, plock_flag_success, DesignPoint, PLOCK_FLAG_SIGMA,
};
use evanesco_nand::math::{prob_above, sample_normal};
use rand::Rng;

/// Configuration of the pAP flag mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PapConfig {
    /// Redundant flag cells per pAP flag (paper final value: 9).
    pub k: usize,
    /// Selected programming design point (paper final value: `(Vp4, 100 µs)`,
    /// i.e. combination (ii)).
    pub point: DesignPoint,
}

impl PapConfig {
    /// The paper's selected configuration: `k = 9`, `(Vp4, 100 µs)`.
    pub fn paper() -> Self {
        PapConfig { k: 9, point: DesignPoint::new(4, 100) }
    }
}

impl Default for PapConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Vth of an erased (never-programmed) flag cell, relative to the SLC flag
/// read reference.
pub const ERASED_CELL_VTH: f64 = -2.0;

/// One-shot programs a group of flag cells in place at the given design
/// point. Each cell independently either programs (lands at
/// `margin ± sigma` above the read reference) or fails to program (stays
/// erased) with the calibrated per-cell success probability.
pub fn program_cells<R: Rng + ?Sized>(rng: &mut R, point: DesignPoint, cells: &mut [f64]) {
    let success = plock_flag_success(point);
    let margin = plock_flag_margin(point);
    for c in cells {
        if rng.gen::<f64>() < success {
            *c = sample_normal(rng, margin, PLOCK_FLAG_SIGMA);
        }
    }
}

/// Applies `days` of retention to a group of flag cells: programmed cells
/// lose charge and drift toward the read reference.
pub fn age_cells<R: Rng + ?Sized>(rng: &mut R, days: f64, cells: &mut [f64]) {
    let decay = plock_flag_decay(days);
    for c in cells {
        if *c > -1.0 {
            // Per-cell detrapping variation around the mean decay.
            *c -= sample_normal(rng, decay, decay * 0.15).max(0.0);
        }
    }
}

/// Decodes a group of flag cells through the majority circuit: `true` =
/// disabled (page locked).
pub fn cells_read_disabled(cells: &[f64]) -> bool {
    crate::majority::majority_count(cells.iter().filter(|&&v| v > 0.0).count(), cells.len())
}

/// Device-level simulation of one pAP flag: the Vth of its `k` flag cells,
/// relative to the SLC flag read reference (so `vth > 0` reads as
/// programmed/disabled).
#[derive(Debug, Clone, PartialEq)]
pub struct PapFlag {
    cells: Vec<f64>,
}

impl PapFlag {
    /// A fresh (erased) flag: all cells far below the read reference, so the
    /// flag reads *enabled*.
    pub fn erased(k: usize) -> Self {
        PapFlag { cells: vec![ERASED_CELL_VTH; k] }
    }

    /// One-shot programs the flag at the given design point (see
    /// [`program_cells`]).
    pub fn program<R: Rng + ?Sized>(&mut self, rng: &mut R, point: DesignPoint) {
        program_cells(rng, point, &mut self.cells);
    }

    /// Applies `days` of retention: programmed cells lose charge and drift
    /// toward the read reference (see [`age_cells`]).
    pub fn age<R: Rng + ?Sized>(&mut self, rng: &mut R, days: f64) {
        age_cells(rng, days, &mut self.cells);
    }

    /// Reads the flag through the majority circuit: `true` = disabled
    /// (page locked).
    pub fn read_disabled(&self) -> bool {
        cells_read_disabled(&self.cells)
    }

    /// Number of cells currently reading as programmed.
    pub fn programmed_cells(&self) -> usize {
        self.cells.iter().filter(|&&v| v > 0.0).count()
    }

    /// Raw per-cell Vth values (relative to the read reference), for
    /// checkpoint serialization.
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Rebuilds a flag from raw cell Vth values captured by
    /// [`PapFlag::cells`].
    pub fn from_cells(cells: Vec<f64>) -> Self {
        PapFlag { cells }
    }
}

/// Probability that a single programmed flag cell has flipped back to the
/// erased side after `days` of retention (analytic).
pub fn cell_flip_prob(point: DesignPoint, days: f64) -> f64 {
    let margin = plock_flag_margin(point);
    let decay = plock_flag_decay(days);
    // Cell reads erased when margin - decay + noise < 0.
    1.0 - prob_above(margin - decay, PLOCK_FLAG_SIGMA, 0.0)
}

/// Expected number of erroneous (flipped) cells out of `k` after `days`,
/// including the cells that failed to program in the first place
/// (Figure 9d reports `k - errors` as "# of flag cells w/o errors").
pub fn expected_flag_errors(point: DesignPoint, days: f64, k: usize) -> f64 {
    let p_unprogrammed = 1.0 - plock_flag_success(point);
    let p_flip = cell_flip_prob(point, days);
    k as f64 * (p_unprogrammed + (1.0 - p_unprogrammed) * p_flip)
}

/// Probability that the majority circuit mis-reads a programmed flag as
/// *enabled* after `days` (i.e. at least `ceil(k/2)` cells are wrong).
/// This is the security-failure probability of a locked page re-appearing.
pub fn majority_failure_prob(point: DesignPoint, days: f64, k: usize) -> f64 {
    let p_unprogrammed = 1.0 - plock_flag_success(point);
    let p_flip = cell_flip_prob(point, days);
    let p_err = p_unprogrammed + (1.0 - p_unprogrammed) * p_flip;
    let need = k / 2 + 1;
    // Binomial tail: P(errors >= need).
    let mut prob = 0.0;
    for e in need..=k {
        prob += binomial_pmf(k, e, p_err);
    }
    prob
}

fn binomial_pmf(n: usize, x: usize, p: f64) -> f64 {
    let mut coeff = 1.0;
    for i in 0..x {
        coeff *= (n - i) as f64 / (i + 1) as f64;
    }
    coeff * p.powi(x as i32) * (1.0 - p).powi((n - x) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erased_flag_reads_enabled() {
        let flag = PapFlag::erased(9);
        assert!(!flag.read_disabled());
        assert_eq!(flag.programmed_cells(), 0);
    }

    #[test]
    fn paper_point_programs_reliably() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = PapConfig::paper();
        for _ in 0..500 {
            let mut flag = PapFlag::erased(cfg.k);
            flag.program(&mut rng, cfg.point);
            assert!(flag.read_disabled(), "flag failed to lock at the paper point");
        }
    }

    #[test]
    fn weak_point_often_fails_to_program() {
        // (Vp1, 100µs): only 47.3% of cells program; the majority of 9 often
        // does not reach 5 programmed cells.
        let mut rng = StdRng::seed_from_u64(22);
        let point = DesignPoint::new(1, 100);
        let mut failures = 0;
        let trials = 500;
        for _ in 0..trials {
            let mut flag = PapFlag::erased(9);
            flag.program(&mut rng, point);
            if !flag.read_disabled() {
                failures += 1;
            }
        }
        let frac = failures as f64 / trials as f64;
        assert!(frac > 0.3, "weak corner failure fraction {frac} too low");
    }

    #[test]
    fn paper_point_survives_five_years() {
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = PapConfig::paper();
        for _ in 0..300 {
            let mut flag = PapFlag::erased(cfg.k);
            flag.program(&mut rng, cfg.point);
            flag.age(&mut rng, 5.0 * 365.0);
            assert!(flag.read_disabled(), "paper point lost the lock after 5 years");
        }
    }

    #[test]
    fn weakest_candidate_loses_majority_at_five_years() {
        // Paper Fig. 9d: combination (vi) = (Vp2, 200µs) shows ~5 erroneous
        // cells of 9 at the 5-year point -> majority can break.
        let point = DesignPoint::new(2, 200);
        let e = expected_flag_errors(point, 5.0 * 365.0, 9);
        assert!(e >= 4.0, "expected errors {e} too low for the weak candidate");
        let fail = majority_failure_prob(point, 5.0 * 365.0, 9);
        assert!(fail > 0.05, "majority failure prob {fail} should be material");
    }

    #[test]
    fn selected_point_has_negligible_majority_failure() {
        let fail = majority_failure_prob(DesignPoint::new(4, 100), 5.0 * 365.0, 9);
        assert!(fail < 1e-6, "selected point failure prob {fail}");
    }

    #[test]
    fn strongest_candidate_has_at_most_two_expected_errors() {
        // Paper Fig. 9d: combination (i) = (Vp4, 150µs) leads to at most ~2
        // errors in 9 flag cells at 5 years.
        let e = expected_flag_errors(DesignPoint::new(4, 150), 5.0 * 365.0, 9);
        assert!(e <= 2.0, "expected errors {e}");
    }

    #[test]
    fn expected_errors_monotonic_in_time() {
        let point = DesignPoint::new(3, 100);
        let mut prev = -1.0;
        for days in [10.0, 100.0, 1000.0, 10000.0] {
            let e = expected_flag_errors(point, days, 9);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=9).map(|x| binomial_pmf(9, x, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mc_agrees_with_analytic_flip_prob() {
        let mut rng = StdRng::seed_from_u64(24);
        let point = DesignPoint::new(2, 200);
        let days = 5.0 * 365.0;
        let trials = 4000;
        let mut flipped = 0usize;
        let mut programmed = 0usize;
        for _ in 0..trials {
            let mut flag = PapFlag::erased(1);
            flag.program(&mut rng, point);
            if flag.programmed_cells() == 1 {
                programmed += 1;
                flag.age(&mut rng, days);
                if flag.programmed_cells() == 0 {
                    flipped += 1;
                }
            }
        }
        let mc = flipped as f64 / programmed as f64;
        let analytic = cell_flip_prob(point, days);
        assert!((mc - analytic).abs() < 0.05, "mc {mc} vs analytic {analytic}");
    }
}

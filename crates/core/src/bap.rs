//! Block access-permission (bAP) flag device model (paper §5.4).
//!
//! 3D NAND implements the source-select line (SSL) of every block with
//! normal flash cells (a planar transistor cannot be inserted into the
//! vertical stack). `bLock` exploits this: one-shot programming the SSL
//! cells above the read gate voltage turns them into permanently-off
//! switches, cutting bitline current for **every page in the block**. There
//! is no command that erases only the SSL, so the lock holds until the
//! whole block is erased.
//!
//! This module models the SSL center-Vth trajectory (program + retention
//! decay, Figure 12) and the resulting read-kill behaviour (Figure 11b).

use crate::calibration::{
    block_center_vth_after, block_initial_center_vth, DesignPoint, BLOCK_READ_KILL_VTH,
    SSL_GATE_VOLTAGE, SSL_VTH_SIGMA,
};
use evanesco_nand::ecc::EccModel;
use evanesco_nand::math::prob_above;

/// Configuration of the bAP mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BapConfig {
    /// Selected programming design point (paper final value: `(Vb6, 300 µs)`,
    /// i.e. combination (ii)).
    pub point: DesignPoint,
}

impl BapConfig {
    /// The paper's selected configuration: `(Vb6, 300 µs)`.
    pub fn paper() -> Self {
        BapConfig { point: DesignPoint::new(6, 300) }
    }
}

impl Default for BapConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Device-level state of one block's SSL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SslState {
    /// Current center Vth of the SSL cells (volts). Erased SSLs sit well
    /// below the gate voltage so the block conducts normally.
    pub center_vth: f64,
}

impl SslState {
    /// An erased (normal, conducting) SSL.
    pub fn erased() -> Self {
        SslState { center_vth: 1.0 }
    }

    /// One-shot programs the SSL at the given design point (`bLock`).
    pub fn program(&mut self, point: DesignPoint) {
        self.center_vth = self.center_vth.max(block_initial_center_vth(point));
    }

    /// Center Vth after `days` of retention following a program at `point`.
    pub fn aged(point: DesignPoint, days: f64) -> Self {
        SslState { center_vth: block_center_vth_after(point, days) }
    }

    /// Whether reads of the block currently fail beyond the ECC limit.
    pub fn blocks_reads(&self) -> bool {
        self.center_vth >= BLOCK_READ_KILL_VTH
    }

    /// Fraction of bitlines whose SSL cell is off at this center Vth.
    pub fn blocked_bitline_fraction(&self) -> f64 {
        prob_above(self.center_vth, SSL_VTH_SIGMA, SSL_GATE_VOLTAGE)
    }
}

/// Page RBER induced by a partially-programmed SSL at `center_vth`, on top
/// of `baseline_rber` from normal wear (Figure 11b).
///
/// A blocked bitline forces its cell to read `0`; under random data half of
/// those bits are wrong.
pub fn rber_vs_center_vth(center_vth: f64, baseline_rber: f64) -> f64 {
    let blocked = SslState { center_vth }.blocked_bitline_fraction();
    baseline_rber + 0.5 * blocked
}

/// Normalized (to the ECC limit) RBER curve of Figure 11b.
pub fn normalized_rber_vs_center_vth(center_vth: f64, baseline_rber: f64, ecc: &EccModel) -> f64 {
    ecc.normalize(rber_vs_center_vth(center_vth, baseline_rber))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::cell::{CellTech, PageType};
    use evanesco_nand::noise::{adjusted_states, Condition};
    use evanesco_nand::rber::page_rber;

    fn baseline(pe: u32) -> f64 {
        let dists = adjusted_states(CellTech::Tlc, Condition::cycled(pe));
        page_rber(&dists, PageType::Msb)
    }

    #[test]
    fn erased_ssl_conducts() {
        let ssl = SslState::erased();
        assert!(!ssl.blocks_reads());
        assert!(ssl.blocked_bitline_fraction() < 1e-6);
    }

    #[test]
    fn paper_point_blocks_reads_immediately() {
        let mut ssl = SslState::erased();
        ssl.program(BapConfig::paper().point);
        assert!(ssl.blocks_reads());
    }

    #[test]
    fn rber_crosses_ecc_limit_near_3v() {
        // Paper Fig. 11b: reads fail beyond ECC once the center Vth passes 3V.
        let ecc = EccModel::default();
        let b = baseline(1000);
        let below = normalized_rber_vs_center_vth(2.5, b, &ecc);
        let at = normalized_rber_vs_center_vth(3.05, b, &ecc);
        let above = normalized_rber_vs_center_vth(4.0, b, &ecc);
        assert!(below < 1.0, "normalized rber at 2.5V: {below}");
        assert!(at > 1.0, "normalized rber at 3.05V: {at}");
        assert!(above > 10.0, "normalized rber at 4.0V: {above}");
    }

    #[test]
    fn rber_curve_is_monotonic_in_center_vth() {
        let b = baseline(1000);
        let mut prev = 0.0;
        for v in [1.0, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0] {
            let r = rber_vs_center_vth(v, b);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn cycled_curve_sits_above_fresh_curve() {
        // Fig. 11b plots both 0K and 1K P/E: wear adds baseline errors.
        for v in [1.0, 2.5, 3.0, 4.0] {
            assert!(rber_vs_center_vth(v, baseline(1000)) > rber_vs_center_vth(v, baseline(0)));
        }
    }

    #[test]
    fn fully_programmed_ssl_blocks_everything() {
        let ssl = SslState { center_vth: 5.0 };
        assert!(ssl.blocked_bitline_fraction() > 0.999);
        // All-zero read: half of random bits wrong.
        let r = rber_vs_center_vth(5.0, 0.0);
        assert!((r - 0.5).abs() < 0.001);
    }

    #[test]
    fn selected_point_survives_5_years_weak_point_does_not() {
        let five_years = 5.0 * 365.0;
        assert!(SslState::aged(DesignPoint::new(6, 300), five_years).blocks_reads());
        assert!(!SslState::aged(DesignPoint::new(5, 200), 365.0).blocks_reads());
    }

    #[test]
    fn program_never_lowers_center_vth() {
        let mut ssl = SslState { center_vth: 4.9 };
        ssl.program(DesignPoint::new(5, 200));
        assert!(ssl.center_vth >= 4.9);
    }
}

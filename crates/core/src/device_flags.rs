//! Device-mode flag simulation: physical pAP/bAP cells behind the lock
//! flags.
//!
//! The behavioral [`crate::chip::EvanescoChip`] normally uses the *decoded*
//! flag values (what the majority circuit / SSL sensing would produce under
//! the DSE-validated parameters, which guarantee error-free flags). This
//! module makes the flags physical again: each `pLock` programs `k` actual
//! flag cells, each `bLock` programs an SSL, and retention ages them — so
//! experiments can quantify what happens when the flag design is *weaker*
//! than the paper's selection (the end-to-end consequence of Figures 9(d)
//! and 12(b): locked data reappearing).
//!
//! Flag state is held in geometry-sized dense tables indexed by
//! `block * pages_per_block + page` rather than hash maps: the simulation
//! sits on the read/program/erase hot path, and dense indexing both removes
//! the per-access hashing cost and makes the canonical (address-ordered)
//! iteration the natural one — aging and checkpoint serialization simply
//! scan the tables in order, which matches the sorted-key order the sparse
//! representation had to construct explicitly.

use crate::bap::{BapConfig, SslState};
use crate::pap::{self, PapConfig};
use evanesco_nand::geometry::{BlockId, Ppa};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-block page-flag table. The `k · pages_per_block` cell array is
/// allocated lazily on the block's first `pLock` and then *kept* across
/// erases (an erase only clears the `set` bits), so steady-state operation
/// recycles the same buffers instead of churning the allocator.
#[derive(Debug, Clone, Default)]
struct BlockPageFlags {
    /// `k` cell Vth values per page, at `page * k`. Empty until the first
    /// `pLock` of the block; entries are only meaningful where `set` holds.
    cells: Vec<f64>,
    /// Which pages currently hold a programmed flag.
    set: Vec<bool>,
    /// Number of `true` entries in `set`.
    programmed: u32,
}

/// Physical flag state of one chip.
#[derive(Debug, Clone)]
pub struct FlagDeviceSim {
    pap_config: PapConfig,
    bap_config: BapConfig,
    rng: StdRng,
    pages_per_block: u32,
    /// Dense per-block page-flag tables, indexed by block id.
    page_flags: Vec<BlockPageFlags>,
    /// Dense per-block SSL center Vth; meaningful where `ssl_set` holds.
    ssl_vth: Vec<f64>,
    /// Which blocks currently hold a programmed SSL.
    ssl_set: Vec<bool>,
    /// Total programmed page flags (sum of `programmed` over all blocks).
    page_flag_count: usize,
    /// Total programmed block flags (`true` entries in `ssl_set`).
    block_flag_count: usize,
    /// Days of retention already applied to every currently-programmed flag.
    aged_days: f64,
}

impl FlagDeviceSim {
    /// Creates a device simulation with the given flag configurations for a
    /// chip of `blocks` blocks of `pages_per_block` pages each.
    pub fn new(
        pap_config: PapConfig,
        bap_config: BapConfig,
        seed: u64,
        blocks: u32,
        pages_per_block: u32,
    ) -> Self {
        FlagDeviceSim {
            pap_config,
            bap_config,
            rng: StdRng::seed_from_u64(seed),
            pages_per_block,
            page_flags: vec![BlockPageFlags::default(); blocks as usize],
            ssl_vth: vec![0.0; blocks as usize],
            ssl_set: vec![false; blocks as usize],
            page_flag_count: 0,
            block_flag_count: 0,
            aged_days: 0.0,
        }
    }

    /// The paper's selected configurations.
    pub fn paper(seed: u64, blocks: u32, pages_per_block: u32) -> Self {
        Self::new(PapConfig::paper(), BapConfig::paper(), seed, blocks, pages_per_block)
    }

    /// Physically programs the pAP flag of a page (one-shot, per-cell
    /// success probability from the calibrated curves). Reprogramming a
    /// page restarts from erased cells, like the sparse insert it replaces.
    pub fn program_page_flag(&mut self, ppa: Ppa) {
        let k = self.pap_config.k;
        let ppb = self.pages_per_block as usize;
        let bf = &mut self.page_flags[ppa.block.0 as usize];
        if bf.cells.is_empty() {
            bf.cells = vec![pap::ERASED_CELL_VTH; ppb * k];
            bf.set = vec![false; ppb];
        }
        let p = ppa.page.0 as usize;
        let slot = &mut bf.cells[p * k..(p + 1) * k];
        slot.fill(pap::ERASED_CELL_VTH);
        pap::program_cells(&mut self.rng, self.pap_config.point, slot);
        if !bf.set[p] {
            bf.set[p] = true;
            bf.programmed += 1;
            self.page_flag_count += 1;
        }
    }

    /// Physically programs the bAP (SSL) of a block.
    pub fn program_block_flag(&mut self, block: BlockId) {
        let mut ssl = SslState::erased();
        ssl.program(self.bap_config.point);
        let b = block.0 as usize;
        self.ssl_vth[b] = ssl.center_vth;
        if !self.ssl_set[b] {
            self.ssl_set[b] = true;
            self.block_flag_count += 1;
        }
    }

    /// Erase resets every flag of the block (the only unlock path).
    pub fn erase_block(&mut self, block: BlockId) {
        let b = block.0 as usize;
        if b >= self.page_flags.len() {
            return;
        }
        if self.ssl_set[b] {
            self.ssl_set[b] = false;
            self.block_flag_count -= 1;
        }
        let bf = &mut self.page_flags[b];
        if bf.programmed > 0 {
            self.page_flag_count -= bf.programmed as usize;
            bf.set.fill(false);
            bf.programmed = 0;
        }
    }

    /// Applies `days` of additional retention to every programmed flag.
    pub fn age(&mut self, days: f64) {
        // Canonical address-ordered iteration: the per-cell decay draws
        // must map to the same flags in every run, including one resumed
        // from a checkpoint (whose tables were rebuilt in the same order),
        // or the resumed run would age differently than the original.
        let k = self.pap_config.k;
        for bf in &mut self.page_flags {
            if bf.programmed == 0 {
                continue;
            }
            for (p, &s) in bf.set.iter().enumerate() {
                if s {
                    pap::age_cells(&mut self.rng, days, &mut bf.cells[p * k..(p + 1) * k]);
                }
            }
        }
        let total = self.aged_days + days;
        for (b, &s) in self.ssl_set.iter().enumerate() {
            if s {
                // SSL decay is deterministic in the calibrated model:
                // recompute the center Vth at the accumulated age.
                self.ssl_vth[b] = SslState::aged(self.bap_config.point, total).center_vth;
            }
        }
        self.aged_days = total;
    }

    /// Whether the physical pAP flag of the page currently decodes as
    /// *disabled* (locked). A page that was never flag-programmed decodes
    /// enabled.
    pub fn page_reads_locked(&self, ppa: Ppa) -> bool {
        let Some(bf) = self.page_flags.get(ppa.block.0 as usize) else { return false };
        let p = ppa.page.0 as usize;
        if bf.set.get(p) != Some(&true) {
            return false;
        }
        let k = self.pap_config.k;
        pap::cells_read_disabled(&bf.cells[p * k..(p + 1) * k])
    }

    /// Whether the physical SSL of the block currently blocks reads.
    pub fn block_reads_locked(&self, block: BlockId) -> bool {
        let b = block.0 as usize;
        self.ssl_set.get(b) == Some(&true)
            && SslState { center_vth: self.ssl_vth[b] }.blocks_reads()
    }

    /// Number of page flags that were programmed but currently decode as
    /// enabled — each one is a sanitization hole.
    pub fn leaked_page_flags(&self) -> usize {
        let k = self.pap_config.k;
        let mut leaked = 0;
        for bf in &self.page_flags {
            if bf.programmed == 0 {
                continue;
            }
            for (p, &s) in bf.set.iter().enumerate() {
                if s && !pap::cells_read_disabled(&bf.cells[p * k..(p + 1) * k]) {
                    leaked += 1;
                }
            }
        }
        leaked
    }

    /// Number of block flags that no longer block reads.
    pub fn leaked_block_flags(&self) -> usize {
        self.ssl_set
            .iter()
            .zip(&self.ssl_vth)
            .filter(|&(&s, &vth)| s && !SslState { center_vth: vth }.blocks_reads())
            .count()
    }

    /// Total programmed page flags.
    pub fn page_flag_count(&self) -> usize {
        self.page_flag_count
    }

    /// Total programmed block flags.
    pub fn block_flag_count(&self) -> usize {
        self.block_flag_count
    }

    /// Serializes the full simulation state — configurations, live RNG
    /// stream position, every programmed flag's cell voltages, and the
    /// accumulated retention age — into a checkpoint stream. Programmed
    /// flags are emitted sparsely in address order, which is byte-identical
    /// to the sorted-key emission of the sparse representation this dense
    /// one replaced.
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x21);
        e.usize(self.pap_config.k);
        e.u8(self.pap_config.point.v_index);
        e.u32(self.pap_config.point.t_us);
        e.u8(self.bap_config.point.v_index);
        e.u32(self.bap_config.point.t_us);
        e.u64(self.rng.state());
        e.f64(self.aged_days);
        let k = self.pap_config.k;
        e.usize(self.page_flag_count);
        for (b, bf) in self.page_flags.iter().enumerate() {
            if bf.programmed == 0 {
                continue;
            }
            for (p, &s) in bf.set.iter().enumerate() {
                if !s {
                    continue;
                }
                e.u32(b as u32);
                e.u32(p as u32);
                e.usize(k);
                for &c in &bf.cells[p * k..(p + 1) * k] {
                    e.f64(c);
                }
            }
        }
        e.usize(self.block_flag_count);
        for (b, &s) in self.ssl_set.iter().enumerate() {
            if s {
                e.u32(b as u32);
                e.f64(self.ssl_vth[b]);
            }
        }
    }

    /// Reconstructs a simulation from a stream written by
    /// [`FlagDeviceSim::encode_state`], for a chip of `blocks` blocks of
    /// `pages_per_block` pages each.
    ///
    /// # Errors
    ///
    /// Fails on truncation, structural corruption, or a flag address /
    /// cell count outside the configured geometry.
    pub fn decode_state(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
        blocks: u32,
        pages_per_block: u32,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        use crate::calibration::DesignPoint;
        use evanesco_nand::snapshot::SnapshotError;
        d.expect_tag(0x21, "flag-device")?;
        let k = d.usize()?;
        let pap_config = PapConfig { k, point: DesignPoint::new(d.u8()?, d.u32()?) };
        let bap_config = BapConfig { point: DesignPoint::new(d.u8()?, d.u32()?) };
        let rng = StdRng::from_state(d.u64()?);
        let aged_days = d.f64()?;
        let mut sim = FlagDeviceSim {
            pap_config,
            bap_config,
            rng,
            pages_per_block,
            page_flags: vec![BlockPageFlags::default(); blocks as usize],
            ssl_vth: vec![0.0; blocks as usize],
            ssl_set: vec![false; blocks as usize],
            page_flag_count: 0,
            block_flag_count: 0,
            aged_days,
        };
        for _ in 0..d.usize()? {
            let b = d.u32()?;
            let p = d.u32()?;
            if b >= blocks || p >= pages_per_block {
                return Err(SnapshotError::Mismatch(format!(
                    "page flag ({b}, {p}) outside the configured geometry \
                     ({blocks} blocks x {pages_per_block} pages)"
                )));
            }
            let n = d.usize()?;
            if n != k {
                return Err(SnapshotError::Mismatch(format!(
                    "page flag ({b}, {p}) has {n} cells, config says k = {k}"
                )));
            }
            let bf = &mut sim.page_flags[b as usize];
            if bf.cells.is_empty() {
                bf.cells = vec![pap::ERASED_CELL_VTH; pages_per_block as usize * k];
                bf.set = vec![false; pages_per_block as usize];
            }
            let p = p as usize;
            for c in &mut bf.cells[p * k..(p + 1) * k] {
                *c = d.f64()?;
            }
            if !bf.set[p] {
                bf.set[p] = true;
                bf.programmed += 1;
                sim.page_flag_count += 1;
            }
        }
        for _ in 0..d.usize()? {
            let b = d.u32()?;
            if b >= blocks {
                return Err(SnapshotError::Mismatch(format!(
                    "block flag {b} outside the configured geometry ({blocks} blocks)"
                )));
            }
            sim.ssl_vth[b as usize] = d.f64()?;
            if !sim.ssl_set[b as usize] {
                sim.ssl_set[b as usize] = true;
                sim.block_flag_count += 1;
            }
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::DesignPoint;

    fn lock_n_pages(sim: &mut FlagDeviceSim, n: u32) {
        for p in 0..n {
            sim.program_page_flag(Ppa::new(0, p));
        }
    }

    /// Test geometry: 8 blocks of 512 pages.
    const BLOCKS: u32 = 8;
    const PPB: u32 = 512;

    #[test]
    fn paper_config_never_leaks_within_five_years() {
        let mut sim = FlagDeviceSim::paper(1, BLOCKS, PPB);
        lock_n_pages(&mut sim, 500);
        sim.program_block_flag(BlockId(1));
        assert_eq!(sim.leaked_page_flags(), 0);
        sim.age(5.0 * 365.0);
        assert_eq!(sim.leaked_page_flags(), 0, "paper pAP config leaked");
        assert_eq!(sim.leaked_block_flags(), 0, "paper bAP config leaked");
        for p in 0..500 {
            assert!(sim.page_reads_locked(Ppa::new(0, p)));
        }
        assert!(sim.block_reads_locked(BlockId(1)));
    }

    #[test]
    fn weak_pap_config_leaks_after_years() {
        // Combination (vi) = (Vp2, 200µs): Figure 9(d)'s weakest candidate.
        let weak = PapConfig { k: 9, point: DesignPoint::new(2, 200) };
        let mut sim = FlagDeviceSim::new(weak, BapConfig::paper(), 2, BLOCKS, PPB);
        lock_n_pages(&mut sim, 500);
        sim.age(5.0 * 365.0);
        let leaked = sim.leaked_page_flags();
        assert!(leaked > 100, "weak config should leak substantially at 5 years: {leaked}/500");
    }

    #[test]
    fn weak_bap_config_unblocks_before_a_year() {
        // Combination (vi) = (Vb5, 200µs) from Figure 12(b).
        let weak = BapConfig { point: DesignPoint::new(5, 200) };
        let mut sim = FlagDeviceSim::new(PapConfig::paper(), weak, 3, BLOCKS, PPB);
        sim.program_block_flag(BlockId(0));
        assert!(sim.block_reads_locked(BlockId(0)));
        sim.age(365.0);
        assert!(!sim.block_reads_locked(BlockId(0)), "weak SSL must decay open");
        assert_eq!(sim.leaked_block_flags(), 1);
    }

    #[test]
    fn erase_clears_flags() {
        let mut sim = FlagDeviceSim::paper(4, BLOCKS, PPB);
        lock_n_pages(&mut sim, 4);
        sim.program_block_flag(BlockId(0));
        sim.erase_block(BlockId(0));
        assert_eq!(sim.page_flag_count(), 0);
        assert_eq!(sim.block_flag_count(), 0);
        assert!(!sim.page_reads_locked(Ppa::new(0, 0)));
        assert!(!sim.block_reads_locked(BlockId(0)));
    }

    #[test]
    fn unprogrammed_flags_read_enabled() {
        let sim = FlagDeviceSim::paper(5, BLOCKS, PPB);
        assert!(!sim.page_reads_locked(Ppa::new(3, 3)));
        assert!(!sim.block_reads_locked(BlockId(3)));
    }

    #[test]
    fn aging_accumulates() {
        // (Vb5, 300µs) starts at 3.30V and crosses 3.0V after ~9 days.
        let weak = BapConfig { point: DesignPoint::new(5, 300) };
        let mut sim = FlagDeviceSim::new(PapConfig::paper(), weak, 6, BLOCKS, PPB);
        sim.program_block_flag(BlockId(0));
        sim.age(4.0);
        assert!(sim.block_reads_locked(BlockId(0)), "alive at 4 days");
        sim.age(1996.0); // total 2000 days: far below 3V
        assert!(!sim.block_reads_locked(BlockId(0)), "dead at 2000 days");
    }

    #[test]
    fn reprogram_restarts_from_erased_cells() {
        // Reprogramming a page must not stack charge on the old cells: the
        // slot is reset to erased before the one-shot pulse, exactly like
        // the fresh-insert semantics of the sparse map this replaced.
        let mut sim = FlagDeviceSim::paper(7, BLOCKS, PPB);
        sim.program_page_flag(Ppa::new(0, 0));
        assert_eq!(sim.page_flag_count(), 1);
        sim.program_page_flag(Ppa::new(0, 0));
        assert_eq!(sim.page_flag_count(), 1, "reprogram must not double-count");
        assert!(sim.page_reads_locked(Ppa::new(0, 0)));
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        use evanesco_nand::snapshot::{Dec, Enc};
        let mut sim = FlagDeviceSim::paper(8, BLOCKS, PPB);
        lock_n_pages(&mut sim, 20);
        sim.program_page_flag(Ppa::new(3, 7));
        sim.program_block_flag(BlockId(2));
        sim.age(30.0);
        let mut e = Enc::new();
        sim.encode_state(&mut e);
        let bytes = e.into_bytes();
        let restored = FlagDeviceSim::decode_state(&mut Dec::new(&bytes), BLOCKS, PPB).unwrap();
        assert_eq!(restored.page_flag_count(), sim.page_flag_count());
        assert_eq!(restored.block_flag_count(), sim.block_flag_count());
        let mut e2 = Enc::new();
        restored.encode_state(&mut e2);
        assert_eq!(e2.into_bytes(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn decode_rejects_out_of_geometry_flags() {
        use evanesco_nand::snapshot::{Dec, Enc};
        let mut sim = FlagDeviceSim::paper(9, BLOCKS, PPB);
        sim.program_page_flag(Ppa::new(5, 100));
        let mut e = Enc::new();
        sim.encode_state(&mut e);
        let bytes = e.into_bytes();
        // Decoding against a smaller chip must fail loudly, not truncate.
        assert!(FlagDeviceSim::decode_state(&mut Dec::new(&bytes), 4, PPB).is_err());
        assert!(FlagDeviceSim::decode_state(&mut Dec::new(&bytes), BLOCKS, 64).is_err());
    }
}

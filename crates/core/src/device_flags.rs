//! Device-mode flag simulation: physical pAP/bAP cells behind the lock
//! flags.
//!
//! The behavioral [`crate::chip::EvanescoChip`] normally uses the *decoded*
//! flag values (what the majority circuit / SSL sensing would produce under
//! the DSE-validated parameters, which guarantee error-free flags). This
//! module makes the flags physical again: each `pLock` programs `k` actual
//! flag cells, each `bLock` programs an SSL, and retention ages them — so
//! experiments can quantify what happens when the flag design is *weaker*
//! than the paper's selection (the end-to-end consequence of Figures 9(d)
//! and 12(b): locked data reappearing).

use crate::bap::{BapConfig, SslState};
use crate::pap::{PapConfig, PapFlag};
use evanesco_nand::geometry::{BlockId, Ppa};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Physical flag state of one chip.
#[derive(Debug, Clone)]
pub struct FlagDeviceSim {
    pap_config: PapConfig,
    bap_config: BapConfig,
    rng: StdRng,
    page_flags: HashMap<(u32, u32), PapFlag>,
    block_ssl: HashMap<u32, SslState>,
    /// Days of retention already applied to every currently-programmed flag.
    aged_days: f64,
}

impl FlagDeviceSim {
    /// Creates a device simulation with the given flag configurations.
    pub fn new(pap_config: PapConfig, bap_config: BapConfig, seed: u64) -> Self {
        FlagDeviceSim {
            pap_config,
            bap_config,
            rng: StdRng::seed_from_u64(seed),
            page_flags: HashMap::new(),
            block_ssl: HashMap::new(),
            aged_days: 0.0,
        }
    }

    /// The paper's selected configurations.
    pub fn paper(seed: u64) -> Self {
        Self::new(PapConfig::paper(), BapConfig::paper(), seed)
    }

    /// Physically programs the pAP flag of a page (one-shot, per-cell
    /// success probability from the calibrated curves).
    pub fn program_page_flag(&mut self, ppa: Ppa) {
        let mut flag = PapFlag::erased(self.pap_config.k);
        flag.program(&mut self.rng, self.pap_config.point);
        self.page_flags.insert((ppa.block.0, ppa.page.0), flag);
    }

    /// Physically programs the bAP (SSL) of a block.
    pub fn program_block_flag(&mut self, block: BlockId) {
        let mut ssl = SslState::erased();
        ssl.program(self.bap_config.point);
        self.block_ssl.insert(block.0, ssl);
    }

    /// Erase resets every flag of the block (the only unlock path).
    pub fn erase_block(&mut self, block: BlockId) {
        self.block_ssl.remove(&block.0);
        self.page_flags.retain(|&(b, _), _| b != block.0);
    }

    /// Applies `days` of additional retention to every programmed flag.
    pub fn age(&mut self, days: f64) {
        // Canonical (sorted) iteration: the per-cell decay draws must map
        // to the same flags regardless of the HashMap's insertion history
        // or per-process hash seed, or a run resumed from a checkpoint
        // (whose map was rebuilt in sorted order) would age differently
        // than the uninterrupted original.
        let mut keys: Vec<_> = self.page_flags.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            self.page_flags.get_mut(&k).expect("key just listed").age(&mut self.rng, days);
        }
        let total = self.aged_days + days;
        for (_, ssl) in self.block_ssl.iter_mut() {
            // SSL decay is deterministic in the calibrated model: recompute
            // the center Vth at the accumulated age.
            *ssl = SslState::aged(self.bap_config.point, total);
        }
        self.aged_days = total;
    }

    /// Whether the physical pAP flag of the page currently decodes as
    /// *disabled* (locked). A page that was never flag-programmed decodes
    /// enabled.
    pub fn page_reads_locked(&self, ppa: Ppa) -> bool {
        self.page_flags.get(&(ppa.block.0, ppa.page.0)).map(|f| f.read_disabled()).unwrap_or(false)
    }

    /// Whether the physical SSL of the block currently blocks reads.
    pub fn block_reads_locked(&self, block: BlockId) -> bool {
        self.block_ssl.get(&block.0).map(|s| s.blocks_reads()).unwrap_or(false)
    }

    /// Number of page flags that were programmed but currently decode as
    /// enabled — each one is a sanitization hole.
    pub fn leaked_page_flags(&self) -> usize {
        self.page_flags.values().filter(|f| !f.read_disabled()).count()
    }

    /// Number of block flags that no longer block reads.
    pub fn leaked_block_flags(&self) -> usize {
        self.block_ssl.values().filter(|s| !s.blocks_reads()).count()
    }

    /// Total programmed page flags.
    pub fn page_flag_count(&self) -> usize {
        self.page_flags.len()
    }

    /// Total programmed block flags.
    pub fn block_flag_count(&self) -> usize {
        self.block_ssl.len()
    }

    /// Serializes the full simulation state — configurations, live RNG
    /// stream position, every programmed flag's cell voltages, and the
    /// accumulated retention age — into a checkpoint stream.
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x21);
        e.usize(self.pap_config.k);
        e.u8(self.pap_config.point.v_index);
        e.u32(self.pap_config.point.t_us);
        e.u8(self.bap_config.point.v_index);
        e.u32(self.bap_config.point.t_us);
        e.u64(self.rng.state());
        e.f64(self.aged_days);
        let mut pages: Vec<_> = self.page_flags.keys().copied().collect();
        pages.sort_unstable();
        e.usize(pages.len());
        for k in pages {
            e.u32(k.0);
            e.u32(k.1);
            let cells = self.page_flags[&k].cells();
            e.usize(cells.len());
            for &c in cells {
                e.f64(c);
            }
        }
        let mut blocks: Vec<_> = self.block_ssl.keys().copied().collect();
        blocks.sort_unstable();
        e.usize(blocks.len());
        for b in blocks {
            e.u32(b);
            e.f64(self.block_ssl[&b].center_vth);
        }
    }

    /// Reconstructs a simulation from a stream written by
    /// [`FlagDeviceSim::encode_state`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or structural corruption.
    pub fn decode_state(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        use crate::calibration::DesignPoint;
        d.expect_tag(0x21, "flag-device")?;
        let k = d.usize()?;
        let pap_config = PapConfig { k, point: DesignPoint::new(d.u8()?, d.u32()?) };
        let bap_config = BapConfig { point: DesignPoint::new(d.u8()?, d.u32()?) };
        let rng = StdRng::from_state(d.u64()?);
        let aged_days = d.f64()?;
        let mut page_flags = HashMap::new();
        for _ in 0..d.usize()? {
            let key = (d.u32()?, d.u32()?);
            let n = d.usize()?;
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                cells.push(d.f64()?);
            }
            page_flags.insert(key, PapFlag::from_cells(cells));
        }
        let mut block_ssl = HashMap::new();
        for _ in 0..d.usize()? {
            let b = d.u32()?;
            block_ssl.insert(b, SslState { center_vth: d.f64()? });
        }
        Ok(FlagDeviceSim { pap_config, bap_config, rng, page_flags, block_ssl, aged_days })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::DesignPoint;

    fn lock_n_pages(sim: &mut FlagDeviceSim, n: u32) {
        for p in 0..n {
            sim.program_page_flag(Ppa::new(0, p));
        }
    }

    #[test]
    fn paper_config_never_leaks_within_five_years() {
        let mut sim = FlagDeviceSim::paper(1);
        lock_n_pages(&mut sim, 500);
        sim.program_block_flag(BlockId(1));
        assert_eq!(sim.leaked_page_flags(), 0);
        sim.age(5.0 * 365.0);
        assert_eq!(sim.leaked_page_flags(), 0, "paper pAP config leaked");
        assert_eq!(sim.leaked_block_flags(), 0, "paper bAP config leaked");
        for p in 0..500 {
            assert!(sim.page_reads_locked(Ppa::new(0, p)));
        }
        assert!(sim.block_reads_locked(BlockId(1)));
    }

    #[test]
    fn weak_pap_config_leaks_after_years() {
        // Combination (vi) = (Vp2, 200µs): Figure 9(d)'s weakest candidate.
        let weak = PapConfig { k: 9, point: DesignPoint::new(2, 200) };
        let mut sim = FlagDeviceSim::new(weak, BapConfig::paper(), 2);
        lock_n_pages(&mut sim, 500);
        sim.age(5.0 * 365.0);
        let leaked = sim.leaked_page_flags();
        assert!(leaked > 100, "weak config should leak substantially at 5 years: {leaked}/500");
    }

    #[test]
    fn weak_bap_config_unblocks_before_a_year() {
        // Combination (vi) = (Vb5, 200µs) from Figure 12(b).
        let weak = BapConfig { point: DesignPoint::new(5, 200) };
        let mut sim = FlagDeviceSim::new(PapConfig::paper(), weak, 3);
        sim.program_block_flag(BlockId(0));
        assert!(sim.block_reads_locked(BlockId(0)));
        sim.age(365.0);
        assert!(!sim.block_reads_locked(BlockId(0)), "weak SSL must decay open");
        assert_eq!(sim.leaked_block_flags(), 1);
    }

    #[test]
    fn erase_clears_flags() {
        let mut sim = FlagDeviceSim::paper(4);
        lock_n_pages(&mut sim, 4);
        sim.program_block_flag(BlockId(0));
        sim.erase_block(BlockId(0));
        assert_eq!(sim.page_flag_count(), 0);
        assert_eq!(sim.block_flag_count(), 0);
        assert!(!sim.page_reads_locked(Ppa::new(0, 0)));
        assert!(!sim.block_reads_locked(BlockId(0)));
    }

    #[test]
    fn unprogrammed_flags_read_enabled() {
        let sim = FlagDeviceSim::paper(5);
        assert!(!sim.page_reads_locked(Ppa::new(3, 3)));
        assert!(!sim.block_reads_locked(BlockId(3)));
    }

    #[test]
    fn aging_accumulates() {
        // (Vb5, 300µs) starts at 3.30V and crosses 3.0V after ~9 days.
        let weak = BapConfig { point: DesignPoint::new(5, 300) };
        let mut sim = FlagDeviceSim::new(PapConfig::paper(), weak, 6);
        sim.program_block_flag(BlockId(0));
        sim.age(4.0);
        assert!(sim.block_reads_locked(BlockId(0)), "alive at 4 days");
        sim.age(1996.0); // total 2000 days: far below 3V
        assert!(!sim.block_reads_locked(BlockId(0)), "dead at 2000 days");
    }
}

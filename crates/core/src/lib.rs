//! # evanesco-core
//!
//! The Evanesco mechanism itself (paper §5): **lock-based data
//! sanitization** for 3D NAND flash.
//!
//! Instead of physically destroying deleted data (erase, scrubbing, one-shot
//! reprogramming — all of which cost copies or reliability), Evanesco
//! *blocks access* to it inside the flash chip:
//!
//! * [`chip::EvanescoChip`] wraps a behavioral NAND chip with per-page
//!   **pAP** flags and per-block **bAP** flags and implements the two new
//!   flash commands:
//!   - `pLock <ppn>` — disable access to one page ([`chip::EvanescoChip::p_lock`]);
//!   - `bLock <pbn>` — disable access to a whole block
//!     ([`chip::EvanescoChip::b_lock`]).
//! * A locked page or block reads back **all-zero** through every interface
//!   path; there is *no unlock command* — flags reset only when the block is
//!   physically erased, at which point the data is gone anyway.
//! * [`pap`] and [`bap`] model the flag devices: pAP flags live in `k = 9`
//!   spare SLC cells decoded by a [`majority`] circuit; bAP flags are the
//!   block's SSL select cells programmed above the read-kill voltage.
//! * [`dse`] reproduces the paper's design-space explorations (Figures 9
//!   and 12) that pick the programming voltage and latency for each command.
//! * [`threat`] implements the paper's threat model (§5.1): an attacker with
//!   raw-chip access through all interface commands, able to de-solder chips
//!   and bypass the FTL — and verifies the sanitization conditions C1/C2.
//!
//! ## Example: lock, then fail to read
//!
//! ```rust
//! use evanesco_core::chip::{EvanescoChip, ReadResult};
//! use evanesco_nand::prelude::*;
//!
//! # fn main() -> Result<(), evanesco_core::EvanescoError> {
//! let mut chip = EvanescoChip::new(Geometry::small_tlc());
//! let ppa = Ppa::new(0, 0);
//! chip.program(ppa, PageData::with_payload(b"private photo"))?;
//! chip.p_lock(ppa)?;
//! let out = chip.read(ppa)?;
//! assert_eq!(out.result, ReadResult::Locked); // data is all-zero
//! # Ok(())
//! # }
//! ```

pub mod bap;
pub mod calibration;
pub mod chip;
pub mod device_flags;
pub mod dse;
pub mod error;
pub mod fault;
pub mod majority;
pub mod pap;
pub mod threat;

pub use error::EvanescoError;

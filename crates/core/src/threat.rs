//! The paper's threat model (§5.1) and the formal sanitization conditions
//! (§1: C1 and C2).
//!
//! The modeled attacker is maximally capable short of probing raw cells with
//! an electron microscope:
//!
//! * physical access to the full system; can de-solder flash chips without
//!   damaging stored data (modeled by cloning the chip state — flags live in
//!   flash cells, so they are cloned along with the data);
//! * direct access to the raw chips through **all known flash interface
//!   commands**, bypassing the file system and the FTL;
//! * all passwords and encryption keys (Evanesco does not rely on
//!   encryption).
//!
//! What the attacker *cannot* do is decap the die and read individual cells
//! with an SEM — the paper argues this is impractical for modern 3D NAND.
//! Therefore the interface-level read path, which Evanesco gates on-chip,
//! is the attack surface.

use crate::chip::{EvanescoChip, ReadResult};
use evanesco_nand::geometry::{BlockId, PageId, Ppa};
use std::collections::HashSet;

/// A forensic attacker with raw interface access to chips.
///
/// The attacker identifies file contents by tag (in reality: file carving /
/// signature matching over dumped pages, as forensic tools do).
#[derive(Debug, Clone, Copy, Default)]
pub struct Attacker;

impl Attacker {
    /// Creates an attacker.
    pub fn new() -> Self {
        Attacker
    }

    /// De-solders the chip: returns a bit-exact image including the flag
    /// cells. Reading the image goes through the same on-chip gating,
    /// because the gating logic is part of the chip the attacker must use
    /// to read the cells.
    pub fn desolder(&self, chip: &EvanescoChip) -> EvanescoChip {
        chip.clone()
    }

    /// Dumps every page of the chip through the interface and collects the
    /// content tags of all recoverable (readable, programmed) pages.
    pub fn recoverable_tags(&self, chip: &mut EvanescoChip) -> HashSet<u64> {
        let mut tags = HashSet::new();
        let blocks = chip.geometry().blocks;
        for b in 0..blocks {
            for result in chip.interface_dump_block(BlockId(b)) {
                if let Some(d) = result.data() {
                    tags.insert(d.tag());
                }
            }
        }
        tags
    }

    /// Attempts to recover a specific content tag (e.g. a known deleted
    /// file's page). Returns `true` on success — a sanitization failure.
    pub fn recover_tag(&self, chip: &mut EvanescoChip, tag: u64) -> bool {
        self.recoverable_tags(chip).contains(&tag)
    }

    /// Tries every page address individually (not just block dumps), to
    /// make sure no alternative addressing path leaks data.
    pub fn exhaustive_page_scan(&self, chip: &mut EvanescoChip, tag: u64) -> bool {
        let geom = *chip.geometry();
        for b in 0..geom.blocks {
            for p in 0..geom.pages_per_block() {
                let ppa = Ppa { block: BlockId(b), page: PageId(p) };
                if let Ok(out) = chip.read(ppa) {
                    if let ReadResult::Content(c) = out.result {
                        if c.data().map(|d| d.tag()) == Some(tag) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

/// Verifies sanitization condition **C1/C2** for a set of content tags that
/// were deleted or superseded: none of them may be recoverable from any of
/// the given chips, even after de-soldering.
pub fn verify_sanitized(chips: &[EvanescoChip], deleted_tags: &[u64]) -> bool {
    let attacker = Attacker::new();
    for chip in chips {
        let mut image = attacker.desolder(chip);
        let tags = attacker.recoverable_tags(&mut image);
        if deleted_tags.iter().any(|t| tags.contains(t)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::chip::PageData;
    use evanesco_nand::geometry::Geometry;
    use evanesco_nand::timing::Nanos;

    fn chip_with_pages(n: u32) -> EvanescoChip {
        let mut c = EvanescoChip::new(Geometry::small_tlc());
        for p in 0..n {
            c.program(Ppa::new(0, p), PageData::tagged(100 + p as u64)).unwrap();
        }
        c
    }

    #[test]
    fn attacker_recovers_unlocked_deleted_data() {
        // Without Evanesco, logically-deleted data is physically present and
        // fully recoverable (the data-versioning vulnerability).
        let mut c = chip_with_pages(3);
        let attacker = Attacker::new();
        assert!(attacker.recover_tag(&mut c, 101));
        assert!(attacker.exhaustive_page_scan(&mut c, 101));
    }

    #[test]
    fn attacker_defeated_by_plock() {
        let mut c = chip_with_pages(3);
        c.p_lock(Ppa::new(0, 1)).unwrap();
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut c, 101));
        assert!(!attacker.exhaustive_page_scan(&mut c, 101));
        // Valid neighbors remain readable.
        assert!(attacker.recover_tag(&mut c, 100));
        assert!(attacker.recover_tag(&mut c, 102));
    }

    #[test]
    fn attacker_defeated_by_block() {
        let mut c = chip_with_pages(3);
        c.b_lock(BlockId(0)).unwrap();
        let attacker = Attacker::new();
        for t in 100..103 {
            assert!(!attacker.recover_tag(&mut c, t));
        }
    }

    #[test]
    fn desoldering_does_not_bypass_locks() {
        let mut c = chip_with_pages(2);
        c.p_lock(Ppa::new(0, 0)).unwrap();
        let attacker = Attacker::new();
        let mut image = attacker.desolder(&c);
        assert!(!attacker.recover_tag(&mut image, 100));
        assert!(attacker.recover_tag(&mut image, 101));
    }

    #[test]
    fn verify_sanitized_catches_leaks() {
        let mut c = chip_with_pages(2);
        assert!(!verify_sanitized(&[c.clone()], &[100]));
        c.p_lock(Ppa::new(0, 0)).unwrap();
        assert!(verify_sanitized(&[c.clone()], &[100]));
        assert!(!verify_sanitized(&[c.clone()], &[100, 101]));
    }

    #[test]
    fn erase_then_reuse_leaves_nothing() {
        let mut c = chip_with_pages(2);
        c.b_lock(BlockId(0)).unwrap();
        c.erase(BlockId(0), Nanos::ZERO).unwrap();
        c.program(Ppa::new(0, 0), PageData::tagged(999)).unwrap();
        let attacker = Attacker::new();
        assert!(!attacker.recover_tag(&mut c, 100));
        assert!(!attacker.recover_tag(&mut c, 101));
        assert!(attacker.recover_tag(&mut c, 999));
    }
}

//! Host-op deadlines with bounded retry and backoff.
//!
//! Real storage stacks do not wait forever: a command that wedges —
//! firmware livelock, a hung erase, a flaky channel — is aborted at a
//! per-class deadline, retried with exponential backoff, and failed up
//! the stack once a retry budget is exhausted. This module reproduces
//! that contract on the scheduled host path as a **simulated-time
//! watchdog** over the NCQ scoreboard:
//!
//! * every dispatched request draws a deterministic number of
//!   consecutive *stalls* keyed on `(seed, submission index)` alone, so
//!   the verdict for request *n* is identical at every queue depth —
//!   the same qd-invariance contract as the chip fault model;
//! * each stall models one wedged attempt: the watchdog aborts it at
//!   the class deadline and schedules a retry after an exponentially
//!   growing backoff. A request whose stall count fits the retry budget
//!   eventually executes normally, just later (the penalty is added to
//!   its earliest legal start);
//! * a request that stalls through its whole budget is **failed by
//!   deadline**: it never reaches the FTL, consumes the full
//!   abort-and-backoff penalty on the scoreboard, and completes with the
//!   typed [`crate::sched::OpResult::TimedOut`].
//!
//! Accounting identities (checked by the chaos gate): every injected
//! stall is an abort (`stalls_injected == aborts`) and every abort is
//! followed by either a retry or the final deadline failure
//! (`aborts == retries + deadline_failures`).
//!
//! A draw of zero stalls takes the byte-identical fast path — with
//! `stall_rate == 0` (or the watchdog disabled) the scheduled path's
//! reservations, results, and timings are exactly those of a device
//! with no watchdog at all, which is what keeps the scheduler
//! equivalence and host-performance gates unchanged.

use crate::sched::HostOp;
use evanesco_nand::timing::Nanos;

/// Deadline and retry policy for the scheduled-path watchdog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineConfig {
    /// Deadline for read requests.
    pub read_deadline: Nanos,
    /// Deadline for write requests.
    pub write_deadline: Nanos,
    /// Deadline for trim requests.
    pub trim_deadline: Nanos,
    /// Aborted attempts retried before the request fails by deadline.
    pub retry_budget: u32,
    /// Backoff before retry `k` is `backoff_base << k` (saturating).
    pub backoff_base: Nanos,
    /// Per-attempt probability that the attempt wedges and must be
    /// aborted at its deadline. Zero disables injection (and the
    /// watchdog becomes timing-neutral).
    pub stall_rate: f64,
    /// Seed for the deterministic stall draws.
    pub seed: u64,
}

impl DeadlineConfig {
    /// A tight policy sized for the test geometry: short class deadlines,
    /// a budget of 3 retries, 100 µs base backoff.
    pub fn for_tests(seed: u64, stall_rate: f64) -> Self {
        DeadlineConfig {
            read_deadline: Nanos::from_micros(500),
            write_deadline: Nanos::from_micros(2_000),
            trim_deadline: Nanos::from_micros(5_000),
            retry_budget: 3,
            backoff_base: Nanos::from_micros(100),
            stall_rate,
            seed,
        }
    }
}

/// The watchdog's accounting. See the module docs for the identities
/// these counters satisfy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Wedged attempts injected by the stall model.
    pub stalls_injected: u64,
    /// Attempts aborted at their class deadline.
    pub aborts: u64,
    /// Aborted attempts that were retried.
    pub retries: u64,
    /// Requests failed after exhausting the retry budget.
    pub deadline_failures: u64,
}

impl WatchdogStats {
    /// The exact accounting identity: every injected stall was aborted,
    /// and every abort was either retried or ended in a deadline failure.
    pub fn reconciles(&self) -> bool {
        self.stalls_injected == self.aborts && self.aborts == self.retries + self.deadline_failures
    }
}

/// What the watchdog decided for one dispatched request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// No stall drawn: execute on the byte-identical fast path.
    Clean,
    /// Some attempts wedged but the budget held: execute normally after
    /// the accumulated abort-and-backoff penalty.
    Retried {
        /// Simulated time the aborted attempts and backoffs consumed.
        penalty: Nanos,
    },
    /// Every attempt in the budget wedged: fail the request without FTL
    /// work after consuming the full penalty.
    Failed {
        /// Simulated time the aborted attempts and backoffs consumed.
        penalty: Nanos,
    },
}

/// Simulated-time deadline watchdog for the scheduled host path
/// (attach with [`crate::emulator::Emulator::enable_watchdog`]).
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: DeadlineConfig,
    stats: WatchdogStats,
}

impl Watchdog {
    /// A watchdog with the given policy and zeroed accounting.
    pub fn new(cfg: DeadlineConfig) -> Self {
        Watchdog { cfg, stats: WatchdogStats::default() }
    }

    /// The configured policy.
    pub fn config(&self) -> DeadlineConfig {
        self.cfg
    }

    /// Accounting so far.
    pub fn stats(&self) -> WatchdogStats {
        self.stats
    }

    fn deadline_of(&self, op: &HostOp) -> Nanos {
        match op {
            HostOp::Read { .. } => self.cfg.read_deadline,
            HostOp::Write { .. } => self.cfg.write_deadline,
            HostOp::Trim { .. } => self.cfg.trim_deadline,
        }
    }

    /// Judges one dispatched request. Draws are keyed on the submission
    /// index (never on dispatch order or the clock), so a fixed trace
    /// gets the same verdicts at every queue depth.
    pub(crate) fn judge(&mut self, idx: usize, op: &HostOp) -> Verdict {
        let mut stalls: u32 = 0;
        while stalls <= self.cfg.retry_budget
            && stall_draw(self.cfg.seed, idx as u64, u64::from(stalls)) < self.cfg.stall_rate
        {
            stalls += 1;
        }
        if stalls == 0 {
            return Verdict::Clean;
        }
        let deadline = self.deadline_of(op);
        let mut penalty = Nanos::ZERO;
        for attempt in 0..stalls {
            let backoff = self.cfg.backoff_base.0.saturating_mul(1u64 << attempt.min(20));
            penalty = Nanos(penalty.0.saturating_add(deadline.0).saturating_add(backoff));
        }
        self.stats.stalls_injected += u64::from(stalls);
        self.stats.aborts += u64::from(stalls);
        if stalls <= self.cfg.retry_budget {
            self.stats.retries += u64::from(stalls);
            Verdict::Retried { penalty }
        } else {
            self.stats.retries += u64::from(self.cfg.retry_budget);
            self.stats.deadline_failures += 1;
            Verdict::Failed { penalty }
        }
    }
}

/// One uniform draw in `[0, 1)` from a splitmix-style hash of
/// `(seed, request index, attempt)`.
fn stall_draw(seed: u64, idx: u64, attempt: u64) -> f64 {
    let mut z = seed
        ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(idx.wrapping_add(1))
        ^ 0xD1B5_4A32_D192_ED03u64.wrapping_mul(attempt.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> HostOp {
        HostOp::Write { lpa: 0, npages: 1, secure: true }
    }

    #[test]
    fn zero_rate_is_always_clean() {
        let mut wd = Watchdog::new(DeadlineConfig::for_tests(7, 0.0));
        for idx in 0..500 {
            assert_eq!(wd.judge(idx, &w()), Verdict::Clean);
        }
        assert_eq!(wd.stats(), WatchdogStats::default());
        assert!(wd.stats().reconciles());
    }

    #[test]
    fn verdicts_depend_only_on_the_submission_index() {
        let mut a = Watchdog::new(DeadlineConfig::for_tests(42, 0.4));
        let mut b = Watchdog::new(DeadlineConfig::for_tests(42, 0.4));
        // Judge the same indices in different orders: identical verdicts.
        let fwd: Vec<_> = (0..200).map(|i| a.judge(i, &w())).collect();
        let rev: Vec<_> = (0..200).rev().map(|i| b.judge(i, &w())).collect();
        let rev_fwd: Vec<_> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev_fwd);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().reconciles());
    }

    #[test]
    fn accounting_identity_holds_at_every_rate() {
        for rate in [0.05, 0.3, 0.7, 0.95] {
            let mut wd = Watchdog::new(DeadlineConfig::for_tests(9, rate));
            let mut failed = 0u64;
            for idx in 0..400 {
                if matches!(wd.judge(idx, &w()), Verdict::Failed { .. }) {
                    failed += 1;
                }
            }
            let s = wd.stats();
            assert!(s.reconciles(), "rate {rate}: {s:?}");
            assert_eq!(s.deadline_failures, failed);
        }
        // A certain stall rate fails every request after the full budget.
        let cfg = DeadlineConfig::for_tests(1, 1.0);
        let mut wd = Watchdog::new(cfg);
        assert!(matches!(wd.judge(0, &w()), Verdict::Failed { .. }));
        let s = wd.stats();
        assert_eq!(s.aborts, u64::from(cfg.retry_budget) + 1);
        assert_eq!(s.retries, u64::from(cfg.retry_budget));
        assert_eq!(s.deadline_failures, 1);
        assert!(s.reconciles());
    }

    #[test]
    fn penalty_grows_with_the_stall_count() {
        let cfg = DeadlineConfig::for_tests(0, 0.0);
        let mut wd = Watchdog::new(DeadlineConfig { stall_rate: 1.0, ..cfg });
        let Verdict::Failed { penalty } = wd.judge(3, &w()) else {
            panic!("certain stalls must fail");
        };
        // budget + 1 deadlines plus the geometric backoff series.
        let attempts = u64::from(cfg.retry_budget) + 1;
        let deadlines = cfg.write_deadline.0 * attempts;
        let backoffs = cfg.backoff_base.0 * ((1u64 << attempts) - 1);
        assert_eq!(penalty, Nanos(deadlines + backoffs));
    }
}

//! Self-describing device checkpoints.
//!
//! A checkpoint is a single byte stream capturing **everything** a run
//! needs to continue bit-identically: the full configuration (geometry,
//! timing, fault model, reliability knobs, topology), the sanitization
//! policy, and every piece of dynamic state — NAND cells and OOB metadata,
//! lock flags, per-block wear, FTL mapping and victim-selection tables,
//! the coalescing queue, bad-block and degraded-mode state, busy
//! timelines, the simulated clock, latency histograms, gauges, telemetry
//! windows, and the position of every deterministic RNG stream.
//!
//! The format is versioned and self-describing (see
//! [`evanesco_nand::snapshot`]): a stream from an unknown version or a
//! truncated file fails with a typed error, never a panic. Restoring
//! constructs a fresh [`Emulator`] from the embedded configuration and
//! overlays the dynamic state, so a checkpoint file is sufficient on its
//! own — no side-channel config is needed.
//!
//! What is *not* checkpointed (both observational, never affecting
//! simulated results): the op-level trace recorder and the FTL decision
//! log. Re-enable them after restore if desired.

use crate::config::SsdConfig;
use crate::emulator::Emulator;
use evanesco_ftl::{FtlConfig, GcVictimPolicy, ReliabilityConfig, SanitizePolicy, WriteAlloc};
use evanesco_nand::geometry::Geometry;
use evanesco_nand::snapshot::{Dec, Enc, SnapshotError};
use evanesco_nand::timing::{Nanos, TimingSpec};
use std::fmt;
use std::path::Path;

/// Checkpoint section ids (format v2). Each section is framed with a
/// length and CRC-32 (see [`evanesco_nand::snapshot::Enc::section`]), so
/// corruption is pinned to one section and the salvage path can skip it.
/// `DEVICE` precedes `FTL` deliberately: a salvaged FTL is rebuilt by
/// re-running the recovery scan over the restored flash.
pub mod section {
    /// Full device configuration (required).
    pub const CONFIG: u8 = 1;
    /// Sanitization policy (required).
    pub const POLICY: u8 = 2;
    /// NAND chips, flags, wear, busy timelines, clock, RNGs (required).
    pub const DEVICE: u8 = 3;
    /// FTL RAM tables (salvageable: rebuilt from flash OOB).
    pub const FTL: u8 = 4;
    /// Host bookkeeping: tags, stale audit, histograms (salvageable:
    /// reset).
    pub const HOST: u8 = 5;
    /// Live gauges (salvageable: dropped).
    pub const GAUGES: u8 = 6;
    /// Telemetry ring (salvageable: dropped).
    pub const TIMESERIES: u8 = 7;
}

/// What a salvaging restore had to give up: the names of every
/// checkpoint section that failed its CRC (or its decode) and was rebuilt
/// from ground truth or dropped instead of restored verbatim. See
/// [`Emulator::restore_checkpoint_salvaging`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Section names (`"ftl"`, `"host"`, `"gauges"`, `"timeseries"`), in
    /// stream order.
    pub salvaged: Vec<&'static str>,
}

impl SalvageReport {
    /// True when every section restored intact (nothing was given up).
    pub fn is_clean(&self) -> bool {
        self.salvaged.is_empty()
    }
}

impl fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean restore")
        } else {
            write!(f, "salvaged sections: {}", self.salvaged.join(", "))
        }
    }
}

/// Errors from the file-level checkpoint helpers.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The bytes were not a valid checkpoint (truncated, wrong magic,
    /// unsupported version, corrupt, or mismatched against the embedded
    /// configuration).
    Snapshot(SnapshotError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Snapshot(e) => write!(f, "invalid checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Snapshot(e)
    }
}

/// Writes `em`'s checkpoint to `path` (atomic enough for the campaign
/// driver: a partial write fails to decode rather than silently
/// truncating state).
///
/// # Errors
///
/// Fails on I/O errors.
pub fn write_checkpoint(em: &Emulator, path: &Path) -> Result<(), CheckpointError> {
    std::fs::write(path, em.save_checkpoint())?;
    Ok(())
}

/// Reads a checkpoint from `path` and reconstructs the emulator.
///
/// # Errors
///
/// Fails on I/O errors and on any invalid checkpoint content.
pub fn read_checkpoint(path: &Path) -> Result<Emulator, CheckpointError> {
    let bytes = std::fs::read(path)?;
    Ok(Emulator::restore_checkpoint(&bytes)?)
}

/// Reads a checkpoint from `path`, salvaging damaged non-essential
/// sections (see [`Emulator::restore_checkpoint_salvaging`] for the
/// policy). The report names every section that was given up.
///
/// # Errors
///
/// Fails on I/O errors, header or frame damage, or damage to a required
/// section (config, policy, device).
pub fn read_checkpoint_salvaging(
    path: &Path,
) -> Result<(Emulator, SalvageReport), CheckpointError> {
    let bytes = std::fs::read(path)?;
    Ok(Emulator::restore_checkpoint_salvaging(&bytes)?)
}

fn check(cond: bool, what: &str) -> Result<(), SnapshotError> {
    if cond {
        Ok(())
    } else {
        Err(SnapshotError::Corrupt(format!("checkpoint config invalid: {what}")))
    }
}

/// Serializes the full device configuration.
pub fn encode_config(cfg: &SsdConfig, e: &mut Enc) {
    e.tag(0x51);
    e.u16(cfg.channels);
    e.u16(cfg.chips_per_channel);
    e.bool(cfg.track_tags);
    e.bool(cfg.stale_audit);
    let f = &cfg.ftl;
    f.geometry.encode_snapshot(e);
    e.usize(f.n_chips);
    e.usize(f.chips_per_channel);
    e.u8(match f.write_alloc {
        WriteAlloc::RoundRobin => 0,
        WriteAlloc::ChannelInterleaved => 1,
    });
    e.bool(f.lock_coalescing);
    e.u64(f.coalesce_window);
    e.f64(f.op_ratio);
    e.usize(f.gc_free_threshold);
    e.usize(f.block_min_plocks);
    e.bool(f.eager_gc_erase);
    e.u8(match f.gc_victim {
        GcVictimPolicy::Greedy => 0,
        GcVictimPolicy::CostBenefit => 1,
    });
    f.timing.encode_snapshot(e);
    e.u64(f.faults.seed);
    e.f64(f.faults.program_fail);
    e.f64(f.faults.erase_fail);
    e.f64(f.faults.plock_fail);
    e.f64(f.faults.block_lock_fail);
    e.f64(f.faults.read_unc);
    e.f64(f.faults.read_retry_decay);
    e.u32(f.faults.read_retry_budget);
    e.u32(f.reliability.plock_retry_budget);
    e.u32(f.reliability.block_retry_budget);
    e.u32(f.reliability.erase_retry_budget);
    e.u64(f.reliability.backoff_base.0);
    e.usize(f.reliability.spare_blocks);
    e.usize(f.reliability.spare_low_watermark);
}

/// Inverse of [`encode_config`], with graceful validation: every invariant
/// that [`SsdConfig::validate`] would panic on is reported as a
/// [`SnapshotError::Corrupt`] instead, so a damaged checkpoint cannot
/// bring the process down.
///
/// # Errors
///
/// Fails on truncation, structural corruption, or an invalid decoded
/// configuration.
pub fn decode_config(d: &mut Dec<'_>) -> Result<SsdConfig, SnapshotError> {
    d.expect_tag(0x51, "ssd-config")?;
    let channels = d.u16()?;
    let chips_per_channel = d.u16()?;
    let track_tags = d.bool()?;
    let stale_audit = d.bool()?;
    let geometry = Geometry::decode_snapshot(d)?;
    let n_chips = d.usize()?;
    let ftl_cpc = d.usize()?;
    let write_alloc = match d.u8()? {
        0 => WriteAlloc::RoundRobin,
        1 => WriteAlloc::ChannelInterleaved,
        t => return Err(SnapshotError::Corrupt(format!("unknown write-alloc tag {t}"))),
    };
    let lock_coalescing = d.bool()?;
    let coalesce_window = d.u64()?;
    let op_ratio = d.f64()?;
    let gc_free_threshold = d.usize()?;
    let block_min_plocks = d.usize()?;
    let eager_gc_erase = d.bool()?;
    let gc_victim = match d.u8()? {
        0 => GcVictimPolicy::Greedy,
        1 => GcVictimPolicy::CostBenefit,
        t => return Err(SnapshotError::Corrupt(format!("unknown gc-victim tag {t}"))),
    };
    let timing = TimingSpec::decode_snapshot(d)?;
    let faults = evanesco_ftl::FaultConfig {
        seed: d.u64()?,
        program_fail: d.f64()?,
        erase_fail: d.f64()?,
        plock_fail: d.f64()?,
        block_lock_fail: d.f64()?,
        read_unc: d.f64()?,
        read_retry_decay: d.f64()?,
        read_retry_budget: d.u32()?,
    };
    let reliability = ReliabilityConfig {
        plock_retry_budget: d.u32()?,
        block_retry_budget: d.u32()?,
        erase_retry_budget: d.u32()?,
        backoff_base: Nanos(d.u64()?),
        spare_blocks: d.usize()?,
        spare_low_watermark: d.usize()?,
    };
    let cfg = SsdConfig {
        channels,
        chips_per_channel,
        ftl: FtlConfig {
            geometry,
            n_chips,
            chips_per_channel: ftl_cpc,
            write_alloc,
            lock_coalescing,
            coalesce_window,
            op_ratio,
            gc_free_threshold,
            block_min_plocks,
            eager_gc_erase,
            gc_victim,
            timing,
            faults,
            reliability,
        },
        track_tags,
        stale_audit,
    };
    // Mirror SsdConfig::validate / FtlConfig::validate without panicking.
    check(cfg.channels > 0, "channels must be positive")?;
    check(cfg.chips_per_channel > 0, "chips_per_channel must be positive")?;
    check(cfg.n_chips() == cfg.ftl.n_chips, "channel topology and FTL chip count disagree")?;
    check(!cfg.stale_audit || cfg.track_tags, "stale_audit requires track_tags")?;
    let f = &cfg.ftl;
    check(f.geometry.blocks > 0, "geometry needs at least one block")?;
    check(f.geometry.wordlines_per_block > 0, "geometry needs at least one wordline")?;
    check(f.op_ratio > 0.0 && f.op_ratio < 1.0, "op_ratio must be in (0, 1)")?;
    check(f.logical_pages() > 0, "logical address space is empty")?;
    check(f.gc_free_threshold >= 1, "gc_free_threshold must be >= 1")?;
    check(f.chips_per_channel >= 1, "ftl chips_per_channel must be >= 1")?;
    check(
        f.chips_per_channel != 0 && f.n_chips.is_multiple_of(f.chips_per_channel),
        "chips_per_channel must divide n_chips",
    )?;
    check(f.coalesce_window >= 1, "coalesce_window must be >= 1")?;
    check(
        (f.geometry.blocks as usize) > f.gc_free_threshold,
        "gc_free_threshold needs more blocks per chip",
    )?;
    check(f.block_min_plocks >= 1, "block_min_plocks must be >= 1")?;
    for p in [
        f.faults.program_fail,
        f.faults.erase_fail,
        f.faults.plock_fail,
        f.faults.block_lock_fail,
        f.faults.read_unc,
        f.faults.read_retry_decay,
    ] {
        check((0.0..=1.0).contains(&p), "fault probability outside [0, 1]")?;
    }
    check(f.faults.program_fail < 1.0, "program_fail must be below 1")?;
    check(f.reliability.backoff_base.0 >= 1, "backoff_base must be positive")?;
    check(f.reliability.spare_blocks >= 1, "spare_blocks must be >= 1")?;
    check(
        f.reliability.spare_low_watermark < f.reliability.spare_blocks,
        "spare_low_watermark must be below spare_blocks",
    )?;
    check(
        f.reliability.spare_blocks < f.geometry.blocks as usize,
        "spare_blocks must be below blocks per chip",
    )?;
    Ok(cfg)
}

/// Serializes the sanitization policy.
pub fn encode_policy(policy: SanitizePolicy, e: &mut Enc) {
    e.tag(0x52);
    e.u8(match policy {
        SanitizePolicy::None => 0,
        SanitizePolicy::Evanesco { use_block: true } => 1,
        SanitizePolicy::Evanesco { use_block: false } => 2,
        SanitizePolicy::EraseBased => 3,
        SanitizePolicy::Scrub => 4,
    });
}

/// Inverse of [`encode_policy`].
///
/// # Errors
///
/// Fails on truncation or an unknown policy tag.
pub fn decode_policy(d: &mut Dec<'_>) -> Result<SanitizePolicy, SnapshotError> {
    d.expect_tag(0x52, "sanitize-policy")?;
    Ok(match d.u8()? {
        0 => SanitizePolicy::None,
        1 => SanitizePolicy::Evanesco { use_block: true },
        2 => SanitizePolicy::Evanesco { use_block: false },
        3 => SanitizePolicy::EraseBased,
        4 => SanitizePolicy::Scrub,
        t => return Err(SnapshotError::Corrupt(format!("unknown policy tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrip_all_variants() {
        for cfg in [SsdConfig::tiny_for_tests(), SsdConfig::paper(), SsdConfig::scaled(32)] {
            let mut e = Enc::new();
            encode_config(&cfg, &mut e);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            let back = decode_config(&mut d).unwrap();
            d.finish().unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn policy_roundtrip_all_variants() {
        for p in [
            SanitizePolicy::None,
            SanitizePolicy::Evanesco { use_block: true },
            SanitizePolicy::Evanesco { use_block: false },
            SanitizePolicy::EraseBased,
            SanitizePolicy::Scrub,
        ] {
            let mut e = Enc::new();
            encode_policy(p, &mut e);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(decode_policy(&mut d).unwrap(), p);
            d.finish().unwrap();
        }
    }

    #[test]
    fn corrupt_config_errors_instead_of_panicking() {
        let mut e = Enc::new();
        encode_config(&SsdConfig::tiny_for_tests(), &mut e);
        let mut bytes = e.into_bytes();
        // The channel count lives right after the section tag; zeroing it
        // must surface as Corrupt, not as a validate() panic.
        bytes[1] = 0;
        bytes[2] = 0;
        let mut d = Dec::new(&bytes);
        match decode_config(&mut d) {
            Err(SnapshotError::Corrupt(msg)) => assert!(msg.contains("channels")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}

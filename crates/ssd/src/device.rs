//! The timed NAND executor: applies FTL-issued operations to the Evanesco
//! chips and accounts simulated time on per-chip and per-channel resources.
//!
//! Timing model (paper §7 constants):
//!
//! * array operations (read, program, erase, `pLock`, `bLock`, scrub)
//!   occupy the chip serially;
//! * page transfers occupy the shared channel: programs transfer data in
//!   before the array operation, reads transfer data out after it;
//! * operations on different chips overlap freely (the source of the SSD's
//!   internal parallelism);
//! * GC and sanitization traffic stays on its own chip, so dependencies are
//!   captured by per-chip serialization.

use crate::config::SsdConfig;
use crate::timeline::Resource;
use evanesco_core::chip::{EvanescoChip, ReadResult};
use evanesco_ftl::executor::NandExecutor;
use evanesco_ftl::GlobalPpa;
use evanesco_nand::chip::{PageContent, PageData};
use evanesco_nand::geometry::BlockId;
use evanesco_nand::timing::{Nanos, TimingSpec};

/// Accumulated chip busy time per operation class — where the device's
/// time actually goes under each policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Array read time.
    pub read: Nanos,
    /// Array program time.
    pub program: Nanos,
    /// Block erase time.
    pub erase: Nanos,
    /// `pLock` time.
    pub plock: Nanos,
    /// `bLock` time.
    pub block: Nanos,
    /// Scrub (one-shot reprogram) time.
    pub scrub: Nanos,
    /// Channel transfer time.
    pub xfer: Nanos,
}

impl TimeBreakdown {
    /// Total accumulated busy time across classes (chip + channel,
    /// overlapping resources counted independently).
    pub fn total(&self) -> Nanos {
        self.read + self.program + self.erase + self.plock + self.block + self.scrub + self.xfer
    }
}

/// Timed executor over the SSD's chips.
#[derive(Debug, Clone)]
pub struct TimedExecutor {
    chips: Vec<EvanescoChip>,
    chip_res: Vec<Resource>,
    channel_res: Vec<Resource>,
    chips_per_channel: usize,
    timing: TimingSpec,
    /// Sum and count of observed erase→first-program gaps (open intervals).
    open_interval_sum: Nanos,
    open_interval_count: u64,
    breakdown: TimeBreakdown,
}

impl TimedExecutor {
    /// Creates the device array for a configuration.
    pub fn new(cfg: &SsdConfig) -> Self {
        cfg.validate();
        let n = cfg.n_chips();
        TimedExecutor {
            chips: (0..n)
                .map(|_| EvanescoChip::with_timing(cfg.ftl.geometry, cfg.ftl.timing))
                .collect(),
            chip_res: vec![Resource::new(); n],
            channel_res: vec![Resource::new(); cfg.channels as usize],
            chips_per_channel: cfg.chips_per_channel as usize,
            timing: cfg.ftl.timing,
            open_interval_sum: Nanos::ZERO,
            open_interval_count: 0,
            breakdown: TimeBreakdown::default(),
        }
    }

    fn channel_of(&self, chip: usize) -> usize {
        chip / self.chips_per_channel
    }

    /// Total simulated time: when the last resource goes idle.
    pub fn simulated_time(&self) -> Nanos {
        let chips = self.chip_res.iter().map(|r| r.busy_until()).max().unwrap_or(Nanos::ZERO);
        let chans = self.channel_res.iter().map(|r| r.busy_until()).max().unwrap_or(Nanos::ZERO);
        chips.max(chans)
    }

    /// The chips (for attacker verification and stats).
    pub fn chips(&self) -> &[EvanescoChip] {
        &self.chips
    }

    /// Mutable chip access.
    pub fn chips_mut(&mut self) -> &mut [EvanescoChip] {
        &mut self.chips
    }

    /// Aggregated lock counters across chips.
    pub fn lock_totals(&self) -> (u64, u64) {
        self.chips.iter().fold((0, 0), |(p, b), c| {
            let s = c.lock_stats();
            (p + s.plocks, b + s.blocks)
        })
    }

    /// Total block erases across chips.
    pub fn erase_total(&self) -> u64 {
        self.chips.iter().map(|c| c.nand_stats().erases).sum()
    }

    /// Busy-time accounting per operation class.
    pub fn time_breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Mean erase→first-program gap (open interval) observed so far, if any
    /// block was reused after an erase.
    pub fn mean_open_interval(&self) -> Option<Nanos> {
        self.open_interval_sum
            .0
            .checked_div(self.open_interval_count)
            .map(Nanos)
    }

    fn reserve_chip(&mut self, chip: usize, dur: Nanos) -> (Nanos, Nanos) {
        self.chip_res[chip].reserve(Nanos::ZERO, dur)
    }
}

impl NandExecutor for TimedExecutor {
    fn read(&mut self, at: GlobalPpa) -> Option<PageData> {
        let (_, array_end) = self.reserve_chip(at.chip, self.timing.t_read);
        let ch = self.channel_of(at.chip);
        self.channel_res[ch].reserve(array_end, self.timing.t_xfer_page);
        self.breakdown.read += self.timing.t_read;
        self.breakdown.xfer += self.timing.t_xfer_page;
        let out = self.chips[at.chip].read(at.ppa).expect("FTL issues in-range reads");
        match out.result {
            ReadResult::Locked => None,
            ReadResult::Content(PageContent::Data(d)) => Some(d),
            ReadResult::Content(_) => None,
        }
    }

    fn program(&mut self, at: GlobalPpa, data: PageData) {
        // Data-in transfer on the channel, then the array program.
        let ch = self.channel_of(at.chip);
        let (_, xfer_end) = self.channel_res[ch].reserve(Nanos::ZERO, self.timing.t_xfer_page);
        let (start, _) = self.chip_res[at.chip].reserve(xfer_end, self.timing.t_prog);
        self.breakdown.program += self.timing.t_prog;
        self.breakdown.xfer += self.timing.t_xfer_page;
        // Track the open interval on the first program after an erase.
        if at.ppa.page.0 == 0 {
            if let Some(erased_at) = self.chips[at.chip].last_erase_at(at.ppa.block) {
                self.open_interval_sum += start.saturating_sub(erased_at);
                self.open_interval_count += 1;
            }
        }
        self.chips[at.chip].program(at.ppa, data).expect("FTL issues legal programs");
    }

    fn erase(&mut self, chip: usize, block: BlockId) {
        let (_, end) = self.reserve_chip(chip, self.timing.t_bers);
        self.breakdown.erase += self.timing.t_bers;
        // Record the erase *completion* time: the open interval is the gap
        // between an erase finishing and the first program starting.
        self.chips[chip].erase(block, end).expect("FTL erases in-range blocks");
    }

    fn p_lock(&mut self, at: GlobalPpa) {
        self.reserve_chip(at.chip, self.timing.t_plock);
        self.breakdown.plock += self.timing.t_plock;
        self.chips[at.chip].p_lock(at.ppa).expect("FTL locks programmed pages");
    }

    fn b_lock(&mut self, chip: usize, block: BlockId) {
        self.reserve_chip(chip, self.timing.t_block);
        self.breakdown.block += self.timing.t_block;
        self.chips[chip].b_lock(block).expect("FTL locks in-range blocks");
    }

    fn scrub(&mut self, at: GlobalPpa) {
        self.reserve_chip(at.chip, self.timing.t_scrub);
        self.breakdown.scrub += self.timing.t_scrub;
        self.chips[at.chip].destroy_page(at.ppa).expect("FTL scrubs in-range pages");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::Ppa;

    fn exec() -> TimedExecutor {
        TimedExecutor::new(&SsdConfig::tiny_for_tests())
    }

    #[test]
    fn program_time_accumulates_on_one_chip() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        for p in 0..3 {
            ex.program(GlobalPpa::new(0, Ppa::new(0, p)), PageData::tagged(p as u64));
        }
        // Three programs serialized on chip 0: 3 * tPROG plus the first
        // transfer (later transfers overlap array time).
        let total = ex.simulated_time();
        let floor = t.t_prog * 3;
        assert!(total >= floor, "total {total} < floor {floor}");
        assert!(total.0 <= floor.0 + 3 * t.t_xfer_page.0);
    }

    #[test]
    fn different_chips_overlap() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        ex.program(GlobalPpa::new(1, Ppa::new(0, 0)), PageData::tagged(2));
        // Two chips on two channels: fully parallel apart from transfers.
        let total = ex.simulated_time();
        assert!(total < t.t_prog * 2, "no overlap: {total}");
    }

    #[test]
    fn lock_ops_account_time() {
        let mut ex = exec();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        let before = ex.simulated_time();
        ex.p_lock(GlobalPpa::new(0, Ppa::new(0, 0)));
        ex.b_lock(0, BlockId(0));
        let after = ex.simulated_time();
        assert_eq!(after - before, Nanos::from_micros(100 + 300));
        assert_eq!(ex.lock_totals(), (1, 1));
    }

    #[test]
    fn erase_counts_aggregate() {
        let mut ex = exec();
        ex.erase(0, BlockId(0));
        ex.erase(1, BlockId(1));
        assert_eq!(ex.erase_total(), 2);
    }

    #[test]
    fn time_breakdown_accounts_every_operation() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        ex.read(GlobalPpa::new(0, Ppa::new(0, 0)));
        ex.p_lock(GlobalPpa::new(0, Ppa::new(0, 0)));
        ex.b_lock(0, BlockId(0));
        ex.erase(0, BlockId(0));
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(2));
        ex.scrub(GlobalPpa::new(0, Ppa::new(0, 0)));
        let b = ex.time_breakdown();
        assert_eq!(b.read, t.t_read);
        assert_eq!(b.program, t.t_prog * 2);
        assert_eq!(b.erase, t.t_bers);
        assert_eq!(b.plock, t.t_plock);
        assert_eq!(b.block, t.t_block);
        assert_eq!(b.scrub, t.t_scrub);
        assert_eq!(b.xfer, t.t_xfer_page * 3);
        assert_eq!(
            b.total(),
            t.t_read + t.t_prog * 2 + t.t_bers + t.t_plock + t.t_block + t.t_scrub
                + t.t_xfer_page * 3
        );
    }

    #[test]
    fn open_interval_tracked_on_block_reuse() {
        let mut ex = exec();
        assert_eq!(ex.mean_open_interval(), None);
        ex.erase(0, BlockId(0));
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        let open = ex.mean_open_interval().expect("one reuse observed");
        // The program starts right after the erase finishes: the interval is
        // bounded by the transfer window.
        assert!(open <= TimingSpec::paper().t_xfer_page);
    }
}

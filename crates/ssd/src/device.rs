//! The timed NAND executor: applies FTL-issued operations to the Evanesco
//! chips and accounts simulated time on per-chip and per-channel resources.
//!
//! Timing model (paper §7 constants):
//!
//! * array operations (read, program, erase, `pLock`, `bLock`, scrub)
//!   occupy the chip serially;
//! * page transfers occupy the shared channel: programs transfer data in
//!   before the array operation, reads transfer data out after it;
//! * operations on different chips overlap freely (the source of the SSD's
//!   internal parallelism);
//! * GC and sanitization traffic stays on its own chip, so dependencies are
//!   captured by per-chip serialization.

use crate::config::SsdConfig;
use crate::timeline::Resource;
use crate::trace::{ResourceId, SpanKind, TraceEvent};
use evanesco_core::chip::{EvanescoChip, ReadResult};
use evanesco_core::fault::{FaultStats, OpStatus};
use evanesco_ftl::executor::{probe_block_on, probe_page_on, BlockProbe, NandExecutor, PageProbe};
use evanesco_ftl::{GlobalPpa, OpCause};
use evanesco_nand::chip::{PageContent, PageData};
use evanesco_nand::geometry::BlockId;
use evanesco_nand::timing::{Nanos, TimingSpec};

/// How a device command fares against an armed power cut.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OpFate {
    /// Finishes before the cut; carries the reserved array window.
    Completes { start: Nanos, end: Nanos },
    /// In flight when power drops: interrupted after this fraction of its
    /// latency.
    Torn(f64),
    /// Power was already gone when the command would have started; the
    /// chip never sees it.
    Lost,
}

/// Accumulated chip busy time per operation class — where the device's
/// time actually goes under each policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Array read time.
    pub read: Nanos,
    /// Array program time.
    pub program: Nanos,
    /// Block erase time.
    pub erase: Nanos,
    /// `pLock` time.
    pub plock: Nanos,
    /// `bLock` time.
    pub block: Nanos,
    /// Scrub (one-shot reprogram) time.
    pub scrub: Nanos,
    /// Channel transfer time.
    pub xfer: Nanos,
}

impl TimeBreakdown {
    /// Total accumulated busy time across classes (chip + channel,
    /// overlapping resources counted independently).
    pub fn total(&self) -> Nanos {
        self.read + self.program + self.erase + self.plock + self.block + self.scrub + self.xfer
    }
}

/// Timed executor over the SSD's chips.
#[derive(Debug, Clone)]
pub struct TimedExecutor {
    chips: Vec<EvanescoChip>,
    chip_res: Vec<Resource>,
    channel_res: Vec<Resource>,
    chips_per_channel: usize,
    timing: TimingSpec,
    /// Sum and count of observed erase→first-program gaps (open intervals).
    open_interval_sum: Nanos,
    open_interval_count: u64,
    breakdown: TimeBreakdown,
    /// Armed power-cut instant (absolute simulated time), if any.
    power_cut: Option<Nanos>,
    /// True once the cut has fired: all later mutating commands are lost.
    powered_off: bool,
    /// Salt for the deterministic torn-state draws, derived from the cut
    /// instant so every fault plan replays bit-identically.
    fault_salt: u64,
    /// False once any command in the current commit window was torn or
    /// lost (see [`TimedExecutor::begin_commit`]).
    window_clean: bool,
    /// Cached running maximum of every resource's `busy_until`, so
    /// [`TimedExecutor::simulated_time`] is O(1) instead of an O(chips)
    /// recompute per call (it is read on every host page).
    horizon: Nanos,
    /// Lower bound applied to every reservation while a dispatch window is
    /// open (see [`NandExecutor::begin_dispatch`]).
    dispatch_floor: Option<Nanos>,
    /// Completion time of everything issued inside the open dispatch
    /// window.
    dispatch_end: Nanos,
    /// When true, every reservation is mirrored into `trace_events` (one
    /// branch per reservation when disabled — the cost the CI overhead
    /// gate bounds).
    trace_on: bool,
    /// Resource intervals reserved since the last
    /// [`TimedExecutor::take_trace_events`] drain.
    trace_events: Vec<TraceEvent>,
    /// FTL cause scopes currently open ([`NandExecutor::push_cause`]);
    /// the innermost one stamps every traced reservation. Purely
    /// observational — never consulted for timing — and empty at every
    /// host-request boundary, so checkpoints exclude it.
    cause_stack: Vec<OpCause>,
}

impl TimedExecutor {
    /// Creates the device array for a configuration.
    pub fn new(cfg: &SsdConfig) -> Self {
        cfg.validate();
        let n = cfg.n_chips();
        TimedExecutor {
            chips: (0..n)
                .map(|i| {
                    let mut c = EvanescoChip::with_timing(cfg.ftl.geometry, cfg.ftl.timing);
                    c.enable_faults(cfg.ftl.faults, i as u64);
                    c
                })
                .collect(),
            chip_res: vec![Resource::new(); n],
            channel_res: vec![Resource::new(); cfg.channels as usize],
            chips_per_channel: cfg.chips_per_channel as usize,
            timing: cfg.ftl.timing,
            open_interval_sum: Nanos::ZERO,
            open_interval_count: 0,
            breakdown: TimeBreakdown::default(),
            power_cut: None,
            powered_off: false,
            fault_salt: 0,
            window_clean: true,
            horizon: Nanos::ZERO,
            dispatch_floor: None,
            dispatch_end: Nanos::ZERO,
            trace_on: false,
            trace_events: Vec::new(),
            cause_stack: Vec::new(),
        }
    }

    /// Enables or disables op-level tracing. While enabled, every chip
    /// and channel reservation is recorded as a [`TraceEvent`]; timing is
    /// never affected — the same reservations are made either way.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace_on = on;
        if !on {
            self.trace_events = Vec::new();
        }
    }

    /// Whether op-level tracing is enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.trace_on
    }

    /// Drains the events reserved since the last drain (the emulator
    /// calls this at each host-request boundary).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace_events)
    }

    /// Allocation-free drain: `into` (a recycled buffer) is cleared and
    /// swapped in as the new accumulation buffer; the drained events come
    /// back in the old one. Neither side reallocates, so per-request
    /// draining reuses the same two buffers for the whole run.
    pub fn take_trace_events_into(&mut self, mut into: Vec<TraceEvent>) -> Vec<TraceEvent> {
        into.clear();
        std::mem::replace(&mut self.trace_events, into)
    }

    /// Discards the accumulated events in place, keeping the buffer's
    /// capacity (the between-requests leftover drain).
    pub fn discard_trace_events(&mut self) {
        self.trace_events.clear();
    }

    fn trace_push(&mut self, kind: SpanKind, resource: ResourceId, start: Nanos, end: Nanos) {
        if self.trace_on && end > start {
            let cause = self.cause_stack.last().copied().unwrap_or(OpCause::Host);
            self.trace_events.push(TraceEvent { kind, cause, resource, start, end });
        }
    }

    /// The dependency floor for a reservation: the caller's `earliest`,
    /// raised to the open dispatch window's floor if one is set.
    fn floored(&self, earliest: Nanos) -> Nanos {
        match self.dispatch_floor {
            Some(f) => earliest.max(f),
            None => earliest,
        }
    }

    /// Records a reservation's end: maintains the simulated-time horizon
    /// and, inside a dispatch window, the window's completion time.
    fn note_end(&mut self, end: Nanos) {
        self.horizon = self.horizon.max(end);
        if self.dispatch_floor.is_some() {
            self.dispatch_end = self.dispatch_end.max(end);
        }
    }

    /// Arms a power cut at absolute simulated time `at`: the command in
    /// flight at `at` is interrupted mid-operation (leaving torn NAND
    /// state), every later command is lost before reaching a chip, and no
    /// further time accrues. [`TimedExecutor::power_on`] clears the cut.
    pub fn arm_power_cut(&mut self, at: Nanos) {
        self.power_cut = Some(at);
        self.powered_off = false;
        // Scramble the cut instant so nearby cuts draw unrelated torn
        // states (the per-cell hash downstream gets a well-mixed salt).
        self.fault_salt = at.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xE7A2_E5C0;
    }

    /// Restores power: clears any armed cut and advances every resource to
    /// the cut instant, so post-recovery work is timed from the moment the
    /// device came back, not from each chip's pre-cut idle point.
    pub fn power_on(&mut self) {
        if let Some(cut) = self.power_cut.take() {
            for r in self.chip_res.iter_mut().chain(self.channel_res.iter_mut()) {
                r.reserve(cut, Nanos::ZERO);
            }
            self.horizon = self.horizon.max(cut);
        }
        self.powered_off = false;
    }

    /// True once an armed cut has fired.
    pub fn powered_off(&self) -> bool {
        self.powered_off
    }

    /// Opens a commit window: [`TimedExecutor::commit_clean`] then reports
    /// whether every command issued since completed before the power cut.
    /// The emulator brackets each host request with this pair to decide
    /// whether the request was acknowledged.
    pub fn begin_commit(&mut self) {
        self.window_clean = true;
    }

    /// True iff no command since [`TimedExecutor::begin_commit`] was torn
    /// or lost to a power cut — i.e. the request's effects are durable.
    pub fn commit_clean(&self) -> bool {
        self.window_clean
    }

    /// Decides the fate of an array command of duration `dur` on `chip`,
    /// reserving exactly the time that was really consumed: the full
    /// window when it completes, the window up to the cut when torn, and
    /// nothing when power was already gone. Returns the fate and the
    /// consumed time (for breakdown accounting).
    fn op_fate(
        &mut self,
        chip: usize,
        earliest: Nanos,
        dur: Nanos,
        kind: SpanKind,
    ) -> (OpFate, Nanos) {
        let earliest = self.floored(earliest);
        if self.powered_off {
            self.window_clean = false;
            return (OpFate::Lost, Nanos::ZERO);
        }
        let Some(cut) = self.power_cut else {
            let (start, end) = self.chip_res[chip].reserve(earliest, dur);
            self.note_end(end);
            self.trace_push(kind, ResourceId::Chip(chip), start, end);
            return (OpFate::Completes { start, end }, dur);
        };
        let start = self.chip_res[chip].busy_until().max(earliest);
        if start >= cut {
            self.powered_off = true;
            self.window_clean = false;
            (OpFate::Lost, Nanos::ZERO)
        } else if start + dur > cut {
            let partial = cut - start;
            let (start, end) = self.chip_res[chip].reserve(earliest, partial);
            self.note_end(end);
            self.trace_push(kind, ResourceId::Chip(chip), start, end);
            self.powered_off = true;
            self.window_clean = false;
            (OpFate::Torn(partial.0 as f64 / dur.0 as f64), partial)
        } else {
            let (start, end) = self.chip_res[chip].reserve(earliest, dur);
            self.note_end(end);
            self.trace_push(kind, ResourceId::Chip(chip), start, end);
            (OpFate::Completes { start, end }, dur)
        }
    }

    fn channel_of(&self, chip: usize) -> usize {
        chip / self.chips_per_channel
    }

    /// Total simulated time: when the last resource goes idle. O(1) — the
    /// running maximum is maintained at every reservation.
    pub fn simulated_time(&self) -> Nanos {
        self.horizon
    }

    /// When `chip`'s array becomes free (scheduler input: dispatch the
    /// next independent request to the chip that idles first).
    pub fn chip_free_at(&self, chip: usize) -> Nanos {
        self.chip_res[chip].busy_until()
    }

    /// Per-chip occupied time (idle gaps excluded).
    pub fn chip_utilized(&self) -> Vec<Nanos> {
        self.chip_res.iter().map(|r| r.utilized()).collect()
    }

    /// Per-channel occupied time (idle gaps excluded). Divide by
    /// [`TimedExecutor::simulated_time`] for a utilization fraction.
    pub fn channel_utilized(&self) -> Vec<Nanos> {
        self.channel_res.iter().map(|r| r.utilized()).collect()
    }

    /// The chips (for attacker verification and stats).
    pub fn chips(&self) -> &[EvanescoChip] {
        &self.chips
    }

    /// Mutable chip access.
    pub fn chips_mut(&mut self) -> &mut [EvanescoChip] {
        &mut self.chips
    }

    /// Aggregated lock counters across chips.
    pub fn lock_totals(&self) -> (u64, u64) {
        self.chips.iter().fold((0, 0), |(p, b), c| {
            let s = c.lock_stats();
            (p + s.plocks, b + s.blocks)
        })
    }

    /// Total block erases across chips.
    pub fn erase_total(&self) -> u64 {
        self.chips.iter().map(|c| c.nand_stats().erases).sum()
    }

    /// Aggregated injected-fault counters across chips.
    pub fn fault_totals(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for c in &self.chips {
            total.absorb(c.fault_stats());
        }
        total
    }

    /// Busy-time accounting per operation class.
    pub fn time_breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Mean erase→first-program gap (open interval) observed so far, if any
    /// block was reused after an erase.
    pub fn mean_open_interval(&self) -> Option<Nanos> {
        self.open_interval_sum.0.checked_div(self.open_interval_count).map(Nanos)
    }

    /// Serializes the device array — every chip's full NAND/flag/fault
    /// state, the busy timelines, the simulated clock, breakdown counters,
    /// and any armed power cut — into a checkpoint stream. Trace state
    /// (`trace_on` / undrained `trace_events`) is deliberately excluded:
    /// tracing is observational and re-enabled by the restoring caller if
    /// desired.
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x42);
        e.usize(self.chips.len());
        for c in &self.chips {
            c.encode_state(e);
        }
        e.usize(self.chip_res.len());
        for r in &self.chip_res {
            e.u64(r.busy_until().0);
            e.u64(r.utilized().0);
        }
        e.usize(self.channel_res.len());
        for r in &self.channel_res {
            e.u64(r.busy_until().0);
            e.u64(r.utilized().0);
        }
        e.usize(self.chips_per_channel);
        self.timing.encode_snapshot(e);
        e.u64(self.open_interval_sum.0);
        e.u64(self.open_interval_count);
        for n in [
            self.breakdown.read,
            self.breakdown.program,
            self.breakdown.erase,
            self.breakdown.plock,
            self.breakdown.block,
            self.breakdown.scrub,
            self.breakdown.xfer,
        ] {
            e.u64(n.0);
        }
        e.opt(&self.power_cut, |e, n| e.u64(n.0));
        e.bool(self.powered_off);
        e.u64(self.fault_salt);
        e.bool(self.window_clean);
        e.u64(self.horizon.0);
        e.opt(&self.dispatch_floor, |e, n| e.u64(n.0));
        e.u64(self.dispatch_end.0);
    }

    /// Overlays checkpointed state written by
    /// [`TimedExecutor::encode_state`] onto this freshly-constructed
    /// executor (same configuration).
    ///
    /// # Errors
    ///
    /// Fails on truncation, structural corruption, or a chip/channel count
    /// that does not match this executor's configuration.
    pub fn decode_state(
        &mut self,
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<(), evanesco_nand::snapshot::SnapshotError> {
        use evanesco_nand::snapshot::SnapshotError;
        d.expect_tag(0x42, "timed-executor")?;
        let n_chips = d.usize()?;
        if n_chips != self.chips.len() {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint has {n_chips} chips, configuration has {}",
                self.chips.len()
            )));
        }
        for c in self.chips.iter_mut() {
            c.decode_state(d)?;
        }
        let n_res = d.usize()?;
        if n_res != self.chip_res.len() {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint has {n_res} chip timelines, configuration has {}",
                self.chip_res.len()
            )));
        }
        for r in self.chip_res.iter_mut() {
            *r = Resource::from_parts(Nanos(d.u64()?), Nanos(d.u64()?));
        }
        let n_ch = d.usize()?;
        if n_ch != self.channel_res.len() {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint has {n_ch} channel timelines, configuration has {}",
                self.channel_res.len()
            )));
        }
        for r in self.channel_res.iter_mut() {
            *r = Resource::from_parts(Nanos(d.u64()?), Nanos(d.u64()?));
        }
        let cpc = d.usize()?;
        if cpc != self.chips_per_channel {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint has {cpc} chips per channel, configuration has {}",
                self.chips_per_channel
            )));
        }
        let timing = TimingSpec::decode_snapshot(d)?;
        if timing != self.timing {
            return Err(SnapshotError::Mismatch(
                "checkpoint timing spec differs from configuration".into(),
            ));
        }
        self.open_interval_sum = Nanos(d.u64()?);
        self.open_interval_count = d.u64()?;
        self.breakdown = TimeBreakdown {
            read: Nanos(d.u64()?),
            program: Nanos(d.u64()?),
            erase: Nanos(d.u64()?),
            plock: Nanos(d.u64()?),
            block: Nanos(d.u64()?),
            scrub: Nanos(d.u64()?),
            xfer: Nanos(d.u64()?),
        };
        self.power_cut = d.opt(|d| Ok(Nanos(d.u64()?)))?;
        self.powered_off = d.bool()?;
        self.fault_salt = d.u64()?;
        self.window_clean = d.bool()?;
        self.horizon = Nanos(d.u64()?);
        self.dispatch_floor = d.opt(|d| Ok(Nanos(d.u64()?)))?;
        self.dispatch_end = Nanos(d.u64()?);
        Ok(())
    }

    fn reserve_chip(&mut self, chip: usize, dur: Nanos, kind: SpanKind) -> (Nanos, Nanos) {
        let earliest = self.floored(Nanos::ZERO);
        let (start, end) = self.chip_res[chip].reserve(earliest, dur);
        self.note_end(end);
        self.trace_push(kind, ResourceId::Chip(chip), start, end);
        (start, end)
    }

    fn reserve_channel(&mut self, ch: usize, earliest: Nanos, dur: Nanos) -> (Nanos, Nanos) {
        let (start, end) = self.channel_res[ch].reserve(earliest, dur);
        self.note_end(end);
        self.trace_push(SpanKind::Xfer, ResourceId::Channel(ch), start, end);
        (start, end)
    }
}

impl NandExecutor for TimedExecutor {
    fn read(&mut self, at: GlobalPpa) -> Option<PageData> {
        let (fate, consumed) =
            self.op_fate(at.chip, Nanos::ZERO, self.timing.t_read, SpanKind::Read);
        self.breakdown.read += consumed;
        if let OpFate::Completes { end, .. } = fate {
            let ch = self.channel_of(at.chip);
            self.reserve_channel(ch, end, self.timing.t_xfer_page);
            self.breakdown.xfer += self.timing.t_xfer_page;
        }
        // The array stays readable through the discharge: the read is
        // performed even when its window crossed the cut, so in-flight FTL
        // logic (e.g. a GC copy loop) sees consistent data. Its RAM-side
        // effects are discarded at recovery; only mutations are gated.
        let out = self.chips[at.chip].read(at.ppa).expect("FTL issues in-range reads");
        // Read-retry ladder: each chip-internal re-read re-occupies the
        // array for another sensing pass.
        let retries = self.chips[at.chip].last_read_retries();
        if retries > 0 {
            if let OpFate::Completes { .. } = fate {
                let extra = Nanos(self.timing.t_read.0 * u64::from(retries));
                // Re-sensing passes are fault-ladder work, not first-try
                // service: blame them on the retry cause.
                self.cause_stack.push(OpCause::Retry);
                self.reserve_chip(at.chip, extra, SpanKind::Read);
                self.cause_stack.pop();
                self.breakdown.read += extra;
            }
        }
        match out.result {
            ReadResult::Locked => None,
            ReadResult::Content(PageContent::Data(d)) => Some(d),
            ReadResult::Content(_) => None,
        }
    }

    fn program(&mut self, at: GlobalPpa, data: PageData) -> OpStatus {
        // Status never reaches the firmware across a power loss: torn and
        // lost commands report `Ok` and are healed by the recovery scan
        // instead (retrying against a dead bus would spin forever).
        if self.powered_off {
            self.window_clean = false;
            return OpStatus::Ok;
        }
        // Data-in transfer on the channel, then the array program. A cut
        // during the transfer means the array never saw the data: the
        // program is lost outright, not torn.
        let ch = self.channel_of(at.chip);
        let dep = self.floored(Nanos::ZERO);
        let xfer_start = self.channel_res[ch].busy_until().max(dep);
        let xfer_end = match self.power_cut {
            Some(cut) if xfer_start >= cut => {
                self.powered_off = true;
                self.window_clean = false;
                return OpStatus::Ok;
            }
            Some(cut) if xfer_start + self.timing.t_xfer_page > cut => {
                self.reserve_channel(ch, dep, cut - xfer_start);
                self.breakdown.xfer += cut - xfer_start;
                self.powered_off = true;
                self.window_clean = false;
                return OpStatus::Ok;
            }
            _ => {
                let (_, end) = self.reserve_channel(ch, dep, self.timing.t_xfer_page);
                self.breakdown.xfer += self.timing.t_xfer_page;
                end
            }
        };
        let (fate, consumed) =
            self.op_fate(at.chip, xfer_end, self.timing.t_prog, SpanKind::Program);
        self.breakdown.program += consumed;
        match fate {
            OpFate::Completes { start, .. } => {
                // Track the open interval on the first program after an erase.
                if at.ppa.page.0 == 0 {
                    if let Some(erased_at) = self.chips[at.chip].last_erase_at(at.ppa.block) {
                        self.open_interval_sum += start.saturating_sub(erased_at);
                        self.open_interval_count += 1;
                    }
                }
                self.chips[at.chip].program(at.ppa, data).expect("FTL issues legal programs");
                self.chips[at.chip].status()
            }
            OpFate::Torn(fraction) => {
                self.chips[at.chip]
                    .interrupt_program(at.ppa, data, fraction)
                    .expect("FTL issues legal programs");
                OpStatus::Ok
            }
            OpFate::Lost => OpStatus::Ok,
        }
    }

    fn erase(&mut self, chip: usize, block: BlockId) -> OpStatus {
        let (fate, consumed) = self.op_fate(chip, Nanos::ZERO, self.timing.t_bers, SpanKind::Erase);
        self.breakdown.erase += consumed;
        match fate {
            OpFate::Completes { end, .. } => {
                // Record the erase *completion* time: the open interval is
                // the gap between an erase finishing and the first program
                // starting.
                self.chips[chip].erase(block, end).expect("FTL erases in-range blocks");
                self.chips[chip].status()
            }
            OpFate::Torn(fraction) => {
                let salt = self.fault_salt;
                self.chips[chip]
                    .interrupt_erase(block, fraction, salt)
                    .expect("FTL erases in-range blocks");
                OpStatus::Ok
            }
            OpFate::Lost => OpStatus::Ok,
        }
    }

    fn p_lock(&mut self, at: GlobalPpa) -> OpStatus {
        let (fate, consumed) =
            self.op_fate(at.chip, Nanos::ZERO, self.timing.t_plock, SpanKind::PLock);
        self.breakdown.plock += consumed;
        match fate {
            OpFate::Completes { .. } => {
                self.chips[at.chip].p_lock(at.ppa).expect("FTL locks programmed pages");
                self.chips[at.chip].status()
            }
            OpFate::Torn(fraction) => {
                let salt = self.fault_salt;
                self.chips[at.chip]
                    .interrupt_p_lock(at.ppa, fraction, salt)
                    .expect("FTL locks programmed pages");
                OpStatus::Ok
            }
            OpFate::Lost => OpStatus::Ok,
        }
    }

    fn b_lock(&mut self, chip: usize, block: BlockId) -> OpStatus {
        let (fate, consumed) =
            self.op_fate(chip, Nanos::ZERO, self.timing.t_block, SpanKind::BLock);
        self.breakdown.block += consumed;
        match fate {
            OpFate::Completes { .. } => {
                self.chips[chip].b_lock(block).expect("FTL locks in-range blocks");
                self.chips[chip].status()
            }
            OpFate::Torn(fraction) => {
                let salt = self.fault_salt;
                self.chips[chip]
                    .interrupt_b_lock(block, fraction, salt)
                    .expect("FTL locks in-range blocks");
                OpStatus::Ok
            }
            OpFate::Lost => OpStatus::Ok,
        }
    }

    fn scrub(&mut self, at: GlobalPpa) {
        let (fate, consumed) =
            self.op_fate(at.chip, Nanos::ZERO, self.timing.t_scrub, SpanKind::Scrub);
        self.breakdown.scrub += consumed;
        match fate {
            OpFate::Completes { .. } => {
                self.chips[at.chip].destroy_page(at.ppa).expect("FTL scrubs in-range pages");
            }
            OpFate::Torn(fraction) => {
                self.chips[at.chip]
                    .interrupt_scrub(at.ppa, fraction)
                    .expect("FTL scrubs in-range pages");
            }
            OpFate::Lost => {}
        }
    }

    fn probe_page(&mut self, at: GlobalPpa) -> PageProbe {
        // Recovery runs powered-on: the scan pays one page read per probe.
        self.reserve_chip(at.chip, self.timing.t_read, SpanKind::Read);
        self.breakdown.read += self.timing.t_read;
        probe_page_on(&mut self.chips[at.chip], at.ppa)
    }

    fn probe_block(&mut self, chip: usize, block: BlockId) -> BlockProbe {
        probe_block_on(&self.chips[chip], block)
    }

    fn mark_bad(&mut self, chip: usize, block: BlockId) {
        // The retirement sentinel is a spare-area program (tPROG). A cut
        // mid-mark simply loses the mark: the next boot re-discovers the
        // failing erase and retires the block again.
        let (fate, consumed) =
            self.op_fate(chip, Nanos::ZERO, self.timing.t_prog, SpanKind::Program);
        self.breakdown.program += consumed;
        if let OpFate::Completes { .. } = fate {
            self.chips[chip].mark_bad_block(block).expect("FTL marks in-range blocks");
        }
    }

    fn stall(&mut self, chip: usize, dur: Nanos) {
        self.reserve_chip(chip, dur, SpanKind::Stall);
    }

    fn push_cause(&mut self, cause: OpCause) {
        self.cause_stack.push(cause);
    }

    fn pop_cause(&mut self) {
        self.cause_stack.pop();
    }

    fn begin_dispatch(&mut self, earliest: Nanos) {
        self.dispatch_floor = Some(earliest);
        self.dispatch_end = earliest;
    }

    fn end_dispatch(&mut self) -> Nanos {
        self.dispatch_floor = None;
        self.dispatch_end
    }

    fn now(&self) -> Nanos {
        self.simulated_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::Ppa;

    fn exec() -> TimedExecutor {
        TimedExecutor::new(&SsdConfig::tiny_for_tests())
    }

    #[test]
    fn program_time_accumulates_on_one_chip() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        for p in 0..3 {
            ex.program(GlobalPpa::new(0, Ppa::new(0, p)), PageData::tagged(p as u64));
        }
        // Three programs serialized on chip 0: 3 * tPROG plus the first
        // transfer (later transfers overlap array time).
        let total = ex.simulated_time();
        let floor = t.t_prog * 3;
        assert!(total >= floor, "total {total} < floor {floor}");
        assert!(total.0 <= floor.0 + 3 * t.t_xfer_page.0);
    }

    #[test]
    fn different_chips_overlap() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        ex.program(GlobalPpa::new(1, Ppa::new(0, 0)), PageData::tagged(2));
        // Two chips on two channels: fully parallel apart from transfers.
        let total = ex.simulated_time();
        assert!(total < t.t_prog * 2, "no overlap: {total}");
    }

    #[test]
    fn lock_ops_account_time() {
        let mut ex = exec();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        let before = ex.simulated_time();
        ex.p_lock(GlobalPpa::new(0, Ppa::new(0, 0)));
        ex.b_lock(0, BlockId(0));
        let after = ex.simulated_time();
        assert_eq!(after - before, Nanos::from_micros(100 + 300));
        assert_eq!(ex.lock_totals(), (1, 1));
    }

    #[test]
    fn erase_counts_aggregate() {
        let mut ex = exec();
        ex.erase(0, BlockId(0));
        ex.erase(1, BlockId(1));
        assert_eq!(ex.erase_total(), 2);
    }

    #[test]
    fn time_breakdown_accounts_every_operation() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        ex.read(GlobalPpa::new(0, Ppa::new(0, 0)));
        ex.p_lock(GlobalPpa::new(0, Ppa::new(0, 0)));
        ex.b_lock(0, BlockId(0));
        ex.erase(0, BlockId(0));
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(2));
        ex.scrub(GlobalPpa::new(0, Ppa::new(0, 0)));
        let b = ex.time_breakdown();
        assert_eq!(b.read, t.t_read);
        assert_eq!(b.program, t.t_prog * 2);
        assert_eq!(b.erase, t.t_bers);
        assert_eq!(b.plock, t.t_plock);
        assert_eq!(b.block, t.t_block);
        assert_eq!(b.scrub, t.t_scrub);
        assert_eq!(b.xfer, t.t_xfer_page * 3);
        assert_eq!(
            b.total(),
            t.t_read
                + t.t_prog * 2
                + t.t_bers
                + t.t_plock
                + t.t_block
                + t.t_scrub
                + t.t_xfer_page * 3
        );
    }

    #[test]
    fn power_cut_tears_the_inflight_program() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        // Array window: [tXFER, tXFER + tPROG). Cut past the halfway point
        // of the array time leaves a torn-but-decodable page.
        ex.arm_power_cut(t.t_xfer_page + Nanos(t.t_prog.0 * 3 / 4));
        ex.begin_commit();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(7));
        assert!(ex.powered_off());
        assert!(!ex.commit_clean());
        assert!(ex.chips()[0].page_is_torn(Ppa::new(0, 0)).unwrap());
        // Time stops at the cut instant.
        assert_eq!(ex.simulated_time(), t.t_xfer_page + Nanos(t.t_prog.0 * 3 / 4));
    }

    #[test]
    fn commands_after_the_cut_never_reach_the_chips() {
        let mut ex = exec();
        ex.arm_power_cut(Nanos(1)); // fires on the first array command
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        assert!(ex.powered_off());
        ex.program(GlobalPpa::new(0, Ppa::new(0, 1)), PageData::tagged(2));
        ex.erase(1, BlockId(0));
        assert_eq!(ex.chips()[0].next_program_index(BlockId(0)), 0);
        assert_eq!(ex.erase_total(), 0);
    }

    #[test]
    fn cut_during_data_transfer_loses_the_program_outright() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        ex.arm_power_cut(Nanos(t.t_xfer_page.0 / 2));
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        assert!(ex.powered_off());
        // The array never saw the data: no slot consumed, nothing torn.
        assert!(!ex.chips()[0].page_is_written(Ppa::new(0, 0)).unwrap());
    }

    #[test]
    fn torn_erase_carries_the_fault_salt() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        let busy = ex.simulated_time();
        // Cut a fifth into the erase: data survives, signature is set.
        ex.arm_power_cut(busy + Nanos(t.t_bers.0 / 5));
        ex.erase(0, BlockId(0));
        assert!(ex.powered_off());
        assert!(ex.chips()[0].block_torn_erase(BlockId(0)).unwrap());
    }

    #[test]
    fn power_on_advances_idle_resources_to_the_cut() {
        let mut ex = exec();
        ex.arm_power_cut(Nanos::from_micros(5000));
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        assert!(!ex.powered_off(), "op finished before the cut");
        ex.erase(1, BlockId(0)); // 3.5 ms erase crosses the 5 ms cut? no: starts at 0
        ex.power_on();
        assert!(!ex.powered_off());
        assert!(ex.simulated_time() >= Nanos::from_micros(5000));
        // Post-recovery work accrues from the cut, not from idle chips.
        let before = ex.simulated_time();
        ex.probe_page(GlobalPpa::new(1, Ppa::new(1, 0)));
        assert_eq!(ex.simulated_time() - before, TimingSpec::paper().t_read);
    }

    #[test]
    fn commit_window_reports_clean_completion() {
        let mut ex = exec();
        ex.begin_commit();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        assert!(ex.commit_clean(), "no cut armed: always clean");
        ex.arm_power_cut(ex.simulated_time() + Nanos(1));
        ex.begin_commit();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 1)), PageData::tagged(2));
        assert!(!ex.commit_clean());
    }

    #[test]
    fn probes_and_stalls_account_time() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(9));
        let before = ex.simulated_time();
        let probe = ex.probe_page(GlobalPpa::new(0, Ppa::new(0, 0)));
        assert!(probe.written);
        assert_eq!(probe.oob, None, "plain test data has no OOB");
        let block = ex.probe_block(0, BlockId(0));
        assert_eq!(block.next_program, 1);
        ex.stall(0, Nanos::from_micros(50));
        assert_eq!(ex.simulated_time() - before, t.t_read + Nanos::from_micros(50));
    }

    #[test]
    fn dispatch_window_floors_starts_and_reports_completion() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        ex.begin_dispatch(Nanos::from_micros(1000));
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        let done = ex.end_dispatch();
        // Both the transfer and the array program started no earlier than
        // the window's floor.
        assert_eq!(done, Nanos::from_micros(1000) + t.t_xfer_page + t.t_prog);
        assert_eq!(ex.simulated_time(), done);
        // After the window closes, reservations are unfloored again: work
        // on an idle chip starts at its own free time, not at the floor.
        ex.program(GlobalPpa::new(1, Ppa::new(0, 0)), PageData::tagged(2));
        assert_eq!(ex.chip_free_at(1), t.t_xfer_page + t.t_prog, "chip 1 never saw the floor");
    }

    #[test]
    fn simulated_time_cache_matches_resource_maximum() {
        let mut ex = exec();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        ex.program(GlobalPpa::new(1, Ppa::new(0, 0)), PageData::tagged(2));
        ex.erase(0, BlockId(1));
        ex.read(GlobalPpa::new(1, Ppa::new(0, 0)));
        // The 3.5 ms erase dominates chip 1's read chain, so the cached
        // horizon must equal chip 0's free time exactly.
        let max_chip = (0..2).map(|c| ex.chip_free_at(c)).max().unwrap();
        assert_eq!(ex.simulated_time(), max_chip);
        assert_eq!(ex.simulated_time(), ex.chip_free_at(0));
    }

    #[test]
    fn utilization_getters_track_busy_time() {
        let mut ex = exec();
        let t = TimingSpec::paper();
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        assert_eq!(ex.chip_utilized()[0], t.t_prog);
        assert_eq!(ex.chip_utilized()[1], Nanos::ZERO);
        assert_eq!(ex.channel_utilized()[0], t.t_xfer_page);
        assert_eq!(ex.chip_free_at(0), t.t_xfer_page + t.t_prog);
        assert_eq!(ex.chip_free_at(1), Nanos::ZERO);
    }

    #[test]
    fn open_interval_tracked_on_block_reuse() {
        let mut ex = exec();
        assert_eq!(ex.mean_open_interval(), None);
        ex.erase(0, BlockId(0));
        ex.program(GlobalPpa::new(0, Ppa::new(0, 0)), PageData::tagged(1));
        let open = ex.mean_open_interval().expect("one reuse observed");
        // The program starts right after the erase finishes: the interval is
        // bounded by the transfer window.
        assert!(open <= TimingSpec::paper().t_xfer_page);
    }
}

//! # evanesco-ssd
//!
//! The event-timed SSD emulator of the Evanesco (ASPLOS 2020) reproduction —
//! the stand-in for the paper's FlashBench-based SecureSSD prototype.
//!
//! * [`config::SsdConfig`] — channel topology + FTL configuration (the
//!   paper's 2 channels × 4 TLC chips by default);
//! * [`device::TimedExecutor`] — applies FTL operations to the Evanesco
//!   chips while accounting latency on per-chip and per-channel busy
//!   timelines;
//! * [`emulator::Emulator`] — the host-facing facade: writes with security
//!   requirements, reads, trims, attacker verification, and run metrics;
//! * [`sched::Scheduler`] — out-of-order multi-queue (NCQ) request
//!   scheduling with bounded queue depth and per-LPA ordering;
//! * [`metrics::RunResult`] — IOPS / WAF / erase / lock-mix / recovery
//!   summary;
//! * [`faultplan::FaultPlan`] — deterministic power-cut schedules for
//!   crash-recovery testing.
//!
//! ```rust
//! use evanesco_ssd::config::SsdConfig;
//! use evanesco_ssd::emulator::Emulator;
//! use evanesco_ftl::SanitizePolicy;
//!
//! # fn main() {
//! let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
//! ssd.write(0, 4, true);            // four secure pages
//! ssd.trim(0, 4);                   // delete them
//! assert!(ssd.verify_sanitized(0, 4));
//! println!("{:?}", ssd.result());
//! # }
//! ```

pub mod anatomy;
pub mod checkpoint;
pub mod config;
pub mod device;
pub mod emulator;
pub mod faultplan;
pub mod gauges;
pub mod hostfs;
pub mod jsonlite;
pub mod metrics;
pub mod prom;
pub mod sched;
pub mod timeline;
pub mod timeseries;
pub mod trace;
pub mod watchdog;

pub use anatomy::{AnatomyRecorder, RequestAnatomy, Stage};
pub use checkpoint::{
    read_checkpoint, read_checkpoint_salvaging, write_checkpoint, CheckpointError, SalvageReport,
};
pub use config::SsdConfig;
pub use emulator::Emulator;
pub use faultplan::FaultPlan;
pub use gauges::{GaugeSnapshot, LiveGauges};
pub use metrics::{LatencyBreakdown, RecoveryTotals, RunResult};
pub use sched::{check_lpa_range, HostOp, OpResult, SchedRun, Scheduler, SubmitError};
pub use timeseries::{TimeSeries, UtilWindow, WindowSample};
pub use trace::{validate_chrome_trace, RequestTrace, SpanKind, TraceRecorder};
pub use watchdog::{DeadlineConfig, Watchdog, WatchdogStats};

//! A minimal JSON value parser — just enough to round-trip and validate
//! the chrome://tracing exports and the checked-in trace schema without
//! pulling a serialization dependency into the workspace.
//!
//! Supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Integer-valued numbers without a
//! fraction or exponent are kept exactly as [`Json::Uint`]/[`Json::Int`]
//! (fleet-aggregated op/byte totals exceed 2^53, where `f64` starts
//! dropping low bits); everything else is kept as `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number written with a fraction or exponent (kept as `f64`).
    Num(f64),
    /// A non-negative integer literal, exact up to `u64::MAX`.
    Uint(u64),
    /// A negative integer literal, exact down to `i64::MIN`.
    Int(i64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic for tests.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, or `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, or `None` for non-objects.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string payload, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, or `None` for non-numbers. Integer
    /// literals above 2^53 lose precision in this view; use
    /// [`Json::as_u64`]/[`Json::as_i64`] where exactness matters.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Uint(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The exact unsigned-integer payload: integer literals that fit
    /// `u64`, or `None` (fractional/exponent forms included — they were
    /// already rounded through `f64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The exact signed-integer payload: integer literals that fit
    /// `i64`, or `None`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Uint(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// A one-word name for the value's type (for validation messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) | Json::Uint(_) | Json::Int(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the trace
                            // writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(b) if b < 0x80 => {
                    // Bulk-copy the plain-ASCII run (the overwhelmingly
                    // common case — validating from the cursor to the end
                    // of input per character would make parsing O(n²)).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
                Some(_) => {
                    // One multi-byte UTF-8 scalar: decode from at most the
                    // next four bytes.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let ch = match std::str::from_utf8(rest) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err("invalid utf-8".into()),
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            // Exact fast path: `f64` would silently drop low bits above
            // 2^53 (a real magnitude for fleet-aggregated counters).
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Json::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
            // Out-of-range integers fall back to the rounded f64 view.
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}, null], "c": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(a[2], Json::Null);
        assert!(v.get("c").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_multibyte_strings() {
        assert_eq!(Json::parse("\"héllo ✓ 你好\"").unwrap(), Json::Str("héllo ✓ 你好".into()));
        assert_eq!(Json::parse("\"mixé\"").unwrap(), Json::Str("mixé".into()));
        assert!(Json::parse("\"\u{10348}\"").is_ok(), "4-byte scalars decode");
        assert!(Json::parse(std::str::from_utf8(b"\"ab\"").unwrap()).is_ok());
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // Regression: the string fast path must not re-validate the rest
        // of the input per character (a 5 MB export took minutes).
        let big = format!("[{}]", vec!["\"0123456789abcdef\""; 100_000].join(","));
        let t = std::time::Instant::now();
        let v = Json::parse(&big).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 100_000);
        assert!(t.elapsed().as_secs() < 10, "parse took {:?}", t.elapsed());
    }

    #[test]
    fn integer_literals_round_trip_exactly_at_u64_max() {
        // Regression: the all-f64 parser rounded 2^53+1 to 2^53 and
        // u64::MAX to 2^64, silently corrupting drift-gate comparisons.
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::Uint(u64::MAX));
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let odd = Json::parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(odd.as_u64(), Some(9_007_199_254_740_993));
        let min = Json::parse("-9223372036854775808").unwrap();
        assert_eq!(min.as_i64(), Some(i64::MIN));
        assert_eq!(min.as_u64(), None, "negative literals have no u64 view");
    }

    #[test]
    fn fractional_and_exponent_forms_stay_floats() {
        assert_eq!(Json::parse("1.0").unwrap(), Json::Num(1.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("1.0").unwrap().as_u64(), None);
        // Integers beyond both u64 and i64 degrade to the rounded f64
        // view instead of failing the parse.
        let big = Json::parse("18446744073709551616").unwrap(); // 2^64
        assert_eq!(big.as_u64(), None);
        assert_eq!(big.as_num(), Some(2f64.powi(64)));
        assert_eq!(big.type_name(), "number");
    }

    #[test]
    fn escape_round_trips() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{0001}";
        let parsed = Json::parse(&format!("\"{}\"", escape(s))).unwrap();
        assert_eq!(parsed, Json::Str(s.into()));
    }
}

//! Windowed run telemetry: a bounded ring of periodic samples.
//!
//! PR 4's instrumentation exposes instantaneous gauges and end-of-run
//! totals; this module adds the time axis. At a fixed simulated-time
//! interval the emulator closes a *window*: a [`RunResult::since`] delta
//! over the window (windowed IOPS, WAF, lock/erase/GC/reliability
//! counters, latency histograms) plus a [`GaugeSnapshot`] of the live
//! VAF / T_insecure gauges and per-resource utilization fractions. The
//! paper's Figure 4 timeplots (N_valid / N_invalid over time) fall out of
//! the gauge fields of consecutive samples.
//!
//! Simulated time only advances at host-operation boundaries, so a window
//! closes at the first boundary at or after its due time; its recorded
//! `end` is that boundary. Quiet periods produce no empty windows — the
//! next window simply spans the gap. The ring keeps the most recent
//! `capacity` samples and counts evictions in [`TimeSeries::dropped`].
//!
//! Sampling is observational: it reads the clock and copies counters but
//! never issues device work, so runs with the series enabled are
//! byte-identical (simulated-time-wise) to runs without.

use crate::emulator::Emulator;
use crate::gauges::GaugeSnapshot;
use crate::metrics::RunResult;
use evanesco_nand::timing::Nanos;
use std::collections::VecDeque;

/// Mean and peak busy fraction over one window for one resource class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UtilWindow {
    /// Mean busy fraction across the class's resources.
    pub mean: f64,
    /// Busiest single resource's busy fraction.
    pub max: f64,
}

/// One closed telemetry window.
#[derive(Debug, Clone)]
pub struct WindowSample {
    /// Zero-based window number (monotone across ring eviction).
    pub index: u64,
    /// Simulated time the window opened (previous window's `end`).
    pub start: Nanos,
    /// Simulated time the window closed (first host-op boundary at or
    /// after the due time).
    pub end: Nanos,
    /// Everything that happened inside the window, as a whole-run delta:
    /// `iops` and `waf` are the *windowed* rates.
    pub delta: RunResult,
    /// Live gauges at `end` (present when gauges are enabled).
    pub gauges: Option<GaugeSnapshot>,
    /// T_insecure at `end`, normalized by device capacity (0 without
    /// gauges).
    pub t_insecure: f64,
    /// Chip busy fractions over the window.
    pub chip_util: UtilWindow,
    /// Channel busy fractions over the window.
    pub channel_util: UtilWindow,
}

/// The bounded ring of [`WindowSample`]s plus the cumulative baselines
/// needed to close the next window.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: Nanos,
    capacity: usize,
    ring: VecDeque<WindowSample>,
    /// Samples evicted because the ring was full.
    pub dropped: u64,
    next_index: u64,
    next_due: Nanos,
    window_start: Nanos,
    baseline: RunResult,
    chip_busy: Vec<Nanos>,
    channel_busy: Vec<Nanos>,
    capacity_pages: u64,
}

impl TimeSeries {
    /// Creates a series sampling every `interval` of simulated time,
    /// keeping at most `capacity` windows, armed on `em`'s current state.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval or zero capacity (both would be
    /// degenerate: an unbounded ring or an infinite loop of windows).
    pub fn new(interval: Nanos, capacity: usize, em: &Emulator) -> Self {
        assert!(interval > Nanos::ZERO, "timeseries interval must be positive");
        assert!(capacity > 0, "timeseries capacity must be positive");
        let now = em.device().simulated_time();
        TimeSeries {
            interval,
            capacity,
            ring: VecDeque::new(),
            dropped: 0,
            next_index: 0,
            next_due: Nanos(now.0 + interval.0),
            window_start: now,
            baseline: em.result(),
            chip_busy: em.device().chip_utilized(),
            channel_busy: em.device().channel_utilized(),
            capacity_pages: em.logical_pages(),
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// Closes a window if the clock has reached the due time (called by
    /// the emulator after each host-operation boundary).
    pub fn poll(&mut self, em: &Emulator) {
        let now = em.device().simulated_time();
        if now < self.next_due {
            return;
        }
        self.close_window(em, now);
        // One window spans the whole gap when the clock jumped several
        // intervals (e.g. across an erase); re-arm past it.
        while self.next_due <= now {
            self.next_due = Nanos(self.next_due.0 + self.interval.0);
        }
    }

    /// Force-closes a final partial window at the current clock (end of
    /// run). No-op when nothing happened since the last close. The window
    /// may be zero-span: operations overlapping earlier ones on parallel
    /// chips complete without advancing the device horizon.
    pub fn sample_now(&mut self, em: &Emulator) {
        let now = em.device().simulated_time();
        if now > self.window_start || em.result() != self.baseline {
            self.close_window(em, now);
            while self.next_due <= now {
                self.next_due = Nanos(self.next_due.0 + self.interval.0);
            }
        }
    }

    fn close_window(&mut self, em: &Emulator, now: Nanos) {
        let cur = em.result();
        let delta = cur.since(&self.baseline);
        let span = now.saturating_sub(self.window_start);
        let chip_now = em.device().chip_utilized();
        let channel_now = em.device().channel_utilized();
        let gauges = em.gauges().map(|g| g.snapshot());
        let t_insecure = gauges.map_or(0.0, |g| g.t_insecure(self.capacity_pages));
        let sample = WindowSample {
            index: self.next_index,
            start: self.window_start,
            end: now,
            delta,
            gauges,
            t_insecure,
            chip_util: util_window(&self.chip_busy, &chip_now, span),
            channel_util: util_window(&self.channel_busy, &channel_now, span),
        };
        self.next_index += 1;
        self.window_start = now;
        self.baseline = cur;
        self.chip_busy = chip_now;
        self.channel_busy = channel_now;
        self.ring.push_back(sample);
        if self.ring.len() > self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    /// Serializes the full series — interval, ring of closed windows, and
    /// the cumulative baselines arming the next window — into a
    /// checkpoint stream.
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x41);
        e.u64(self.interval.0);
        e.usize(self.capacity);
        e.usize(self.ring.len());
        for s in &self.ring {
            encode_window_sample(s, e);
        }
        e.u64(self.dropped);
        e.u64(self.next_index);
        e.u64(self.next_due.0);
        e.u64(self.window_start.0);
        self.baseline.encode_snapshot(e);
        e.usize(self.chip_busy.len());
        for &n in &self.chip_busy {
            e.u64(n.0);
        }
        e.usize(self.channel_busy.len());
        for &n in &self.channel_busy {
            e.u64(n.0);
        }
        e.u64(self.capacity_pages);
    }

    /// Reconstructs a series from a stream written by
    /// [`TimeSeries::encode_state`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or structural corruption.
    pub fn decode_state(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        use evanesco_nand::snapshot::SnapshotError;
        d.expect_tag(0x41, "timeseries")?;
        let interval = Nanos(d.u64()?);
        let capacity = d.usize()?;
        if interval == Nanos::ZERO || capacity == 0 {
            return Err(SnapshotError::Corrupt(
                "timeseries interval/capacity must be positive".into(),
            ));
        }
        let n_ring = d.usize()?;
        let mut ring = VecDeque::with_capacity(n_ring);
        for _ in 0..n_ring {
            ring.push_back(decode_window_sample(d)?);
        }
        let dropped = d.u64()?;
        let next_index = d.u64()?;
        let next_due = Nanos(d.u64()?);
        let window_start = Nanos(d.u64()?);
        let baseline = RunResult::decode_snapshot(d)?;
        let n_chips = d.usize()?;
        let mut chip_busy = Vec::with_capacity(n_chips);
        for _ in 0..n_chips {
            chip_busy.push(Nanos(d.u64()?));
        }
        let n_channels = d.usize()?;
        let mut channel_busy = Vec::with_capacity(n_channels);
        for _ in 0..n_channels {
            channel_busy.push(Nanos(d.u64()?));
        }
        Ok(TimeSeries {
            interval,
            capacity,
            ring,
            dropped,
            next_index,
            next_due,
            window_start,
            baseline,
            chip_busy,
            channel_busy,
            capacity_pages: d.u64()?,
        })
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &WindowSample> {
        self.ring.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no window has closed yet (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total windows closed over the run (retained + dropped).
    pub fn total(&self) -> u64 {
        self.next_index
    }

    /// Renders the retained samples as an aligned text table (one row per
    /// window), for reports and debugging.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "window      start_ns        end_ns     iops      waf  valid_sec  invalid_sec  t_insec  chip_util\n",
        );
        if self.dropped > 0 {
            out.push_str(&format!("... {} older windows dropped ...\n", self.dropped));
        }
        for s in &self.ring {
            let (v, i) = s.gauges.map_or((0, 0), |g| (g.valid_secured, g.invalid_secured));
            out.push_str(&format!(
                "{:>6} {:>13} {:>13} {:>8.0} {:>8.3} {:>10} {:>12} {:>8.4} {:>10.3}\n",
                s.index,
                s.start.0,
                s.end.0,
                s.delta.iops,
                s.delta.waf,
                v,
                i,
                s.t_insecure,
                s.chip_util.mean,
            ));
        }
        out
    }
}

fn encode_window_sample(s: &WindowSample, e: &mut evanesco_nand::snapshot::Enc) {
    e.u64(s.index);
    e.u64(s.start.0);
    e.u64(s.end.0);
    s.delta.encode_snapshot(e);
    e.opt(&s.gauges, |e, g| {
        e.u64(g.tick);
        e.u64(g.valid_secured);
        e.u64(g.invalid_secured);
        e.u64(g.max_valid);
        e.u64(g.max_invalid);
        e.u64(g.insecure_ticks);
        e.u64(g.sanitized_immediately);
        e.u64(g.exposed_then_erased);
        e.f64(g.vaf);
    });
    e.f64(s.t_insecure);
    e.f64(s.chip_util.mean);
    e.f64(s.chip_util.max);
    e.f64(s.channel_util.mean);
    e.f64(s.channel_util.max);
}

fn decode_window_sample(
    d: &mut evanesco_nand::snapshot::Dec<'_>,
) -> Result<WindowSample, evanesco_nand::snapshot::SnapshotError> {
    let index = d.u64()?;
    let start = Nanos(d.u64()?);
    let end = Nanos(d.u64()?);
    let delta = RunResult::decode_snapshot(d)?;
    let gauges = d.opt(|d| {
        Ok(GaugeSnapshot {
            tick: d.u64()?,
            valid_secured: d.u64()?,
            invalid_secured: d.u64()?,
            max_valid: d.u64()?,
            max_invalid: d.u64()?,
            insecure_ticks: d.u64()?,
            sanitized_immediately: d.u64()?,
            exposed_then_erased: d.u64()?,
            vaf: d.f64()?,
        })
    })?;
    Ok(WindowSample {
        index,
        start,
        end,
        delta,
        gauges,
        t_insecure: d.f64()?,
        chip_util: UtilWindow { mean: d.f64()?, max: d.f64()? },
        channel_util: UtilWindow { mean: d.f64()?, max: d.f64()? },
    })
}

/// Busy fractions of one resource class over a window of length `span`.
fn util_window(before: &[Nanos], now: &[Nanos], span: Nanos) -> UtilWindow {
    if span == Nanos::ZERO || before.is_empty() {
        return UtilWindow::default();
    }
    let fracs: Vec<f64> = now
        .iter()
        .zip(before)
        .map(|(n, b)| n.saturating_sub(*b).0 as f64 / span.0 as f64)
        .collect();
    UtilWindow {
        mean: fracs.iter().sum::<f64>() / fracs.len() as f64,
        max: fracs.iter().cloned().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use evanesco_ftl::SanitizePolicy;

    fn ssd() -> Emulator {
        Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco())
    }

    #[test]
    fn windows_tile_the_run_and_deltas_sum() {
        let mut em = ssd();
        em.enable_timeseries(Nanos::from_micros(200), 1024);
        let before = em.result();
        for i in 0..200 {
            em.write(i % 64, 1, true);
        }
        em.sample_timeseries_now();
        let after = em.result();
        let ts = em.timeseries().unwrap();
        assert!(ts.len() >= 2, "expected several windows, got {}", ts.len());
        // Adjacent windows tile [enable, last-close) exactly.
        let samples: Vec<&WindowSample> = ts.samples().collect();
        for pair in samples.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // Window deltas sum to the whole-run delta.
        let total_pages: u64 = samples.iter().map(|s| s.delta.host_ops).sum();
        assert_eq!(total_pages, after.since(&before).host_ops);
        let total_erases: u64 = samples.iter().map(|s| s.delta.erases).sum();
        assert_eq!(total_erases, after.since(&before).erases);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut em = ssd();
        em.enable_timeseries(Nanos::from_micros(100), 2);
        for i in 0..300 {
            em.write(i % 64, 1, true);
        }
        let ts = em.timeseries().unwrap();
        assert_eq!(ts.len(), 2);
        assert!(ts.dropped > 0);
        assert_eq!(ts.total(), ts.len() as u64 + ts.dropped);
    }

    #[test]
    fn gauge_fields_populate_when_gauges_enabled() {
        let mut em = ssd();
        em.enable_gauges();
        em.enable_timeseries(Nanos::from_micros(200), 256);
        for i in 0..120 {
            em.write(i % 48, 1, true);
        }
        let ts = em.timeseries().unwrap();
        let last = ts.samples().last().unwrap();
        let g = last.gauges.expect("gauges attached");
        assert!(g.valid_secured > 0);
        assert!(last.chip_util.mean > 0.0);
        assert!(last.chip_util.max <= 1.0 + 1e-9);
    }

    #[test]
    fn timeseries_is_timing_neutral() {
        let run = |enable: bool| {
            let mut em = ssd();
            if enable {
                em.enable_gauges();
                em.enable_timeseries(Nanos::from_micros(50), 128);
            }
            for i in 0..150 {
                em.write(i % 64, 1, true);
                if i % 7 == 0 {
                    em.trim(i % 32, 1);
                }
            }
            em.result()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn render_has_one_row_per_window() {
        let mut em = ssd();
        em.enable_timeseries(Nanos::from_micros(200), 64);
        for i in 0..100 {
            em.write(i % 64, 1, true);
        }
        let ts = em.timeseries().unwrap();
        let text = ts.render();
        assert_eq!(text.lines().count(), 1 + ts.len());
    }
}

//! Live device-wide sanitization gauges.
//!
//! [`LiveGauges`] is an [`FtlObserver`] computing, incrementally and
//! device-wide, the paper's two exposure metrics over **secured** data
//! (§3, Table 1):
//!
//! * **VAF** (version amplification factor) = peak invalid secured pages
//!   over peak valid secured pages — how many unsanitized stale versions
//!   pile up;
//! * **T_insecure** = logical time (one tick per accepted host page
//!   write) during which at least one deleted-but-recoverable secured
//!   page exists, normalized by the writes needed to fill the device.
//!
//! Unlike the per-file VerTrace study in `evanesco-workloads`, these are
//! whole-device gauges meant for live exposition: attach via
//! [`crate::emulator::Emulator::enable_gauges`] and scrape through
//! [`crate::emulator::Emulator::prometheus_scrape`]. Under an immediate
//! sanitization policy (secSSD/scrSSD) every invalidation is sanitized on
//! the spot, so the invalid count stays at zero and T_insecure stays ≈0 —
//! the paper's headline claim, now observable while a run executes.

use evanesco_ftl::observer::{FtlObserver, InvalidateCause};
use evanesco_ftl::{GlobalPpa, Lpa};
use std::collections::HashMap;

/// A point-in-time view of the gauges (what the exposition renders).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GaugeSnapshot {
    /// Logical time: accepted host page writes so far.
    pub tick: u64,
    /// Valid (live) secured pages on flash now.
    pub valid_secured: u64,
    /// Invalid secured pages still physically recoverable now.
    pub invalid_secured: u64,
    /// Peak of `valid_secured`.
    pub max_valid: u64,
    /// Peak of `invalid_secured`.
    pub max_invalid: u64,
    /// Ticks with `invalid_secured > 0`, open interval included.
    pub insecure_ticks: u64,
    /// Secured invalidations sanitized immediately (lock/scrub/erase).
    pub sanitized_immediately: u64,
    /// Invalid secured pages whose content was finally destroyed by a
    /// later erase — each spent a nonzero window exposed.
    pub exposed_then_erased: u64,
    /// Version amplification factor (`max_invalid / max_valid`).
    pub vaf: f64,
}

impl GaugeSnapshot {
    /// T_insecure normalized by `capacity_pages` (host writes that fill
    /// the device) — the Table-1 unit.
    pub fn t_insecure(&self, capacity_pages: u64) -> f64 {
        if capacity_pages == 0 {
            0.0
        } else {
            self.insecure_ticks as f64 / capacity_pages as f64
        }
    }
}

/// Incremental device-wide VAF / T_insecure gauges.
#[derive(Debug, Clone, Default)]
pub struct LiveGauges {
    tick: u64,
    valid: u64,
    invalid: u64,
    max_valid: u64,
    max_invalid: u64,
    insecure_ticks: u64,
    insecure_since: Option<u64>,
    sanitized_immediately: u64,
    exposed_then_erased: u64,
    /// `(chip, block)` → page → live? — only secured pages are tracked,
    /// and sanitized pages leave immediately, so this holds exactly the
    /// valid + exposed secured population (bounded by physical capacity).
    phys: HashMap<(usize, u32), HashMap<u32, bool>>,
}

impl LiveGauges {
    /// Fresh gauges at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current logical time (accepted host page writes).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Point-in-time snapshot (open insecure interval folded in).
    pub fn snapshot(&self) -> GaugeSnapshot {
        let open = self.insecure_since.map_or(0, |since| self.tick - since);
        GaugeSnapshot {
            tick: self.tick,
            valid_secured: self.valid,
            invalid_secured: self.invalid,
            max_valid: self.max_valid,
            max_invalid: self.max_invalid,
            insecure_ticks: self.insecure_ticks + open,
            sanitized_immediately: self.sanitized_immediately,
            exposed_then_erased: self.exposed_then_erased,
            vaf: if self.max_valid == 0 {
                0.0
            } else {
                self.max_invalid as f64 / self.max_valid as f64
            },
        }
    }

    /// Serializes the gauges — counters, the open insecure interval, and
    /// the tracked secured-page population (sorted, for a canonical byte
    /// stream) — into a checkpoint stream.
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x40);
        e.u64(self.tick);
        e.u64(self.valid);
        e.u64(self.invalid);
        e.u64(self.max_valid);
        e.u64(self.max_invalid);
        e.u64(self.insecure_ticks);
        e.opt(&self.insecure_since, |e, &t| e.u64(t));
        e.u64(self.sanitized_immediately);
        e.u64(self.exposed_then_erased);
        let mut blocks: Vec<_> = self.phys.keys().copied().collect();
        blocks.sort_unstable();
        e.usize(blocks.len());
        for key in blocks {
            e.usize(key.0);
            e.u32(key.1);
            let pages = &self.phys[&key];
            let mut ids: Vec<_> = pages.keys().copied().collect();
            ids.sort_unstable();
            e.usize(ids.len());
            for p in ids {
                e.u32(p);
                e.bool(pages[&p]);
            }
        }
    }

    /// Reconstructs gauges from a stream written by
    /// [`LiveGauges::encode_state`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or structural corruption.
    pub fn decode_state(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        d.expect_tag(0x40, "live-gauges")?;
        let tick = d.u64()?;
        let valid = d.u64()?;
        let invalid = d.u64()?;
        let max_valid = d.u64()?;
        let max_invalid = d.u64()?;
        let insecure_ticks = d.u64()?;
        let insecure_since = d.opt(|d| d.u64())?;
        let sanitized_immediately = d.u64()?;
        let exposed_then_erased = d.u64()?;
        let mut phys = HashMap::new();
        for _ in 0..d.usize()? {
            let key = (d.usize()?, d.u32()?);
            let mut pages = HashMap::new();
            for _ in 0..d.usize()? {
                let p = d.u32()?;
                pages.insert(p, d.bool()?);
            }
            phys.insert(key, pages);
        }
        Ok(LiveGauges {
            tick,
            valid,
            invalid,
            max_valid,
            max_invalid,
            insecure_ticks,
            insecure_since,
            sanitized_immediately,
            exposed_then_erased,
            phys,
        })
    }

    fn note_change(&mut self) {
        self.max_valid = self.max_valid.max(self.valid);
        self.max_invalid = self.max_invalid.max(self.invalid);
        match (self.invalid > 0, self.insecure_since) {
            (true, None) => self.insecure_since = Some(self.tick),
            (false, Some(since)) => {
                self.insecure_ticks += self.tick - since;
                self.insecure_since = None;
            }
            _ => {}
        }
    }
}

impl FtlObserver for LiveGauges {
    fn on_program(&mut self, _lpa: Lpa, at: GlobalPpa, _relocation: bool, secure: bool) {
        if !secure {
            return;
        }
        let prev =
            self.phys.entry((at.chip, at.ppa.block.0)).or_default().insert(at.ppa.page.0, true);
        match prev {
            // Normal case: a fresh page in an erased block.
            None => self.valid += 1,
            // Defensive: a re-program over a tracked exposed page (e.g. a
            // recovery rewrite) flips it back to valid, never double-counts.
            Some(false) => {
                self.valid += 1;
                self.invalid = self.invalid.saturating_sub(1);
            }
            Some(true) => {}
        }
        self.note_change();
    }

    fn on_invalidate(
        &mut self,
        at: GlobalPpa,
        secure: bool,
        sanitized: bool,
        _cause: InvalidateCause,
    ) {
        if !secure {
            return;
        }
        let key = (at.chip, at.ppa.block.0);
        let Some(block) = self.phys.get_mut(&key) else { return };
        let Some(live) = block.get_mut(&at.ppa.page.0) else { return };
        if *live {
            *live = false;
            self.valid -= 1;
        }
        if sanitized {
            block.remove(&at.ppa.page.0);
            self.sanitized_immediately += 1;
        } else {
            self.invalid += 1;
        }
        self.note_change();
    }

    fn on_erase(&mut self, chip: usize, block: evanesco_nand::geometry::BlockId) {
        let Some(entries) = self.phys.remove(&(chip, block.0)) else { return };
        for live in entries.into_values() {
            if live {
                self.valid = self.valid.saturating_sub(1);
            } else {
                self.invalid = self.invalid.saturating_sub(1);
                self.exposed_then_erased += 1;
            }
        }
        self.note_change();
    }

    fn on_host_tick(&mut self) {
        self.tick += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::{BlockId, Ppa};

    fn at(chip: usize, block: u32, page: u32) -> GlobalPpa {
        GlobalPpa::new(chip, Ppa::new(block, page))
    }

    #[test]
    fn sanitized_invalidations_keep_tinsec_zero() {
        let mut g = LiveGauges::new();
        g.on_host_tick();
        g.on_program(0, at(0, 0, 0), false, true);
        g.on_host_tick();
        g.on_program(0, at(0, 0, 1), false, true);
        g.on_invalidate(at(0, 0, 0), true, true, InvalidateCause::HostUpdate); // immediate sanitize
        for _ in 0..50 {
            g.on_host_tick();
        }
        let s = g.snapshot();
        assert_eq!(s.valid_secured, 1);
        assert_eq!(s.invalid_secured, 0);
        assert_eq!(s.insecure_ticks, 0);
        assert_eq!(s.sanitized_immediately, 1);
        assert_eq!(s.vaf, 0.0);
        assert_eq!(s.t_insecure(1000), 0.0);
    }

    #[test]
    fn unsanitized_invalidations_accrue_insecure_time() {
        let mut g = LiveGauges::new();
        g.on_program(0, at(0, 0, 0), false, true);
        for _ in 0..10 {
            g.on_host_tick();
        }
        g.on_invalidate(at(0, 0, 0), true, false, InvalidateCause::HostUpdate); // exposed from tick 10
        for _ in 0..5 {
            g.on_host_tick();
        }
        assert_eq!(g.snapshot().insecure_ticks, 5, "open interval counts");
        g.on_erase(0, BlockId(0)); // destroyed at tick 15
        for _ in 0..100 {
            g.on_host_tick();
        }
        let s = g.snapshot();
        assert_eq!(s.insecure_ticks, 5);
        assert_eq!(s.exposed_then_erased, 1);
        assert!((s.t_insecure(100) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn insecure_writes_are_invisible() {
        let mut g = LiveGauges::new();
        g.on_program(0, at(0, 0, 0), false, false);
        g.on_invalidate(at(0, 0, 0), false, false, InvalidateCause::HostUpdate);
        g.on_host_tick();
        let s = g.snapshot();
        assert_eq!((s.valid_secured, s.invalid_secured), (0, 0));
        assert_eq!(s.insecure_ticks, 0);
    }

    #[test]
    fn vaf_tracks_peaks() {
        let mut g = LiveGauges::new();
        // Two generations of two secured pages, never sanitized.
        for p in 0..2 {
            g.on_program(p as u64, at(0, 0, p), false, true);
        }
        for p in 0..2 {
            g.on_invalidate(at(0, 0, p), true, false, InvalidateCause::HostUpdate);
            g.on_program(p as u64, at(0, 1, p), false, true);
        }
        let s = g.snapshot();
        assert_eq!(s.max_valid, 2);
        assert_eq!(s.max_invalid, 2);
        assert!((s.vaf - 1.0).abs() < 1e-12);
    }
}

//! Out-of-order multi-queue host I/O scheduling (the NCQ model).
//!
//! The serialized host paths ([`crate::emulator::Emulator::write`] and
//! friends) model queue depth 1: request *n + 1* reaches the device only
//! after request *n* completes, so chips idle whenever the host thinks.
//! Real hosts keep a bounded number of tagged requests outstanding and let
//! the device complete them out of order. This module reproduces that:
//!
//! * at most `qd` requests are **outstanding** (submitted but not
//!   completed) at any simulated instant — the closed-loop NCQ contract;
//! * the device may dispatch any queued request whose logical pages do
//!   not overlap an **earlier-submitted, still-queued** request, so
//!   same-LPA operations never reorder (RAW/WAR/WAW all preserved) and
//!   host-visible results are byte-identical to queue depth 1;
//! * each dispatch is timed through the executor's *dispatch window*
//!   ([`evanesco_ftl::executor::NandExecutor::begin_dispatch`]): every
//!   reservation is floored at the request's earliest legal start (slot
//!   free + per-LPA dependencies), and the window reports the request's
//!   completion time. Independent requests thus overlap on idle chips
//!   while the per-chip/per-channel busy timelines still serialize real
//!   hardware conflicts.
//!
//! The scheduler itself is a pure scoreboard over completion times and
//! LPA ranges; [`crate::emulator::Emulator::run_scheduled`] drives it
//! against the FTL and the timed device array.

use evanesco_ftl::Lpa;
use evanesco_nand::timing::Nanos;
use std::collections::VecDeque;

/// Why a request was rejected at submission.
///
/// Submission-time validation is what keeps the per-LPA scoreboard sound:
/// a range that wrapped around the top of the LPA space would compare as
/// *disjoint* from the requests it actually overlaps, silently breaking
/// the same-LPA ordering invariant the byte-identity gates stand on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// `lpa + npages` overflows the LPA type, so the range cannot even be
    /// represented (let alone ordered against other requests).
    RangeOverflow {
        /// First logical page of the rejected request.
        lpa: Lpa,
        /// Page count of the rejected request.
        npages: u64,
    },
    /// The range is representable but ends beyond the device's logical
    /// capacity.
    OutOfBounds {
        /// First logical page of the rejected request.
        lpa: Lpa,
        /// Page count of the rejected request.
        npages: u64,
        /// The device's logical capacity in pages.
        logical_pages: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SubmitError::RangeOverflow { lpa, npages } => {
                write!(f, "LPA range [{lpa}, {lpa}+{npages}) overflows the logical address space")
            }
            SubmitError::OutOfBounds { lpa, npages, logical_pages } => write!(
                f,
                "LPA range [{lpa}, {}) ends beyond the {logical_pages}-page logical capacity",
                lpa + npages
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Validates the request range `[lpa, lpa + npages)` against a device of
/// `logical_pages` logical pages, returning the (checked) exclusive upper
/// bound.
///
/// Zero-page requests are legal no-ops: they overlap nothing and must
/// never panic, but their start still has to lie inside the address
/// space.
///
/// # Errors
///
/// [`SubmitError::RangeOverflow`] when `lpa + npages` wraps;
/// [`SubmitError::OutOfBounds`] when the range ends past `logical_pages`.
pub fn check_lpa_range(lpa: Lpa, npages: u64, logical_pages: u64) -> Result<Lpa, SubmitError> {
    let hi = lpa.checked_add(npages).ok_or(SubmitError::RangeOverflow { lpa, npages })?;
    if hi > logical_pages {
        return Err(SubmitError::OutOfBounds { lpa, npages, logical_pages });
    }
    Ok(hi)
}

/// One host request on the scheduled (multi-queue) submission path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOp {
    /// Write `npages` consecutive pages starting at `lpa`.
    Write {
        /// First logical page of the request.
        lpa: Lpa,
        /// Number of consecutive pages.
        npages: u64,
        /// Security requirement (the paper's non-`O_INSEC` path).
        secure: bool,
    },
    /// Read `npages` consecutive pages starting at `lpa`.
    Read {
        /// First logical page of the request.
        lpa: Lpa,
        /// Number of consecutive pages.
        npages: u64,
    },
    /// Trim (delete) `npages` consecutive pages starting at `lpa`.
    Trim {
        /// First logical page of the request.
        lpa: Lpa,
        /// Number of consecutive pages.
        npages: u64,
    },
}

impl HostOp {
    /// The logical page range `[start, start + len)` this request touches.
    pub fn lpa_range(&self) -> (Lpa, u64) {
        match *self {
            HostOp::Write { lpa, npages, .. }
            | HostOp::Read { lpa, npages }
            | HostOp::Trim { lpa, npages } => (lpa, npages),
        }
    }

    /// Number of logical pages the request touches.
    pub fn npages(&self) -> u64 {
        self.lpa_range().1
    }

    #[cfg(test)]
    fn overlaps(&self, other: &HostOp) -> bool {
        let (a, an) = self.lpa_range();
        let (b, bn) = other.lpa_range();
        a < b + bn && b < a + an
    }
}

/// The host-visible outcome of one scheduled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Content tags assigned to the written pages, plus whether the whole
    /// request was acknowledged (durable before any power cut).
    Write(Vec<u64>, bool),
    /// Per-page read results (tag of the mapped version, `None` if
    /// unmapped).
    Read(Vec<Option<u64>>),
    /// Whether the trim was acknowledged.
    Trim(bool),
    /// The request exceeded its class deadline on every attempt in the
    /// watchdog's retry budget and was failed without reaching the FTL
    /// (see [`crate::watchdog`]).
    TimedOut,
}

/// A dispatch decision: which submitted request to run next and the
/// earliest simulated time its device commands may start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Index of the request in the submitted trace.
    pub idx: usize,
    /// The request itself.
    pub op: HostOp,
    /// When the request's NCQ slot became available (queue wait is
    /// measured from here).
    pub submit: Nanos,
    /// Earliest legal start: the request's submission time (slot
    /// availability) joined with the completion of every earlier request
    /// touching an overlapping logical page.
    pub earliest: Nanos,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    idx: usize,
    op: HostOp,
    /// When the request's NCQ slot became available (the closed-loop
    /// submission time).
    submit: Nanos,
    /// Cached LPA range `[lo, hi)` (dispatch-selection hot loop).
    lo: Lpa,
    hi: Lpa,
    /// Completion time of the latest dispatched request overlapping this
    /// one — seeded from the dependency table at submission and advanced
    /// by [`Scheduler::complete`], so dispatch selection reads it instead
    /// of rescanning the table per candidate per call.
    dep: Nanos,
}

/// Closed-loop out-of-order request scoreboard.
///
/// Tracks at most `qd` outstanding requests, per-LPA completion times for
/// dependency ordering, and the in-flight completion heap that paces
/// closed-loop submission.
#[derive(Debug, Clone)]
pub struct Scheduler {
    qd: usize,
    /// Logical capacity in pages; every submitted range must end at or
    /// below it (also bounds the dense `last_done` table).
    logical_pages: u64,
    window: VecDeque<Queued>,
    /// Completion times of dispatched-but-still-outstanding requests.
    inflight: Vec<Nanos>,
    /// Completion time of the latest dispatched request touching each LPA,
    /// as a dense table indexed by LPA (grown on demand; `Nanos::ZERO`
    /// means "never touched", which is exactly what a missing entry meant).
    /// Requests address a bounded logical space, so this stays small and
    /// turns the per-page dependency check into a contiguous slice scan.
    last_done: Vec<Nanos>,
    /// Recycled scratch of LPA ranges for [`Scheduler::take_dispatch`]'s
    /// bypass check (avoids one heap allocation per dispatched request).
    blocked_scratch: Vec<(Lpa, Lpa)>,
    /// The request handed out by [`Scheduler::take_dispatch`] and not yet
    /// [`Scheduler::complete`]d.
    dispatched: Option<Queued>,
    /// Monotone submission clock (a slot freed in the past cannot admit a
    /// request before one admitted earlier).
    submit_clock: Nanos,
    /// Total requests ever submitted.
    submitted: u64,
    /// High-water mark of outstanding requests (diagnostics).
    max_outstanding: usize,
}

impl Scheduler {
    /// A scoreboard for queue depth `qd` over a device of
    /// `logical_pages` logical pages.
    ///
    /// # Panics
    ///
    /// Panics if `qd` is zero or `logical_pages` does not fit the host's
    /// address width (the dependency table is indexed by `usize`).
    pub fn new(qd: usize, logical_pages: u64) -> Self {
        assert!(qd >= 1, "queue depth must be at least 1");
        assert!(
            usize::try_from(logical_pages).is_ok(),
            "logical capacity ({logical_pages} pages) exceeds the host-indexable range"
        );
        Scheduler {
            qd,
            logical_pages,
            window: VecDeque::new(),
            inflight: Vec::new(),
            last_done: Vec::new(),
            blocked_scratch: Vec::new(),
            dispatched: None,
            submit_clock: Nanos::ZERO,
            submitted: 0,
            max_outstanding: 0,
        }
    }

    /// The configured queue depth.
    pub fn queue_depth(&self) -> usize {
        self.qd
    }

    /// Requests currently outstanding (queued, mid-dispatch, or in flight).
    pub fn outstanding(&self) -> usize {
        self.window.len() + self.inflight.len() + usize::from(self.dispatched.is_some())
    }

    /// Largest number of requests that were ever outstanding at once.
    pub fn max_outstanding(&self) -> usize {
        self.max_outstanding
    }

    /// Tries to admit trace entry `idx` into the device queue. Returns
    /// `Ok(false)` when every slot is held by a not-yet-dispatched
    /// request — the caller must dispatch before submitting more. When
    /// the queue is full of *in-flight* requests, the oldest-completing
    /// one retires and its completion time becomes this request's
    /// submission time (the closed-loop pacing).
    ///
    /// # Errors
    ///
    /// Rejects (without side effects) a request whose LPA range wraps or
    /// ends beyond the device's logical capacity — see [`SubmitError`].
    pub fn try_submit(&mut self, idx: usize, op: HostOp) -> Result<bool, SubmitError> {
        self.try_submit_at(idx, op, Nanos::ZERO)
    }

    /// [`Scheduler::try_submit`] with an open-loop arrival floor: the
    /// request's submission time is at least `arrival`, so a request
    /// cannot reach the device before the front end handed it over. The
    /// submission clock stays monotone — an `arrival` in the past is a
    /// no-op, exactly like a slot that freed in the past.
    ///
    /// # Errors
    ///
    /// Same contract as [`Scheduler::try_submit`].
    pub fn try_submit_at(
        &mut self,
        idx: usize,
        op: HostOp,
        arrival: Nanos,
    ) -> Result<bool, SubmitError> {
        let (lpa, n) = op.lpa_range();
        let hi = check_lpa_range(lpa, n, self.logical_pages)?;
        if self.outstanding() >= self.qd {
            // Retire the earliest-completing in-flight request to free a
            // slot; with none in flight the queue is all undispatched
            // work and submission must wait.
            let Some(min_at) =
                self.inflight.iter().enumerate().min_by_key(|&(_, t)| *t).map(|(i, _)| i)
            else {
                return Ok(false);
            };
            let freed = self.inflight.swap_remove(min_at);
            self.submit_clock = self.submit_clock.max(freed);
        }
        self.submit_clock = self.submit_clock.max(arrival);
        self.window.push_back(Queued {
            idx,
            op,
            submit: self.submit_clock,
            lo: lpa,
            hi,
            dep: self.deps_of(lpa, hi),
        });
        self.submitted += 1;
        self.max_outstanding = self.max_outstanding.max(self.outstanding());
        Ok(true)
    }

    /// Picks the next request to dispatch, removes it from the queue, and
    /// returns its earliest legal start time. Returns `None` when the
    /// queue is empty.
    ///
    /// Eligibility: a request may bypass earlier queued requests only when
    /// its LPA range overlaps none of them — per-LPA program order is
    /// inviolable. Among eligible requests the scheduler picks the one
    /// that can *execute* soonest, using `chip_hint` (e.g. the busy-until
    /// of the chip a read targets) to prefer requests aimed at idle
    /// hardware; ties go to submission order.
    ///
    /// # Panics
    ///
    /// Panics if the previous dispatch was not [`Scheduler::complete`]d.
    pub fn take_dispatch<F: Fn(&HostOp) -> Nanos>(&mut self, chip_hint: F) -> Option<Dispatch> {
        assert!(self.dispatched.is_none(), "previous dispatch not completed");
        let mut best: Option<(usize, Nanos, Nanos)> = None; // (pos, score, earliest)
        let mut blocked = std::mem::take(&mut self.blocked_scratch);
        blocked.clear();
        for (pos, q) in self.window.iter().enumerate() {
            let eligible = !blocked.iter().any(|&(lo, hi)| q.lo < hi && lo < q.hi);
            blocked.push((q.lo, q.hi));
            if !eligible {
                continue;
            }
            let earliest = q.submit.max(q.dep);
            let score = earliest.max(chip_hint(&q.op));
            if best.is_none_or(|(_, s, _)| score < s) {
                best = Some((pos, score, earliest));
            }
        }
        self.blocked_scratch = blocked;
        let (pos, _, earliest) = best?;
        let q = self.window.remove(pos).expect("selected position exists");
        self.dispatched = Some(q);
        Some(Dispatch { idx: q.idx, op: q.op, submit: q.submit, earliest })
    }

    /// Records the completion time of the request returned by the last
    /// [`Scheduler::take_dispatch`]: its pages' dependency times advance
    /// and the request joins the in-flight set.
    ///
    /// # Panics
    ///
    /// Panics when no dispatch is pending.
    pub fn complete(&mut self, done: Nanos) {
        let q = self.dispatched.take().expect("no dispatch pending");
        // `q.lo`/`q.hi` were range-checked at submission, so the casts and
        // slice bounds below cannot wrap.
        let end = q.hi as usize;
        if self.last_done.len() < end {
            self.last_done.resize(end, Nanos::ZERO);
        }
        for e in &mut self.last_done[q.lo as usize..end] {
            *e = (*e).max(done);
        }
        // Advance the cached dependency time of every queued request the
        // completed one overlaps (the window is at most `qd` entries).
        for w in &mut self.window {
            if w.lo < q.hi && q.lo < w.hi {
                w.dep = w.dep.max(done);
            }
        }
        self.inflight.push(done);
    }

    /// Completion time of the latest dispatched request overlapping the
    /// (already range-checked) span `[lo, hi)`.
    fn deps_of(&self, lo: Lpa, hi: Lpa) -> Nanos {
        let lo = (lo as usize).min(self.last_done.len());
        let hi = (hi as usize).min(self.last_done.len());
        self.last_done[lo..hi].iter().copied().max().unwrap_or(Nanos::ZERO)
    }

    /// Simulated completion time of the whole run: the latest in-flight
    /// completion (call after the queue drains).
    pub fn drain(&self) -> Nanos {
        assert!(self.window.is_empty() && self.dispatched.is_none(), "queue not drained");
        self.inflight.iter().copied().max().unwrap_or(self.submit_clock)
    }
}

/// Summary of one [`crate::emulator::Emulator::run_scheduled`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedRun {
    /// Per-request host-visible results, in trace order.
    pub results: Vec<OpResult>,
    /// Per-request absolute completion times (device clock), in trace
    /// order. Unlike `results` these are timing, not host-visible data:
    /// they vary with queue depth and are what open-loop callers (the
    /// fleet layer) use to attribute end-to-end sojourn latency.
    pub completions: Vec<Nanos>,
    /// Per-request NCQ slot-acquisition times (device clock), in trace
    /// order. `completions[i] - submits[i]` is the device-side end-to-end
    /// latency; `submits[i] - arrival` is the slot wait the open-loop
    /// front end imposed.
    pub submits: Vec<Nanos>,
    /// Simulated time the run occupied (completion of the last request
    /// minus the device time when the run started).
    pub sim_time: Nanos,
    /// Logical pages touched by dispatched requests.
    pub host_pages: u64,
    /// Requests dispatched.
    pub requests: u64,
    /// High-water mark of outstanding requests.
    pub max_outstanding: usize,
}

impl SchedRun {
    /// Host page operations per simulated second.
    pub fn iops(&self) -> f64 {
        let secs = self.sim_time.as_secs_f64();
        if secs > 0.0 {
            self.host_pages as f64 / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(lpa: Lpa, npages: u64) -> HostOp {
        HostOp::Write { lpa, npages, secure: true }
    }

    #[test]
    fn qd1_serializes_every_request() {
        let mut s = Scheduler::new(1, 1 << 20);
        assert!(s.try_submit(0, w(0, 1)).unwrap());
        assert!(!s.try_submit(1, w(5, 1)).unwrap(), "queue of one is full");
        let d = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!(d.idx, 0);
        assert_eq!(d.earliest, Nanos::ZERO);
        s.complete(Nanos::from_micros(700));
        // The next submission waits for the first completion even though
        // the LPAs are disjoint: queue depth, not data dependence.
        assert!(s.try_submit(1, w(5, 1)).unwrap());
        let d = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!(d.earliest, Nanos::from_micros(700));
    }

    #[test]
    fn same_lpa_requests_never_reorder() {
        let mut s = Scheduler::new(8, 1 << 20);
        assert!(s.try_submit(0, w(3, 2)).unwrap());
        assert!(s.try_submit(1, HostOp::Read { lpa: 4, npages: 1 }).unwrap()); // overlaps 0
        assert!(s.try_submit(2, w(100, 1)).unwrap()); // independent
                                                      // Request 1 is ineligible while request 0 is queued; request 2 may
                                                      // bypass both. Bias the hint so 2 looks cheapest.
        let hint =
            |op: &HostOp| if op.lpa_range().0 == 100 { Nanos::ZERO } else { Nanos::from_micros(9) };
        let d = s.take_dispatch(hint).unwrap();
        assert_eq!(d.idx, 2, "independent request bypasses");
        s.complete(Nanos::from_micros(700));
        let d = s.take_dispatch(hint).unwrap();
        assert_eq!(d.idx, 0, "read must not pass the overlapping write");
        s.complete(Nanos::from_micros(1400));
        let d = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!(d.idx, 1);
        assert_eq!(d.earliest, Nanos::from_micros(1400), "RAW dependency honored");
        s.complete(Nanos::from_micros(1480));
        assert!(s.take_dispatch(|_| Nanos::ZERO).is_none());
        assert_eq!(s.drain(), Nanos::from_micros(1480));
    }

    #[test]
    fn closed_loop_paces_submission_on_oldest_completion() {
        let mut s = Scheduler::new(2, 1 << 20);
        assert!(s.try_submit(0, w(0, 1)).unwrap());
        assert!(s.try_submit(1, w(1, 1)).unwrap());
        let d0 = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        s.complete(Nanos::from_micros(900));
        let d1 = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!((d0.idx, d1.idx), (0, 1));
        assert_eq!(d1.earliest, Nanos::ZERO, "second slot was free at time zero");
        s.complete(Nanos::from_micros(300));
        // Both slots held: the new request's submit time is the *earlier*
        // completion (300 us), not the later one.
        assert!(s.try_submit(2, w(2, 1)).unwrap());
        let d2 = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!(d2.earliest, Nanos::from_micros(300));
        s.complete(Nanos::from_micros(1100));
        assert_eq!(s.max_outstanding(), 2);
    }

    #[test]
    fn submission_clock_is_monotone() {
        let mut s = Scheduler::new(2, 1 << 20);
        assert!(s.try_submit(0, w(0, 1)).unwrap());
        assert!(s.try_submit(1, w(1, 1)).unwrap());
        s.take_dispatch(|_| Nanos::ZERO).unwrap();
        s.complete(Nanos::from_micros(1000));
        s.take_dispatch(|_| Nanos::ZERO).unwrap();
        s.complete(Nanos::from_micros(400));
        assert!(s.try_submit(2, w(2, 1)).unwrap()); // frees the 400 us slot
        assert!(s.try_submit(3, w(3, 1)).unwrap()); // frees the 1000 us slot
        let d2 = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        s.complete(Nanos::from_micros(1500));
        let d3 = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!(d2.earliest, Nanos::from_micros(400));
        assert_eq!(d3.earliest, Nanos::from_micros(1000), "submissions stay in host order");
    }

    #[test]
    fn full_window_of_undispatched_work_blocks_submission() {
        let mut s = Scheduler::new(2, 1 << 20);
        assert!(s.try_submit(0, w(0, 1)).unwrap());
        assert!(s.try_submit(1, w(1, 1)).unwrap());
        assert!(!s.try_submit(2, w(2, 1)).unwrap(), "nothing in flight to retire");
        s.take_dispatch(|_| Nanos::ZERO).unwrap();
        s.complete(Nanos::from_micros(10));
        assert!(s.try_submit(2, w(2, 1)).unwrap());
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_rejected() {
        Scheduler::new(0, 1 << 20);
    }

    #[test]
    fn range_overflow_near_u64_max_is_a_typed_error_not_a_panic() {
        // Regression: `hi: lpa + n` was unchecked — this submission
        // panicked in debug ("attempt to add with overflow") and wrapped
        // in release, making the range compare as disjoint from
        // everything it actually overlaps.
        let mut s = Scheduler::new(4, u64::MAX);
        let err = s.try_submit(0, w(u64::MAX - 2, 4)).unwrap_err();
        assert_eq!(err, SubmitError::RangeOverflow { lpa: u64::MAX - 2, npages: 4 });
        assert_eq!(s.outstanding(), 0, "rejected submissions leave no residue");
        // A representable range at the very top of the space is fine.
        assert!(s.try_submit(0, w(u64::MAX - 4, 4)).unwrap());
    }

    #[test]
    fn out_of_bounds_requests_are_rejected_at_submission() {
        let mut s = Scheduler::new(4, 100);
        let err = s.try_submit(0, w(99, 2)).unwrap_err();
        assert_eq!(err, SubmitError::OutOfBounds { lpa: 99, npages: 2, logical_pages: 100 });
        assert!(err.to_string().contains("100-page logical capacity"), "{err}");
        assert!(s.try_submit(0, w(99, 1)).unwrap(), "the last page is addressable");
    }

    #[test]
    fn zero_page_requests_are_legal_noops() {
        let mut s = Scheduler::new(4, 100);
        assert!(s.try_submit(0, w(5, 0)).unwrap());
        assert!(s.try_submit(1, w(5, 1)).unwrap(), "empty range blocks nothing");
        assert!(s.try_submit(2, w(100, 0)).unwrap(), "empty range at the boundary");
        let d = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!(d.op.npages(), 0);
        s.complete(Nanos::from_micros(1));
        let d = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!(d.idx, 1, "the write was never blocked by the empty range");
        s.complete(Nanos::from_micros(2));
        s.take_dispatch(|_| Nanos::ZERO).unwrap();
        s.complete(Nanos::from_micros(3));
    }

    #[test]
    fn arrival_floor_delays_submission_but_stays_monotone() {
        let mut s = Scheduler::new(2, 100);
        assert!(s.try_submit_at(0, w(0, 1), Nanos::from_micros(500)).unwrap());
        let d = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!(d.earliest, Nanos::from_micros(500), "open-loop arrival floors the start");
        s.complete(Nanos::from_micros(700));
        // An arrival in the past cannot rewind the clock.
        assert!(s.try_submit_at(1, w(1, 1), Nanos::from_micros(100)).unwrap());
        let d = s.take_dispatch(|_| Nanos::ZERO).unwrap();
        assert_eq!(d.submit, Nanos::from_micros(500));
        s.complete(Nanos::from_micros(900));
    }

    #[test]
    fn overlap_is_range_intersection() {
        assert!(w(0, 4).overlaps(&w(3, 1)));
        assert!(!w(0, 4).overlaps(&w(4, 1)));
        assert!(w(10, 1).overlaps(&HostOp::Trim { lpa: 8, npages: 3 }));
        assert!(!w(10, 1).overlaps(&HostOp::Read { lpa: 11, npages: 2 }));
    }
}

//! Per-request latency anatomy: an exact additive decomposition of every
//! traced host request's end-to-end latency into named stages, with
//! interference time attributed to its cause.
//!
//! The trace layer already proves a *tiling* identity — a request's
//! derived segments partition `[submit, end)` exactly (see
//! [`crate::trace`]). This module lifts that identity one level: each
//! segment is mapped to a **stage**, and wait time is *blamed* on
//! whatever actually occupied the blocking resource during the wait, by
//! consulting an occupancy timeline built from every traced command on
//! every chip and channel. The stage durations still sum to exactly the
//! end-to-end latency — time is only ever reclassified, never created or
//! dropped — so the anatomy inherits the tiling guarantee:
//!
//! ```text
//! e2e == queue_wait + dispatch_stall + xfer + chip_service
//!      + sanitize_interference + gc_interference + retry_interference
//! ```
//!
//! Classification rules (the blame model):
//!
//! * a request's **own** commands map by kind and cause: host-caused
//!   reads/programs are chip service, host transfers are transfer time,
//!   and anything issued under a GC / sanitization / fault-ladder cause
//!   scope — lock commands, scrubs, erases, GC copies, retry re-reads,
//!   firmware stalls — is interference of that cause;
//! * **wait** segments (in the service window but no own command
//!   running) are blamed against the occupancy timeline of the blocking
//!   resource — the resource of the request's next own command — for
//!   exactly the intervals an interference-class command of *any*
//!   request held it; the unattributed remainder stays dispatch stall;
//! * **queue wait** (before the earliest legal start) and watchdog
//!   backoff map to queue wait and retry interference respectively (the
//!   emulator passes the watchdog's penalty window alongside the trace).
//!
//! Blame needs hindsight: the command that blocked a fast request may
//! belong to a slower neighbor whose trace finishes later. Rows are
//! therefore held *pending* and resolved either when the bounded pending
//! window overflows or at [`AnatomyRecorder::finalize`], which every
//! reader (metrics export, experiment gates) calls first. Resolution
//! folds each row into per-kind/per-stage totals and histograms, a
//! deterministic top-K slowest digest carrying the full causal chain,
//! and the bounded resolved ring.
//!
//! The whole layer is observational: it reads finished traces and never
//! touches the simulated device, so enabling it cannot change results —
//! the `anatomy` experiment gate proves byte-identity.

use crate::metrics::LatencyHistogram;
use crate::trace::{ReqKind, RequestTrace, ResourceId, SpanKind};
use evanesco_ftl::{Lpa, OpCause};
use evanesco_nand::timing::Nanos;
use std::collections::{BTreeMap, VecDeque};

/// One stage of the end-to-end latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Fleet-level QoS shaping wait (arrival to shaped release). Never
    /// produced by the device-level recorder; the fleet layer prepends it
    /// so one stage vocabulary covers the whole path.
    QosWait,
    /// Queue wait: NCQ slot acquisition to the earliest legal start
    /// (same-LPA dependencies), watchdog backoff excluded.
    QueueWait,
    /// In the service window with no own command running and no
    /// interference-class command occupying the blocking resource.
    DispatchStall,
    /// Host-caused channel transfer time.
    Xfer,
    /// Host-caused array time (reads, programs).
    ChipService,
    /// Sanitization interference: lock traffic (`pLock` / `bLock`),
    /// scrubs, and sanitize-caused erases/copies — own or a neighbor's.
    SanitizeInterference,
    /// Garbage-collection interference: GC copies and cleaning erases.
    GcInterference,
    /// Fault-ladder interference: read-retry re-sensing, firmware
    /// stalls, and watchdog abort/backoff penalties.
    RetryInterference,
}

impl Stage {
    /// All stages, in export order.
    pub const ALL: [Stage; 8] = [
        Stage::QosWait,
        Stage::QueueWait,
        Stage::DispatchStall,
        Stage::Xfer,
        Stage::ChipService,
        Stage::SanitizeInterference,
        Stage::GcInterference,
        Stage::RetryInterference,
    ];

    /// Number of stages (array dimension).
    pub const COUNT: usize = Stage::ALL.len();

    /// Stable lowercase label (metric names and JSON).
    pub fn label(self) -> &'static str {
        match self {
            Stage::QosWait => "qos_wait",
            Stage::QueueWait => "queue_wait",
            Stage::DispatchStall => "dispatch_stall",
            Stage::Xfer => "xfer",
            Stage::ChipService => "chip_service",
            Stage::SanitizeInterference => "sanitize_interference",
            Stage::GcInterference => "gc_interference",
            Stage::RetryInterference => "retry_interference",
        }
    }

    /// Index into `[_; Stage::COUNT]` arrays.
    pub fn idx(self) -> usize {
        Stage::ALL.iter().position(|&s| s == self).expect("stage listed in ALL")
    }
}

/// All request kinds, in export order (the trace module defines the type
/// but not an index; the anatomy aggregates need one).
pub const REQ_KINDS: [ReqKind; 5] =
    [ReqKind::Write, ReqKind::Read, ReqKind::Trim, ReqKind::Recovery, ReqKind::Maintenance];

fn kind_idx(kind: ReqKind) -> usize {
    REQ_KINDS.iter().position(|&k| k == kind).expect("kind listed in REQ_KINDS")
}

/// The interference stage a command of `kind` issued under `cause`
/// charges, or `None` when it is ordinary host service (chip service /
/// transfer, depending on kind).
pub fn interference_of(kind: SpanKind, cause: OpCause) -> Option<Stage> {
    match kind {
        // Lock traffic and scrubs are sanitization overhead no matter
        // which path issued them — the cost Evanesco trades erases for.
        SpanKind::PLock | SpanKind::BLock | SpanKind::Scrub => Some(Stage::SanitizeInterference),
        // Firmware stalls are fault-ladder throttling.
        SpanKind::Stall => Some(Stage::RetryInterference),
        // Erases are cleaning work: sanitize-caused when the sanitizer
        // asked for them, GC otherwise (no erase is host service).
        SpanKind::Erase => Some(match cause {
            OpCause::Sanitize => Stage::SanitizeInterference,
            OpCause::Retry => Stage::RetryInterference,
            OpCause::Gc | OpCause::Host => Stage::GcInterference,
        }),
        SpanKind::Read | SpanKind::Program | SpanKind::Xfer => match cause {
            OpCause::Host => None,
            OpCause::Gc => Some(Stage::GcInterference),
            OpCause::Sanitize => Some(Stage::SanitizeInterference),
            OpCause::Retry => Some(Stage::RetryInterference),
        },
        SpanKind::QueueWait | SpanKind::Wait => None,
    }
}

/// One link of a request's causal chain: an interval of interference
/// time and what it is blamed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainLink {
    /// Interference stage charged.
    pub stage: Stage,
    /// Span kind of the blamed command (e.g. `PLock` for lock traffic).
    pub kind: SpanKind,
    /// Cause scope the blamed command ran under.
    pub cause: OpCause,
    /// Resource the blamed command occupied (`None` for the request's
    /// own segments and watchdog penalty windows, which have no single
    /// resource).
    pub resource: Option<ResourceId>,
    /// Absolute interval start.
    pub start: Nanos,
    /// Absolute interval end (exclusive).
    pub end: Nanos,
    /// True when the blamed command was issued by this request itself
    /// (self-inflicted interference: its own trim's locks, its own GC);
    /// false when the blocking command came from the occupancy timeline
    /// — a neighbor's traffic.
    pub own: bool,
}

impl ChainLink {
    /// Interval duration.
    pub fn dur(&self) -> Nanos {
        self.end - self.start
    }
}

/// Bound on the causal chain kept per request (longest-blame links win).
const CHAIN_CAP: usize = 64;

/// The resolved anatomy of one traced request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestAnatomy {
    /// The trace id ([`RequestTrace::id`]) this row was derived from.
    pub trace_id: u64,
    /// Submission-order index on the scheduled path (joins the row to
    /// the op list / tenant); `None` for serialized-path and
    /// maintenance rows.
    pub req_idx: Option<usize>,
    /// Request class.
    pub kind: ReqKind,
    /// First logical page.
    pub lpa: Lpa,
    /// Pages touched.
    pub npages: u64,
    /// Whether the request was acknowledged.
    pub acked: bool,
    /// Queue-slot acquisition time.
    pub submit: Nanos,
    /// Completion time.
    pub end: Nanos,
    /// Per-stage durations. Sums to exactly [`RequestAnatomy::e2e`].
    pub stages: [Nanos; Stage::COUNT],
    /// Causal chain: every interference interval, blamer named, in
    /// timeline order (bounded at `CHAIN_CAP` — longest links kept).
    pub chain: Vec<ChainLink>,
}

impl RequestAnatomy {
    /// End-to-end latency (device clock: slot acquisition to
    /// completion).
    pub fn e2e(&self) -> Nanos {
        self.end - self.submit
    }

    /// One stage's duration.
    pub fn stage(&self, s: Stage) -> Nanos {
        self.stages[s.idx()]
    }

    /// Sum of all stage durations — the tiling identity says this is
    /// exactly [`RequestAnatomy::e2e`].
    pub fn stage_sum(&self) -> Nanos {
        self.stages.iter().fold(Nanos::ZERO, |a, &b| a + b)
    }

    /// Total interference time (sanitize + GC + retry).
    pub fn interference(&self) -> Nanos {
        self.stage(Stage::SanitizeInterference)
            + self.stage(Stage::GcInterference)
            + self.stage(Stage::RetryInterference)
    }
}

/// An unresolved wait interval: blamed lazily once the occupancy
/// timeline has caught up (the blocking command may belong to a trace
/// recorded later).
#[derive(Debug, Clone, Copy)]
struct PendingWait {
    start: Nanos,
    end: Nanos,
    /// The blocking resource: where the request's next own command ran.
    /// `None` for trailing waits with no subsequent command — those have
    /// no blocking resource and stay dispatch stall.
    resource: Option<ResourceId>,
}

#[derive(Debug, Clone)]
struct Pending {
    row: RequestAnatomy,
    waits: Vec<PendingWait>,
}

/// One interval of the per-resource occupancy timeline (interference
/// commands only — host service never blames a wait).
#[derive(Debug, Clone, Copy)]
struct OccSlot {
    start: Nanos,
    end: Nanos,
    stage: Stage,
    kind: SpanKind,
    cause: OpCause,
}

/// Per-resource occupancy ring bound. Old intervals are only consulted
/// by waits that overlap them, so a bounded recent window suffices;
/// overflow is counted in [`AnatomyRecorder::occupancy_dropped`].
const OCC_CAP: usize = 4096;

/// Bounded per-request latency-anatomy recorder.
///
/// Fed one [`RequestTrace`] at a time by the emulator (tracing must be
/// on). Aggregates survive ring eviction; rows and the top-K digest are
/// bounded. Deterministic: identical runs produce identical anatomy.
#[derive(Debug, Clone)]
pub struct AnatomyRecorder {
    capacity: usize,
    top_k: usize,
    pending: VecDeque<Pending>,
    resolved: VecDeque<RequestAnatomy>,
    occupancy: BTreeMap<ResourceId, VecDeque<OccSlot>>,
    occ_dropped: u64,
    recorded: u64,
    dropped: u64,
    /// Total stage time per request kind, across every recorded row.
    totals: [[Nanos; Stage::COUNT]; REQ_KINDS.len()],
    /// Per-kind/per-stage duration histograms (one sample per request).
    hists: [[LatencyHistogram; Stage::COUNT]; REQ_KINDS.len()],
    /// Deterministic top-K slowest rows: ordered by (e2e desc, trace id
    /// asc), ring eviction notwithstanding.
    top: Vec<RequestAnatomy>,
}

impl AnatomyRecorder {
    /// A recorder retaining at most `capacity` resolved rows and a
    /// top-`top_k` slowest digest.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, top_k: usize) -> Self {
        assert!(capacity > 0, "anatomy ring capacity must be positive");
        AnatomyRecorder {
            capacity,
            top_k,
            pending: VecDeque::new(),
            resolved: VecDeque::with_capacity(capacity.min(4096)),
            occupancy: BTreeMap::new(),
            occ_dropped: 0,
            recorded: 0,
            dropped: 0,
            totals: [[Nanos::ZERO; Stage::COUNT]; REQ_KINDS.len()],
            hists: [[LatencyHistogram::new(); Stage::COUNT]; REQ_KINDS.len()],
            top: Vec::new(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Rows evicted from the resolved ring (aggregates and the top-K
    /// digest still cover them).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Occupancy intervals evicted from a full per-resource window —
    /// wait blame may be undercounted (never overcounted) when nonzero.
    pub fn occupancy_dropped(&self) -> u64 {
        self.occ_dropped
    }

    /// Total stage time for `kind` requests in `stage`, across every
    /// *resolved* row (call [`AnatomyRecorder::finalize`] first to
    /// settle the pending window).
    pub fn stage_total(&self, kind: ReqKind, stage: Stage) -> Nanos {
        self.totals[kind_idx(kind)][stage.idx()]
    }

    /// Per-request duration histogram for `kind` × `stage` (resolved
    /// rows).
    pub fn stage_hist(&self, kind: ReqKind, stage: Stage) -> &LatencyHistogram {
        &self.hists[kind_idx(kind)][stage.idx()]
    }

    /// The retained resolved rows, oldest first.
    pub fn rows(&self) -> impl Iterator<Item = &RequestAnatomy> {
        self.resolved.iter()
    }

    /// The top-K slowest resolved rows, slowest first (ties broken by
    /// trace id ascending — fully deterministic).
    pub fn top(&self) -> &[RequestAnatomy] {
        &self.top
    }

    /// Rows recorded but not yet blame-resolved.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Ingests one finished trace. `retry` is the watchdog penalty
    /// window (absolute), if the request was aborted and backed off;
    /// `req_idx` joins the row to a scheduled-run op index.
    pub fn record(
        &mut self,
        t: &RequestTrace,
        retry: Option<(Nanos, Nanos)>,
        req_idx: Option<usize>,
    ) {
        let mut stages = [Nanos::ZERO; Stage::COUNT];
        let mut chain: Vec<ChainLink> = Vec::new();
        let mut waits: Vec<PendingWait> = Vec::new();
        for seg in &t.segments {
            match seg.kind {
                SpanKind::QueueWait | SpanKind::Wait => {
                    let base = if seg.kind == SpanKind::QueueWait {
                        Stage::QueueWait
                    } else {
                        Stage::DispatchStall
                    };
                    // Watchdog penalty first: the backoff window is retry
                    // interference wherever it lands in the timeline.
                    let (rs, re) = match retry {
                        Some((rs, re)) => (rs.max(seg.start), re.min(seg.end)),
                        None => (seg.start, seg.start),
                    };
                    if re > rs {
                        stages[Stage::RetryInterference.idx()] += re - rs;
                        chain.push(ChainLink {
                            stage: Stage::RetryInterference,
                            kind: seg.kind,
                            cause: OpCause::Retry,
                            resource: None,
                            start: rs,
                            end: re,
                            own: true,
                        });
                    }
                    // The un-penalized remainder: queue wait stays queue
                    // wait; service-window waits go to the occupancy
                    // blame pass.
                    for (a, b) in [(seg.start, rs.max(seg.start)), (re.max(seg.start), seg.end)] {
                        if b <= a {
                            continue;
                        }
                        if base == Stage::QueueWait {
                            stages[base.idx()] += b - a;
                        } else {
                            stages[base.idx()] += b - a;
                            waits.push(PendingWait {
                                start: a,
                                end: b,
                                resource: next_own_resource(t, b),
                            });
                        }
                    }
                }
                kind => {
                    // An own command: charge its stage directly.
                    match interference_of(kind, seg.cause) {
                        Some(stage) => {
                            stages[stage.idx()] += seg.dur();
                            chain.push(ChainLink {
                                stage,
                                kind,
                                cause: seg.cause,
                                resource: None,
                                start: seg.start,
                                end: seg.end,
                                own: true,
                            });
                        }
                        None => {
                            let stage = if kind == SpanKind::Xfer {
                                Stage::Xfer
                            } else {
                                Stage::ChipService
                            };
                            stages[stage.idx()] += seg.dur();
                        }
                    }
                }
            }
        }
        // Every interference-class command this request issued joins the
        // occupancy timeline, so neighbors' waits can be blamed on it.
        for e in &t.events {
            if let Some(stage) = interference_of(e.kind, e.cause) {
                let ring = self.occupancy.entry(e.resource).or_default();
                if ring.len() == OCC_CAP {
                    ring.pop_front();
                    self.occ_dropped += 1;
                }
                ring.push_back(OccSlot {
                    start: e.start,
                    end: e.end,
                    stage,
                    kind: e.kind,
                    cause: e.cause,
                });
            }
        }
        let row = RequestAnatomy {
            trace_id: t.id,
            req_idx,
            kind: t.kind,
            lpa: t.lpa,
            npages: t.npages,
            acked: t.acked,
            submit: t.submit,
            end: t.end,
            stages,
            chain,
        };
        self.recorded += 1;
        self.pending.push_back(Pending { row, waits });
        // Bound the pending window: the oldest row resolves against the
        // occupancy seen so far (its blockers completed long ago).
        if self.pending.len() > self.capacity {
            let p = self.pending.pop_front().expect("pending nonempty");
            self.resolve_one(p);
        }
    }

    /// Resolves every pending row against the full occupancy timeline
    /// and folds it into the aggregates. Call before reading totals,
    /// histograms, rows, or the top-K digest. Idempotent.
    pub fn finalize(&mut self) {
        while let Some(p) = self.pending.pop_front() {
            self.resolve_one(p);
        }
    }

    fn resolve_one(&mut self, p: Pending) {
        let Pending { mut row, waits } = p;
        for w in &waits {
            let Some(res) = w.resource else { continue };
            let Some(ring) = self.occupancy.get(&res) else { continue };
            for slot in ring {
                let a = slot.start.max(w.start);
                let b = slot.end.min(w.end);
                if b <= a {
                    continue;
                }
                // Reclassify: the blocking resource was held by an
                // interference-class command for [a, b). Occupancy
                // intervals on a serial resource are disjoint, so the
                // reclassified total never exceeds the wait.
                let dur = b - a;
                row.stages[Stage::DispatchStall.idx()] =
                    row.stages[Stage::DispatchStall.idx()] - dur;
                row.stages[slot.stage.idx()] += dur;
                row.chain.push(ChainLink {
                    stage: slot.stage,
                    kind: slot.kind,
                    cause: slot.cause,
                    resource: Some(res),
                    start: a,
                    end: b,
                    own: false,
                });
            }
        }
        // Deterministic chain order and bound: timeline order, longest
        // links retained when over the cap.
        row.chain.sort_by_key(|l| (l.start, l.end, l.stage.idx()));
        if row.chain.len() > CHAIN_CAP {
            let mut by_dur: Vec<usize> = (0..row.chain.len()).collect();
            by_dur.sort_by_key(|&i| (std::cmp::Reverse(row.chain[i].dur()), i));
            by_dur.truncate(CHAIN_CAP);
            by_dur.sort_unstable();
            row.chain = by_dur.into_iter().map(|i| row.chain[i]).collect();
        }
        let k = kind_idx(row.kind);
        for s in Stage::ALL {
            self.totals[k][s.idx()] += row.stages[s.idx()];
            self.hists[k][s.idx()].record(row.stages[s.idx()]);
        }
        // Top-K insert: (e2e desc, trace id asc).
        self.top.push(row.clone());
        self.top.sort_by_key(|r| (std::cmp::Reverse(r.e2e()), r.trace_id));
        self.top.truncate(self.top_k);
        if self.resolved.len() == self.capacity {
            self.resolved.pop_front();
            self.dropped += 1;
        }
        self.resolved.push_back(row);
    }
}

/// The resource of the request's next own command starting at or after
/// `at` — the resource the request was actually blocked on during a wait
/// ending at `at`. `None` when no own command follows (trailing wait).
fn next_own_resource(t: &RequestTrace, at: Nanos) -> Option<ResourceId> {
    t.events.iter().filter(|e| e.start >= at).min_by_key(|e| e.start).map(|e| e.resource)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceRecorder};

    fn ev(kind: SpanKind, cause: OpCause, res: ResourceId, start: u64, end: u64) -> TraceEvent {
        TraceEvent { kind, cause, resource: res, start: Nanos(start), end: Nanos(end) }
    }

    fn tiling_holds(r: &RequestAnatomy) {
        assert_eq!(r.stage_sum(), r.e2e(), "stages must tile e2e exactly: {r:?}");
    }

    #[test]
    fn own_segments_classify_by_kind_and_cause() {
        let mut tr = TraceRecorder::new(8);
        let t = tr.record(
            ReqKind::Trim,
            0,
            1,
            true,
            Nanos(0),
            Nanos(100),
            Nanos(1000),
            vec![
                ev(SpanKind::Xfer, OpCause::Host, ResourceId::Channel(0), 100, 140),
                ev(SpanKind::Read, OpCause::Gc, ResourceId::Chip(0), 140, 240),
                ev(SpanKind::Program, OpCause::Host, ResourceId::Chip(0), 240, 540),
                ev(SpanKind::PLock, OpCause::Sanitize, ResourceId::Chip(0), 540, 640),
                ev(SpanKind::Stall, OpCause::Host, ResourceId::Chip(0), 640, 700),
            ],
        );
        let mut a = AnatomyRecorder::new(8, 4);
        a.record(t, None, Some(3));
        a.finalize();
        let r = a.rows().next().expect("one row");
        tiling_holds(r);
        assert_eq!(r.req_idx, Some(3));
        assert_eq!(r.stage(Stage::QueueWait), Nanos(100));
        assert_eq!(r.stage(Stage::Xfer), Nanos(40));
        assert_eq!(r.stage(Stage::GcInterference), Nanos(100));
        assert_eq!(r.stage(Stage::ChipService), Nanos(300));
        assert_eq!(r.stage(Stage::SanitizeInterference), Nanos(100));
        assert_eq!(r.stage(Stage::RetryInterference), Nanos(60));
        // Trailing wait [700, 1000): no own command after it.
        assert_eq!(r.stage(Stage::DispatchStall), Nanos(300));
        // Chain names the self-inflicted interference.
        assert!(r.chain.iter().any(|l| l.stage == Stage::SanitizeInterference && l.own));
    }

    #[test]
    fn waits_are_blamed_on_what_occupied_the_blocking_resource() {
        let mut tr = TraceRecorder::new(8);
        // The victim waits [0, 500) then reads on chip 0.
        let victim = tr
            .record(
                ReqKind::Read,
                9,
                1,
                true,
                Nanos(0),
                Nanos(0),
                Nanos(600),
                vec![ev(SpanKind::Read, OpCause::Host, ResourceId::Chip(0), 500, 600)],
            )
            .clone();
        // The neighbor's bLock held chip 0 for [100, 400) — recorded
        // *after* the victim (out-of-order completion).
        let neighbor = tr
            .record(
                ReqKind::Trim,
                7,
                1,
                true,
                Nanos(0),
                Nanos(0),
                Nanos(400),
                vec![ev(SpanKind::BLock, OpCause::Sanitize, ResourceId::Chip(0), 100, 400)],
            )
            .clone();
        let mut a = AnatomyRecorder::new(8, 4);
        a.record(&victim, None, None);
        a.record(&neighbor, None, None);
        a.finalize();
        let rows: Vec<&RequestAnatomy> = a.rows().collect();
        let v = rows.iter().find(|r| r.trace_id == victim.id).expect("victim row");
        tiling_holds(v);
        // 300 ns of the victim's 500 ns wait is the neighbor's lock.
        assert_eq!(v.stage(Stage::SanitizeInterference), Nanos(300));
        assert_eq!(v.stage(Stage::DispatchStall), Nanos(200));
        assert_eq!(v.stage(Stage::ChipService), Nanos(100));
        let link = v.chain.iter().find(|l| !l.own).expect("cross-request blame link");
        assert_eq!(link.kind, SpanKind::BLock);
        assert_eq!(link.resource, Some(ResourceId::Chip(0)));
        assert_eq!((link.start, link.end), (Nanos(100), Nanos(400)));
    }

    #[test]
    fn watchdog_penalty_window_is_retry_interference() {
        let mut tr = TraceRecorder::new(8);
        // Retried: submit 0, original earliest 100, penalty pushed the
        // start to 400; the read then runs [400, 500).
        let t = tr.record(
            ReqKind::Read,
            0,
            1,
            true,
            Nanos(0),
            Nanos(400),
            Nanos(500),
            vec![ev(SpanKind::Read, OpCause::Host, ResourceId::Chip(0), 400, 500)],
        );
        let mut a = AnatomyRecorder::new(8, 4);
        a.record(t, Some((Nanos(100), Nanos(400))), None);
        a.finalize();
        let r = a.rows().next().expect("one row");
        tiling_holds(r);
        assert_eq!(r.stage(Stage::QueueWait), Nanos(100));
        assert_eq!(r.stage(Stage::RetryInterference), Nanos(300));
        assert_eq!(r.stage(Stage::ChipService), Nanos(100));
    }

    #[test]
    fn aggregates_and_topk_survive_ring_eviction() {
        let mut tr = TraceRecorder::new(64);
        let mut a = AnatomyRecorder::new(2, 3);
        for i in 0..10u64 {
            let t = tr
                .record(
                    ReqKind::Write,
                    i,
                    1,
                    true,
                    Nanos(0),
                    Nanos(0),
                    Nanos(100 * (i + 1)),
                    vec![ev(
                        SpanKind::Program,
                        OpCause::Host,
                        ResourceId::Chip(0),
                        0,
                        100 * (i + 1),
                    )],
                )
                .clone();
            a.record(&t, None, None);
        }
        a.finalize();
        assert_eq!(a.recorded(), 10);
        assert_eq!(a.dropped(), 8);
        assert_eq!(a.rows().count(), 2);
        // Totals cover every row, evicted ones included.
        let sum: u64 = (1..=10).map(|i| 100 * i).sum();
        assert_eq!(a.stage_total(ReqKind::Write, Stage::ChipService), Nanos(sum));
        assert_eq!(a.stage_hist(ReqKind::Write, Stage::ChipService).count(), 10);
        // Top-K: the three slowest, slowest first, despite eviction.
        let tops: Vec<u64> = a.top().iter().map(|r| r.e2e().0).collect();
        assert_eq!(tops, vec![1000, 900, 800]);
    }

    #[test]
    fn topk_ties_break_by_trace_id() {
        let mut tr = TraceRecorder::new(8);
        let mut a = AnatomyRecorder::new(8, 2);
        for _ in 0..4 {
            let t = tr
                .record(ReqKind::Read, 0, 1, true, Nanos(0), Nanos(0), Nanos(500), vec![])
                .clone();
            a.record(&t, None, None);
        }
        a.finalize();
        let ids: Vec<u64> = a.top().iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![0, 1], "equal e2e: earliest trace ids win");
    }
}

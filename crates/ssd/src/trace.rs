//! Op-level request tracing: a bounded ring of per-request span
//! timelines, fed by the [`crate::device::TimedExecutor`] and exported in
//! chrome://tracing (trace-event JSON) format.
//!
//! Every device command the executor reserves while tracing is enabled
//! becomes a [`TraceEvent`] — an occupied interval on one serial resource
//! (a chip array or a channel). The emulator brackets each host request,
//! collects the events it generated (GC, sanitization locks and erases
//! triggered by the request included), and hands them to the
//! [`TraceRecorder`], which derives the request's **segment timeline**: a
//! gap-free partition of the service window into queueing, array work,
//! transfers, and dependency stalls. By construction the segment
//! durations sum to exactly the recorded end-to-end latency — the
//! invariant the trace test suite checks on every traced request.

use crate::jsonlite::{escape, Json};
use evanesco_ftl::{Lpa, OpCause};
use evanesco_nand::timing::Nanos;
use std::collections::{BTreeSet, VecDeque};

/// What a traced interval was spent on. Doubles as the segment class of
/// the derived per-request timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Waiting for an NCQ slot (before the request's earliest legal start).
    QueueWait,
    /// Inside the service window but no resource working for the request
    /// (dependency stalls between commands).
    Wait,
    /// Firmware-injected stall (degraded-mode throttling).
    Stall,
    /// Channel data transfer.
    Xfer,
    /// Array read (sensing), including recovery probes and read retries.
    Read,
    /// Array program, including GC copies and bad-block marks.
    Program,
    /// `pLock` sanitization command.
    PLock,
    /// `bLock` sanitization command.
    BLock,
    /// One-shot scrub reprogram.
    Scrub,
    /// Block erase.
    Erase,
}

impl SpanKind {
    /// Stable lowercase label (trace JSON and metric names).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Wait => "wait",
            SpanKind::Stall => "stall",
            SpanKind::Xfer => "xfer",
            SpanKind::Read => "read",
            SpanKind::Program => "program",
            SpanKind::PLock => "plock",
            SpanKind::BLock => "block",
            SpanKind::Scrub => "scrub",
            SpanKind::Erase => "erase",
        }
    }

    /// All kinds, in segmentation-priority order (lowest first): when
    /// intervals overlap on different resources, the derived segment takes
    /// the highest-priority class covering the instant (array operations
    /// dominate transfers, which dominate waiting).
    pub const ALL: [SpanKind; 10] = [
        SpanKind::QueueWait,
        SpanKind::Wait,
        SpanKind::Stall,
        SpanKind::Xfer,
        SpanKind::Read,
        SpanKind::Program,
        SpanKind::PLock,
        SpanKind::BLock,
        SpanKind::Scrub,
        SpanKind::Erase,
    ];

    fn priority(self) -> usize {
        SpanKind::ALL.iter().position(|&k| k == self).unwrap()
    }
}

/// The serial resource an interval occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceId {
    /// A chip array.
    Chip(usize),
    /// A shared channel.
    Channel(usize),
}

impl ResourceId {
    /// Stable display name.
    pub fn name(self) -> String {
        match self {
            ResourceId::Chip(i) => format!("chip {i}"),
            ResourceId::Channel(c) => format!("channel {c}"),
        }
    }

    /// Thread id in the chrome trace (chips low, channels offset high).
    fn tid(self) -> u64 {
        match self {
            ResourceId::Chip(i) => i as u64,
            ResourceId::Channel(c) => 1000 + c as u64,
        }
    }
}

/// One reserved interval on one resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Operation class.
    pub kind: SpanKind,
    /// Why the command was issued (host path, GC, sanitization, retry
    /// ladder) — the innermost FTL cause scope active when it reserved
    /// the resource.
    pub cause: OpCause,
    /// Resource occupied.
    pub resource: ResourceId,
    /// Absolute simulated start.
    pub start: Nanos,
    /// Absolute simulated end (exclusive).
    pub end: Nanos,
}

/// The host request class a trace belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Host write (secure or insecure).
    Write,
    /// Host read.
    Read,
    /// Host trim (secure delete).
    Trim,
    /// Power-up recovery scan.
    Recovery,
    /// Deferred-lock flush outside any host request.
    Maintenance,
}

impl ReqKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            ReqKind::Write => "write",
            ReqKind::Read => "read",
            ReqKind::Trim => "trim",
            ReqKind::Recovery => "recovery",
            ReqKind::Maintenance => "maintenance",
        }
    }
}

/// One contiguous slice of a request's service window, classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Segment class (highest-priority activity covering the slice).
    pub kind: SpanKind,
    /// Cause of the covering event (`Host` for queue-wait and idle-wait
    /// slices, where no event covers the instant).
    pub cause: OpCause,
    /// Absolute simulated start.
    pub start: Nanos,
    /// Absolute simulated end (exclusive).
    pub end: Nanos,
}

impl Segment {
    /// Slice duration.
    pub fn dur(&self) -> Nanos {
        self.end - self.start
    }
}

/// The full record of one traced host request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Monotone trace id (submission order of traced requests).
    pub id: u64,
    /// Request class.
    pub kind: ReqKind,
    /// First logical page (zero for recovery/maintenance).
    pub lpa: Lpa,
    /// Pages touched.
    pub npages: u64,
    /// Whether the request was acknowledged.
    pub acked: bool,
    /// When the request gained its queue slot.
    pub submit: Nanos,
    /// Earliest legal start of its device work (slot + dependencies).
    pub earliest: Nanos,
    /// Completion of its last device command.
    pub end: Nanos,
    /// Raw resource intervals, in issue order.
    pub events: Vec<TraceEvent>,
    /// Derived timeline: tiles `[submit, end)` exactly, so segment
    /// durations sum to the end-to-end latency.
    pub segments: Vec<Segment>,
}

impl RequestTrace {
    /// End-to-end latency: queue wait included.
    pub fn e2e(&self) -> Nanos {
        self.end - self.submit
    }

    /// Service latency: completion minus earliest legal start (what the
    /// latency histograms record on the scheduled path).
    pub fn service(&self) -> Nanos {
        self.end - self.earliest
    }
}

/// Bounded ring of finished request traces plus running aggregates.
///
/// The ring holds the most recent `capacity` traces; older ones are
/// evicted (counted in [`TraceRecorder::dropped`]) while the per-kind
/// span-time aggregates keep accumulating for every trace ever recorded.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    capacity: usize,
    ring: VecDeque<RequestTrace>,
    next_id: u64,
    recorded: u64,
    dropped: u64,
    /// Total segment time per kind across all recorded traces (indexed by
    /// [`SpanKind::priority`] order).
    span_totals: [Nanos; SpanKind::ALL.len()],
}

impl TraceRecorder {
    /// A recorder keeping the most recent `capacity` request traces.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        TraceRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            next_id: 0,
            recorded: 0,
            dropped: 0,
            span_totals: [Nanos::ZERO; SpanKind::ALL.len()],
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Traces recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Traces evicted from the ring (recorded minus retained).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained traces, oldest first.
    pub fn traces(&self) -> impl Iterator<Item = &RequestTrace> {
        self.ring.iter()
    }

    /// Total derived-segment time spent in `kind` across every recorded
    /// trace (evicted ones included).
    pub fn span_total(&self, kind: SpanKind) -> Nanos {
        self.span_totals[kind.priority()]
    }

    /// Records one finished request. `events` are the resource intervals
    /// the request generated; bounds are normalized so that
    /// `submit <= earliest <= end` and every event fits inside
    /// `[submit, end)` (the serialized host paths can backfill idle
    /// resources *before* the request's nominal submission horizon — the
    /// window is widened to cover them).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        kind: ReqKind,
        lpa: Lpa,
        npages: u64,
        acked: bool,
        submit: Nanos,
        earliest: Nanos,
        end: Nanos,
        mut events: Vec<TraceEvent>,
    ) -> &RequestTrace {
        events.retain(|e| e.end > e.start);
        let mut earliest = earliest.max(submit);
        let mut submit = submit;
        let mut end = end.max(earliest);
        for e in &events {
            submit = submit.min(e.start);
            earliest = earliest.min(e.start);
            end = end.max(e.end);
        }
        let segments = segment(submit, earliest, end, &events);
        for s in &segments {
            self.span_totals[s.kind.priority()] += s.dur();
        }
        let trace = RequestTrace {
            id: self.next_id,
            kind,
            lpa,
            npages,
            acked,
            submit,
            earliest,
            end,
            events,
            segments,
        };
        self.next_id += 1;
        self.recorded += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(trace);
        self.ring.back().expect("just pushed")
    }

    /// Exports the retained traces as chrome://tracing trace-event JSON
    /// (load in `chrome://tracing` or [ui.perfetto.dev]). Process 0 holds
    /// the device resources (one thread per chip/channel, raw intervals);
    /// process 1 holds the host requests (one thread per request, the
    /// umbrella span plus its derived segments).
    ///
    /// [ui.perfetto.dev]: https://ui.perfetto.dev
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&line);
        };
        push(meta_str(0, None, "process_name", "device"), &mut out);
        push(meta_str(1, None, "process_name", "host requests"), &mut out);
        let resources: BTreeSet<ResourceId> =
            self.ring.iter().flat_map(|t| t.events.iter().map(|e| e.resource)).collect();
        for r in &resources {
            push(meta_str(0, Some(r.tid()), "thread_name", &r.name()), &mut out);
        }
        for t in &self.ring {
            push(meta_str(1, Some(t.id), "thread_name", &format!("req {}", t.id)), &mut out);
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"lpa\":{},\"npages\":{},\"acked\":{},\
                     \"service_ns\":{}}}}}",
                    escape(&format!("{} lpa={}+{}", t.kind.label(), t.lpa, t.npages)),
                    micros(t.submit),
                    micros(t.e2e()),
                    t.id,
                    t.lpa,
                    t.npages,
                    t.acked,
                    t.service().0,
                ),
                &mut out,
            );
            for s in &t.segments {
                push(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"segment\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"cause\":\"{}\"}}}}",
                        s.kind.label(),
                        micros(s.start),
                        micros(s.dur()),
                        t.id,
                        s.cause.label(),
                    ),
                    &mut out,
                );
            }
            for e in &t.events {
                push(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"device\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"req\":{},\"cause\":\"{}\"}}}}",
                        e.kind.label(),
                        micros(e.start),
                        micros(e.end - e.start),
                        e.resource.tid(),
                        t.id,
                        e.cause.label(),
                    ),
                    &mut out,
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

fn micros(t: Nanos) -> String {
    // Trace-event timestamps are microseconds; keep nanosecond precision
    // as a decimal fraction (exact: no float rounding).
    let us = t.0 / 1000;
    let rem = t.0 % 1000;
    if rem == 0 {
        format!("{us}")
    } else {
        format!("{us}.{rem:03}")
    }
}

fn meta_str(pid: u64, tid: Option<u64>, name: &str, value: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
        name,
        pid,
        tid.unwrap_or(0),
        escape(value)
    )
}

/// Partitions `[submit, end)` into classified segments: `[submit,
/// earliest)` is queue wait; each slice of `[earliest, end)` takes the
/// highest-priority event kind covering it, or `Wait` when no resource
/// was working for the request. Adjacent same-kind slices merge.
fn segment(submit: Nanos, earliest: Nanos, end: Nanos, events: &[TraceEvent]) -> Vec<Segment> {
    let mut out: Vec<Segment> = Vec::new();
    let mut push = |kind: SpanKind, cause: OpCause, start: Nanos, stop: Nanos| {
        if stop <= start {
            return;
        }
        if let Some(last) = out.last_mut() {
            if last.kind == kind && last.cause == cause && last.end == start {
                last.end = stop;
                return;
            }
        }
        out.push(Segment { kind, cause, start, end: stop });
    };
    push(SpanKind::QueueWait, OpCause::Host, submit, earliest);
    let mut bounds: Vec<Nanos> = Vec::with_capacity(events.len() * 2 + 2);
    bounds.push(earliest);
    bounds.push(end);
    for e in events {
        bounds.push(e.start.clamp(earliest, end));
        bounds.push(e.end.clamp(earliest, end));
    }
    bounds.sort_unstable();
    bounds.dedup();
    for w in bounds.windows(2) {
        let (a, b) = (w[0], w[1]);
        // Highest-priority covering event wins the slice; on a kind tie the
        // host-caused command wins (time under the request's own command is
        // service, not interference, even if background work overlaps).
        let (kind, cause) = events
            .iter()
            .filter(|e| e.start <= a && e.end >= b)
            .map(|e| (e.kind, e.cause))
            .max_by_key(|&(k, c)| (k.priority(), c == OpCause::Host))
            .unwrap_or((SpanKind::Wait, OpCause::Host));
        push(kind, cause, a, b);
    }
    out
}

/// Validates a chrome trace export against the checked-in schema (see
/// `tests/data/trace_schema.json`). The schema lists the required and
/// optional keys of the root object and of every trace event, their JSON
/// types, and the allowed `ph` phases; any drift — a missing field, a
/// type change, a new undeclared field — is an error naming the offender.
pub fn validate_chrome_trace(trace_json: &str, schema_json: &str) -> Result<(), String> {
    let schema = Json::parse(schema_json).map_err(|e| format!("schema unparsable: {e}"))?;
    let trace = Json::parse(trace_json).map_err(|e| format!("trace unparsable: {e}"))?;

    let field_types = |v: &Json, key: &str| -> Result<Vec<(String, String)>, String> {
        v.get(key)
            .and_then(Json::as_obj)
            .ok_or(format!("schema missing object '{key}'"))?
            .iter()
            .map(|(k, t)| {
                Ok((
                    k.clone(),
                    t.as_str()
                        .ok_or(format!("schema '{key}.{k}' must be a type name"))?
                        .to_string(),
                ))
            })
            .collect()
    };
    let root_required = field_types(&schema, "root_required")?;
    let event_required = field_types(&schema, "event_required")?;
    let event_optional = field_types(&schema, "event_optional")?;
    let ph_allowed: Vec<&str> = schema
        .get("ph_allowed")
        .and_then(Json::as_arr)
        .ok_or("schema missing array 'ph_allowed'")?
        .iter()
        .filter_map(Json::as_str)
        .collect();

    let check_fields = |obj: &Json,
                        required: &[(String, String)],
                        optional: &[(String, String)],
                        closed: bool,
                        what: &str|
     -> Result<(), String> {
        let map = obj.as_obj().ok_or(format!("{what} is {}, not object", obj.type_name()))?;
        for (k, ty) in required {
            let v = map.get(k).ok_or(format!("{what} missing required '{k}'"))?;
            if v.type_name() != ty {
                return Err(format!("{what} '{k}' is {}, want {ty}", v.type_name()));
            }
        }
        for (k, v) in map {
            let declared = required
                .iter()
                .chain(optional.iter())
                .find(|(dk, _)| dk == k)
                .map(|(_, ty)| ty.as_str());
            match declared {
                None if closed => return Err(format!("{what} has undeclared field '{k}'")),
                Some(ty) if v.type_name() != ty => {
                    return Err(format!("{what} '{k}' is {}, want {ty}", v.type_name()));
                }
                _ => {}
            }
        }
        Ok(())
    };

    check_fields(&trace, &root_required, &[], true, "trace root")?;
    let events = trace.get("traceEvents").and_then(Json::as_arr).unwrap_or(&[]);
    for (i, ev) in events.iter().enumerate() {
        let what = format!("traceEvents[{i}]");
        check_fields(ev, &event_required, &event_optional, true, &what)?;
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        if !ph_allowed.contains(&ph) {
            return Err(format!("{what} has unexpected ph '{ph}'"));
        }
        if ph == "X" && ev.get("dur").and_then(Json::as_num).is_none() {
            return Err(format!("{what} is a complete event without 'dur'"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, res: ResourceId, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            kind,
            cause: OpCause::Host,
            resource: res,
            start: Nanos(start),
            end: Nanos(end),
        }
    }

    fn ev_caused(
        kind: SpanKind,
        cause: OpCause,
        res: ResourceId,
        start: u64,
        end: u64,
    ) -> TraceEvent {
        TraceEvent { kind, cause, resource: res, start: Nanos(start), end: Nanos(end) }
    }

    #[test]
    fn segments_tile_the_window_exactly() {
        let events = vec![
            ev(SpanKind::Xfer, ResourceId::Channel(0), 100, 140),
            ev(SpanKind::Program, ResourceId::Chip(0), 140, 840),
            // Overlapping GC read on another chip: array work dominates.
            ev(SpanKind::Read, ResourceId::Chip(1), 120, 180),
        ];
        let mut rec = TraceRecorder::new(8);
        let t = rec.record(ReqKind::Write, 7, 1, true, Nanos(40), Nanos(100), Nanos(900), events);
        assert_eq!(t.e2e(), Nanos(860));
        assert_eq!(t.service(), Nanos(800));
        // The segments partition [submit, end) with no gaps or overlaps.
        let mut cursor = t.submit;
        for s in &t.segments {
            assert_eq!(s.start, cursor, "gap before {s:?}");
            assert!(s.end > s.start);
            cursor = s.end;
        }
        assert_eq!(cursor, t.end);
        let total: u64 = t.segments.iter().map(|s| s.dur().0).sum();
        assert_eq!(Nanos(total), t.e2e());
        // Classes: queue wait, transfer, then array work (read overlaps are
        // absorbed by priority), then the trailing wait.
        assert_eq!(
            t.segments[0],
            Segment {
                kind: SpanKind::QueueWait,
                cause: OpCause::Host,
                start: Nanos(40),
                end: Nanos(100)
            }
        );
        assert_eq!(t.segments[1].kind, SpanKind::Xfer);
        assert!(t.segments.iter().any(|s| s.kind == SpanKind::Program));
        assert_eq!(t.segments.last().unwrap().kind, SpanKind::Wait);
        assert_eq!(rec.span_total(SpanKind::QueueWait), Nanos(60));
    }

    #[test]
    fn window_widens_over_backfilled_events() {
        // A serialized-path read backfills an idle chip below the horizon:
        // its event starts before the nominal submit time.
        let events = vec![ev(SpanKind::Read, ResourceId::Chip(0), 500, 600)];
        let mut rec = TraceRecorder::new(2);
        let t = rec.record(ReqKind::Read, 0, 1, true, Nanos(800), Nanos(800), Nanos(800), events);
        assert_eq!(t.submit, Nanos(500));
        assert_eq!(t.end, Nanos(800));
        let total: u64 = t.segments.iter().map(|s| s.dur().0).sum();
        assert_eq!(Nanos(total), t.e2e());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut rec = TraceRecorder::new(2);
        for i in 0..5u64 {
            rec.record(ReqKind::Write, i, 1, true, Nanos(0), Nanos(0), Nanos(10), vec![]);
        }
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 3);
        let ids: Vec<u64> = rec.traces().map(|t| t.id).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn chrome_export_round_trips_and_validates() {
        let mut rec = TraceRecorder::new(4);
        rec.record(
            ReqKind::Write,
            3,
            2,
            true,
            Nanos(0),
            Nanos(50),
            Nanos(1000),
            vec![
                ev(SpanKind::Xfer, ResourceId::Channel(1), 50, 90),
                ev(SpanKind::Program, ResourceId::Chip(3), 90, 790),
            ],
        );
        let json = rec.to_chrome_json();
        let doc = Json::parse(&json).expect("export parses");
        assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
        let x: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        // One umbrella + two segments (xfer, program — no trailing wait
        // because the window is widened... the umbrella ends at 1000 so a
        // wait segment exists) + two device events.
        assert!(x.len() >= 5);
        // Timestamps are microseconds with nanosecond fractions.
        let umbrella = x
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("request"))
            .expect("umbrella event");
        assert_eq!(umbrella.get("ts").and_then(Json::as_num), Some(0.0));
        assert_eq!(umbrella.get("dur").and_then(Json::as_num), Some(1.0));
        let schema = include_str!("../../../tests/data/trace_schema.json");
        validate_chrome_trace(&json, schema).expect("export matches schema");
    }

    #[test]
    fn schema_catches_drift() {
        let schema = include_str!("../../../tests/data/trace_schema.json");
        // Unknown event field.
        let bad = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"x","ph":"X","ts":0,"dur":1,"pid":0,"tid":0,"sneaky":1}]}"#;
        assert!(validate_chrome_trace(bad, schema).unwrap_err().contains("sneaky"));
        // Missing required field.
        let bad = r#"{"displayTimeUnit":"ms","traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":0}]}"#;
        assert!(validate_chrome_trace(bad, schema).unwrap_err().contains("tid"));
        // Wrong type.
        let bad = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":7,"ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad, schema).unwrap_err().contains("name"));
        // Unknown phase.
        let bad = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"x","ph":"B","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad, schema).unwrap_err().contains("ph"));
    }

    #[test]
    fn segments_carry_causes_and_host_wins_kind_ties() {
        let events = vec![
            // GC program alone, then overlapping with the host's own
            // program (same kind): the host command claims the overlap.
            ev_caused(SpanKind::Program, OpCause::Gc, ResourceId::Chip(1), 100, 300),
            ev_caused(SpanKind::Program, OpCause::Host, ResourceId::Chip(0), 200, 400),
            ev_caused(SpanKind::PLock, OpCause::Sanitize, ResourceId::Chip(0), 400, 500),
        ];
        let mut rec = TraceRecorder::new(4);
        let t = rec.record(ReqKind::Trim, 0, 1, true, Nanos(100), Nanos(100), Nanos(500), events);
        let expect = [
            (SpanKind::Program, OpCause::Gc, 100, 200),
            (SpanKind::Program, OpCause::Host, 200, 400),
            (SpanKind::PLock, OpCause::Sanitize, 400, 500),
        ];
        assert_eq!(t.segments.len(), expect.len());
        for (s, &(kind, cause, a, b)) in t.segments.iter().zip(expect.iter()) {
            assert_eq!((s.kind, s.cause, s.start, s.end), (kind, cause, Nanos(a), Nanos(b)));
        }
        // Same kind, different causes: slices must not merge.
        let json = rec.to_chrome_json();
        assert!(json.contains("\"cause\":\"gc\""));
        assert!(json.contains("\"cause\":\"sanitize\""));
    }

    #[test]
    fn micros_formats_exact_fractions() {
        assert_eq!(micros(Nanos(0)), "0");
        assert_eq!(micros(Nanos(1000)), "1");
        assert_eq!(micros(Nanos(1500)), "1.500");
        assert_eq!(micros(Nanos(123_456_789)), "123456.789");
    }
}

//! SSD-level configuration.

use evanesco_ftl::FtlConfig;

/// Configuration of an emulated SSD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdConfig {
    /// Number of channels.
    pub channels: u16,
    /// Chips per channel.
    pub chips_per_channel: u16,
    /// FTL configuration (its `n_chips` must equal
    /// `channels × chips_per_channel`).
    pub ftl: FtlConfig,
    /// Whether the emulator records content tags for forensic verification
    /// (cheap for tests; disable for large performance runs).
    pub track_tags: bool,
    /// Whether the emulator keeps the stale-tag audit log that backs
    /// `verify_sanitized` (requires `track_tags`). The log grows with
    /// every overwrite/trim; long performance runs should disable it or
    /// compact it periodically (`Emulator::compact_stale`).
    pub stale_audit: bool,
}

impl SsdConfig {
    /// The paper's SecureSSD (§7): 2 channels × 4 chips of 3D TLC.
    pub fn paper() -> Self {
        SsdConfig {
            channels: 2,
            chips_per_channel: 4,
            ftl: FtlConfig::paper(),
            track_tags: false,
            stale_audit: false,
        }
    }

    /// Paper structure with a scaled-down block count per chip.
    pub fn scaled(blocks_per_chip: u32) -> Self {
        SsdConfig {
            channels: 2,
            chips_per_channel: 4,
            ftl: FtlConfig::paper_scaled(blocks_per_chip),
            track_tags: false,
            stale_audit: false,
        }
    }

    /// A tiny SSD for unit tests, with tag tracking and auditing on.
    pub fn tiny_for_tests() -> Self {
        let ftl = FtlConfig::tiny_for_tests();
        SsdConfig { channels: 2, chips_per_channel: 1, ftl, track_tags: true, stale_audit: true }
    }

    /// Total chips.
    pub fn n_chips(&self) -> usize {
        self.channels as usize * self.chips_per_channel as usize
    }

    /// Validates internal consistency, including the embedded
    /// [`FtlConfig`]'s structural invariants.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on a zero-channel or zero-chip
    /// topology, on an FTL chip count that disagrees with the channel
    /// topology, or on any [`FtlConfig::validate`] violation.
    pub fn validate(&self) {
        assert!(self.channels > 0, "SsdConfig: channels must be positive");
        assert!(self.chips_per_channel > 0, "SsdConfig: chips_per_channel must be positive");
        assert_eq!(
            self.n_chips(),
            self.ftl.n_chips,
            "channel topology and FTL chip count disagree"
        );
        assert!(!self.stale_audit || self.track_tags, "SsdConfig: stale_audit requires track_tags");
        let lp = self.ftl.logical_pages();
        assert!(
            usize::try_from(lp).is_ok(),
            "SsdConfig: logical capacity ({lp} pages) exceeds the host-indexable range"
        );
        self.ftl.validate();
    }

    /// Validates that the host request range `[lpa, lpa + npages)` lies
    /// inside this device's logical address space — the same check every
    /// scheduled submission performs, exposed so trace generators and the
    /// fleet layer's namespace windows can be validated up front instead
    /// of mid-run.
    ///
    /// # Errors
    ///
    /// See [`crate::sched::check_lpa_range`].
    pub fn check_lpa_range(&self, lpa: u64, npages: u64) -> Result<(), crate::sched::SubmitError> {
        crate::sched::check_lpa_range(lpa, npages, self.ftl.logical_pages()).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology() {
        let cfg = SsdConfig::paper();
        cfg.validate();
        assert_eq!(cfg.n_chips(), 8);
    }

    #[test]
    fn tiny_topology() {
        let cfg = SsdConfig::tiny_for_tests();
        cfg.validate();
        assert_eq!(cfg.n_chips(), 2);
        assert!(cfg.track_tags);
    }

    #[test]
    fn lpa_range_checks_cover_the_address_space_edge() {
        let cfg = SsdConfig::tiny_for_tests();
        let lp = cfg.ftl.logical_pages();
        assert!(cfg.check_lpa_range(0, lp).is_ok(), "the full device is addressable");
        assert!(cfg.check_lpa_range(lp, 0).is_ok(), "empty range at the boundary is a no-op");
        assert!(cfg.check_lpa_range(lp - 1, 2).is_err(), "one page past the end");
        assert!(cfg.check_lpa_range(u64::MAX, 2).is_err(), "wrapping range near u64::MAX");
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn validate_catches_mismatch() {
        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.channels = 3;
        cfg.validate();
    }
}

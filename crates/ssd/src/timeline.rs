//! Busy-timeline resources for event timing.
//!
//! Each chip and each channel is a serial resource: an operation occupies it
//! for a latency window starting no earlier than both the resource's free
//! time and the operation's dependency time. Total simulated time is the
//! maximum busy-until across resources.

use evanesco_nand::timing::Nanos;

/// A serially-occupied hardware resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resource {
    busy_until: Nanos,
    /// Total time actually occupied (sum of reserved durations, gaps
    /// excluded) — the numerator of this resource's utilization.
    utilized: Nanos,
}

impl Resource {
    /// A free resource at time zero.
    pub fn new() -> Self {
        Resource { busy_until: Nanos::ZERO, utilized: Nanos::ZERO }
    }

    /// Reserves the resource for `dur`, starting no earlier than
    /// `earliest`. Returns `(start, end)`.
    pub fn reserve(&mut self, earliest: Nanos, dur: Nanos) -> (Nanos, Nanos) {
        let start = self.busy_until.max(earliest);
        let end = start + dur;
        self.busy_until = end;
        self.utilized += dur;
        (start, end)
    }

    /// When the resource becomes free.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Total occupied time so far (excludes idle gaps).
    pub fn utilized(&self) -> Nanos {
        self.utilized
    }

    /// Rebuilds a resource from checkpointed parts.
    pub fn from_parts(busy_until: Nanos, utilized: Nanos) -> Self {
        Resource { busy_until, utilized }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_serializes() {
        let mut r = Resource::new();
        let (s1, e1) = r.reserve(Nanos::ZERO, Nanos::from_micros(100));
        assert_eq!(s1, Nanos::ZERO);
        assert_eq!(e1, Nanos::from_micros(100));
        let (s2, e2) = r.reserve(Nanos::ZERO, Nanos::from_micros(50));
        assert_eq!(s2, e1, "second op waits for the first");
        assert_eq!(e2, Nanos::from_micros(150));
    }

    #[test]
    fn reserve_respects_dependency() {
        let mut r = Resource::new();
        let (s, e) = r.reserve(Nanos::from_micros(500), Nanos::from_micros(10));
        assert_eq!(s, Nanos::from_micros(500));
        assert_eq!(e, Nanos::from_micros(510));
        assert_eq!(r.busy_until(), e);
    }

    #[test]
    fn utilized_excludes_idle_gaps() {
        let mut r = Resource::new();
        r.reserve(Nanos::from_micros(500), Nanos::from_micros(10));
        r.reserve(Nanos::from_micros(900), Nanos::from_micros(10));
        assert_eq!(r.busy_until(), Nanos::from_micros(910));
        assert_eq!(r.utilized(), Nanos::from_micros(20), "the 390 µs gap is idle, not busy");
    }
}

//! Prometheus text exposition for a running [`crate::emulator::Emulator`].
//!
//! [`render`] flattens every run metric — host counters, the full
//! [`evanesco_ftl::FtlStats`] table, fault and recovery counters,
//! per-resource utilization, the log₂ latency histograms (as cumulative
//! `le` buckets in seconds), and the live sanitization gauges — into one
//! text-format scrape (version 0.0.4, the format every Prometheus server
//! and `promtool` accepts). No client library is involved: the emulator
//! is single-threaded and a scrape is a pure read of its counters.
//!
//! Conventions: cumulative counters end in `_total`, durations are in
//! seconds, utilizations are 0..=1 ratios, and everything is prefixed
//! `evanesco_`.

use crate::anatomy::Stage;
use crate::emulator::Emulator;
use crate::metrics::LatencyHistogram;
use crate::trace::SpanKind;
use evanesco_nand::timing::Nanos;
use std::fmt::Write as _;

/// Renders one full scrape of `em`'s metrics.
pub fn render(em: &Emulator) -> String {
    let mut out = String::with_capacity(8 * 1024);
    let r = em.result();
    let dev = em.device();
    let sim = dev.simulated_time();

    counter(&mut out, "evanesco_host_ops_total", "Host page operations executed.", r.host_ops);
    gauge_f(
        &mut out,
        "evanesco_sim_time_seconds",
        "Total simulated device time.",
        sim.as_secs_f64(),
    );
    gauge_f(&mut out, "evanesco_iops", "Host page operations per simulated second.", r.iops);
    gauge_f(&mut out, "evanesco_waf", "Write amplification factor.", r.waf);
    counter(
        &mut out,
        "evanesco_stale_audit_entries",
        "Entries in the stale-tag audit log (0 unless stale_audit).",
        em.stale_len() as u64,
    );

    let f = &r.ftl;
    let ftl: [(&str, &str, u64); 32] = [
        ("host_write_pages", "Host-initiated page writes.", f.host_write_pages),
        ("host_read_pages", "Host-initiated page reads.", f.host_read_pages),
        ("host_trim_pages", "Host-initiated trimmed pages.", f.host_trim_pages),
        ("nand_programs", "NAND page programs (host + relocation).", f.nand_programs),
        ("nand_reads", "NAND page reads (host + relocation).", f.nand_reads),
        ("nand_erases", "NAND block erases.", f.nand_erases),
        ("copied_pages", "Pages copied by GC or forced relocation.", f.copied_pages),
        ("gc_invocations", "GC invocations.", f.gc_invocations),
        ("plocks", "pLock commands issued.", f.plocks),
        ("blocks_locked", "bLock commands issued.", f.blocks_locked),
        ("scrubs", "Wordline scrubs performed.", f.scrubs),
        ("sanitize_erases", "Immediate erases forced by sanitization.", f.sanitize_erases),
        ("coalesced_plocks", "Deferred pLocks retired without a command.", f.coalesced_plocks),
        (
            "coalesce_flushed_plocks",
            "Deferred pLocks aged out and issued individually.",
            f.coalesce_flushed_plocks,
        ),
        ("plock_retries", "pLock verify failures retried.", f.plock_retries),
        ("plock_escalations", "pLock budgets escalated to block sanitize.", f.plock_escalations),
        ("lock_scrub_fallbacks", "Lock failures resolved by a scrub.", f.lock_scrub_fallbacks),
        ("block_lock_retries", "bLock verify failures retried.", f.block_lock_retries),
        (
            "block_lock_fallbacks",
            "bLock budgets exhausted, fallback taken.",
            f.block_lock_fallbacks,
        ),
        ("program_fail_remaps", "Program failures remapped to fresh pages.", f.program_fail_remaps),
        ("erase_retries", "Erase-status failures retried.", f.erase_retries),
        ("retired_blocks", "Blocks retired as grown-bad.", f.retired_blocks),
        (
            "reliability_relocations",
            "Live pages relocated by escalations.",
            f.reliability_relocations,
        ),
        (
            "writes_rejected_readonly",
            "Host writes rejected in read-only degraded mode.",
            f.writes_rejected_readonly,
        ),
        (
            "meta_corruptions_injected",
            "Metadata corruptions injected by the chaos model.",
            f.meta_corruptions_injected,
        ),
        (
            "meta_corruptions_detected",
            "Metadata corruptions caught by seals or the audit scrubber.",
            f.meta_corruptions_detected,
        ),
        (
            "meta_repairs_from_oob",
            "Metadata repairs rebuilt from on-flash OOB.",
            f.meta_repairs_from_oob,
        ),
        (
            "meta_repairs_rederived",
            "Metadata repairs re-derived from RAM state.",
            f.meta_repairs_rederived,
        ),
        (
            "meta_unrecoverable",
            "Failed repairs that degraded the drive to read-only.",
            f.meta_unrecoverable,
        ),
        ("audit_scrub_blocks", "Blocks cross-checked by the audit scrubber.", f.audit_scrub_blocks),
        ("audit_divergences", "RAM-vs-OOB divergences found by the scrubber.", f.audit_divergences),
        (
            "meta_resurrections_pruned",
            "Insecurely trimmed mappings a repair resurrected and the guard re-invalidated.",
            f.meta_resurrections_pruned,
        ),
    ];
    for (name, help, v) in ftl {
        counter(&mut out, &format!("evanesco_ftl_{name}_total"), help, v);
    }

    let fa = &r.faults;
    let faults: [(&str, &str, u64); 6] = [
        ("program_failures", "Injected program-status failures.", fa.program_failures),
        ("erase_failures", "Injected erase-status failures.", fa.erase_failures),
        ("plock_failures", "Injected pLock verify failures.", fa.plock_failures),
        ("block_lock_failures", "Injected bLock verify failures.", fa.block_lock_failures),
        ("read_retries", "Read-retry rounds performed.", fa.read_retries),
        ("unc_reads", "Uncorrectable reads after all retries.", fa.unc_reads),
    ];
    for (name, help, v) in faults {
        counter(&mut out, &format!("evanesco_fault_{name}_total"), help, v);
    }

    let rec = &r.recovery;
    let recovery: [(&str, &str, u64); 12] = [
        ("recoveries", "Power-up recovery scans performed.", rec.recoveries),
        ("scanned_pages", "Occupied pages probed across scans.", rec.scanned_pages),
        ("rebuilt_mappings", "Logical mappings rebuilt from OOB.", rec.rebuilt_mappings),
        ("torn_writes", "Torn writes found.", rec.torn_writes),
        ("orphaned_pages", "Torn secured writes sanitized as orphans.", rec.orphaned_pages),
        ("relocked_pages", "Torn pLocks completed.", rec.relocked_pages),
        ("reissued_blocks", "Torn bLocks re-issued.", rec.reissued_blocks),
        ("resealed_blocks", "Torn-erase blocks re-erased.", rec.resealed_blocks),
        ("stale_secured", "Stale secured versions sanitized.", rec.stale_secured),
        ("lock_retries", "Recovery lock commands re-issued.", rec.lock_retries),
        ("lock_fallbacks", "Recovery locks replaced by a scrub.", rec.lock_fallbacks),
        ("retired_blocks", "Grown-bad table size after the last scan.", rec.retired_blocks),
    ];
    for (name, help, v) in recovery {
        counter(&mut out, &format!("evanesco_recovery_{name}_total"), help, v);
    }
    gauge_f(
        &mut out,
        "evanesco_recovery_scan_seconds",
        "Simulated device time spent in recovery scans.",
        rec.scan_time.as_secs_f64(),
    );

    let tb = dev.time_breakdown();
    let classes: [(&str, Nanos); 7] = [
        ("read", tb.read),
        ("program", tb.program),
        ("erase", tb.erase),
        ("plock", tb.plock),
        ("block_lock", tb.block),
        ("scrub", tb.scrub),
        ("xfer", tb.xfer),
    ];
    let mut busy = LabeledFamily::new(
        "evanesco_device_busy_seconds_total",
        "Device busy time per command class.",
        "counter",
    );
    for (class, t) in classes {
        busy.sample_f(&[("class", class)], t.as_secs_f64());
    }
    busy.render_into(&mut out).expect("static class list is non-empty");

    let mut util = LabeledFamily::new(
        "evanesco_resource_utilization_ratio",
        "Busy fraction of each serial resource over the run.",
        "gauge",
    );
    let secs = sim.as_secs_f64();
    for (i, t) in dev.chip_utilized().iter().enumerate() {
        let ratio = if secs > 0.0 { t.as_secs_f64() / secs } else { 0.0 };
        util.sample_f(&[("resource", &format!("chip{i}"))], ratio);
    }
    for (c, t) in dev.channel_utilized().iter().enumerate() {
        let ratio = if secs > 0.0 { t.as_secs_f64() / secs } else { 0.0 };
        util.sample_f(&[("resource", &format!("channel{c}"))], ratio);
    }
    util.render_into(&mut out).expect("a validated topology has chips and channels");

    header(
        &mut out,
        "evanesco_latency_seconds",
        "Host service latency per op class (log2 buckets).",
        "histogram",
    );
    histogram(&mut out, "read", em.read_latency());
    histogram(&mut out, "write", em.write_latency());
    histogram(&mut out, "trim", em.trim_latency());

    if let Some(g) = em.gauges() {
        let s = g.snapshot();
        let cap = em.logical_pages();
        gauge_u(&mut out, "evanesco_gauge_tick", "Logical time (host page writes).", s.tick);
        gauge_u(
            &mut out,
            "evanesco_valid_secured_pages",
            "Live secured pages on flash now.",
            s.valid_secured,
        );
        gauge_u(
            &mut out,
            "evanesco_invalid_secured_pages",
            "Deleted-but-recoverable secured pages now.",
            s.invalid_secured,
        );
        gauge_u(&mut out, "evanesco_max_valid_secured_pages", "Peak live secured.", s.max_valid);
        gauge_u(
            &mut out,
            "evanesco_max_invalid_secured_pages",
            "Peak recoverable secured.",
            s.max_invalid,
        );
        counter(
            &mut out,
            "evanesco_insecure_ticks_total",
            "Ticks with at least one recoverable secured page.",
            s.insecure_ticks,
        );
        counter(
            &mut out,
            "evanesco_sanitized_immediately_total",
            "Secured invalidations sanitized on the spot.",
            s.sanitized_immediately,
        );
        counter(
            &mut out,
            "evanesco_exposed_then_erased_total",
            "Secured pages destroyed only by a later erase.",
            s.exposed_then_erased,
        );
        gauge_f(&mut out, "evanesco_vaf", "Version amplification factor (Table 1).", s.vaf);
        gauge_f(
            &mut out,
            "evanesco_t_insecure",
            "Insecure time normalized by device capacity (Table 1).",
            s.t_insecure(cap),
        );
    }

    if let Some(t) = em.trace() {
        counter(
            &mut out,
            "evanesco_trace_recorded_total",
            "Request traces recorded.",
            t.recorded(),
        );
        counter(
            &mut out,
            "evanesco_trace_dropped_total",
            "Request traces evicted from the ring.",
            t.dropped(),
        );
        let mut spans = LabeledFamily::new(
            "evanesco_trace_span_seconds_total",
            "Attributed time across recorded traces, per span kind.",
            "counter",
        );
        for kind in SpanKind::ALL {
            spans.sample_f(&[("kind", kind.label())], t.span_total(kind).as_secs_f64());
        }
        spans.render_into(&mut out).expect("static span-kind list is non-empty");
    }

    if let Some(a) = em.anatomy() {
        counter(
            &mut out,
            "evanesco_anatomy_recorded_total",
            "Anatomy rows recorded (pending rows included).",
            a.recorded(),
        );
        counter(
            &mut out,
            "evanesco_anatomy_dropped_total",
            "Anatomy rows evicted from the resolved ring.",
            a.dropped(),
        );
        counter(
            &mut out,
            "evanesco_anatomy_occupancy_dropped_total",
            "Occupancy intervals evicted before blame resolution.",
            a.occupancy_dropped(),
        );
        let mut stages = LabeledFamily::new(
            "evanesco_anatomy_stage_ns_total",
            "Exact per-stage latency decomposition across resolved rows \
             (stage sums tile end-to-end latency).",
            "counter",
        );
        for kind in crate::anatomy::REQ_KINDS {
            for stage in Stage::ALL {
                stages.sample_u(
                    &[("kind", kind.label()), ("stage", stage.label())],
                    a.stage_total(kind, stage).0,
                );
            }
        }
        stages.render_into(&mut out).expect("static kind x stage grid is non-empty");
    }

    if let Some(w) = em.watchdog_stats() {
        counter(
            &mut out,
            "evanesco_watchdog_stalls_injected_total",
            "Wedged attempts injected by the stall model.",
            w.stalls_injected,
        );
        counter(
            &mut out,
            "evanesco_watchdog_aborts_total",
            "Attempts aborted at their class deadline.",
            w.aborts,
        );
        counter(
            &mut out,
            "evanesco_watchdog_retries_total",
            "Aborted attempts retried with backoff.",
            w.retries,
        );
        counter(
            &mut out,
            "evanesco_watchdog_deadline_failures_total",
            "Requests failed after exhausting the retry budget.",
            w.deadline_failures,
        );
    }

    out
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Escapes a label value per the text exposition format (version 0.0.4):
/// `\` → `\\`, `"` → `\"`, and newline → `\n`. Everything interpolated
/// into a `label="..."` position must pass through here — per-tenant
/// labels in the fleet scrape carry user-provided tenant names, and an
/// unescaped quote or newline silently corrupts every later sample in
/// the scrape.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A labeled metric family under construction: `HELP`/`TYPE` headers plus
/// one sample line per [`LabeledFamily::sample`] call, with label values
/// escaped. Rendering a family with **zero samples** is rejected — a
/// dangling `TYPE` header with no samples means the scrape dropped data
/// (for the fleet layer: a tenant or device that silently vanished), and
/// several exposition parsers choke on it.
#[derive(Debug)]
pub struct LabeledFamily {
    name: String,
    help: String,
    kind: &'static str,
    lines: Vec<String>,
}

impl LabeledFamily {
    /// Starts an empty family; `kind` is the `TYPE` (counter/gauge/...).
    pub fn new(name: &str, help: &str, kind: &'static str) -> Self {
        LabeledFamily { name: name.into(), help: help.into(), kind, lines: Vec::new() }
    }

    /// Adds one sample with the given label set (values escaped here) and
    /// a pre-formatted value.
    pub fn sample(&mut self, labels: &[(&str, &str)], value: &str) {
        let mut line = String::with_capacity(self.name.len() + 32);
        line.push_str(&self.name);
        if !labels.is_empty() {
            line.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "{k}=\"{}\"", escape_label_value(v));
            }
            line.push('}');
        }
        line.push(' ');
        line.push_str(value);
        self.lines.push(line);
    }

    /// [`LabeledFamily::sample`] for an integer value.
    pub fn sample_u(&mut self, labels: &[(&str, &str)], value: u64) {
        self.sample(labels, &value.to_string());
    }

    /// [`LabeledFamily::sample`] for a float value (finite decimal form).
    pub fn sample_f(&mut self, labels: &[(&str, &str)], value: f64) {
        self.sample(labels, &fmt_f64(value));
    }

    /// Renders headers plus samples into `out`.
    ///
    /// # Errors
    ///
    /// Rejects an empty family (no samples) with a message naming it.
    pub fn render_into(self, out: &mut String) -> Result<(), String> {
        if self.lines.is_empty() {
            return Err(format!("empty metric family '{}' (no samples)", self.name));
        }
        header(out, &self.name, &self.help, self.kind);
        for line in self.lines {
            out.push_str(&line);
            out.push('\n');
        }
        Ok(())
    }
}

fn counter(out: &mut String, name: &str, help: &str, v: u64) {
    header(out, name, help, "counter");
    let _ = writeln!(out, "{name} {v}");
}

fn gauge_u(out: &mut String, name: &str, help: &str, v: u64) {
    header(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {v}");
}

fn gauge_f(out: &mut String, name: &str, help: &str, v: f64) {
    header(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {}", fmt_f64(v));
}

/// Finite decimal rendering (Prometheus accepts scientific notation, but a
/// plain decimal keeps the scrape greppable in tests and terminals).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.9}")
    }
}

/// One op class of `evanesco_latency_seconds`: cumulative `le` buckets in
/// seconds up to the highest occupied bucket, then `+Inf`, `_sum`, `_count`.
fn histogram(out: &mut String, op: &str, h: &LatencyHistogram) {
    let buckets = h.buckets();
    let last = buckets.iter().rposition(|&c| c > 0);
    let mut cum = 0u64;
    if let Some(last) = last {
        for (i, &c) in buckets.iter().enumerate().take(last + 1) {
            cum += c;
            // Bucket i covers [2^i, 2^(i+1)) ns.
            let le = Nanos(1u64 << (i + 1).min(63)).as_secs_f64();
            let _ = writeln!(
                out,
                "evanesco_latency_seconds_bucket{{op=\"{op}\",le=\"{}\"}} {cum}",
                fmt_f64(le)
            );
        }
    }
    let _ =
        writeln!(out, "evanesco_latency_seconds_bucket{{op=\"{op}\",le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(
        out,
        "evanesco_latency_seconds_sum{{op=\"{op}\"}} {}",
        fmt_f64(h.sum().as_secs_f64())
    );
    let _ = writeln!(out, "evanesco_latency_seconds_count{{op=\"{op}\"}} {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use evanesco_ftl::SanitizePolicy;

    #[test]
    fn scrape_covers_every_metric_family() {
        let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
        ssd.enable_gauges();
        ssd.enable_tracing(64);
        ssd.enable_anatomy(64, 8);
        ssd.enable_watchdog(crate::watchdog::DeadlineConfig::for_tests(1, 0.0));
        ssd.write(0, 8, true);
        ssd.read(0, 4);
        ssd.trim(0, 8);
        ssd.finalize_anatomy();
        let scrape = ssd.prometheus_scrape();
        for family in [
            "evanesco_host_ops_total",
            "evanesco_sim_time_seconds",
            "evanesco_iops",
            "evanesco_waf",
            "evanesco_ftl_host_write_pages_total",
            "evanesco_ftl_writes_rejected_readonly_total",
            "evanesco_fault_unc_reads_total",
            "evanesco_recovery_recoveries_total",
            "evanesco_recovery_scan_seconds",
            "evanesco_device_busy_seconds_total{class=\"plock\"}",
            "evanesco_resource_utilization_ratio{resource=\"chip0\"}",
            "evanesco_resource_utilization_ratio{resource=\"channel1\"}",
            "evanesco_latency_seconds_bucket{op=\"read\",le=\"+Inf\"}",
            "evanesco_latency_seconds_sum{op=\"write\"}",
            "evanesco_latency_seconds_count{op=\"trim\"}",
            "evanesco_vaf",
            "evanesco_t_insecure",
            "evanesco_trace_recorded_total",
            "evanesco_trace_span_seconds_total{kind=\"plock\"}",
            "evanesco_ftl_meta_corruptions_injected_total",
            "evanesco_ftl_meta_repairs_from_oob_total",
            "evanesco_ftl_meta_resurrections_pruned_total",
            "evanesco_ftl_audit_scrub_blocks_total",
            "evanesco_watchdog_stalls_injected_total",
            "evanesco_watchdog_deadline_failures_total",
            "evanesco_anatomy_recorded_total",
            "evanesco_anatomy_stage_ns_total{kind=\"trim\",stage=\"sanitize_interference\"}",
            "evanesco_anatomy_stage_ns_total{kind=\"write\",stage=\"chip_service\"}",
        ] {
            assert!(scrape.contains(family), "scrape missing {family}:\n{scrape}");
        }
    }

    #[test]
    fn scrape_is_well_formed_exposition() {
        let mut ssd = Emulator::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco());
        ssd.enable_gauges();
        ssd.write(0, 4, true);
        let scrape = ssd.prometheus_scrape();
        let mut typed = std::collections::HashSet::new();
        for line in scrape.lines() {
            assert!(!line.is_empty(), "no blank lines in the exposition");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap().to_string();
                let kind = it.next().unwrap();
                assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
                assert!(typed.insert(name), "duplicate TYPE for {line}");
            } else if !line.starts_with('#') {
                // `name{labels} value` or `name value`; value parses as f64.
                let (head, value) = line.rsplit_once(' ').expect("sample has a value");
                let v: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in {line}"));
                assert!(v.is_finite(), "{line}");
                let name = head.split('{').next().unwrap();
                let family = name
                    .trim_end_matches("_bucket")
                    .trim_end_matches("_sum")
                    .trim_end_matches("_count");
                assert!(
                    typed.contains(name) || typed.contains(family),
                    "sample {name} missing TYPE header"
                );
            }
        }
    }

    #[test]
    fn label_values_are_escaped_per_exposition_format() {
        // Regression: label values were interpolated verbatim, so a
        // tenant name like `evil"} 1` would forge extra samples.
        assert_eq!(escape_label_value(r#"a\b"#), r#"a\\b"#);
        assert_eq!(escape_label_value(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(escape_label_value("line1\nline2"), r#"line1\nline2"#);
        let mut fam = LabeledFamily::new("m", "h.", "gauge");
        fam.sample_u(&[("tenant", "evil\"} 1\ninjected 2")], 7);
        let mut out = String::new();
        fam.render_into(&mut out).unwrap();
        assert_eq!(out.lines().count(), 3, "one escaped sample line, not an injected one:\n{out}");
        assert!(out.contains(r#"m{tenant="evil\"} 1\ninjected 2"} 7"#), "{out}");
    }

    #[test]
    fn empty_metric_families_are_rejected() {
        let fam = LabeledFamily::new("evanesco_fleet_nothing", "h.", "counter");
        let mut out = String::new();
        let err = fam.render_into(&mut out).unwrap_err();
        assert!(err.contains("empty metric family 'evanesco_fleet_nothing'"), "{err}");
        assert!(out.is_empty(), "nothing rendered for a rejected family");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 90_000, 90_000, 5_000_000] {
            h.record(Nanos(ns));
        }
        let mut out = String::new();
        histogram(&mut out, "read", &h);
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.contains("_bucket") && !l.contains("+Inf"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "cumulative: {out}");
        assert_eq!(*counts.last().unwrap(), 5, "last finite bucket holds all: {out}");
        assert!(out.contains("le=\"+Inf\"} 5"));
        assert!(out.contains("evanesco_latency_seconds_count{op=\"read\"} 5"));
    }
}

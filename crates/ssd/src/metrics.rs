//! Run-level metrics: IOPS, WAF, erases, lock mix, recovery, latency
//! histograms.

use evanesco_core::fault::FaultStats;
use evanesco_ftl::{FtlStats, RecoveryReport};
use evanesco_nand::timing::Nanos;

/// A log₂-bucketed latency histogram (nanosecond samples, 48 buckets up to
/// ~3 days) with O(1) recording and approximate percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 48],
    count: u64,
    max: Nanos,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; 48], count: 0, max: Nanos::ZERO }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Nanos) {
        let idx = (64 - sample.0.max(1).leading_zeros() as usize - 1).min(47);
        self.buckets[idx] += 1;
        self.count += 1;
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Approximate percentile (upper bucket bound), `p` in `[0, 100]`.
    /// Returns zero for an empty histogram.
    pub fn percentile(&self, p: f64) -> Nanos {
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bucket bound; the overflow bucket reports the max.
                if i + 1 >= self.buckets.len() {
                    return self.max;
                }
                return Nanos(1u64 << (i + 1)).min(self.max);
            }
        }
        self.max
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregated power-up recovery work across a run (zero until the first
/// [`crate::emulator::Emulator::recover`] call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryTotals {
    /// Number of recovery scans performed.
    pub recoveries: u64,
    /// Simulated device time spent scanning and re-locking.
    pub scan_time: Nanos,
    /// Occupied pages probed across all scans.
    pub scanned_pages: u64,
    /// Logical mappings rebuilt from OOB metadata.
    pub rebuilt_mappings: u64,
    /// Torn writes found (programs interrupted by a power cut).
    pub torn_writes: u64,
    /// Decodable torn *secured* writes sanitized as unacknowledged orphans.
    pub orphaned_pages: u64,
    /// Torn `pLock`s completed.
    pub relocked_pages: u64,
    /// Torn `bLock`s re-issued.
    pub reissued_blocks: u64,
    /// Torn-erase blocks re-erased before serving the host.
    pub resealed_blocks: u64,
    /// Stale secured versions sanitized after the mapping contest.
    pub stale_secured: u64,
    /// Lock commands re-issued after a verify failure.
    pub lock_retries: u64,
    /// Locks replaced by a destructive scrub after the retry budget.
    pub lock_fallbacks: u64,
    /// Grown-bad-block table size after the most recent scan (rebuilt from
    /// the on-flash spare-area marks; a snapshot, not a running sum).
    pub retired_blocks: u64,
}

impl RecoveryTotals {
    /// Folds one scan's report (and its measured device time) in.
    pub fn absorb(&mut self, r: &RecoveryReport, scan_time: Nanos) {
        self.recoveries += 1;
        self.scan_time += scan_time;
        self.scanned_pages += r.scanned_pages;
        self.rebuilt_mappings += r.rebuilt_mappings;
        self.torn_writes += r.torn_writes;
        self.orphaned_pages += r.orphaned_pages;
        self.relocked_pages += r.relocked_pages;
        self.reissued_blocks += r.reissued_blocks;
        self.resealed_blocks += r.resealed_blocks;
        self.stale_secured += r.stale_secured;
        self.lock_retries += r.lock_retries;
        self.lock_fallbacks += r.lock_fallbacks;
        self.retired_blocks = r.retired_blocks;
    }

    /// Difference against an earlier snapshot of the same run.
    pub fn since(&self, earlier: &RecoveryTotals) -> RecoveryTotals {
        RecoveryTotals {
            recoveries: self.recoveries - earlier.recoveries,
            scan_time: self.scan_time.saturating_sub(earlier.scan_time),
            scanned_pages: self.scanned_pages - earlier.scanned_pages,
            rebuilt_mappings: self.rebuilt_mappings - earlier.rebuilt_mappings,
            torn_writes: self.torn_writes - earlier.torn_writes,
            orphaned_pages: self.orphaned_pages - earlier.orphaned_pages,
            relocked_pages: self.relocked_pages - earlier.relocked_pages,
            reissued_blocks: self.reissued_blocks - earlier.reissued_blocks,
            resealed_blocks: self.resealed_blocks - earlier.resealed_blocks,
            stale_secured: self.stale_secured - earlier.stale_secured,
            lock_retries: self.lock_retries - earlier.lock_retries,
            lock_fallbacks: self.lock_fallbacks - earlier.lock_fallbacks,
            retired_blocks: self.retired_blocks,
        }
    }
}

/// Summary of an emulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Host page operations executed (reads + writes + trimmed pages).
    pub host_ops: u64,
    /// Total simulated device time.
    pub sim_time: Nanos,
    /// Host page operations per simulated second.
    pub iops: f64,
    /// Write amplification factor.
    pub waf: f64,
    /// Block erases performed.
    pub erases: u64,
    /// `pLock` commands issued (chip-level count).
    pub plocks: u64,
    /// `bLock` commands issued (chip-level count).
    pub blocks_locked: u64,
    /// Full FTL counters.
    pub ftl: FtlStats,
    /// Power-up recovery work (zero if the run never lost power).
    pub recovery: RecoveryTotals,
    /// Chip-level injected-fault counters (zero unless a fault model is
    /// configured).
    pub faults: FaultStats,
}

impl RunResult {
    /// Builds a result from raw counters.
    pub fn new(
        host_ops: u64,
        sim_time: Nanos,
        ftl: FtlStats,
        locks: (u64, u64),
        erases: u64,
        recovery: RecoveryTotals,
        faults: FaultStats,
    ) -> Self {
        let secs = sim_time.as_secs_f64();
        RunResult {
            host_ops,
            sim_time,
            iops: if secs > 0.0 { host_ops as f64 / secs } else { 0.0 },
            waf: ftl.waf(),
            erases,
            plocks: locks.0,
            blocks_locked: locks.1,
            ftl,
            recovery,
            faults,
        }
    }

    /// IOPS normalized to a baseline run (the paper's Figure 14a unit).
    pub fn iops_vs(&self, baseline: &RunResult) -> f64 {
        if baseline.iops > 0.0 {
            self.iops / baseline.iops
        } else {
            0.0
        }
    }

    /// WAF normalized to a baseline run (Figure 14b unit).
    pub fn waf_vs(&self, baseline: &RunResult) -> f64 {
        if baseline.waf > 0.0 {
            self.waf / baseline.waf
        } else {
            0.0
        }
    }

    /// The metrics accumulated since an `earlier` snapshot of the same run
    /// (used to exclude warm-up phases from measurement).
    pub fn since(&self, earlier: &RunResult) -> RunResult {
        RunResult::new(
            self.host_ops - earlier.host_ops,
            self.sim_time.saturating_sub(earlier.sim_time),
            self.ftl.since(&earlier.ftl),
            (self.plocks - earlier.plocks, self.blocks_locked - earlier.blocks_locked),
            self.erases - earlier.erases,
            self.recovery.since(&earlier.recovery),
            self.faults.since(&earlier.faults),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(host_ops: u64, micros: u64, programs: u64, writes: u64) -> RunResult {
        let ftl =
            FtlStats { host_write_pages: writes, nand_programs: programs, ..Default::default() };
        RunResult::new(
            host_ops,
            Nanos::from_micros(micros),
            ftl,
            (0, 0),
            0,
            RecoveryTotals::default(),
            FaultStats::default(),
        )
    }

    #[test]
    fn iops_and_waf() {
        let r = result(1000, 1_000_000, 300, 100);
        assert!((r.iops - 1000.0).abs() < 1e-9);
        assert!((r.waf - 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let base = result(1000, 1_000_000, 100, 100);
        let slow = result(1000, 4_000_000, 300, 100);
        assert!((slow.iops_vs(&base) - 0.25).abs() < 1e-9);
        assert!((slow.waf_vs(&base) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_gives_zero_iops() {
        let r = result(10, 0, 0, 0);
        assert_eq!(r.iops, 0.0);
    }

    #[test]
    fn latency_histogram_percentiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(99.0), Nanos::ZERO);
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record(Nanos::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), Nanos::from_micros(5000));
        // p50 lands in the 10us bucket (upper bound 16.384us).
        assert!(h.percentile(50.0) <= Nanos::from_micros(17));
        // p100 reaches the outlier.
        assert_eq!(h.percentile(100.0), Nanos::from_micros(5000));
        // Monotone in p.
        assert!(h.percentile(99.0) >= h.percentile(50.0));
    }

    #[test]
    fn latency_histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos(0));
        h.record(Nanos(u64::MAX));
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(100.0), Nanos(u64::MAX));
    }

    #[test]
    fn recovery_totals_absorb_and_since() {
        let mut t = RecoveryTotals::default();
        let r = RecoveryReport {
            scanned_pages: 40,
            rebuilt_mappings: 30,
            torn_writes: 2,
            orphaned_pages: 1,
            relocked_pages: 3,
            reissued_blocks: 1,
            resealed_blocks: 1,
            stale_secured: 2,
            lock_retries: 4,
            lock_fallbacks: 1,
            retired_blocks: 1,
        };
        t.absorb(&r, Nanos::from_micros(500));
        let snapshot = t;
        t.absorb(&r, Nanos::from_micros(700));
        assert_eq!(t.recoveries, 2);
        assert_eq!(t.scanned_pages, 80);
        assert_eq!(t.scan_time, Nanos::from_micros(1200));
        let d = t.since(&snapshot);
        assert_eq!(d.recoveries, 1);
        assert_eq!(d.scan_time, Nanos::from_micros(700));
        assert_eq!(d.scanned_pages, 40);
        assert_eq!(d.relocked_pages, 3);
        assert_eq!(d.lock_fallbacks, 1);
    }

    #[test]
    fn since_isolates_the_measured_phase() {
        let warmup = result(1000, 2_000_000, 1500, 1000);
        let full = result(3000, 6_000_000, 3500, 3000);
        let main = full.since(&warmup);
        assert_eq!(main.host_ops, 2000);
        assert_eq!(main.sim_time, Nanos::from_micros(4_000_000));
        assert_eq!(main.ftl.nand_programs, 2000);
        assert_eq!(main.ftl.host_write_pages, 2000);
        // WAF recomputed from the deltas, not inherited.
        assert!((main.waf - 1.0).abs() < 1e-12);
        // IOPS from delta ops over delta time.
        assert!((main.iops - 2000.0 / 4.0).abs() < 1e-9);
    }
}

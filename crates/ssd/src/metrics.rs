//! Run-level metrics: IOPS, WAF, erases, lock mix, recovery, latency
//! histograms.

use evanesco_core::fault::FaultStats;
use evanesco_ftl::{FtlStats, RecoveryReport};
use evanesco_nand::timing::Nanos;

/// A log₂-bucketed latency histogram (nanosecond samples, 48 buckets up to
/// ~3 days) with O(1) recording and approximate percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 48],
    count: u64,
    sum: Nanos,
    max: Nanos,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; 48], count: 0, sum: Nanos::ZERO, max: Nanos::ZERO }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Nanos) {
        let idx = (64 - sample.0.max(1).leading_zeros() as usize - 1).min(47);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += sample;
        self.max = self.max.max(sample);
    }

    /// Folds another histogram into this one (bucket-wise sum; exact for
    /// count/sum/max). The fleet layer uses this to aggregate one
    /// tenant's latency across devices.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (exact, unlike the bucketed shape).
    pub fn sum(&self) -> Nanos {
        self.sum
    }

    /// Mean recorded sample (exact); zero for an empty histogram.
    pub fn mean(&self) -> Nanos {
        Nanos(self.sum.0.checked_div(self.count).unwrap_or(0))
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Raw bucket counts; bucket `i` covers `[2^i, 2^(i+1))` nanoseconds
    /// (bucket 0 also absorbs zero samples, bucket 47 everything above).
    pub fn buckets(&self) -> &[u64; 48] {
        &self.buckets
    }

    /// Approximate percentile, `p` in `[0, 100]`. Returns zero for an
    /// empty histogram.
    ///
    /// Reports the **geometric midpoint** of the bucket holding the
    /// nearest-rank sample (`2^(i+0.5)` for bucket `[2^i, 2^(i+1))`),
    /// clamped to the observed maximum. Under the log₂ bucketing this is
    /// off by at most `√2×` from the exact nearest-rank value, in either
    /// direction — comparisons between two histograms (e.g. the fleet
    /// QoS-on/QoS-off p99 gate) therefore need a margin wider than `2×`
    /// or enough samples to land in different buckets.
    pub fn percentile(&self, p: f64) -> Nanos {
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if target >= self.count {
            // The nearest-rank sample is the largest one, which is tracked
            // exactly.
            return self.max;
        }
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The overflow bucket has no finite midpoint: report the max.
                if i + 1 >= self.buckets.len() {
                    return self.max;
                }
                let mid = ((1u64 << i) as f64 * std::f64::consts::SQRT_2) as u64;
                return Nanos(mid).min(self.max);
            }
        }
        self.max
    }

    /// Serializes the histogram into a checkpoint stream.
    pub fn encode_snapshot(&self, e: &mut evanesco_nand::snapshot::Enc) {
        for &b in &self.buckets {
            e.u64(b);
        }
        e.u64(self.count);
        e.u64(self.sum.0);
        e.u64(self.max.0);
    }

    /// Inverse of [`LatencyHistogram::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode_snapshot(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        let mut buckets = [0u64; 48];
        for b in buckets.iter_mut() {
            *b = d.u64()?;
        }
        Ok(LatencyHistogram {
            buckets,
            count: d.u64()?,
            sum: Nanos(d.u64()?),
            max: Nanos(d.u64()?),
        })
    }

    /// The samples accumulated since an `earlier` snapshot of the same
    /// histogram (bucket-wise difference). The `max` of the difference is
    /// this histogram's max — the per-phase maximum is not recoverable
    /// from bucketed state.
    pub fn since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut buckets = [0u64; 48];
        for (b, (s, e)) in buckets.iter_mut().zip(self.buckets.iter().zip(earlier.buckets.iter())) {
            *b = s - e;
        }
        LatencyHistogram {
            buckets,
            count: self.count - earlier.count,
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-operation host service-latency histograms, one per host op class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Read service latency.
    pub read: LatencyHistogram,
    /// Write service latency.
    pub write: LatencyHistogram,
    /// Trim (secure-delete) service latency.
    pub trim: LatencyHistogram,
}

impl LatencyBreakdown {
    /// Field-wise [`LatencyHistogram::since`].
    pub fn since(&self, earlier: &LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            read: self.read.since(&earlier.read),
            write: self.write.since(&earlier.write),
            trim: self.trim.since(&earlier.trim),
        }
    }

    /// Serializes all three histograms into a checkpoint stream.
    pub fn encode_snapshot(&self, e: &mut evanesco_nand::snapshot::Enc) {
        self.read.encode_snapshot(e);
        self.write.encode_snapshot(e);
        self.trim.encode_snapshot(e);
    }

    /// Inverse of [`LatencyBreakdown::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode_snapshot(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        Ok(LatencyBreakdown {
            read: LatencyHistogram::decode_snapshot(d)?,
            write: LatencyHistogram::decode_snapshot(d)?,
            trim: LatencyHistogram::decode_snapshot(d)?,
        })
    }
}

/// Aggregated power-up recovery work across a run (zero until the first
/// [`crate::emulator::Emulator::recover`] call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryTotals {
    /// Number of recovery scans performed.
    pub recoveries: u64,
    /// Simulated device time spent scanning and re-locking.
    pub scan_time: Nanos,
    /// Occupied pages probed across all scans.
    pub scanned_pages: u64,
    /// Logical mappings rebuilt from OOB metadata.
    pub rebuilt_mappings: u64,
    /// Torn writes found (programs interrupted by a power cut).
    pub torn_writes: u64,
    /// Decodable torn *secured* writes sanitized as unacknowledged orphans.
    pub orphaned_pages: u64,
    /// Torn `pLock`s completed.
    pub relocked_pages: u64,
    /// Torn `bLock`s re-issued.
    pub reissued_blocks: u64,
    /// Torn-erase blocks re-erased before serving the host.
    pub resealed_blocks: u64,
    /// Stale secured versions sanitized after the mapping contest.
    pub stale_secured: u64,
    /// Lock commands re-issued after a verify failure.
    pub lock_retries: u64,
    /// Locks replaced by a destructive scrub after the retry budget.
    pub lock_fallbacks: u64,
    /// Grown-bad-block table size after the most recent scan (rebuilt from
    /// the on-flash spare-area marks; a snapshot, not a running sum).
    pub retired_blocks: u64,
}

impl RecoveryTotals {
    /// Folds one scan's report (and its measured device time) in.
    pub fn absorb(&mut self, r: &RecoveryReport, scan_time: Nanos) {
        self.recoveries += 1;
        self.scan_time += scan_time;
        self.scanned_pages += r.scanned_pages;
        self.rebuilt_mappings += r.rebuilt_mappings;
        self.torn_writes += r.torn_writes;
        self.orphaned_pages += r.orphaned_pages;
        self.relocked_pages += r.relocked_pages;
        self.reissued_blocks += r.reissued_blocks;
        self.resealed_blocks += r.resealed_blocks;
        self.stale_secured += r.stale_secured;
        self.lock_retries += r.lock_retries;
        self.lock_fallbacks += r.lock_fallbacks;
        self.retired_blocks = r.retired_blocks;
    }

    /// Serializes every counter into a checkpoint stream.
    pub fn encode_snapshot(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.u64(self.recoveries);
        e.u64(self.scan_time.0);
        e.u64(self.scanned_pages);
        e.u64(self.rebuilt_mappings);
        e.u64(self.torn_writes);
        e.u64(self.orphaned_pages);
        e.u64(self.relocked_pages);
        e.u64(self.reissued_blocks);
        e.u64(self.resealed_blocks);
        e.u64(self.stale_secured);
        e.u64(self.lock_retries);
        e.u64(self.lock_fallbacks);
        e.u64(self.retired_blocks);
    }

    /// Inverse of [`RecoveryTotals::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode_snapshot(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        Ok(RecoveryTotals {
            recoveries: d.u64()?,
            scan_time: Nanos(d.u64()?),
            scanned_pages: d.u64()?,
            rebuilt_mappings: d.u64()?,
            torn_writes: d.u64()?,
            orphaned_pages: d.u64()?,
            relocked_pages: d.u64()?,
            reissued_blocks: d.u64()?,
            resealed_blocks: d.u64()?,
            stale_secured: d.u64()?,
            lock_retries: d.u64()?,
            lock_fallbacks: d.u64()?,
            retired_blocks: d.u64()?,
        })
    }

    /// Difference against an earlier snapshot of the same run.
    pub fn since(&self, earlier: &RecoveryTotals) -> RecoveryTotals {
        RecoveryTotals {
            recoveries: self.recoveries - earlier.recoveries,
            scan_time: self.scan_time.saturating_sub(earlier.scan_time),
            scanned_pages: self.scanned_pages - earlier.scanned_pages,
            rebuilt_mappings: self.rebuilt_mappings - earlier.rebuilt_mappings,
            torn_writes: self.torn_writes - earlier.torn_writes,
            orphaned_pages: self.orphaned_pages - earlier.orphaned_pages,
            relocked_pages: self.relocked_pages - earlier.relocked_pages,
            reissued_blocks: self.reissued_blocks - earlier.reissued_blocks,
            resealed_blocks: self.resealed_blocks - earlier.resealed_blocks,
            stale_secured: self.stale_secured - earlier.stale_secured,
            lock_retries: self.lock_retries - earlier.lock_retries,
            lock_fallbacks: self.lock_fallbacks - earlier.lock_fallbacks,
            retired_blocks: self.retired_blocks,
        }
    }
}

/// Summary of an emulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Host page operations executed (reads + writes + trimmed pages).
    pub host_ops: u64,
    /// Total simulated device time.
    pub sim_time: Nanos,
    /// Host page operations per simulated second.
    pub iops: f64,
    /// Write amplification factor.
    pub waf: f64,
    /// Block erases performed.
    pub erases: u64,
    /// `pLock` commands issued (chip-level count).
    pub plocks: u64,
    /// `bLock` commands issued (chip-level count).
    pub blocks_locked: u64,
    /// Full FTL counters.
    pub ftl: FtlStats,
    /// Power-up recovery work (zero if the run never lost power).
    pub recovery: RecoveryTotals,
    /// Chip-level injected-fault counters (zero unless a fault model is
    /// configured).
    pub faults: FaultStats,
    /// Host service-latency histograms per op class (reads included; see
    /// the read path in `emulator::dispatch_scheduled` and the sync ops).
    pub latency: LatencyBreakdown,
}

impl RunResult {
    /// Builds a result from raw counters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        host_ops: u64,
        sim_time: Nanos,
        ftl: FtlStats,
        locks: (u64, u64),
        erases: u64,
        recovery: RecoveryTotals,
        faults: FaultStats,
        latency: LatencyBreakdown,
    ) -> Self {
        let secs = sim_time.as_secs_f64();
        RunResult {
            host_ops,
            sim_time,
            iops: if secs > 0.0 { host_ops as f64 / secs } else { 0.0 },
            waf: ftl.waf(),
            erases,
            plocks: locks.0,
            blocks_locked: locks.1,
            ftl,
            recovery,
            faults,
            latency,
        }
    }

    /// Serializes the full result — including the derived `iops`/`waf`
    /// floats, bit-exact via [`f64::to_bits`] — into a checkpoint stream.
    pub fn encode_snapshot(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.u64(self.host_ops);
        e.u64(self.sim_time.0);
        e.f64(self.iops);
        e.f64(self.waf);
        e.u64(self.erases);
        e.u64(self.plocks);
        e.u64(self.blocks_locked);
        self.ftl.encode_snapshot(e);
        self.recovery.encode_snapshot(e);
        e.u64(self.faults.program_failures);
        e.u64(self.faults.erase_failures);
        e.u64(self.faults.plock_failures);
        e.u64(self.faults.block_lock_failures);
        e.u64(self.faults.read_retries);
        e.u64(self.faults.unc_reads);
        self.latency.encode_snapshot(e);
    }

    /// Inverse of [`RunResult::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode_snapshot(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        Ok(RunResult {
            host_ops: d.u64()?,
            sim_time: Nanos(d.u64()?),
            iops: d.f64()?,
            waf: d.f64()?,
            erases: d.u64()?,
            plocks: d.u64()?,
            blocks_locked: d.u64()?,
            ftl: FtlStats::decode_snapshot(d)?,
            recovery: RecoveryTotals::decode_snapshot(d)?,
            faults: FaultStats {
                program_failures: d.u64()?,
                erase_failures: d.u64()?,
                plock_failures: d.u64()?,
                block_lock_failures: d.u64()?,
                read_retries: d.u64()?,
                unc_reads: d.u64()?,
            },
            latency: LatencyBreakdown::decode_snapshot(d)?,
        })
    }

    /// IOPS normalized to a baseline run (the paper's Figure 14a unit).
    pub fn iops_vs(&self, baseline: &RunResult) -> f64 {
        if baseline.iops > 0.0 {
            self.iops / baseline.iops
        } else {
            0.0
        }
    }

    /// WAF normalized to a baseline run (Figure 14b unit).
    pub fn waf_vs(&self, baseline: &RunResult) -> f64 {
        if baseline.waf > 0.0 {
            self.waf / baseline.waf
        } else {
            0.0
        }
    }

    /// The metrics accumulated since an `earlier` snapshot of the same run
    /// (used to exclude warm-up phases from measurement).
    pub fn since(&self, earlier: &RunResult) -> RunResult {
        RunResult::new(
            self.host_ops - earlier.host_ops,
            self.sim_time.saturating_sub(earlier.sim_time),
            self.ftl.since(&earlier.ftl),
            (self.plocks - earlier.plocks, self.blocks_locked - earlier.blocks_locked),
            self.erases - earlier.erases,
            self.recovery.since(&earlier.recovery),
            self.faults.since(&earlier.faults),
            self.latency.since(&earlier.latency),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(host_ops: u64, micros: u64, programs: u64, writes: u64) -> RunResult {
        let ftl =
            FtlStats { host_write_pages: writes, nand_programs: programs, ..Default::default() };
        RunResult::new(
            host_ops,
            Nanos::from_micros(micros),
            ftl,
            (0, 0),
            0,
            RecoveryTotals::default(),
            FaultStats::default(),
            LatencyBreakdown::default(),
        )
    }

    #[test]
    fn iops_and_waf() {
        let r = result(1000, 1_000_000, 300, 100);
        assert!((r.iops - 1000.0).abs() < 1e-9);
        assert!((r.waf - 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let base = result(1000, 1_000_000, 100, 100);
        let slow = result(1000, 4_000_000, 300, 100);
        assert!((slow.iops_vs(&base) - 0.25).abs() < 1e-9);
        assert!((slow.waf_vs(&base) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_gives_zero_iops() {
        let r = result(10, 0, 0, 0);
        assert_eq!(r.iops, 0.0);
    }

    #[test]
    fn latency_histogram_percentiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(99.0), Nanos::ZERO);
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record(Nanos::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), Nanos::from_micros(5000));
        // p50 lands in the 10us bucket (upper bound 16.384us).
        assert!(h.percentile(50.0) <= Nanos::from_micros(17));
        // p100 reaches the outlier.
        assert_eq!(h.percentile(100.0), Nanos::from_micros(5000));
        // Monotone in p.
        assert!(h.percentile(99.0) >= h.percentile(50.0));
    }

    /// Exact nearest-rank percentile over raw samples (the reference the
    /// bucketed estimate is regression-tested against).
    fn nearest_rank(samples: &mut [u64], p: f64) -> u64 {
        samples.sort_unstable();
        let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
        samples[rank - 1]
    }

    #[test]
    fn percentile_tracks_nearest_rank_within_sqrt2() {
        // A mixed distribution spanning several log2 buckets: a cluster of
        // fast ops, a mid band, and slow outliers.
        let mut samples: Vec<u64> = Vec::new();
        samples.extend(std::iter::repeat_n(9_800, 50)); // ~10us cluster
        samples.extend((0..30).map(|i| 90_000 + i * 1_000)); // ~90-120us band
        samples.extend((0..15).map(|i| 700_000 + i * 10_000)); // ~0.7-0.85ms
        samples.extend([4_000_000, 4_100_000, 4_200_000, 9_000_000, 30_000_000]);
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(Nanos(s));
        }
        assert_eq!(h.sum(), Nanos(samples.iter().sum::<u64>()));
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let exact = nearest_rank(&mut samples, p) as f64;
            let approx = h.percentile(p).0 as f64;
            // The geometric bucket midpoint is within sqrt(2) of any sample
            // in its bucket; the old upper-bound convention failed this for
            // the clusters sitting just above a power of two.
            assert!(
                approx <= exact * std::f64::consts::SQRT_2 + 1.0
                    && approx >= exact / std::f64::consts::SQRT_2 - 1.0,
                "p{p}: approx {approx} vs exact {exact}"
            );
        }
        // Regression: p50 of the ~9.8us cluster must not report the 16.4us
        // bucket upper bound (the old behaviour, a 1.7x overstatement).
        assert!(h.percentile(50.0) < Nanos(13_000));
        // The estimate never exceeds the observed maximum.
        assert_eq!(h.percentile(100.0), Nanos(30_000_000));
    }

    #[test]
    fn histogram_since_subtracts_phases() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos(1_000));
        h.record(Nanos(2_000));
        let warmup = h;
        h.record(Nanos(70_000));
        h.record(Nanos(80_000));
        h.record(Nanos(90_000));
        let main = h.since(&warmup);
        assert_eq!(main.count(), 3);
        assert_eq!(main.sum(), Nanos(240_000));
        // All main-phase samples live in the 65.5..131us bucket; its
        // geometric midpoint (~92.7us) clamps to the observed max.
        assert!(main.percentile(50.0) >= Nanos(65_536));
        assert!(main.percentile(50.0) <= Nanos(90_000));
    }

    #[test]
    fn latency_histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos(0));
        h.record(Nanos(u64::MAX));
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(100.0), Nanos(u64::MAX));
    }

    #[test]
    fn recovery_totals_absorb_and_since() {
        let mut t = RecoveryTotals::default();
        let r = RecoveryReport {
            scanned_pages: 40,
            rebuilt_mappings: 30,
            torn_writes: 2,
            orphaned_pages: 1,
            relocked_pages: 3,
            reissued_blocks: 1,
            resealed_blocks: 1,
            stale_secured: 2,
            lock_retries: 4,
            lock_fallbacks: 1,
            retired_blocks: 1,
        };
        t.absorb(&r, Nanos::from_micros(500));
        let snapshot = t;
        t.absorb(&r, Nanos::from_micros(700));
        assert_eq!(t.recoveries, 2);
        assert_eq!(t.scanned_pages, 80);
        assert_eq!(t.scan_time, Nanos::from_micros(1200));
        let d = t.since(&snapshot);
        assert_eq!(d.recoveries, 1);
        assert_eq!(d.scan_time, Nanos::from_micros(700));
        assert_eq!(d.scanned_pages, 40);
        assert_eq!(d.relocked_pages, 3);
        assert_eq!(d.lock_fallbacks, 1);
    }

    #[test]
    fn since_isolates_the_measured_phase() {
        let warmup = result(1000, 2_000_000, 1500, 1000);
        let full = result(3000, 6_000_000, 3500, 3000);
        let main = full.since(&warmup);
        assert_eq!(main.host_ops, 2000);
        assert_eq!(main.sim_time, Nanos::from_micros(4_000_000));
        assert_eq!(main.ftl.nand_programs, 2000);
        assert_eq!(main.ftl.host_write_pages, 2000);
        // WAF recomputed from the deltas, not inherited.
        assert!((main.waf - 1.0).abs() < 1e-12);
        // IOPS from delta ops over delta time.
        assert!((main.iops - 2000.0 / 4.0).abs() < 1e-9);
    }
}

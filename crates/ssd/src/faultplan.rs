//! Deterministic power-cut schedules.
//!
//! A [`FaultPlan`] is a reproducible list of absolute simulated-time
//! instants at which power is cut. Crash tests drive the emulator through
//! one cut at a time: arm the next cut with
//! [`crate::emulator::Emulator::power_cut_at`], run the workload until the
//! cut fires, then [`crate::emulator::Emulator::recover`] and continue.
//! Because the cut instants, the torn-state draws they seed, and every
//! other random stream in the workspace are pure functions of explicit
//! seeds, a failing schedule replays bit-identically from
//! `(config, workload seed, fault seed)`.

use evanesco_nand::timing::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible schedule of power-cut instants, consumed in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    cuts: Vec<Nanos>,
    next: usize,
}

impl FaultPlan {
    /// A plan that never cuts power.
    pub fn none() -> Self {
        FaultPlan { cuts: Vec::new(), next: 0 }
    }

    /// A single cut at `at`.
    pub fn single(at: Nanos) -> Self {
        FaultPlan { cuts: vec![at], next: 0 }
    }

    /// `n` cuts drawn uniformly from `(0, horizon)`, sorted ascending and
    /// deduplicated — the same `(seed, horizon, n)` always yields the same
    /// plan.
    pub fn from_seed(seed: u64, horizon: Nanos, n: usize) -> Self {
        assert!(horizon > Nanos(1), "fault-plan horizon must exceed 1 ns");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cuts: Vec<Nanos> = (0..n).map(|_| Nanos(rng.gen_range(1..horizon.0))).collect();
        cuts.sort_unstable();
        cuts.dedup();
        FaultPlan { cuts, next: 0 }
    }

    /// Takes the next cut instant off the schedule.
    pub fn next_cut(&mut self) -> Option<Nanos> {
        let c = self.cuts.get(self.next).copied();
        if c.is_some() {
            self.next += 1;
        }
        c
    }

    /// The full schedule (consumed or not).
    pub fn cuts(&self) -> &[Nanos] {
        &self.cuts
    }

    /// Cuts not yet taken by [`FaultPlan::next_cut`].
    pub fn remaining(&self) -> usize {
        self.cuts.len() - self.next
    }

    /// Serializes the schedule and its consumption cursor into a
    /// checkpoint stream.
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x43);
        e.usize(self.cuts.len());
        for c in &self.cuts {
            e.u64(c.0);
        }
        e.usize(self.next);
    }

    /// Reconstructs a plan from a stream written by
    /// [`FaultPlan::encode_state`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or a cursor past the end of the schedule.
    pub fn decode_state(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        use evanesco_nand::snapshot::SnapshotError;
        d.expect_tag(0x43, "fault-plan")?;
        let n = d.usize()?;
        let mut cuts = Vec::with_capacity(n);
        for _ in 0..n {
            cuts.push(Nanos(d.u64()?));
        }
        let next = d.usize()?;
        if next > cuts.len() {
            return Err(SnapshotError::Corrupt(format!(
                "fault-plan cursor {next} past schedule of {}",
                cuts.len()
            )));
        }
        Ok(FaultPlan { cuts, next })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_sorted() {
        let h = Nanos::from_micros(10_000);
        let a = FaultPlan::from_seed(42, h, 8);
        let b = FaultPlan::from_seed(42, h, 8);
        assert_eq!(a, b);
        assert!(a.cuts().windows(2).all(|w| w[0] < w[1]));
        assert!(a.cuts().iter().all(|&c| c > Nanos::ZERO && c < h));
        let c = FaultPlan::from_seed(43, h, 8);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn consumption_order_and_remaining() {
        let mut p = FaultPlan::from_seed(7, Nanos::from_micros(1000), 3);
        let total = p.cuts().len();
        assert_eq!(p.remaining(), total);
        let first = p.next_cut().unwrap();
        assert_eq!(first, p.cuts()[0]);
        assert_eq!(p.remaining(), total - 1);
        while p.next_cut().is_some() {}
        assert_eq!(p.remaining(), 0);
        assert_eq!(p.next_cut(), None);
    }

    #[test]
    fn single_and_none() {
        let mut s = FaultPlan::single(Nanos(500));
        assert_eq!(s.next_cut(), Some(Nanos(500)));
        assert_eq!(s.next_cut(), None);
        assert_eq!(FaultPlan::none().remaining(), 0);
    }
}

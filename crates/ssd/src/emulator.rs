//! The SSD emulator facade: host interface + FTL + timed device array.
//!
//! This is the reproduction of the paper's FlashBench-based SecureSSD
//! prototype (§6–7): host requests carry a security requirement (the
//! `O_INSEC` / `REQ_OP_INSEC_WRITE` path), the FTL manages page states and
//! locks, and the device array accounts simulated time for IOPS.

use crate::anatomy::AnatomyRecorder;
use crate::config::SsdConfig;
use crate::device::TimedExecutor;
use crate::gauges::LiveGauges;
use crate::metrics::{LatencyBreakdown, LatencyHistogram, RecoveryTotals, RunResult};
use crate::sched::{Dispatch, HostOp, OpResult, SchedRun, Scheduler};
use crate::timeseries::TimeSeries;
use crate::trace::{ReqKind, TraceEvent, TraceRecorder};
use crate::watchdog::{DeadlineConfig, Verdict, Watchdog, WatchdogStats};
use evanesco_core::fault::{CorruptionConfig, CorruptionStats};
use evanesco_core::threat::Attacker;
use evanesco_ftl::ftl::Ftl;
use evanesco_ftl::observer::{FtlObserver, NullObserver, Tee};
use evanesco_ftl::{Lpa, RecoveryReport, SanitizePolicy};
use evanesco_nand::timing::Nanos;
use std::collections::HashSet;

/// An emulated flash storage device.
#[derive(Debug, Clone)]
pub struct Emulator {
    cfg: SsdConfig,
    ftl: Ftl,
    ex: TimedExecutor,
    /// Current content tag and security flag per logical page (tag
    /// tracking only).
    tag_of: Vec<Option<(u64, bool)>>,
    /// Superseded or deleted tags: `(lpa, tag, was_secure)` — the audit
    /// log behind [`Emulator::verify_sanitized`]. Only populated when
    /// `cfg.stale_audit` is on; see [`Emulator::compact_stale`].
    stale: Vec<(Lpa, u64, bool)>,
    next_tag: u64,
    host_ops: u64,
    read_latency: LatencyHistogram,
    write_latency: LatencyHistogram,
    trim_latency: LatencyHistogram,
    recovery: RecoveryTotals,
    /// Live T_insecure / VAF gauges ([`Emulator::enable_gauges`]).
    gauges: Option<LiveGauges>,
    /// Per-request span recorder ([`Emulator::enable_tracing`]).
    trace: Option<TraceRecorder>,
    /// Recycled drain buffer for the executor's trace events: unrecorded
    /// drains hand their allocation back instead of dropping it.
    trace_spare: Vec<TraceEvent>,
    /// Per-request latency-anatomy recorder
    /// ([`Emulator::enable_anatomy`]); fed from each finished trace.
    anatomy: Option<AnatomyRecorder>,
    /// Context the scheduled dispatcher stashes for the next
    /// `trace_finish`: the watchdog penalty window (absolute) and the
    /// request's submission-order index. Cleared after each record.
    anatomy_retry: Option<(Nanos, Nanos)>,
    anatomy_req_idx: Option<usize>,
    /// Windowed telemetry ring ([`Emulator::enable_timeseries`]).
    timeseries: Option<TimeSeries>,
    /// Deadline watchdog on the scheduled path
    /// ([`Emulator::enable_watchdog`]). Like tracing, never checkpointed:
    /// re-enable after restore.
    watchdog: Option<Watchdog>,
}

impl Emulator {
    /// Creates an emulated SSD with the given sanitization policy.
    pub fn new(cfg: SsdConfig, policy: SanitizePolicy) -> Self {
        cfg.validate();
        let ftl = Ftl::new(cfg.ftl, policy);
        let tags = if cfg.track_tags { ftl.logical_pages() as usize } else { 0 };
        Emulator {
            ex: TimedExecutor::new(&cfg),
            tag_of: vec![None; tags],
            stale: Vec::new(),
            next_tag: 1,
            host_ops: 0,
            read_latency: LatencyHistogram::new(),
            write_latency: LatencyHistogram::new(),
            trim_latency: LatencyHistogram::new(),
            recovery: RecoveryTotals::default(),
            gauges: None,
            trace: None,
            trace_spare: Vec::new(),
            anatomy: None,
            anatomy_retry: None,
            anatomy_req_idx: None,
            timeseries: None,
            watchdog: None,
            cfg,
            ftl,
        }
    }

    /// Arms the metadata-corruption chaos harness: deterministic bit-level
    /// corruption of the FTL's RAM tables at host-op boundaries, guarded
    /// by shadow checksums, verify-before-serve repair, and an incremental
    /// audit scrubber (see `evanesco_ftl`'s guard module). Accounting is
    /// exposed through [`Emulator::chaos_stats`] and the FTL stats'
    /// `meta_*` counters.
    pub fn enable_chaos(&mut self, cfg: CorruptionConfig) -> &mut Self {
        self.ftl.enable_guard(cfg);
        self
    }

    /// Whether the chaos guard is armed.
    pub fn chaos_enabled(&self) -> bool {
        self.ftl.guard_enabled()
    }

    /// The corruption injector's own accounting (`None` when chaos is
    /// off); the chaos gate cross-checks it against the FTL stats.
    pub fn chaos_stats(&self) -> Option<CorruptionStats> {
        self.ftl.guard_corruption_stats()
    }

    /// Settles the chaos guard at end of run: one final verify-and-repair
    /// pass (no new injection) so every injected corruption is detected
    /// and accounted before results are read.
    pub fn chaos_finalize(&mut self) {
        self.ftl.guard_finalize(&mut self.ex, &mut Tee(self.gauges.as_mut(), NullObserver));
    }

    /// Pre-op half of the chaos bracket: verify seals, repair divergence,
    /// advance the audit scrubber. Runs before the trace bracket opens so
    /// repair/scrub device work is attributed as maintenance, not to the
    /// host request.
    fn chaos_preop<O: FtlObserver>(&mut self, obs: &mut O) {
        if self.ftl.guard_enabled() {
            self.ftl.guard_preop(&mut self.ex, &mut Tee(self.gauges.as_mut(), &mut *obs));
        }
    }

    /// Post-op half of the chaos bracket: reseal over the mutated state,
    /// then maybe inject the next corruption (RAM-only, no device work).
    fn chaos_postop(&mut self) {
        if self.ftl.guard_enabled() {
            self.ftl.guard_postop();
        }
    }

    /// Attaches a deadline watchdog to the scheduled path (see
    /// [`crate::watchdog`]): wedged requests are aborted at their class
    /// deadline, retried with exponential backoff, and failed with
    /// [`OpResult::TimedOut`] once the retry budget is exhausted. With a
    /// zero stall rate the path is byte-identical to running without a
    /// watchdog.
    pub fn enable_watchdog(&mut self, cfg: DeadlineConfig) -> &mut Self {
        self.watchdog = Some(Watchdog::new(cfg));
        self
    }

    /// The watchdog's accounting, if one is attached.
    pub fn watchdog_stats(&self) -> Option<WatchdogStats> {
        self.watchdog.as_ref().map(|w| w.stats())
    }

    /// Attaches the live T_insecure / VAF gauges (see [`LiveGauges`]).
    /// They observe every FTL event from this point on, alongside any
    /// caller-supplied observer. Idempotent; returns `&mut self` for
    /// chaining at construction.
    pub fn enable_gauges(&mut self) -> &mut Self {
        if self.gauges.is_none() {
            self.gauges = Some(LiveGauges::new());
        }
        self
    }

    /// The live gauges, if enabled.
    pub fn gauges(&self) -> Option<&LiveGauges> {
        self.gauges.as_ref()
    }

    /// Enables op-level tracing with a ring of `capacity` request traces
    /// (see [`TraceRecorder`]). Simulated timing is unaffected: the same
    /// reservations are made with tracing on or off.
    pub fn enable_tracing(&mut self, capacity: usize) -> &mut Self {
        self.trace = Some(TraceRecorder::new(capacity));
        self.ex.set_tracing(true);
        self
    }

    /// The trace recorder, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Detaches and returns the trace recorder, disabling tracing.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.ex.set_tracing(false);
        self.trace.take()
    }

    /// Enables the latency-anatomy layer (see [`crate::anatomy`]): every
    /// finished trace is decomposed into exact stages with
    /// sanitization/GC/retry blame, keeping at most `capacity` rows and
    /// a top-`top_k` slowest digest. Implies tracing with a ring of the
    /// same capacity if tracing is not already on. Timing-neutral, like
    /// tracing itself.
    pub fn enable_anatomy(&mut self, capacity: usize, top_k: usize) -> &mut Self {
        if self.trace.is_none() {
            self.enable_tracing(capacity);
        }
        self.anatomy = Some(AnatomyRecorder::new(capacity, top_k));
        self
    }

    /// The anatomy recorder, if enabled. Call
    /// [`Emulator::finalize_anatomy`] first when reading aggregates at
    /// end of run.
    pub fn anatomy(&self) -> Option<&AnatomyRecorder> {
        self.anatomy.as_ref()
    }

    /// Resolves all pending blame in the anatomy recorder (see
    /// [`AnatomyRecorder::finalize`]). Idempotent; no-op when anatomy is
    /// off.
    pub fn finalize_anatomy(&mut self) {
        if let Some(a) = self.anatomy.as_mut() {
            a.finalize();
        }
    }

    /// Detaches and returns the anatomy recorder (finalized), leaving
    /// tracing in its current state.
    pub fn take_anatomy(&mut self) -> Option<AnatomyRecorder> {
        let mut a = self.anatomy.take();
        if let Some(a) = a.as_mut() {
            a.finalize();
        }
        a
    }

    /// Enables windowed telemetry: every `interval` of simulated time a
    /// [`crate::timeseries::WindowSample`] closes (a `RunResult::since`
    /// delta plus gauge snapshots), keeping the most recent `capacity`
    /// windows. Timing-neutral, like tracing. Enable gauges first (or
    /// too) if the samples should carry VAF / T_insecure.
    pub fn enable_timeseries(&mut self, interval: Nanos, capacity: usize) -> &mut Self {
        self.timeseries = Some(TimeSeries::new(interval, capacity, self));
        self
    }

    /// The telemetry series, if enabled.
    pub fn timeseries(&self) -> Option<&TimeSeries> {
        self.timeseries.as_ref()
    }

    /// Detaches and returns the telemetry series, disabling sampling.
    pub fn take_timeseries(&mut self) -> Option<TimeSeries> {
        self.timeseries.take()
    }

    /// Force-closes a final partial telemetry window at the current clock
    /// (call at end of run so the tail of the run is represented).
    pub fn sample_timeseries_now(&mut self) {
        if let Some(mut ts) = self.timeseries.take() {
            ts.sample_now(self);
            self.timeseries = Some(ts);
        }
    }

    /// Closes due telemetry windows after a host-operation boundary.
    fn poll_timeseries(&mut self) {
        if let Some(mut ts) = self.timeseries.take() {
            ts.poll(self);
            self.timeseries = Some(ts);
        }
    }

    /// Turns on the FTL decision log ("explain why" records for GC victim
    /// picks, lock-coalescing traffic, escalation rungs, and degraded-mode
    /// transitions), keeping at most `capacity` records at `min_level` and
    /// above. Observational only — simulated results are unchanged.
    pub fn enable_decision_log(
        &mut self,
        capacity: usize,
        min_level: evanesco_ftl::DecisionLevel,
    ) -> &mut Self {
        self.ftl.enable_decision_log(capacity, min_level);
        self
    }

    /// The FTL decision log (disabled and empty by default).
    pub fn decision_log(&self) -> &evanesco_ftl::DecisionLog {
        self.ftl.decision_log()
    }

    /// Finishes the open trace bracket for one host request, if tracing.
    #[allow(clippy::too_many_arguments)]
    fn trace_finish(
        &mut self,
        kind: ReqKind,
        lpa: Lpa,
        npages: u64,
        acked: bool,
        submit: Nanos,
        earliest: Nanos,
        end: Nanos,
    ) {
        if let Some(tr) = self.trace.as_mut() {
            let events = self.ex.take_trace_events_into(std::mem::take(&mut self.trace_spare));
            // Zero-work brackets (e.g. a maintenance flush with nothing
            // queued) are not worth a ring slot.
            if !events.is_empty() || end > submit {
                let t = tr.record(kind, lpa, npages, acked, submit, earliest, end, events);
                if let Some(a) = self.anatomy.as_mut() {
                    a.record(t, self.anatomy_retry, self.anatomy_req_idx);
                }
            } else {
                self.trace_spare = events;
            }
        }
        self.anatomy_retry = None;
        self.anatomy_req_idx = None;
    }

    /// Discards device events that accrued outside any request bracket
    /// (maintenance work between traced requests).
    fn trace_discard_leftovers(&mut self) {
        if self.trace.is_some() {
            self.ex.discard_trace_events();
        }
    }

    /// Schedules a power cut at absolute simulated time `at`. The device
    /// command in flight at `at` is interrupted mid-operation, every later
    /// command is lost before reaching a chip, and host requests submitted
    /// after the cut fires are rejected until [`Emulator::recover`].
    pub fn power_cut_at(&mut self, at: Nanos) {
        self.ex.arm_power_cut(at);
    }

    /// True once a scheduled power cut has fired.
    pub fn powered_off(&self) -> bool {
        self.ex.powered_off()
    }

    /// Powers the device back on and runs the FTL's recovery scan (see
    /// `evanesco_ftl::recovery`): RAM tables are rebuilt from on-flash OOB
    /// metadata and every lock lost mid-flight is re-established before
    /// any host request is served. Returns this scan's report; totals
    /// (including the measured scan time) accumulate into
    /// [`Emulator::result`].
    pub fn recover(&mut self) -> RecoveryReport {
        self.recover_with(&mut NullObserver)
    }

    /// [`Emulator::recover`] with an observer attached.
    pub fn recover_with<O: FtlObserver>(&mut self, obs: &mut O) -> RecoveryReport {
        self.trace_discard_leftovers();
        self.ex.power_on();
        let before = self.ex.simulated_time();
        let report = self.ftl.recover(&mut self.ex, &mut Tee(self.gauges.as_mut(), &mut *obs));
        let end = self.ex.simulated_time();
        let scan_time = end.saturating_sub(before);
        self.recovery.absorb(&report, scan_time);
        self.trace_finish(ReqKind::Recovery, 0, report.scanned_pages, true, before, before, end);
        report
    }

    /// Accumulated recovery work so far.
    pub fn recovery_totals(&self) -> RecoveryTotals {
        self.recovery
    }

    /// The configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.ftl.logical_pages()
    }

    /// The FTL (for introspection).
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// The device array (read-only: timing and utilization queries).
    pub fn device(&self) -> &TimedExecutor {
        &self.ex
    }

    /// The device array (for attacker access in tests).
    pub fn device_mut(&mut self) -> &mut TimedExecutor {
        &mut self.ex
    }

    /// Settles every deferred sanitization lock still queued by the lock
    /// coalescing pass (no-op unless `lock_coalescing` is enabled). Call
    /// before end-of-run attacker verification so queued pages are locked
    /// rather than merely scheduled to be.
    pub fn flush_coalesced_locks(&mut self) {
        self.trace_discard_leftovers();
        let before = self.ex.simulated_time();
        self.ftl.flush_coalesced(&mut self.ex, &mut Tee(self.gauges.as_mut(), NullObserver));
        // The flush mutates guarded tables outside any op bracket: reseal
        // so the next pre-op check does not misread it as corruption.
        self.ftl.guard_reseal();
        let end = self.ex.simulated_time();
        self.trace_finish(ReqKind::Maintenance, 0, 0, true, before, before, end);
        self.poll_timeseries();
    }

    /// Writes `npages` consecutive logical pages starting at `lpa`.
    /// Returns the content tags assigned to the written pages.
    pub fn write(&mut self, lpa: Lpa, npages: u64, secure: bool) -> Vec<u64> {
        self.write_with(&mut NullObserver, lpa, npages, secure)
    }

    /// [`Emulator::write`] with an observer attached (VerTrace).
    pub fn write_with<O: FtlObserver>(
        &mut self,
        obs: &mut O,
        lpa: Lpa,
        npages: u64,
        secure: bool,
    ) -> Vec<u64> {
        self.write_tracked_with(obs, lpa, npages, secure).into_iter().map(|(t, _)| t).collect()
    }

    /// Writes like [`Emulator::write`] but also reports, per page, whether
    /// the write was **acknowledged**: it completed durably before any
    /// power cut. An unacknowledged write's data may be partially on
    /// flash (torn) or absent entirely; either way the device owes the
    /// host nothing for it, and recovery sanitizes any decodable secured
    /// remnant as an orphan.
    pub fn write_tracked(&mut self, lpa: Lpa, npages: u64, secure: bool) -> Vec<(u64, bool)> {
        self.write_tracked_with(&mut NullObserver, lpa, npages, secure)
    }

    /// [`Emulator::write_tracked`] with an observer attached.
    pub fn write_tracked_with<O: FtlObserver>(
        &mut self,
        obs: &mut O,
        lpa: Lpa,
        npages: u64,
        secure: bool,
    ) -> Vec<(u64, bool)> {
        let mut tags = Vec::with_capacity(npages as usize);
        for i in 0..npages {
            let l = lpa + i;
            let tag = self.next_tag;
            self.next_tag += 1;
            if self.ex.powered_off() {
                tags.push((tag, false));
                continue;
            }
            self.chaos_preop(obs);
            self.trace_discard_leftovers();
            self.ex.begin_commit();
            let before = self.ex.simulated_time();
            let accepted = self.ftl.write(
                &mut self.ex,
                &mut Tee(self.gauges.as_mut(), &mut *obs),
                l,
                secure,
                tag,
            );
            // A write the degraded-mode gate rejected is never acked.
            let acked = accepted && self.ex.commit_clean();
            if acked {
                // Tag bookkeeping follows the ack: an unacknowledged write
                // never supersedes the previous version from the host's
                // point of view.
                if self.cfg.track_tags && self.cfg.stale_audit {
                    if let Some((old, was_secure)) = self.tag_of[l as usize].replace((tag, secure))
                    {
                        self.stale.push((l, old, was_secure));
                    }
                } else if self.cfg.track_tags {
                    self.tag_of[l as usize] = Some((tag, secure));
                }
                self.write_latency.record(self.ex.simulated_time().saturating_sub(before));
                self.host_ops += 1;
            }
            let end = self.ex.simulated_time();
            self.trace_finish(ReqKind::Write, l, 1, acked, before, before, end);
            self.poll_timeseries();
            self.chaos_postop();
            tags.push((tag, acked));
        }
        tags
    }

    /// Writes explicit page payloads to `npages = pages.len()` consecutive
    /// logical pages (the byte-carrying path used by the host file system).
    /// Returns the content tags.
    pub fn write_pages(
        &mut self,
        lpa: Lpa,
        pages: Vec<evanesco_nand::chip::PageData>,
        secure: bool,
    ) -> Vec<u64> {
        let mut tags = Vec::with_capacity(pages.len());
        for (i, data) in pages.into_iter().enumerate() {
            let l = lpa + i as u64;
            let tag = data.tag();
            if self.ex.powered_off() {
                tags.push(tag);
                continue;
            }
            self.chaos_preop(&mut NullObserver);
            self.trace_discard_leftovers();
            self.ex.begin_commit();
            let before = self.ex.simulated_time();
            let accepted = self.ftl.write_data(
                &mut self.ex,
                &mut Tee(self.gauges.as_mut(), NullObserver),
                l,
                secure,
                data,
            );
            let acked = accepted && self.ex.commit_clean();
            if acked {
                if self.cfg.track_tags && self.cfg.stale_audit {
                    if let Some((old, was_secure)) = self.tag_of[l as usize].replace((tag, secure))
                    {
                        self.stale.push((l, old, was_secure));
                    }
                } else if self.cfg.track_tags {
                    self.tag_of[l as usize] = Some((tag, secure));
                }
                self.write_latency.record(self.ex.simulated_time().saturating_sub(before));
                self.host_ops += 1;
            }
            let end = self.ex.simulated_time();
            self.trace_finish(ReqKind::Write, l, 1, acked, before, before, end);
            self.poll_timeseries();
            self.chaos_postop();
            tags.push(tag);
        }
        tags
    }

    /// Reads full page contents (payload included where stored).
    pub fn read_pages(
        &mut self,
        lpa: Lpa,
        npages: u64,
    ) -> Vec<Option<evanesco_nand::chip::PageData>> {
        (0..npages)
            .map(|i| {
                if self.ex.powered_off() {
                    return None;
                }
                self.chaos_preop(&mut NullObserver);
                self.trace_discard_leftovers();
                let before = self.ex.simulated_time();
                let d = self.ftl.read(&mut self.ex, lpa + i);
                self.note_sync_read(lpa + i, before, d.is_some());
                self.chaos_postop();
                d
            })
            .collect()
    }

    /// Reads `npages` consecutive logical pages; returns the tags of the
    /// pages that were mapped and readable.
    pub fn read(&mut self, lpa: Lpa, npages: u64) -> Vec<Option<u64>> {
        let mut out = Vec::with_capacity(npages as usize);
        for i in 0..npages {
            if self.ex.powered_off() {
                out.push(None);
                continue;
            }
            self.chaos_preop(&mut NullObserver);
            self.trace_discard_leftovers();
            let before = self.ex.simulated_time();
            let d = self.ftl.read(&mut self.ex, lpa + i);
            self.note_sync_read(lpa + i, before, d.is_some());
            self.chaos_postop();
            out.push(d.map(|d| d.tag()));
        }
        out
    }

    /// Books one serialized-path read: host-op count, the read latency
    /// histogram, and the trace bracket.
    ///
    /// The serialized paths time by horizon delta, so a read that
    /// backfills an idle chip *below* the device horizon records a
    /// (truthful) zero — the device added no time the host had to wait
    /// past. The scheduled path ([`Emulator::run_scheduled`]) records the
    /// full per-request service latency instead.
    fn note_sync_read(&mut self, lpa: Lpa, before: Nanos, _mapped: bool) {
        self.host_ops += 1;
        let end = self.ex.simulated_time();
        self.read_latency.record(end.saturating_sub(before));
        self.trace_finish(ReqKind::Read, lpa, 1, true, before, before, end);
        self.poll_timeseries();
    }

    /// Trims (deletes) `npages` consecutive logical pages.
    pub fn trim(&mut self, lpa: Lpa, npages: u64) {
        self.trim_with(&mut NullObserver, lpa, npages);
    }

    /// [`Emulator::trim`] with an observer attached.
    ///
    /// Returns `true` when the trim was acknowledged (it completed durably
    /// before any power cut). An unacknowledged trim may have sanitized
    /// some of the range and not the rest; the host must re-issue it.
    pub fn trim_with<O: FtlObserver>(&mut self, obs: &mut O, lpa: Lpa, npages: u64) -> bool {
        if self.ex.powered_off() {
            return false;
        }
        self.chaos_preop(obs);
        let lpas: Vec<Lpa> = (lpa..lpa + npages).collect();
        self.trace_discard_leftovers();
        self.ex.begin_commit();
        let before = self.ex.simulated_time();
        self.ftl.trim(&mut self.ex, &mut Tee(self.gauges.as_mut(), &mut *obs), &lpas);
        let acked = self.ex.commit_clean();
        if acked {
            if self.cfg.track_tags {
                for &l in &lpas {
                    if let Some((old, was_secure)) = self.tag_of[l as usize].take() {
                        if self.cfg.stale_audit {
                            self.stale.push((l, old, was_secure));
                        }
                    }
                }
            }
            self.trim_latency.record(self.ex.simulated_time().saturating_sub(before));
            self.host_ops += npages;
        }
        let end = self.ex.simulated_time();
        self.trace_finish(ReqKind::Trim, lpa, npages, acked, before, before, end);
        self.poll_timeseries();
        self.chaos_postop();
        acked
    }

    /// Runs a request trace through the out-of-order multi-queue scheduler
    /// at queue depth `qd` (see [`crate::sched`]).
    ///
    /// At most `qd` requests are outstanding at once; independent requests
    /// dispatch out of order onto idle chips, while requests touching a
    /// common logical page never reorder. Host-visible results are
    /// therefore **byte-identical at every queue depth** (write tags are
    /// assigned in submission order, before dispatch); only the timing
    /// changes. `qd == 1` reproduces the serialized host paths exactly:
    /// request *n + 1* starts only after request *n* completes.
    ///
    /// Each request is one commit window: it is acknowledged only if every
    /// command it issued survived any power cut intact.
    ///
    /// # Panics
    ///
    /// Panics with the offending trace index and the typed
    /// [`crate::sched::SubmitError`] when a request's LPA range wraps or
    /// ends beyond the device's logical capacity — a wrapped range would
    /// silently break the per-LPA ordering invariant.
    pub fn run_scheduled(&mut self, ops: &[HostOp], qd: usize) -> SchedRun {
        self.run_scheduled_with(&mut NullObserver, ops, qd)
    }

    /// [`Emulator::run_scheduled`] with an observer attached.
    pub fn run_scheduled_with<O: FtlObserver>(
        &mut self,
        obs: &mut O,
        ops: &[HostOp],
        qd: usize,
    ) -> SchedRun {
        self.run_scheduled_core(obs, ops, None, qd)
    }

    /// Open-loop variant of [`Emulator::run_scheduled_with`]: request `i`
    /// cannot be submitted to the device before `arrivals[i]` (the instant
    /// the front end handed it over). Arrival floors only delay
    /// submission times; host-visible results stay byte-identical to the
    /// closed-loop run at every queue depth. The fleet layer uses this to
    /// model shaped multi-tenant traffic, attributing end-to-end sojourn
    /// latency from [`SchedRun::completions`].
    ///
    /// # Panics
    ///
    /// Panics when `arrivals.len() != ops.len()`, or on an out-of-range
    /// request like [`Emulator::run_scheduled`].
    pub fn run_scheduled_open_loop<O: FtlObserver>(
        &mut self,
        obs: &mut O,
        ops: &[HostOp],
        arrivals: &[Nanos],
        qd: usize,
    ) -> SchedRun {
        assert_eq!(arrivals.len(), ops.len(), "one arrival time per request");
        self.run_scheduled_core(obs, ops, Some(arrivals), qd)
    }

    fn run_scheduled_core<O: FtlObserver>(
        &mut self,
        obs: &mut O,
        ops: &[HostOp],
        arrivals: Option<&[Nanos]>,
        qd: usize,
    ) -> SchedRun {
        let start = self.ex.simulated_time();
        let logical_pages = self.cfg.ftl.logical_pages();
        // Reject malformed ranges before any side effect (tag allocation
        // included): a wrapped `[lpa, lpa+n)` would compare as disjoint
        // from everything it overlaps.
        for (i, op) in ops.iter().enumerate() {
            let (lpa, n) = op.lpa_range();
            if let Err(e) = crate::sched::check_lpa_range(lpa, n, logical_pages) {
                panic!("run_scheduled: request {i} rejected: {e}");
            }
        }
        let mut sched = Scheduler::new(qd, logical_pages);
        // Write tags are assigned in submission order, before any dispatch
        // decision, so the tags a request returns cannot depend on the
        // queue depth.
        let mut tag_base = vec![0u64; ops.len()];
        for (i, op) in ops.iter().enumerate() {
            if let HostOp::Write { npages, .. } = *op {
                tag_base[i] = self.next_tag;
                self.next_tag += npages;
            }
        }
        let mut results: Vec<Option<OpResult>> = vec![None; ops.len()];
        let mut completions = vec![Nanos::ZERO; ops.len()];
        let mut submits = vec![Nanos::ZERO; ops.len()];
        let mut host_pages = 0u64;
        let mut next = 0usize;
        loop {
            while next < ops.len() {
                let arrival = arrivals.map_or(Nanos::ZERO, |a| a[next]);
                if !sched
                    .try_submit_at(next, ops[next], arrival)
                    .expect("ops validated before the loop")
                {
                    break;
                }
                next += 1;
            }
            // The write hint (allocation-frontier chip occupancy) is the
            // same for every queued write — the FTL does not move between
            // candidates — so compute it at most once per selection pass.
            let write_hint = std::cell::Cell::new(None);
            let Some(d) = sched.take_dispatch(|op| match *op {
                HostOp::Write { .. } => match write_hint.get() {
                    Some(h) => h,
                    None => {
                        let h = self.ex.chip_free_at(self.ftl.peek_alloc_chip());
                        write_hint.set(Some(h));
                        h
                    }
                },
                _ => self.chip_hint(op),
            }) else {
                break;
            };
            host_pages += d.op.npages();
            let (res, done) = self.dispatch_scheduled(obs, &d, tag_base[d.idx], &mut sched);
            results[d.idx] = Some(res);
            completions[d.idx] = done;
            submits[d.idx] = d.submit;
        }
        SchedRun {
            results: results.into_iter().map(|r| r.expect("every request dispatched")).collect(),
            completions,
            submits,
            sim_time: self.ex.simulated_time().saturating_sub(start),
            host_pages,
            requests: ops.len() as u64,
            max_outstanding: sched.max_outstanding(),
        }
    }

    /// Executes one dispatched request inside a dispatch window and
    /// reports its completion to the scoreboard. Returns the result and
    /// the absolute completion time.
    fn dispatch_scheduled<O: FtlObserver>(
        &mut self,
        obs: &mut O,
        d: &Dispatch,
        tag_base: u64,
        sched: &mut Scheduler,
    ) -> (OpResult, Nanos) {
        use evanesco_ftl::executor::NandExecutor;
        // Watchdog verdict first (keyed on the submission index, so it is
        // queue-depth-invariant): a wedged request is aborted at its class
        // deadline and retried after backoff — the penalty delays its
        // earliest legal start — or, past the retry budget, failed without
        // ever reaching the FTL.
        let earliest =
            match self.watchdog.as_mut().map_or(Verdict::Clean, |w| w.judge(d.idx, &d.op)) {
                Verdict::Clean => d.earliest,
                Verdict::Retried { penalty } => d.earliest + penalty,
                Verdict::Failed { penalty } => {
                    let done = d.earliest + penalty;
                    self.anatomy_retry = Some((d.earliest, done));
                    self.anatomy_req_idx = Some(d.idx);
                    let (lpa, npages) = d.op.lpa_range();
                    let kind = match d.op {
                        HostOp::Write { .. } => {
                            self.write_latency.record(penalty);
                            ReqKind::Write
                        }
                        HostOp::Read { .. } => {
                            self.read_latency.record(penalty);
                            ReqKind::Read
                        }
                        HostOp::Trim { .. } => {
                            self.trim_latency.record(penalty);
                            ReqKind::Trim
                        }
                    };
                    self.trace_discard_leftovers();
                    self.trace_finish(kind, lpa, npages, false, d.submit, d.earliest, done);
                    self.poll_timeseries();
                    sched.complete(done);
                    return (OpResult::TimedOut, done);
                }
            };
        self.chaos_preop(obs);
        self.trace_discard_leftovers();
        if earliest > d.earliest {
            // Watchdog backoff pushed the start: the anatomy charges the
            // penalty window to retry interference.
            self.anatomy_retry = Some((d.earliest, earliest));
        }
        self.anatomy_req_idx = Some(d.idx);
        self.ex.begin_dispatch(earliest);
        self.ex.begin_commit();
        let mut acked_for_trace = true;
        let res = match d.op {
            HostOp::Write { lpa, npages, secure } => {
                let tags: Vec<u64> = (0..npages).map(|i| tag_base + i).collect();
                let mut accepted = true;
                for (i, &tag) in tags.iter().enumerate() {
                    accepted &= self.ftl.write(
                        &mut self.ex,
                        &mut Tee(self.gauges.as_mut(), &mut *obs),
                        lpa + i as u64,
                        secure,
                        tag,
                    );
                }
                let acked = accepted && self.ex.commit_clean();
                if acked {
                    if self.cfg.track_tags {
                        for (i, &tag) in tags.iter().enumerate() {
                            let l = (lpa + i as u64) as usize;
                            if let Some((old, was_secure)) = self.tag_of[l].replace((tag, secure)) {
                                if self.cfg.stale_audit {
                                    self.stale.push((lpa + i as u64, old, was_secure));
                                }
                            }
                        }
                    }
                    self.host_ops += npages;
                }
                acked_for_trace = acked;
                OpResult::Write(tags, acked)
            }
            HostOp::Read { lpa, npages } => {
                let got: Vec<Option<u64>> = (0..npages)
                    .map(|i| self.ftl.read(&mut self.ex, lpa + i).map(|p| p.tag()))
                    .collect();
                if self.ex.commit_clean() {
                    self.host_ops += npages;
                }
                OpResult::Read(got)
            }
            HostOp::Trim { lpa, npages } => {
                let lpas: Vec<Lpa> = (lpa..lpa + npages).collect();
                self.ftl.trim(&mut self.ex, &mut Tee(self.gauges.as_mut(), &mut *obs), &lpas);
                let acked = self.ex.commit_clean();
                if acked {
                    if self.cfg.track_tags {
                        for &l in &lpas {
                            if let Some((old, was_secure)) = self.tag_of[l as usize].take() {
                                if self.cfg.stale_audit {
                                    self.stale.push((l, old, was_secure));
                                }
                            }
                        }
                    }
                    self.host_ops += npages;
                }
                acked_for_trace = acked;
                OpResult::Trim(acked)
            }
        };
        let done = self.ex.end_dispatch();
        // Service latency: completion minus the earliest legal start
        // (queueing behind one's own dependencies excluded).
        let service = done.saturating_sub(d.earliest);
        let (kind, lpa, npages) = match d.op {
            HostOp::Write { lpa, npages, .. } => {
                self.write_latency.record(service);
                (ReqKind::Write, lpa, npages)
            }
            HostOp::Trim { lpa, npages } => {
                self.trim_latency.record(service);
                (ReqKind::Trim, lpa, npages)
            }
            HostOp::Read { lpa, npages } => {
                self.read_latency.record(service);
                (ReqKind::Read, lpa, npages)
            }
        };
        self.trace_finish(kind, lpa, npages, acked_for_trace, d.submit, d.earliest, done);
        self.poll_timeseries();
        self.chaos_postop();
        sched.complete(done);
        (res, done)
    }

    /// Selection hint for the scheduler: when could this request's device
    /// work plausibly start, given current chip occupancy? Writes go to
    /// the allocation frontier's chip; reads to the chips holding their
    /// mapped pages.
    fn chip_hint(&self, op: &HostOp) -> Nanos {
        match *op {
            HostOp::Write { .. } => self.ex.chip_free_at(self.ftl.peek_alloc_chip()),
            HostOp::Read { lpa, npages } => (0..npages)
                .filter_map(|i| self.ftl.mapped(lpa + i))
                .map(|p| self.ex.chip_free_at(p.chip))
                .max()
                .unwrap_or(Nanos::ZERO),
            HostOp::Trim { .. } => Nanos::ZERO,
        }
    }

    /// Switches every chip to device-mode flags (physical pAP/bAP cells;
    /// see `evanesco_core::device_flags`). Call before any locks are
    /// issued.
    pub fn enable_device_flags(
        &mut self,
        pap: evanesco_core::pap::PapConfig,
        bap: evanesco_core::bap::BapConfig,
        seed: u64,
    ) {
        for (i, chip) in self.ex.chips_mut().iter_mut().enumerate() {
            chip.enable_device_flags(pap, bap, seed.wrapping_add(i as u64));
        }
    }

    /// Ages every chip's physical flags by `days` (device mode only).
    pub fn age_flags(&mut self, days: f64) {
        for chip in self.ex.chips_mut() {
            chip.age_flags(days);
        }
    }

    /// Per-block erase-count statistics across the device: `(min, max,
    /// mean)` — the lifetime/wear view behind the paper's "reduces the
    /// number of block erasures" claims.
    pub fn erase_count_stats(&mut self) -> (u64, u64, f64) {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut n = 0u64;
        for chip in self.ex.chips_mut() {
            let blocks = chip.geometry().blocks;
            for b in 0..blocks {
                let c = chip.erase_count(evanesco_nand::geometry::BlockId(b));
                min = min.min(c);
                max = max.max(c);
                sum += c;
                n += 1;
            }
        }
        if n == 0 {
            (0, 0, 0.0)
        } else {
            (min, max, sum as f64 / n as f64)
        }
    }

    /// Every content tag a raw-chip attacker can currently recover from any
    /// chip of this SSD (after de-soldering).
    pub fn attacker_recoverable_tags(&mut self) -> HashSet<u64> {
        let attacker = Attacker::new();
        let mut tags = HashSet::new();
        for chip in self.ex.chips_mut() {
            tags.extend(attacker.recoverable_tags(chip));
        }
        tags
    }

    /// Verifies sanitization conditions C1/C2 for the logical range
    /// `[lpa, lpa + npages)`: no superseded or deleted version of the
    /// range's **secured** data is recoverable by the attacker. Data
    /// written insecurely (`O_INSEC`) is exempt by definition (§6).
    ///
    /// # Panics
    ///
    /// Panics if tag tracking is disabled in the configuration.
    pub fn verify_sanitized(&mut self, lpa: Lpa, npages: u64) -> bool {
        assert!(
            self.cfg.track_tags && self.cfg.stale_audit,
            "verify_sanitized requires track_tags and stale_audit"
        );
        let recoverable = self.attacker_recoverable_tags();
        self.stale
            .iter()
            .filter(|(l, _, secure)| *secure && (lpa..lpa + npages).contains(l))
            .all(|(_, t, _)| !recoverable.contains(t))
    }

    /// Current length of the stale-tag audit log.
    pub fn stale_len(&self) -> usize {
        self.stale.len()
    }

    /// Compacts the stale-tag audit log: drops every entry whose tag is no
    /// longer attacker-recoverable (its physical copies were all locked,
    /// scrubbed, or erased) and every insecure entry (exempt from C1/C2 by
    /// definition). Returns the number of entries dropped.
    ///
    /// [`Emulator::verify_sanitized`] is unaffected for the retained
    /// window: a dropped entry could only have passed. Caveat: under
    /// *aged* physical flags (see [`Emulator::age_flags`]) a lock can
    /// decay and re-expose a page later, so compact only after the aging
    /// horizon of interest, or not at all for forensic runs.
    pub fn compact_stale(&mut self) -> usize {
        let recoverable = self.attacker_recoverable_tags();
        let before = self.stale.len();
        self.stale.retain(|(_, t, secure)| *secure && recoverable.contains(t));
        before - self.stale.len()
    }

    /// Device busy-time added per host page read (the serialized paths
    /// record horizon deltas; [`Emulator::run_scheduled`] records full
    /// per-request service latency).
    pub fn read_latency(&self) -> &LatencyHistogram {
        &self.read_latency
    }

    /// Device busy-time added per host page write (a tail-latency proxy
    /// under the open-loop timing model).
    pub fn write_latency(&self) -> &LatencyHistogram {
        &self.write_latency
    }

    /// Device busy-time added per trim request — the cost the host observes
    /// for a (secure) delete.
    pub fn trim_latency(&self) -> &LatencyHistogram {
        &self.trim_latency
    }

    /// Run summary so far.
    pub fn result(&self) -> RunResult {
        RunResult::new(
            self.host_ops,
            self.ex.simulated_time(),
            self.ftl.stats(),
            self.ex.lock_totals(),
            self.ex.erase_total(),
            self.recovery,
            self.ex.fault_totals(),
            LatencyBreakdown {
                read: self.read_latency,
                write: self.write_latency,
                trim: self.trim_latency,
            },
        )
    }

    /// Renders every run metric — host counters, FTL/fault/recovery
    /// stats, per-resource utilization, latency histograms, and the live
    /// gauges — as one Prometheus text-exposition scrape.
    pub fn prometheus_scrape(&self) -> String {
        crate::prom::render(self)
    }

    /// Serializes the complete device state into one self-contained,
    /// versioned checkpoint: configuration, sanitization policy, FTL
    /// tables, every chip's NAND/flag/fault state, busy timelines, the
    /// simulated clock, host bookkeeping (tags, stale audit log), latency
    /// histograms, recovery totals, and — when enabled — the live gauges
    /// and telemetry ring. A run restored from these bytes continues
    /// bit-identically to one that never stopped (see
    /// `tests/checkpoint_resume.rs`).
    ///
    /// Format v2: each layer is framed as its own CRC-guarded section
    /// (see [`crate::checkpoint::section`]), so corruption is pinned to
    /// the section it landed in and
    /// [`Emulator::restore_checkpoint_salvaging`] can rebuild or drop
    /// that section instead of losing the whole checkpoint. The device
    /// section precedes the FTL section because a salvaged FTL is rebuilt
    /// *from* the restored flash.
    ///
    /// Not captured (observational only, never affecting results): the
    /// op-level trace recorder, the FTL decision log, the chaos guard,
    /// and the watchdog.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        use crate::checkpoint::section;
        let mut e = evanesco_nand::snapshot::Enc::with_header();
        e.section(section::CONFIG, |e| crate::checkpoint::encode_config(&self.cfg, e));
        e.section(section::POLICY, |e| crate::checkpoint::encode_policy(self.ftl.policy(), e));
        e.section(section::DEVICE, |e| self.ex.encode_state(e));
        e.section(section::FTL, |e| self.ftl.encode_state(e));
        e.section(section::HOST, |e| self.encode_host_state(e));
        e.section(section::GAUGES, |e| e.opt(&self.gauges, |e, g| g.encode_state(e)));
        e.section(section::TIMESERIES, |e| e.opt(&self.timeseries, |e, ts| ts.encode_state(e)));
        e.into_bytes()
    }

    /// Host-side bookkeeping: tag map, stale audit log, op counters,
    /// latency histograms, recovery totals.
    fn encode_host_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x50);
        e.usize(self.tag_of.len());
        for t in &self.tag_of {
            e.opt(t, |e, &(tag, secure)| {
                e.u64(tag);
                e.bool(secure);
            });
        }
        e.usize(self.stale.len());
        for &(l, tag, secure) in &self.stale {
            e.u64(l);
            e.u64(tag);
            e.bool(secure);
        }
        e.u64(self.next_tag);
        e.u64(self.host_ops);
        self.read_latency.encode_snapshot(e);
        self.write_latency.encode_snapshot(e);
        self.trim_latency.encode_snapshot(e);
        self.recovery.encode_snapshot(e);
    }

    /// Inverse of [`Emulator::encode_host_state`].
    fn decode_host_state(
        &mut self,
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<(), evanesco_nand::snapshot::SnapshotError> {
        use evanesco_nand::snapshot::SnapshotError;
        d.expect_tag(0x50, "emulator")?;
        let n_tags = d.usize()?;
        if n_tags != self.tag_of.len() {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint tracks {n_tags} logical tags, configuration implies {}",
                self.tag_of.len()
            )));
        }
        for slot in self.tag_of.iter_mut() {
            *slot = d.opt(|d| {
                let tag = d.u64()?;
                let secure = d.bool()?;
                Ok((tag, secure))
            })?;
        }
        let n_stale = d.usize()?;
        self.stale = Vec::with_capacity(n_stale.min(1 << 20));
        for _ in 0..n_stale {
            let l = d.u64()?;
            let tag = d.u64()?;
            let secure = d.bool()?;
            self.stale.push((l, tag, secure));
        }
        self.next_tag = d.u64()?;
        self.host_ops = d.u64()?;
        self.read_latency = LatencyHistogram::decode_snapshot(d)?;
        self.write_latency = LatencyHistogram::decode_snapshot(d)?;
        self.trim_latency = LatencyHistogram::decode_snapshot(d)?;
        self.recovery = RecoveryTotals::decode_snapshot(d)?;
        Ok(())
    }

    /// Reconstructs an emulator from bytes written by
    /// [`Emulator::save_checkpoint`]: builds a fresh device from the
    /// embedded configuration and policy, then overlays every piece of
    /// dynamic state. Both format versions decode: v1 (the unframed
    /// legacy layout) and v2 (CRC-guarded sections, checksums enforced).
    ///
    /// # Errors
    ///
    /// Fails with a typed [`evanesco_nand::snapshot::SnapshotError`] —
    /// never a panic — on truncation, a wrong magic, an unsupported
    /// format version, a section checksum failure, structural corruption,
    /// or internally inconsistent state.
    pub fn restore_checkpoint(
        bytes: &[u8],
    ) -> Result<Emulator, evanesco_nand::snapshot::SnapshotError> {
        use crate::checkpoint::section;
        use evanesco_nand::snapshot::Dec;
        let mut d = Dec::with_header(bytes)?;
        if d.version() < 2 {
            let em = Self::restore_v1(&mut d)?;
            d.finish()?;
            return Ok(em);
        }
        let mut s = d.section(section::CONFIG, "config")?;
        let cfg = crate::checkpoint::decode_config(&mut s)?;
        s.finish()?;
        let mut s = d.section(section::POLICY, "policy")?;
        let policy = crate::checkpoint::decode_policy(&mut s)?;
        s.finish()?;
        let mut em = Emulator::new(cfg, policy);
        let mut s = d.section(section::DEVICE, "device")?;
        em.ex.decode_state(&mut s)?;
        s.finish()?;
        let mut s = d.section(section::FTL, "ftl")?;
        em.ftl.decode_state(&mut s)?;
        s.finish()?;
        let mut s = d.section(section::HOST, "host")?;
        em.decode_host_state(&mut s)?;
        s.finish()?;
        let mut s = d.section(section::GAUGES, "gauges")?;
        em.gauges = s.opt(LiveGauges::decode_state)?;
        s.finish()?;
        let mut s = d.section(section::TIMESERIES, "timeseries")?;
        em.timeseries = s.opt(TimeSeries::decode_state)?;
        s.finish()?;
        d.finish()?;
        Ok(em)
    }

    /// The v1 (pre-section) checkpoint layout, kept decodable so archived
    /// fixtures and old campaign segments still restore.
    fn restore_v1(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Emulator, evanesco_nand::snapshot::SnapshotError> {
        let cfg = crate::checkpoint::decode_config(d)?;
        let policy = crate::checkpoint::decode_policy(d)?;
        let mut em = Emulator::new(cfg, policy);
        d.expect_tag(0x50, "emulator")?;
        em.ftl.decode_state(d)?;
        em.ex.decode_state(d)?;
        // v1 stored the host fields inline, without the leading 0x50 the
        // framed HOST section carries — splice the tag check out by
        // decoding the fields directly.
        let n_tags = d.usize()?;
        if n_tags != em.tag_of.len() {
            return Err(evanesco_nand::snapshot::SnapshotError::Mismatch(format!(
                "checkpoint tracks {n_tags} logical tags, configuration implies {}",
                em.tag_of.len()
            )));
        }
        for slot in em.tag_of.iter_mut() {
            *slot = d.opt(|d| {
                let tag = d.u64()?;
                let secure = d.bool()?;
                Ok((tag, secure))
            })?;
        }
        let n_stale = d.usize()?;
        em.stale = Vec::with_capacity(n_stale.min(1 << 20));
        for _ in 0..n_stale {
            let l = d.u64()?;
            let tag = d.u64()?;
            let secure = d.bool()?;
            em.stale.push((l, tag, secure));
        }
        em.next_tag = d.u64()?;
        em.host_ops = d.u64()?;
        em.read_latency = LatencyHistogram::decode_snapshot(d)?;
        em.write_latency = LatencyHistogram::decode_snapshot(d)?;
        em.trim_latency = LatencyHistogram::decode_snapshot(d)?;
        em.recovery = RecoveryTotals::decode_snapshot(d)?;
        em.gauges = d.opt(LiveGauges::decode_state)?;
        em.timeseries = d.opt(TimeSeries::decode_state)?;
        Ok(em)
    }

    /// Restores a v2 checkpoint, salvaging what a strict restore would
    /// reject: a section whose CRC (or decode) fails is rebuilt from
    /// ground truth where one exists, or dropped where the state is
    /// purely observational. The [`crate::checkpoint::SalvageReport`]
    /// names every section that was given up.
    ///
    /// Salvage policy, in stream order:
    ///
    /// * `config` / `policy` / `device` — **required**. Nothing can
    ///   rebuild the configuration or the flash array itself; damage here
    ///   is a hard error.
    /// * `ftl` — rebuilt by re-running the recovery scan over the
    ///   restored flash (the same OOB-driven rebuild a power cut uses).
    ///   Costs simulated scan time and resets cumulative FTL counters,
    ///   so the salvaged run is consistent but no longer bit-identical
    ///   to the original.
    /// * `host` — reset: tag tracking restarts from a blank map (the
    ///   stale-audit history is lost, so `verify_sanitized` only covers
    ///   deletes issued after the salvage), histograms and recovery
    ///   totals restart from zero.
    /// * `gauges` / `timeseries` — dropped (observational).
    ///
    /// v1 checkpoints have no per-section checksums; they restore
    /// strictly with an empty report.
    ///
    /// # Errors
    ///
    /// Fails on header damage, frame-level damage (a section length
    /// running past the buffer), or damage to a required section.
    pub fn restore_checkpoint_salvaging(
        bytes: &[u8],
    ) -> Result<(Emulator, crate::checkpoint::SalvageReport), evanesco_nand::snapshot::SnapshotError>
    {
        use crate::checkpoint::{section, SalvageReport};
        use evanesco_nand::snapshot::Dec;
        let mut d = Dec::with_header(bytes)?;
        if d.version() < 2 {
            let em = Self::restore_v1(&mut d)?;
            d.finish()?;
            return Ok((em, SalvageReport::default()));
        }
        let mut report = SalvageReport::default();
        let mut s = d.section(section::CONFIG, "config")?;
        let cfg = crate::checkpoint::decode_config(&mut s)?;
        s.finish()?;
        let mut s = d.section(section::POLICY, "policy")?;
        let policy = crate::checkpoint::decode_policy(&mut s)?;
        s.finish()?;
        let mut em = Emulator::new(cfg, policy);
        let mut s = d.section(section::DEVICE, "device")?;
        em.ex.decode_state(&mut s)?;
        s.finish()?;

        let (mut s, crc_ok) = d.section_frame(section::FTL, "ftl")?;
        let ftl_ok = crc_ok && em.ftl.decode_state(&mut s).and_then(|()| s.finish()).is_ok();
        if !ftl_ok {
            // A partial decode may have half-written the tables: start
            // from a fresh FTL and rebuild every RAM table from the
            // restored flash's OOB metadata, exactly as crash recovery
            // does.
            em.ftl = Ftl::new(em.cfg.ftl, policy);
            let before = em.ex.simulated_time();
            let rep = em.ftl.recover(&mut em.ex, &mut NullObserver);
            let scan = em.ex.simulated_time().saturating_sub(before);
            em.recovery.absorb(&rep, scan);
            report.salvaged.push("ftl");
        }

        let (mut s, crc_ok) = d.section_frame(section::HOST, "host")?;
        let host_ok = crc_ok && em.decode_host_state(&mut s).and_then(|()| s.finish()).is_ok();
        if !host_ok {
            let tags = if em.cfg.track_tags { em.ftl.logical_pages() as usize } else { 0 };
            em.tag_of = vec![None; tags];
            em.stale = Vec::new();
            em.next_tag = 1;
            em.host_ops = 0;
            em.read_latency = LatencyHistogram::new();
            em.write_latency = LatencyHistogram::new();
            em.trim_latency = LatencyHistogram::new();
            // Keep the scan totals an FTL salvage just accumulated; with
            // no salvage the totals restart from zero like the rest.
            if !report.salvaged.contains(&"ftl") {
                em.recovery = RecoveryTotals::default();
            }
            report.salvaged.push("host");
        }

        let (mut s, crc_ok) = d.section_frame(section::GAUGES, "gauges")?;
        match decode_section_opt(crc_ok, &mut s, LiveGauges::decode_state) {
            Some(g) => em.gauges = g,
            None => {
                em.gauges = None;
                report.salvaged.push("gauges");
            }
        }
        let (mut s, crc_ok) = d.section_frame(section::TIMESERIES, "timeseries")?;
        match decode_section_opt(crc_ok, &mut s, TimeSeries::decode_state) {
            Some(ts) => em.timeseries = ts,
            None => {
                em.timeseries = None;
                report.salvaged.push("timeseries");
            }
        }
        d.finish()?;
        Ok((em, report))
    }

    /// Restores this emulator from checkpoint bytes **all-or-nothing**:
    /// the bytes decode into a fresh staging emulator first and replace
    /// this one only on full success, so a truncated or corrupt blob
    /// leaves the device byte-identical to before the call.
    ///
    /// Observational attachments (tracing, decision log, chaos guard,
    /// watchdog) follow the checkpoint's contents: they are *not* carried
    /// over from the pre-restore device.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Emulator::restore_checkpoint`]; on error
    /// `self` is untouched.
    pub fn restore_in_place(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), evanesco_nand::snapshot::SnapshotError> {
        *self = Emulator::restore_checkpoint(bytes)?;
        Ok(())
    }
}

/// Decodes an optional-state section payload: `Some(decoded)` when the
/// CRC held and the payload parsed cleanly, `None` otherwise.
fn decode_section_opt<T>(
    crc_ok: bool,
    s: &mut evanesco_nand::snapshot::Dec<'_>,
    f: impl FnMut(
        &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<T, evanesco_nand::snapshot::SnapshotError>,
) -> Option<Option<T>> {
    if !crc_ok {
        return None;
    }
    let v = s.opt(f).ok()?;
    s.finish().ok()?;
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd(policy: SanitizePolicy) -> Emulator {
        Emulator::new(SsdConfig::tiny_for_tests(), policy)
    }

    #[test]
    fn quickstart_flow() {
        let mut s = ssd(SanitizePolicy::evanesco());
        s.write(0, 4, true);
        s.trim(0, 4);
        assert!(s.verify_sanitized(0, 4));
    }

    #[test]
    fn baseline_fails_verification() {
        let mut s = ssd(SanitizePolicy::none());
        s.write(0, 4, true);
        s.trim(0, 4);
        assert!(!s.verify_sanitized(0, 4), "baseline must leak deleted data");
    }

    #[test]
    fn insecure_writes_are_not_sanitized_even_by_secssd() {
        let mut s = ssd(SanitizePolicy::evanesco());
        let tags = s.write(0, 2, false); // O_INSEC file
        s.trim(0, 2);
        // C1/C2 only covers secured data, so verification passes vacuously...
        assert!(s.verify_sanitized(0, 2));
        // ...while the deleted insecure data genuinely lingers on-chip.
        let rec = s.attacker_recoverable_tags();
        assert!(tags.iter().all(|t| rec.contains(t)), "insecure data lingers by design");
    }

    #[test]
    fn overwrite_version_is_sanitized() {
        let mut s = ssd(SanitizePolicy::evanesco());
        let first = s.write(0, 1, true)[0];
        s.write(0, 1, true);
        let rec = s.attacker_recoverable_tags();
        assert!(!rec.contains(&first));
        assert!(s.verify_sanitized(0, 1));
    }

    #[test]
    fn read_returns_latest_tags() {
        let mut s = ssd(SanitizePolicy::evanesco());
        let tags = s.write(10, 3, true);
        let got = s.read(10, 3);
        assert_eq!(got, tags.into_iter().map(Some).collect::<Vec<_>>());
        assert_eq!(s.read(13, 1), vec![None]);
    }

    #[test]
    fn result_contains_time_and_waf() {
        let mut s = ssd(SanitizePolicy::evanesco());
        s.write(0, 8, true);
        let r = s.result();
        assert!(r.sim_time > evanesco_nand::timing::Nanos::ZERO);
        assert!(r.iops > 0.0);
        assert!((r.waf - 1.0).abs() < 1e-9, "no GC yet: waf {}", r.waf);
        assert_eq!(r.host_ops, 8);
    }

    #[test]
    fn power_cut_mid_workload_recovers_and_serves_acked_data() {
        let mut s = ssd(SanitizePolicy::evanesco());
        let first = s.write(0, 8, true);
        let horizon = s.result().sim_time;
        // Cut partway through a second batch of secure overwrites: some
        // complete, one is interrupted mid-flight, the rest never reach
        // the device.
        s.power_cut_at(horizon + Nanos::from_micros(1800));
        let tracked = s.write_tracked(0, 8, true);
        assert!(s.powered_off());
        assert!(tracked.iter().any(|&(_, a)| a), "early overwrites complete before the cut");
        let idx = tracked
            .iter()
            .position(|&(_, a)| !a)
            .expect("an 8-overwrite batch cannot finish in 1.8 ms");
        // The dark device rejects host requests.
        assert_eq!(s.read(0, 1), vec![None]);

        let report = s.recover();
        assert!(report.scanned_pages > 0);
        assert!(report.rebuilt_mappings > 0);

        let after = s.read(0, 8);
        for (i, &(tag, acked)) in tracked.iter().enumerate().take(idx) {
            assert!(acked);
            assert_eq!(after[i], Some(tag), "acked overwrite served after recovery");
        }
        // The interrupted overwrite is atomic: either nothing happened
        // (the old version is still current) or the old version was
        // invalidated and the unacked new one was sanitized — never a
        // half-written mix, never the new tag.
        match after[idx] {
            Some(t) => assert_eq!(t, first[idx], "old version or nothing"),
            None => {
                let rec = s.attacker_recoverable_tags();
                assert!(
                    !rec.contains(&first[idx]),
                    "invalidated old version must be sanitized, not just unmapped"
                );
            }
        }
        // Overwrites after the interrupted one never reached the device.
        for i in idx + 1..8 {
            assert_eq!(after[i], Some(first[i]));
        }
        // No superseded secured version is attacker-recoverable.
        assert!(s.verify_sanitized(0, 8));

        // Recovery metrics flow into the run result.
        let r = s.result();
        assert_eq!(r.recovery.recoveries, 1);
        assert!(r.recovery.scan_time > evanesco_nand::timing::Nanos::ZERO);
        assert_eq!(r.recovery.scanned_pages, report.scanned_pages);

        // The device accepts and acknowledges new work after recovery.
        assert!(s.write_tracked(3, 1, true)[0].1);
    }

    /// A deterministic mixed trace: writes, overwrites, reads and trims
    /// over a small LPA range so requests genuinely collide.
    fn mixed_trace(n: usize, lpa_span: u64, seed: u64) -> Vec<HostOp> {
        let mut x = seed | 1;
        let mut step = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        (0..n)
            .map(|_| {
                let lpa = step() % lpa_span;
                let npages = 1 + step() % 3;
                let npages = npages.min(lpa_span - lpa);
                match step() % 10 {
                    0..=5 => HostOp::Write { lpa, npages, secure: step() % 2 == 0 },
                    6..=8 => HostOp::Read { lpa, npages },
                    _ => HostOp::Trim { lpa, npages },
                }
            })
            .collect()
    }

    #[test]
    fn scheduled_results_are_byte_identical_across_queue_depths() {
        let ops = mixed_trace(120, 40, 0xBADC0FFE);
        let run = |qd: usize| {
            let mut s = ssd(SanitizePolicy::evanesco());
            let r = s.run_scheduled(&ops, qd);
            let readback = s.read(0, 40);
            assert!(s.verify_sanitized(0, 40), "qd {qd} leaks superseded secured data");
            (r.results, readback)
        };
        let base = run(1);
        for qd in [2, 8, 32] {
            assert_eq!(run(qd), base, "qd {qd} changed host-visible results");
        }
    }

    #[test]
    fn deeper_queues_overlap_independent_requests() {
        let ops: Vec<HostOp> =
            (0..64).map(|l| HostOp::Write { lpa: l, npages: 1, secure: true }).collect();
        let time_at = |qd: usize| {
            let mut s = ssd(SanitizePolicy::evanesco());
            let r = s.run_scheduled(&ops, qd);
            assert_eq!(r.requests, 64);
            assert_eq!(r.host_pages, 64);
            assert!(r.max_outstanding <= qd);
            r.sim_time
        };
        let qd1 = time_at(1);
        let qd8 = time_at(8);
        assert!(qd8 < qd1, "deeper queue must not be slower");
        let speedup = qd1.0 as f64 / qd8.0 as f64;
        // Two chips on two channels: independent writes stripe across
        // both, so QD >= 2 approaches 2x over the serialized baseline.
        assert!(speedup > 1.5, "speedup {speedup} at qd 8 on a 2-chip device");
    }

    #[test]
    fn queue_depth_one_serializes_requests() {
        let ops: Vec<HostOp> =
            (0..8).map(|l| HostOp::Write { lpa: l, npages: 1, secure: true }).collect();
        let mut s = ssd(SanitizePolicy::evanesco());
        let r = s.run_scheduled(&ops, 1);
        assert_eq!(r.max_outstanding, 1);
        // Serialized: total time is at least requests x (transfer + program)
        // even though the writes land on alternating chips.
        let t = s.config().ftl.timing;
        let per = t.t_xfer_page + t.t_prog;
        assert!(r.sim_time >= Nanos(per.0 * 8), "qd 1 must not overlap requests");
    }

    #[test]
    fn checkpoint_roundtrip_continues_bit_identically() {
        let mut live = ssd(SanitizePolicy::evanesco());
        live.enable_gauges();
        live.enable_timeseries(Nanos::from_micros(200), 64);
        let mut x = 7u64;
        for _ in 0..150 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            live.write(x % 48, 1, !x.is_multiple_of(3));
            if x.is_multiple_of(5) {
                live.trim(x % 32, 1);
            }
        }
        let bytes = live.save_checkpoint();
        let mut restored = Emulator::restore_checkpoint(&bytes).expect("valid checkpoint");
        assert_eq!(restored.result(), live.result());
        assert_eq!(restored.prometheus_scrape(), live.prometheus_scrape());
        // A restored emulator re-encodes to the exact same bytes.
        assert_eq!(restored.save_checkpoint(), bytes);
        // Continue both in lockstep: every host-visible result and every
        // metric stays identical.
        for _ in 0..150 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = live.write_tracked(x % 48, 1, !x.is_multiple_of(3));
            let b = restored.write_tracked(x % 48, 1, !x.is_multiple_of(3));
            assert_eq!(a, b);
            if x.is_multiple_of(4) {
                assert_eq!(live.read(x % 48, 2), restored.read(x % 48, 2));
            }
            if x.is_multiple_of(5) {
                live.trim(x % 32, 1);
                restored.trim(x % 32, 1);
            }
        }
        live.sample_timeseries_now();
        restored.sample_timeseries_now();
        assert_eq!(restored.result(), live.result());
        assert_eq!(restored.prometheus_scrape(), live.prometheus_scrape());
        assert_eq!(restored.save_checkpoint(), live.save_checkpoint());
    }

    /// Byte range of section `id`'s payload within a v2 checkpoint
    /// (frame header: id + u64 length + u32 crc = 13 bytes).
    fn section_payload_range(bytes: &[u8], id: u8) -> std::ops::Range<usize> {
        let mut pos = 12; // 8-byte magic + u32 version
        loop {
            let sid = bytes[pos];
            let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
            let start = pos + 13;
            if sid == id {
                return start..start + len;
            }
            pos = start + len;
        }
    }

    #[test]
    fn failed_in_place_restore_leaves_device_untouched() {
        let mut s = ssd(SanitizePolicy::evanesco());
        s.write(0, 6, true);
        s.trim(0, 2);
        let before = s.save_checkpoint();
        let mut other = ssd(SanitizePolicy::evanesco());
        other.write(3, 3, true);
        let good = other.save_checkpoint();
        // A truncated blob and a bit-flipped blob must both fail without
        // mutating the target device.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        for bad in [&good[..good.len() - 7], &flipped[..]] {
            assert!(s.restore_in_place(bad).is_err());
            assert_eq!(s.save_checkpoint(), before, "failed restore must leave state untouched");
        }
        // A valid blob swaps wholesale.
        s.restore_in_place(&good).unwrap();
        assert_eq!(s.save_checkpoint(), good);
    }

    #[test]
    fn strict_restore_names_the_damaged_section() {
        let mut s = ssd(SanitizePolicy::evanesco());
        s.write(0, 4, true);
        let mut bytes = s.save_checkpoint();
        let r = section_payload_range(&bytes, crate::checkpoint::section::FTL);
        bytes[r.start + 10] ^= 0xFF;
        match Emulator::restore_checkpoint(&bytes) {
            Err(evanesco_nand::snapshot::SnapshotError::Corrupt(msg)) => {
                assert!(msg.contains("ftl"), "error must name the section: {msg}");
            }
            other => panic!("expected a CRC failure naming 'ftl', got {other:?}"),
        }
    }

    #[test]
    fn salvage_rebuilds_a_corrupt_ftl_section_from_flash() {
        let mut s = ssd(SanitizePolicy::evanesco());
        let tags = s.write(0, 8, true);
        s.trim(0, 3);
        let mut bytes = s.save_checkpoint();
        let r = section_payload_range(&bytes, crate::checkpoint::section::FTL);
        bytes[r.start + 20] ^= 0xFF;
        let (mut em, report) =
            Emulator::restore_checkpoint_salvaging(&bytes).expect("ftl damage is salvageable");
        assert_eq!(report.salvaged, vec!["ftl"]);
        assert!(!report.is_clean());
        // The rebuilt tables serve the exact logical contents.
        assert_eq!(em.read(0, 3), vec![None; 3], "trimmed pages stay trimmed");
        let got = em.read(3, 5);
        assert_eq!(got, tags[3..].iter().map(|&t| Some(t)).collect::<Vec<_>>());
        // Acked secure deletes stay unrecoverable through the salvage.
        assert!(em.verify_sanitized(0, 3));
        // The salvaged device keeps working.
        assert!(em.write_tracked(0, 1, true)[0].1);
    }

    #[test]
    fn salvage_resets_a_corrupt_host_section() {
        let mut s = ssd(SanitizePolicy::evanesco());
        let tags = s.write(0, 4, true);
        let mut bytes = s.save_checkpoint();
        let r = section_payload_range(&bytes, crate::checkpoint::section::HOST);
        bytes[r.start] ^= 0xFF; // clobbers the host tag byte
        let (mut em, report) = Emulator::restore_checkpoint_salvaging(&bytes).unwrap();
        assert_eq!(report.salvaged, vec!["host"]);
        // Bookkeeping restarted; the flash and FTL state survived.
        assert_eq!(em.stale_len(), 0);
        assert_eq!(em.result().host_ops, 0);
        assert_eq!(em.read(0, 4), tags.into_iter().map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn salvage_drops_corrupt_observational_sections() {
        let mut s = ssd(SanitizePolicy::evanesco());
        s.enable_gauges();
        s.enable_timeseries(Nanos::from_micros(200), 16);
        s.write(0, 6, true);
        let mut bytes = s.save_checkpoint();
        for id in [crate::checkpoint::section::GAUGES, crate::checkpoint::section::TIMESERIES] {
            let r = section_payload_range(&bytes, id);
            bytes[r.start] ^= 0xFF;
        }
        let (em, report) = Emulator::restore_checkpoint_salvaging(&bytes).unwrap();
        assert_eq!(report.salvaged, vec!["gauges", "timeseries"]);
        assert!(em.gauges().is_none());
        assert!(em.timeseries().is_none());
    }

    #[test]
    fn salvage_refuses_damage_to_required_sections() {
        let mut s = ssd(SanitizePolicy::evanesco());
        s.write(0, 4, true);
        let bytes = s.save_checkpoint();
        for id in [
            crate::checkpoint::section::CONFIG,
            crate::checkpoint::section::POLICY,
            crate::checkpoint::section::DEVICE,
        ] {
            let mut bad = bytes.clone();
            let r = section_payload_range(&bad, id);
            bad[r.start] ^= 0xFF;
            assert!(
                Emulator::restore_checkpoint_salvaging(&bad).is_err(),
                "section {id} is required"
            );
        }
    }

    #[test]
    fn salvaging_a_clean_checkpoint_is_a_strict_restore() {
        let mut s = ssd(SanitizePolicy::evanesco());
        s.enable_gauges();
        s.write(0, 6, true);
        s.trim(2, 2);
        let bytes = s.save_checkpoint();
        let (em, report) = Emulator::restore_checkpoint_salvaging(&bytes).unwrap();
        assert!(report.is_clean());
        assert_eq!(em.save_checkpoint(), bytes);
    }

    #[test]
    fn watchdog_zero_stall_rate_is_byte_identical_to_no_watchdog() {
        let ops = mixed_trace(80, 32, 0xFEED);
        let mut plain = ssd(SanitizePolicy::evanesco());
        let rp = plain.run_scheduled(&ops, 8);
        let mut guarded = ssd(SanitizePolicy::evanesco());
        guarded.enable_watchdog(crate::watchdog::DeadlineConfig::for_tests(5, 0.0));
        let rg = guarded.run_scheduled(&ops, 8);
        assert_eq!(rp, rg, "an idle watchdog must not change results or timing");
        assert_eq!(plain.save_checkpoint(), guarded.save_checkpoint());
        assert_eq!(guarded.watchdog_stats().unwrap(), crate::watchdog::WatchdogStats::default());
    }

    #[test]
    fn watchdog_failures_are_typed_accounted_and_qd_invariant() {
        let ops = mixed_trace(120, 40, 0xD00D);
        let run = |qd: usize| {
            let mut s = ssd(SanitizePolicy::evanesco());
            s.enable_watchdog(crate::watchdog::DeadlineConfig::for_tests(21, 0.35));
            let r = s.run_scheduled(&ops, qd);
            let stats = s.watchdog_stats().unwrap();
            assert!(stats.reconciles(), "qd {qd}: {stats:?}");
            let timed_out =
                r.results.iter().filter(|x| matches!(x, OpResult::TimedOut)).count() as u64;
            assert_eq!(stats.deadline_failures, timed_out, "every failure surfaces as TimedOut");
            assert!(timed_out > 0, "rate 0.35 over a budget of 3 must fail someone");
            assert!(stats.retries > 0);
            (r.results, s.read(0, 40), stats)
        };
        let base = run(1);
        for qd in [2, 8] {
            assert_eq!(run(qd), base, "qd {qd} changed watchdog outcomes");
        }
    }

    #[test]
    fn chaos_storm_serves_identical_results_and_accounts_every_injection() {
        let ops = mixed_trace(150, 40, 0x0C0C0A);
        let mut plain = ssd(SanitizePolicy::evanesco());
        let rp = plain.run_scheduled(&ops, 8);
        let mut noisy = ssd(SanitizePolicy::evanesco());
        noisy.enable_chaos(evanesco_core::fault::CorruptionConfig::storm(0.25, 0xA5));
        let rn = noisy.run_scheduled(&ops, 8);
        noisy.chaos_finalize();
        assert_eq!(rp.results, rn.results, "repaired tables must serve identical results");
        assert_eq!(plain.read(0, 40), noisy.read(0, 40));
        let st = noisy.ftl().stats();
        assert!(st.meta_corruptions_injected > 0, "storm at 0.25 must fire");
        assert!(st.meta_accounting_balanced(), "{st:?}");
        let model = noisy.chaos_stats().unwrap();
        assert_eq!(model.injected, st.meta_corruptions_injected);
        assert!(noisy.verify_sanitized(0, 40), "corruption must never leak a secured delete");
    }

    #[test]
    fn restore_rejects_garbage_without_panicking() {
        assert!(Emulator::restore_checkpoint(b"").is_err());
        assert!(Emulator::restore_checkpoint(b"EVSCCKP1").is_err());
        assert!(Emulator::restore_checkpoint(&[0u8; 64]).is_err());
        let mut s = ssd(SanitizePolicy::evanesco());
        s.write(0, 4, true);
        let bytes = s.save_checkpoint();
        // Truncation at any prefix must error, never panic.
        for cut in [12, bytes.len() / 2, bytes.len() - 1] {
            assert!(Emulator::restore_checkpoint(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn secssd_is_faster_than_erssd_on_update_heavy_load() {
        // A miniature Figure 14a: random secured overwrites.
        let run = |policy| {
            let mut s = ssd(policy);
            let logical = s.logical_pages();
            for l in 0..logical {
                s.write(l, 1, true);
            }
            let mut x = 99u64;
            for _ in 0..500 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                s.write(x % logical, 1, true);
            }
            s.result()
        };
        let base = run(SanitizePolicy::none());
        let sec = run(SanitizePolicy::evanesco());
        let er = run(SanitizePolicy::erase_based());
        let scr = run(SanitizePolicy::scrub());
        assert!(sec.iops_vs(&base) > 0.7, "secSSD {}", sec.iops_vs(&base));
        assert!(er.iops_vs(&base) < 0.5, "erSSD {}", er.iops_vs(&base));
        assert!(sec.iops > er.iops);
        assert!(sec.iops > scr.iops);
        assert!(er.waf_vs(&base) > scr.waf_vs(&base));
    }
}

//! A minimal host file-system façade over the emulated SSD — the paper's
//! §6 application story made concrete:
//!
//! ```c
//! fd      = open("foo", O_RDWR);            // secure by default
//! fd_ver  = open("bar", O_RDWR | O_INSEC);  // opts out of sanitization
//! ```
//!
//! Files are byte-addressed; the façade chunks contents into 16-KiB pages,
//! allocates logical pages, and forwards the per-file security requirement
//! with every write (the `REQ_OP_INSEC_WRITE` block-layer flag). Deleting
//! a file trims all its pages in one batch — which is exactly the `bLock`
//! opportunity for whole-block files.

use crate::config::SsdConfig;
use crate::emulator::Emulator;
use evanesco_ftl::{Lpa, SanitizePolicy};
use evanesco_nand::chip::PageData;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// File open mode: secure by default, `O_INSEC` opts out (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpenMode {
    /// Deleted/updated data must be sanitized (the default).
    #[default]
    Secure,
    /// `O_INSEC`: versions may linger; deletion is not secure.
    Insecure,
}

/// Errors of the host file system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HostFsError {
    /// The file name is already in use.
    AlreadyExists {
        /// Offending name.
        name: String,
    },
    /// No file with this name exists.
    NotFound {
        /// Requested name.
        name: String,
    },
    /// The logical address space is exhausted.
    NoSpace,
}

impl fmt::Display for HostFsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostFsError::AlreadyExists { name } => write!(f, "file '{name}' already exists"),
            HostFsError::NotFound { name } => write!(f, "file '{name}' not found"),
            HostFsError::NoSpace => f.write_str("no space left on device"),
        }
    }
}

impl Error for HostFsError {}

#[derive(Debug, Clone)]
struct FileEntry {
    lpas: Vec<Lpa>,
    len_bytes: u64,
    mode: OpenMode,
}

/// String interner for file names. Every name is stored once and mapped
/// to a stable dense `u32` id; the per-file table and all internal
/// bookkeeping key on the id, not the string. Ids survive deletion, so a
/// recreated file keeps its id — which makes them directly usable as
/// workload-layer `FileId`s for exposure attribution.
#[derive(Debug, Clone, Default)]
struct NameInterner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl NameInterner {
    fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("file-name interner overflow");
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }
}

/// A file-granular interface over the emulated SecureSSD.
#[derive(Debug, Clone)]
pub struct HostFs {
    ssd: Emulator,
    names: NameInterner,
    files: HashMap<u32, FileEntry>,
    free: Vec<Lpa>,
    page_bytes: usize,
}

impl HostFs {
    /// Creates a file system over a fresh SSD.
    pub fn new(cfg: SsdConfig, policy: SanitizePolicy) -> Self {
        let ssd = Emulator::new(cfg, policy);
        let page_bytes = cfg.ftl.geometry.page_bytes as usize;
        let free = (0..ssd.logical_pages()).rev().collect();
        HostFs { ssd, names: NameInterner::default(), files: HashMap::new(), free, page_bytes }
    }

    /// The underlying SSD (for metrics and attacker verification).
    pub fn ssd_mut(&mut self) -> &mut Emulator {
        &mut self.ssd
    }

    /// Number of live files.
    pub fn n_files(&self) -> usize {
        self.files.len()
    }

    /// A file's size in bytes.
    ///
    /// # Errors
    ///
    /// [`HostFsError::NotFound`] if no such file exists.
    pub fn len(&self, name: &str) -> Result<u64, HostFsError> {
        self.entry(name).map(|e| e.len_bytes)
    }

    /// Whether the file system holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    fn entry(&self, name: &str) -> Result<&FileEntry, HostFsError> {
        self.names
            .get(name)
            .and_then(|id| self.files.get(&id))
            .ok_or_else(|| HostFsError::NotFound { name: name.to_string() })
    }

    /// The stable interned id of a live file, usable as a workload-layer
    /// `FileId`. Ids are dense, assigned at first creation, and survive
    /// delete/recreate cycles of the same name.
    pub fn file_id(&self, name: &str) -> Option<u32> {
        self.names.get(name).filter(|id| self.files.contains_key(id))
    }

    /// Names of all live files, in interned-id (creation) order.
    pub fn file_names(&self) -> Vec<&str> {
        let mut ids: Vec<u32> = self.files.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| self.names.resolve(id)).collect()
    }

    /// Creates a file with the given contents.
    ///
    /// # Errors
    ///
    /// * [`HostFsError::AlreadyExists`] if the name is taken;
    /// * [`HostFsError::NoSpace`] if the contents do not fit.
    pub fn create(
        &mut self,
        name: &str,
        contents: &[u8],
        mode: OpenMode,
    ) -> Result<(), HostFsError> {
        if self.file_id(name).is_some() {
            return Err(HostFsError::AlreadyExists { name: name.to_string() });
        }
        let lpas = self.store(contents, mode)?;
        let id = self.names.intern(name);
        self.files.insert(id, FileEntry { lpas, len_bytes: contents.len() as u64, mode });
        Ok(())
    }

    /// Replaces a file's contents in place (the logical pages are rewritten,
    /// which supersedes the old physical versions — condition C2 territory).
    ///
    /// # Errors
    ///
    /// * [`HostFsError::NotFound`] for a missing file;
    /// * [`HostFsError::NoSpace`] if the new contents need more pages than
    ///   are available.
    pub fn overwrite(&mut self, name: &str, contents: &[u8]) -> Result<(), HostFsError> {
        let mode = self.entry(name)?.mode;
        // Free the old extent first (trim), then store fresh.
        let id = self.names.get(name).expect("checked above");
        let old = self.files.remove(&id).expect("checked above");
        self.trim_extent(&old.lpas);
        self.free.extend(old.lpas.iter().copied());
        let lpas = self.store(contents, mode)?;
        self.files.insert(id, FileEntry { lpas, len_bytes: contents.len() as u64, mode });
        Ok(())
    }

    /// Reads a file's full contents.
    ///
    /// # Errors
    ///
    /// [`HostFsError::NotFound`] for a missing file.
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, HostFsError> {
        let (lpas, len) = {
            let e = self.entry(name)?;
            (e.lpas.clone(), e.len_bytes as usize)
        };
        let mut out = Vec::with_capacity(len);
        for lpa in lpas {
            let page = self.ssd.read_pages(lpa, 1).pop().flatten();
            let payload =
                page.as_ref().and_then(|d| d.payload()).expect("mapped file page has a payload");
            out.extend_from_slice(payload);
        }
        out.truncate(len);
        Ok(out)
    }

    /// Deletes a file; its pages are trimmed in one batch.
    ///
    /// # Errors
    ///
    /// [`HostFsError::NotFound`] for a missing file.
    pub fn delete(&mut self, name: &str) -> Result<(), HostFsError> {
        let e = self
            .names
            .get(name)
            .and_then(|id| self.files.remove(&id))
            .ok_or_else(|| HostFsError::NotFound { name: name.to_string() })?;
        self.trim_extent(&e.lpas);
        self.free.extend(e.lpas.iter().copied());
        Ok(())
    }

    fn store(&mut self, contents: &[u8], mode: OpenMode) -> Result<Vec<Lpa>, HostFsError> {
        let n_pages = contents.len().div_ceil(self.page_bytes).max(1);
        if self.free.len() < n_pages {
            return Err(HostFsError::NoSpace);
        }
        let secure = mode == OpenMode::Secure;
        let mut lpas = Vec::with_capacity(n_pages);
        for i in 0..n_pages {
            let lpa = self.free.pop().expect("space checked");
            let chunk = contents.chunks(self.page_bytes).nth(i).unwrap_or(&[]);
            self.ssd.write_pages(lpa, vec![PageData::with_payload(chunk)], secure);
            lpas.push(lpa);
        }
        Ok(lpas)
    }

    fn trim_extent(&mut self, lpas: &[Lpa]) {
        // Trim maximal contiguous runs to expose bLock opportunities.
        let mut sorted = lpas.to_vec();
        sorted.sort_unstable();
        let mut i = 0;
        while i < sorted.len() {
            let start = sorted[i];
            let mut len = 1u64;
            while i + (len as usize) < sorted.len() && sorted[i + len as usize] == start + len {
                len += 1;
            }
            self.ssd.trim(start, len);
            i += len as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> HostFs {
        HostFs::new(SsdConfig::tiny_for_tests(), SanitizePolicy::evanesco())
    }

    #[test]
    fn create_read_roundtrip() {
        let mut f = fs();
        let contents = b"blood type AB-, diagnosis: classified";
        f.create("medical.txt", contents, OpenMode::Secure).unwrap();
        assert_eq!(f.read("medical.txt").unwrap(), contents);
        assert_eq!(f.len("medical.txt").unwrap(), contents.len() as u64);
        assert_eq!(f.n_files(), 1);
        assert!(!f.is_empty());
    }

    #[test]
    fn multi_page_contents() {
        let mut f = fs();
        let big: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        f.create("video.bin", &big, OpenMode::Secure).unwrap();
        assert_eq!(f.read("video.bin").unwrap(), big);
    }

    #[test]
    fn delete_is_sanitized_for_secure_files() {
        let mut f = fs();
        f.create("secret", b"the launch code is 0000", OpenMode::Secure).unwrap();
        f.delete("secret").unwrap();
        assert!(matches!(f.read("secret"), Err(HostFsError::NotFound { .. })));
        let logical = f.ssd.logical_pages();
        assert!(f.ssd_mut().verify_sanitized(0, logical));
        assert!(f.ssd_mut().result().plocks + f.ssd_mut().result().blocks_locked > 0);
    }

    #[test]
    fn insecure_files_skip_locking() {
        let mut f = fs();
        f.create("cache.tmp", b"cat pictures", OpenMode::Insecure).unwrap();
        f.delete("cache.tmp").unwrap();
        let r = f.ssd_mut().result();
        assert_eq!(r.plocks + r.blocks_locked, 0);
    }

    #[test]
    fn overwrite_supersedes_old_content_securely() {
        let mut f = fs();
        f.create("will.txt", b"everything to the cat", OpenMode::Secure).unwrap();
        f.overwrite("will.txt", b"everything to the dog").unwrap();
        assert_eq!(f.read("will.txt").unwrap(), b"everything to the dog");
        let logical = f.ssd.logical_pages();
        assert!(f.ssd_mut().verify_sanitized(0, logical), "old will recoverable");
    }

    #[test]
    fn name_collisions_and_missing_files() {
        let mut f = fs();
        f.create("a", b"1", OpenMode::Secure).unwrap();
        assert!(matches!(
            f.create("a", b"2", OpenMode::Secure),
            Err(HostFsError::AlreadyExists { .. })
        ));
        assert!(matches!(f.delete("zzz"), Err(HostFsError::NotFound { .. })));
        assert!(matches!(f.overwrite("zzz", b""), Err(HostFsError::NotFound { .. })));
        assert!(matches!(f.len("zzz"), Err(HostFsError::NotFound { .. })));
    }

    #[test]
    fn no_space_is_reported() {
        let mut f = fs();
        let logical = f.ssd.logical_pages();
        let huge = vec![0u8; (logical as usize + 1) * 16 * 1024];
        assert!(matches!(f.create("huge", &huge, OpenMode::Secure), Err(HostFsError::NoSpace)));
    }

    #[test]
    fn deleted_space_is_reusable() {
        let mut f = fs();
        for round in 0..4 {
            let name = format!("f{round}");
            let data = vec![round as u8; 100_000];
            f.create(&name, &data, OpenMode::Secure).unwrap();
            assert_eq!(f.read(&name).unwrap(), data);
            f.delete(&name).unwrap();
        }
        assert!(f.is_empty());
    }

    #[test]
    fn interned_file_ids_are_dense_and_stable() {
        let mut f = fs();
        f.create("a", b"1", OpenMode::Secure).unwrap();
        f.create("b", b"2", OpenMode::Secure).unwrap();
        assert_eq!(f.file_id("a"), Some(0));
        assert_eq!(f.file_id("b"), Some(1));
        assert_eq!(f.file_id("zzz"), None);
        assert_eq!(f.file_names(), vec!["a", "b"]);
        // Delete + recreate keeps the id; new names keep extending.
        f.delete("a").unwrap();
        assert_eq!(f.file_id("a"), None);
        f.create("a", b"3", OpenMode::Secure).unwrap();
        assert_eq!(f.file_id("a"), Some(0));
        f.create("c", b"4", OpenMode::Secure).unwrap();
        assert_eq!(f.file_id("c"), Some(2));
        assert_eq!(f.file_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_file_occupies_one_page() {
        let mut f = fs();
        f.create("empty", b"", OpenMode::Secure).unwrap();
        assert_eq!(f.read("empty").unwrap(), b"");
        assert_eq!(f.len("empty").unwrap(), 0);
    }
}

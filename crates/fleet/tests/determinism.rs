//! The fleet's byte-identity determinism properties — the contract the
//! CI `fleet-gate` job enforces:
//!
//! * same seed + any shard count ⇒ byte-identical per-device results
//!   (thread interleaving leaves no trace);
//! * reruns are byte-identical;
//! * queue depth changes timing only — host-visible results (tags,
//!   read values, acks) are invariant.

use evanesco_fleet::{run_fleet, FleetConfig, QosMode, TenantQos};
use proptest::prelude::*;

fn fleet(devices: usize, shards: usize, qd: usize, mode: QosMode, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::noisy_neighbor_demo(devices, 2, 250, seed);
    cfg.shards = shards;
    cfg.qd = qd;
    cfg.mode = mode;
    if mode == QosMode::Shaped {
        cfg.qos[0] = TenantQos::limited(1, 50_000, 64);
    }
    cfg
}

#[test]
fn shard_count_leaves_no_trace_in_any_device() {
    for mode in [QosMode::Fifo, QosMode::Shaped] {
        let base = run_fleet(&fleet(5, 1, 8, mode, 99));
        for shards in [2, 4] {
            let sharded = run_fleet(&fleet(5, shards, 8, mode, 99));
            assert_eq!(base.fleet_digest, sharded.fleet_digest, "{mode:?} @ {shards} shards");
            for (a, b) in base.devices.iter().zip(&sharded.devices) {
                assert_eq!(a.device, b.device);
                assert_eq!(a.digest, b.digest, "device {} diverged at {shards} shards", a.device);
                assert_eq!(a.sim_time, b.sim_time);
            }
        }
    }
}

#[test]
fn reruns_are_byte_identical() {
    let a = run_fleet(&fleet(3, 2, 8, QosMode::Shaped, 7));
    let b = run_fleet(&fleet(3, 2, 8, QosMode::Shaped, 7));
    assert_eq!(a.fleet_digest, b.fleet_digest);
    for (x, y) in a.devices.iter().zip(&b.devices) {
        assert_eq!(x.digest, y.digest);
        assert_eq!(x.results_digest, y.results_digest);
    }
}

#[test]
fn queue_depth_changes_timing_but_not_host_visible_results() {
    let qd1 = run_fleet(&fleet(2, 1, 1, QosMode::Shaped, 21));
    let qd8 = run_fleet(&fleet(2, 1, 8, QosMode::Shaped, 21));
    for (a, b) in qd1.devices.iter().zip(&qd8.devices) {
        assert_eq!(
            a.results_digest, b.results_digest,
            "device {}: queue depth must not change what the host sees",
            a.device
        );
    }
    // Deeper queues overlap independent requests: the fleet finishes no
    // later than serialized.
    let t1: u64 = qd1.devices.iter().map(|d| d.sim_time.0).sum();
    let t8: u64 = qd8.devices.iter().map(|d| d.sim_time.0).sum();
    assert!(t8 <= t1, "qd8 total sim time {t8} > qd1 {t1}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Randomized determinism sweep: any (seed, shard split, qd pair,
    /// mode) upholds both invariances on a small fleet.
    #[test]
    fn determinism_holds_for_random_fleets(
        seed in 0u64..1_000_000,
        shards in 1usize..=4,
        qd in 1usize..=8,
        shaped in any::<bool>(),
    ) {
        let mode = if shaped { QosMode::Shaped } else { QosMode::Fifo };
        let a = run_fleet(&fleet(3, 1, qd, mode, seed));
        let b = run_fleet(&fleet(3, shards, qd, mode, seed));
        prop_assert_eq!(a.fleet_digest, b.fleet_digest);
        // And qd-invariance of host-visible results vs a serialized run.
        let serial = run_fleet(&fleet(3, shards, 1, mode, seed));
        for (x, y) in a.devices.iter().zip(&serial.devices) {
            prop_assert_eq!(x.results_digest, y.results_digest);
        }
    }
}
